"""Extension: value predictability vs compiler optimisation level.

The paper's absolute accuracies come from gcc -O2 code; ours from a
stack-discipline compiler.  This bench regenerates the comparison on
our own optimisation axis and asserts the direction: optimised code
(fewer trivially predictable loads and literal constants) is harder to
predict for every predictor class, and the DFCM -- whose wins come
from genuine stride/context structure rather than compiler noise --
is the least affected and stays the best predictor.
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import run_experiment


def test_ext_optlevel(benchmark, traces):
    result = run_once(
        benchmark,
        lambda: run_experiment("ext_optlevel", traces=traces, fast=True))
    table = result.table("suite accuracy by optimisation level")
    rows = {row[0]: dict(zip(table.headers, row)) for row in table.rows}

    # Context and stride predictors lose accuracy on optimised code
    # (easy memory-resident patterns are gone).  The LVP can go either
    # way: register promotion removes loads, which shifts the remaining
    # trace mix towards almost-constant producers.
    for label in ("stride", "fcm", "dfcm"):
        assert rows[label]["delta_O2_vs_O0"] <= 0.005, \
            f"{label} got easier at O2?"
    for level in ("O1", "O2"):
        assert rows["dfcm"][level] == max(row[level]
                                          for row in rows.values())
    # The DFCM's edge survives the removal of compiler noise.
    assert rows["dfcm"]["O2"] - rows["fcm"]["O2"] > 0.05

    print()
    print(result.render())
