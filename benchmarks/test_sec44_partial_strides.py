"""Regenerates Section 4.4: partial (8/16-bit) strides in level 2.

Paper claims checked:
- 16-bit strides cost little accuracy (paper: .01-.03), 8-bit strides
  cost more (paper: .05-.08), and the narrower the entries the smaller
  the table;
- for small level-2 tables the saving is marginal because the level-1
  table dominates total storage (the paper's argument against the
  technique).
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import run_experiment


def test_sec4_4(benchmark, traces):
    result = run_once(
        benchmark, lambda: run_experiment("sec4_4", traces=traces, fast=True))
    table = result.table("accuracy and size")
    by_width = {}
    for row in table.rows:
        point = dict(zip(table.headers, row))
        by_width[point["stride_bits"]] = point

    assert by_width[32]["accuracy_drop_vs_32"] == 0.0
    drop16 = by_width[16]["accuracy_drop_vs_32"]
    drop8 = by_width[8]["accuracy_drop_vs_32"]
    assert 0.0 <= drop16 <= 0.06
    assert drop16 < drop8 <= 0.12

    assert (by_width[8]["size_kbit"] < by_width[16]["size_kbit"]
            < by_width[32]["size_kbit"])
    # Level-1 dominance at this size: halving the stride width saves
    # far less than half the predictor.
    saving16 = 1 - by_width[16]["size_kbit"] / by_width[32]["size_kbit"]
    assert saving16 < 0.25

    print()
    print(result.render())
