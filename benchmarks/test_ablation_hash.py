"""Ablation: the history hash function (DESIGN.md section 5).

The paper adopts Sazeides' FS(R-5) without re-tuning.  Checked here:
- FS(R-5) clearly beats an order-insensitive XOR fold for the FCM
  (position information matters);
- FS(R-5) and FS(R-3) are close (the choice of shift is not critical),
  supporting the paper's decision not to re-optimise it for DFCM.
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import run_experiment


def test_hash_ablation(benchmark, traces):
    result = run_once(
        benchmark,
        lambda: run_experiment("ablation_hash", traces=traces, fast=True))
    table = result.table("accuracy by hash")
    rows = {row[0]: dict(zip(table.headers, row)) for row in table.rows}
    assert rows["fs_r5"]["fcm"] > rows["xor_o3"]["fcm"]
    assert abs(rows["fs_r5"]["fcm"] - rows["fs_r3"]["fcm"]) < 0.03
    # DFCM is far less hash-sensitive: strides collapse histories.
    fcm_spread = rows["fs_r5"]["fcm"] - rows["xor_o3"]["fcm"]
    dfcm_spread = rows["fs_r5"]["dfcm"] - rows["xor_o3"]["dfcm"]
    assert dfcm_spread < fcm_spread
    print()
    print(result.render())
