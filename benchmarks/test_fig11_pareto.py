"""Regenerates Figure 11: accuracy vs total storage; Pareto fronts.

Paper claims checked:
- the DFCM Pareto front dominates the FCM front once sizes are past
  the smallest configurations (paper: +.06-.09 accuracy at equal size);
- on each DFCM level-1 curve the accuracy's dependence on the level-2
  size flattens (the "knee" is sharp): the step from mid to large L2 is
  much smaller than from small to mid.
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import run_experiment


def test_fig11(benchmark, traces):
    result = run_once(
        benchmark, lambda: run_experiment("fig11", traces=traces, fast=True))

    front = result.table("Pareto fronts")
    fcm_front = [(s, a) for p, s, a in zip(front.column("predictor"),
                                           front.column("size_kbit"),
                                           front.column("accuracy"))
                 if p == "fcm"]
    dfcm_front = [(s, a) for p, s, a in zip(front.column("predictor"),
                                            front.column("size_kbit"),
                                            front.column("accuracy"))
                  if p == "dfcm"]
    assert fcm_front and dfcm_front

    # Dominance: for every FCM front point, some same-or-smaller DFCM
    # configuration is more accurate (skipping sizes below the smallest
    # DFCM config, which carries its fixed last-value overhead).
    smallest_dfcm = min(s for s, _ in dfcm_front)
    for size, accuracy in fcm_front:
        if size < smallest_dfcm:
            continue
        best_dfcm = max(a for s, a in dfcm_front if s <= size)
        assert best_dfcm > accuracy

    curve = result.table("DFCM accuracy vs size")
    by_l1 = {}
    for l1, l2, acc in zip(curve.column("l1_entries"),
                           curve.column("l2_entries"),
                           curve.column("accuracy")):
        by_l1.setdefault(l1, []).append((l2, acc))
    for l1, points in by_l1.items():
        points.sort()
        first_step = points[1][1] - points[0][1]
        last_step = points[-1][1] - points[-2][1]
        assert last_step < max(first_step, 0.02), (
            f"L1={l1}: level-2 growth did not flatten")

    print()
    print(result.render())
