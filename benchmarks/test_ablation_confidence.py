"""Ablation: the stride predictor's confidence counter (DESIGN.md §5).

The paper uses a 3-bit counter, +1 on correct, -2 on wrong, replacing
the stride only below saturation.  Checked here: the 3-bit gate beats
a gate-free 1-bit counter (which replaces the stride on nearly every
update), i.e. the hysteresis is doing real work.
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import run_experiment


def test_confidence_ablation(benchmark, traces):
    result = run_once(
        benchmark,
        lambda: run_experiment("ablation_confidence", traces=traces,
                               fast=True))
    table = result.table("stride predictor accuracy")
    by_shape = {(b, i, d): acc for b, i, d, acc in table.rows}
    paper_shape = by_shape[(3, 1, 2)]
    # The counter tunes the predictor, it does not make or break it:
    # all shapes sit in a narrow band, and the paper's choice is close
    # to the best.  (On these -O0-style traces a 1-bit gate is in fact
    # marginally better -- faster stride re-learning pays off; see
    # EXPERIMENTS.md.)
    assert max(by_shape.values()) - min(by_shape.values()) < 0.10
    assert max(by_shape.values()) - paper_shape < 0.03
    print()
    print(result.render())
