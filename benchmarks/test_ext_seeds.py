"""Extension: input robustness of the headline result.

The paper evaluates a single input per benchmark (Table 1).  This
bench re-generates every workload with different PRNG seeds --
different concrete inputs of the same character -- and asserts that
the DFCM-beats-FCM headline, and roughly its magnitude, hold on every
input rather than being an artifact of one.
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import run_experiment


def test_ext_seeds(benchmark, traces):
    result = run_once(
        benchmark,
        lambda: run_experiment("ext_seeds", traces=traces, fast=True))
    table = result.table("suite accuracy per seed")
    assert len(table.rows) >= 2
    gains = []
    for row in table.rows:
        point = dict(zip(table.headers, row))
        assert point["dfcm_wins"] == "yes"
        gains.append(point["dfcm"] - point["fcm"])
    # The win's magnitude is stable across inputs (not a one-off).
    assert min(gains) > 0.05
    assert max(gains) - min(gains) < 0.1
    print()
    print(result.render())
