"""Regenerates Figure 10: FCM vs DFCM accuracy.

Paper claims checked:
- DFCM beats FCM at every level-2 size;
- the relative gain is larger for smaller (more aliased) tables than
  for very large ones (paper: up to +33% small, +8% huge);
- at L2 = 2^12, every individual benchmark improves (paper Figure
  10(b): +8% .. +46%).
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import run_experiment


def test_fig10(benchmark, traces):
    result = run_once(
        benchmark, lambda: run_experiment("fig10", traces=traces, fast=True))

    sweep = result.table("accuracy vs level-2 size")
    for fcm_acc, dfcm_acc in zip(sweep.column("fcm"), sweep.column("dfcm")):
        assert dfcm_acc > fcm_acc
    gains = sweep.column("relative_gain")
    assert gains[0] > gains[-1]      # smaller table, bigger relative win
    assert gains[0] > 0.10           # a sizeable improvement when aliased

    per_bench = result.table("per-benchmark")
    for name, fcm_acc, dfcm_acc in zip(per_bench.column("benchmark"),
                                       per_bench.column("fcm"),
                                       per_bench.column("dfcm")):
        assert dfcm_acc > fcm_acc, f"{name}: DFCM did not improve"

    print()
    print(result.render())
