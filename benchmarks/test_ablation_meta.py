"""Extension of Figure 16: a realisable meta-predictor vs the oracle.

The paper only evaluates *perfect* meta-predictors and argues
"implementing a perfect meta-predictor is impossible.  Therefore, the
DFCM can outperform any hybrid predictor of the discussed type."
Checked here with an actual saturating-counter meta-predictor:
- the realisable hybrid loses part of the oracle's edge;
- the DFCM beats the realisable STRIDE+FCM hybrid (the paper's
  conclusion), even where the oracle hybrid is competitive.
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import run_experiment


def test_ablation_meta(benchmark, traces):
    result = run_once(
        benchmark,
        lambda: run_experiment("ablation_meta", traces=traces, fast=True))
    table = result.table("accuracy by selection mechanism")
    for row in table.rows:
        point = dict(zip(table.headers, row))
        assert point["meta(stride+fcm)"] < point["oracle(stride+fcm)"]
        assert point["dfcm"] > point["meta(stride+fcm)"]
        assert point["meta(stride+fcm)"] > point["fcm"]
    print()
    print(result.render())
