"""Regenerates Table 1: the benchmark suite description."""

from benchmarks.conftest import run_once
from repro.harness.experiments import run_experiment
from repro.workloads.registry import SPEC_NAMES


def test_table1(benchmark, traces):
    result = run_once(
        benchmark, lambda: run_experiment("table1", traces=traces))
    table = result.table("Benchmarks")
    names = table.column("benchmark")
    # All eight SPECint95 stand-ins present, in the paper's order.
    assert names == SPEC_NAMES
    # Every trace actually contains predictions from many static
    # instructions (the predictors are PC-indexed; a degenerate trace
    # would trivialise every experiment).
    for static_count in table.column("static instrs"):
        assert static_count >= 20
    print()
    print(result.render())
