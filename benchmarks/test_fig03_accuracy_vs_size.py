"""Regenerates Figure 3: LVP / stride / FCM accuracy vs predictor size.

Paper claims checked:
- FCM is the most accurate method once its tables are large;
- the stride predictor beats the last value predictor;
- growing the FCM level-2 table keeps helping.
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import run_experiment


def test_fig3(benchmark, traces):
    result = run_once(
        benchmark, lambda: run_experiment("fig3", traces=traces, fast=True))

    simple = result.table("LVP and stride")
    lvp_best = max(acc for kind, acc in zip(simple.column("predictor"),
                                            simple.column("accuracy"))
                   if kind == "lvp")
    stride_best = max(acc for kind, acc in zip(simple.column("predictor"),
                                               simple.column("accuracy"))
                      if kind == "stride")
    assert stride_best > lvp_best

    fcm = result.table("FCM grid")
    fcm_best = max(fcm.column("accuracy"))
    assert fcm_best > stride_best  # FCM wins at large sizes

    # Within the largest level-1 curve, accuracy grows with level-2.
    largest_l1 = max(fcm.column("l1_entries"))
    curve = [(l2, acc) for l1, l2, acc in zip(fcm.column("l1_entries"),
                                              fcm.column("l2_entries"),
                                              fcm.column("accuracy"))
             if l1 == largest_l1]
    curve.sort()
    assert curve[-1][1] > curve[0][1]

    print()
    print(result.render())
