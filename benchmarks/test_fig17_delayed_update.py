"""Regenerates Figure 17: prediction accuracy under delayed update.

Paper claims checked:
- both FCM and DFCM degrade monotonically as the update delay grows;
- the degradation is significant (not a few percent);
- DFCM keeps its advantage at delay 0 and suffers at least as much as
  the FCM (the paper: "DFCM slightly more").
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import run_experiment


def test_fig17(benchmark, traces):
    result = run_once(
        benchmark, lambda: run_experiment("fig17", traces=traces, fast=True))
    table = result.table("accuracy vs update delay")
    delays = table.column("delay")
    fcm = table.column("fcm")
    dfcm = table.column("dfcm")
    assert delays == sorted(delays)
    assert all(a >= b for a, b in zip(fcm, fcm[1:]))
    assert all(a >= b for a, b in zip(dfcm, dfcm[1:]))
    assert fcm[0] - fcm[-1] > 0.05          # significant impact
    assert dfcm[0] > fcm[0]                 # DFCM advantage at delay 0
    assert dfcm[0] - dfcm[-1] >= fcm[0] - fcm[-1]  # DFCM suffers >= FCM
    print()
    print(result.render())
