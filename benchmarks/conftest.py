"""Shared fixtures for the paper-figure benchmarks.

Each benchmark regenerates one table/figure of the paper via the
experiment registry and asserts the paper's *qualitative* claims (who
wins, by roughly what factor, where the trends point).  Trace length
is controlled by ``REPRO_BENCH_TRACE_LEN`` (default 30k predictions per
benchmark -- enough for stable shapes, small enough to keep the whole
bench suite to a few minutes).  ``REPRO_BENCH_ENGINE`` and
``REPRO_BENCH_JOBS`` pin the replay engine / worker count for the whole
session -- the figures are engine- and executor-invariant, so these
knobs only move wall time.
"""

from __future__ import annotations

import contextlib
import os

import pytest

from repro.core.engines import engine_default
from repro.harness.config import suite_traces
from repro.harness.executor import executor_default


def bench_trace_length() -> int:
    return int(os.environ.get("REPRO_BENCH_TRACE_LEN", "30000"))


@pytest.fixture(scope="session", autouse=True)
def _bench_defaults():
    """Session-wide engine/executor defaults from the environment."""
    engine = os.environ.get("REPRO_BENCH_ENGINE")
    jobs = os.environ.get("REPRO_BENCH_JOBS")
    with contextlib.ExitStack() as stack:
        if engine:
            stack.enter_context(engine_default(engine))
        if jobs:
            stack.enter_context(executor_default(jobs=int(jobs)))
        yield


@pytest.fixture(scope="session")
def traces():
    """The eight SPEC-mini traces at bench length (disk-cached)."""
    return suite_traces(bench_trace_length())


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark timing.

    The experiments are deterministic and expensive; statistical
    repetition would only burn time.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
