"""Shared fixtures for the paper-figure benchmarks.

Each benchmark regenerates one table/figure of the paper via the
experiment registry and asserts the paper's *qualitative* claims (who
wins, by roughly what factor, where the trends point).  Trace length
is controlled by ``REPRO_BENCH_TRACE_LEN`` (default 30k predictions per
benchmark -- enough for stable shapes, small enough to keep the whole
bench suite to a few minutes).
"""

from __future__ import annotations

import os

import pytest

from repro.harness.config import suite_traces


def bench_trace_length() -> int:
    return int(os.environ.get("REPRO_BENCH_TRACE_LEN", "30000"))


@pytest.fixture(scope="session")
def traces():
    """The eight SPEC-mini traces at bench length (disk-cached)."""
    return suite_traces(bench_trace_length())


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark timing.

    The experiments are deterministic and expensive; statistical
    repetition would only burn time.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
