"""Regenerates Figures 12-14: the aliasing taxonomy.

Paper claims checked:
- predictions with no detected aliasing, and those sharing entries
  between identical patterns (l2_pc), are highly accurate, while l1 and
  hash aliasing are destructive (Figure 12);
- DFCM shifts predictions from the quasi-random ``hash`` category into
  the benign ``l2_pc`` category (Figure 13, FCM vs DFCM);
- ``hash`` aliasing remains the dominant source of mispredictions, and
  the DFCM's total misprediction mass shrinks (Figure 14).
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import run_experiment


def _avg_row(table):
    headers = table.headers
    for row in table.rows:
        if row[0] == "avg":
            return dict(zip(headers, row))
    raise AssertionError("no avg row")


def test_fig12_13_14(benchmark, traces):
    result = run_once(
        benchmark,
        lambda: run_experiment("fig12_14", traces=traces, fast=True))

    fig12 = result.table("Figure 12")
    accuracy = {cat: acc for cat, _, acc in fig12.rows}
    assert accuracy["none"] > 0.75
    assert accuracy["l2_pc"] > 0.75
    assert accuracy["hash"] < accuracy["none"]
    assert accuracy["l1"] < accuracy["none"]

    fcm_mix = _avg_row(result.table("Figure 13 (fcm)"))
    dfcm_mix = _avg_row(result.table("Figure 13 (dfcm)"))
    assert dfcm_mix["l2_pc"] > fcm_mix["l2_pc"]
    assert dfcm_mix["hash"] < fcm_mix["hash"]

    fcm_wrong = _avg_row(result.table("Figure 14 (fcm)"))
    dfcm_wrong = _avg_row(result.table("Figure 14 (dfcm)"))
    categories = ("l1", "hash", "l2_priv", "l2_pc", "none")
    fcm_total = sum(fcm_wrong[c] for c in categories)
    dfcm_total = sum(dfcm_wrong[c] for c in categories)
    assert dfcm_total < fcm_total          # fewer mispredictions overall
    assert dfcm_wrong["hash"] < fcm_wrong["hash"]
    # hash is the dominant misprediction source for the FCM.
    assert fcm_wrong["hash"] == max(fcm_wrong[c] for c in categories)

    print()
    print(result.render())
