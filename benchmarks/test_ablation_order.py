"""Ablation: predictor order (DESIGN.md section 5).

The paper couples order = ceil(n/5) to the level-2 size.  Checked
here: at a 2^12-entry level-2 table, higher orders help the FCM (more
context disambiguates more patterns), and order >= 2 is close to
saturation for the DFCM -- the coupling picks a sensible point.
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import run_experiment


def test_order_ablation(benchmark, traces):
    result = run_once(
        benchmark,
        lambda: run_experiment("ablation_order", traces=traces, fast=True))
    table = result.table("accuracy by order")
    orders = table.column("order")
    fcm = dict(zip(orders, table.column("fcm")))
    dfcm = dict(zip(orders, table.column("dfcm")))
    assert fcm[3] > fcm[1]
    assert dfcm[3] > dfcm[1]
    # The paper's coupled point (order 3 at 2^12) is within a hair of
    # the best order measured.
    assert max(fcm.values()) - fcm[3] < 0.02
    assert max(dfcm.values()) - dfcm[3] < 0.02
    print()
    print(result.render())
