"""Regenerates Figures 6 and 9: stride occupancy of the level-2 table.

Paper claims checked (on norm and li, as in the paper):
- the FCM spreads stride accesses over a large fraction of the level-2
  table, the DFCM over a small number of hot entries;
- the DFCM's top entries absorb almost all stride accesses.
"""

from benchmarks.conftest import bench_trace_length, run_once
from repro.harness.experiments import run_experiment


def test_fig6_and_fig9(benchmark, traces):
    result = run_once(
        benchmark,
        lambda: run_experiment("fig6_9", traces=traces, fast=True))
    # norm is a handful of strides (huge concentration factor); li has
    # "many different strides" (paper), so its factor is smaller.
    min_factor = {"norm": 5.0, "li": 1.5}
    for bench in ("norm", "li"):
        table = result.table(f"occupancy summary for {bench}")
        fcm_row, dfcm_row = table.rows
        headers = table.headers
        fcm = dict(zip(headers, fcm_row))
        dfcm = dict(zip(headers, dfcm_row))
        # Same stride-access stream, radically different concentration.
        assert fcm["stride_accesses"] == dfcm["stride_accesses"]
        assert dfcm["entries_used"] * min_factor[bench] < fcm["entries_used"]
        assert dfcm["top16_share"] > 0.85
        assert dfcm["top16_share"] > fcm["top16_share"]
    print()
    print(result.render())
