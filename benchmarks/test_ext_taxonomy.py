"""Extension: idealised value-pattern taxonomy of the traces.

Connects the paper's motivation to its result: the idealised context
upper bound must clearly exceed the real finite FCM of Figure 10 (the
gap is the aliasing/table-pressure loss), and the stride upper bound
must be a substantial fraction -- that is the capacity the FCM wastes
on stride patterns and the DFCM reclaims.
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import run_experiment


def test_ext_taxonomy(benchmark, traces):
    result = run_once(
        benchmark,
        lambda: run_experiment("ext_taxonomy", traces=traces, fast=True))
    table = result.table("upper bounds")
    avg = dict(zip(table.headers, table.rows[-1]))
    assert avg["benchmark"] == "weighted_avg"

    # Stride patterns are a substantial fraction of all predictions --
    # the paper's premise that they crowd the level-2 table.
    assert avg["stride_ub"] > 0.4
    # Strides reach well beyond constants: the extra coverage is the
    # capacity the FCM wastes and the DFCM reclaims.
    assert avg["stride_ub"] > avg["constant_ub"] + 0.1
    # Context is more powerful than plain last-value repetition.
    assert avg["context_ub"] > avg["constant_ub"]
    # Disjoint shares plus residual partition the stream.
    partition = (avg["dj_constant"] + avg["dj_stride"]
                 + avg["dj_context"] + avg["residual"])
    assert abs(partition - 1.0) < 1e-9
    # The measured DFCM of Figure 10 (~.85 on these traces) exceeds
    # every *private-table* class bound -- evidence of constructive
    # cross-instruction sharing plus stride extrapolation; here we just
    # pin that the private bounds leave that much headroom.
    assert max(avg["constant_ub"], avg["stride_ub"],
               avg["context_ub"]) < 0.85

    print()
    print(result.render())
