"""Extension: the confidence estimator the paper suggests (section 4.2).

"These results suggest that the design of a confidence estimator for a
(D)FCM predictor should include tagging the level-2 table with some
information to track hash-aliasing [...] Some bits of a second hashing
function, orthogonal to the main one, seems to be a good choice for
the tag."  -- evaluated here, which the paper explicitly did not do.

Checked:
- every scheme's confident subset is more accurate than the overall
  prediction stream;
- the orthogonal-hash tag reaches far higher coverage than the
  saturating counter (it only rejects provenance mismatches);
- the counter reaches higher accuracy-when-confident (it demands a
  track record, not just a matching context);
- combining both is the strictest and most accurate gate.
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import run_experiment


def test_ext_confidence(benchmark, traces):
    result = run_once(
        benchmark,
        lambda: run_experiment("ext_confidence", traces=traces, fast=True))
    table = result.table("coverage")
    rows = {row[0]: dict(zip(table.headers, row)) for row in table.rows}

    for scheme in rows.values():
        assert scheme["accuracy_when_confident"] > scheme["overall"]

    counter = rows["counter(3b,thr=7)"]
    tag4 = rows["tag(4b)"]
    combined = rows["counter+tag(4b)"]
    assert tag4["coverage"] > counter["coverage"]
    assert counter["accuracy_when_confident"] > tag4["accuracy_when_confident"]
    assert combined["coverage"] <= min(tag4["coverage"], counter["coverage"])
    assert combined["accuracy_when_confident"] >= max(
        tag4["accuracy_when_confident"],
        counter["accuracy_when_confident"]) - 0.01

    print()
    print(result.render())
