"""Regenerates Figure 16: DFCM vs perfect hybrid predictors.

Paper claims checked:
- the difference between DFCM and a perfect STRIDE+FCM hybrid is small
  (the paper has DFCM marginally ahead; on these -O0-style traces the
  hybrid can be marginally ahead instead -- see EXPERIMENTS.md);
- a perfect STRIDE+DFCM hybrid adds only a few hundredths over plain
  DFCM: the DFCM already captures practically all stride patterns;
- both hybrids dominate the plain FCM.
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import run_experiment


def test_fig16(benchmark, traces):
    result = run_once(
        benchmark, lambda: run_experiment("fig16", traces=traces, fast=True))
    table = result.table("accuracy vs level-2 size")
    for row in table.rows:
        point = dict(zip(table.headers, row))
        assert abs(point["dfcm"] - point["stride+fcm"]) < 0.05
        gain = point["stride+dfcm"] - point["dfcm"]
        assert 0.0 <= gain <= 0.06
        assert point["stride+fcm"] > point["fcm"]
        assert point["stride+dfcm"] > point["fcm"]
    print()
    print(result.render())
