"""Extension: controlled pattern-mix sweep isolating the mechanism.

Real traces fix the stride/context ratio; synthetic traces let us
sweep it.  The paper's causal story -- stride patterns crowd the FCM's
level-2 table, and the DFCM removes exactly that pressure -- predicts:

- at stride share 0 (pure context) the DFCM ~ FCM (nothing to reclaim);
- the DFCM-minus-FCM gap grows monotonically with the stride share;
- the FCM *degrades* as strides increase (crowding), while the DFCM
  *improves* (strides are its easiest patterns);
- on *mixed* workloads the DFCM beats the plain stride predictor by a
  wide margin (it covers the context patterns too) -- which is the
  whole point of a single unified predictor.
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import run_experiment


def test_ext_mix(benchmark, traces):
    result = run_once(
        benchmark,
        lambda: run_experiment("ext_mix", traces=[], fast=True))
    table = result.table("accuracy vs stride share")
    rows = [dict(zip(table.headers, row)) for row in table.rows]
    rows.sort(key=lambda r: r["stride_share"])

    gaps = [row["dfcm_minus_fcm"] for row in rows]
    assert abs(gaps[0]) < 0.05            # pure context: no reclaimable loss
    assert all(a < b for a, b in zip(gaps, gaps[1:]))  # monotone growth
    assert gaps[-1] > 0.3                 # stride-heavy: massive gap

    fcm = [row["fcm"] for row in rows]
    dfcm = [row["dfcm"] for row in rows]
    assert fcm[0] > fcm[-1]               # crowding degrades the FCM
    assert dfcm[-1] > dfcm[0]             # strides are easy for the DFCM
    middle = rows[len(rows) // 2]         # a genuinely mixed workload
    assert middle["dfcm"] > middle["stride_pred"] + 0.1

    print()
    print(result.render())
