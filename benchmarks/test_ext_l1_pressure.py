"""Extension: level-1 sensitivity with a SPEC-sized static working set.

The MinC mini-kernels have a few hundred static instructions, which
collapses the paper's Figure-3 level-1 family (its curves separate up
to 2^14 entries).  A synthetic trace with thousands of static
instructions restores the shape, checked here:

- accuracy climbs monotonically with the level-1 size for both
  predictors while the static working set doesn't fit;
- it saturates once the table reaches the working-set size (the
  paper: "the prediction accuracy starts to saturate for a first
  level table with 2^14 entries");
- the DFCM stays ahead of the FCM at every level-1 size.
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import run_experiment


def test_ext_l1_pressure(benchmark, traces):
    result = run_once(
        benchmark,
        lambda: run_experiment("ext_l1_pressure", traces=[], fast=True))
    table = result.table("accuracy vs level-1 size")
    l1 = table.column("log2_l1")
    fcm = table.column("fcm")
    dfcm = table.column("dfcm")
    assert l1 == sorted(l1)
    assert all(a <= b + 1e-9 for a, b in zip(fcm, fcm[1:]))
    assert all(a <= b + 1e-9 for a, b in zip(dfcm, dfcm[1:]))
    # A starved level-1 table is crippling; growth is substantial.
    assert fcm[-1] > fcm[0] * 1.5
    assert dfcm[-1] > dfcm[0] * 1.5
    # The DFCM advantage holds across the whole family.
    assert all(d > f for f, d in zip(fcm, dfcm))
    print()
    print(result.render())
