"""The cluster control plane on the wire: OPEN_SESSION_AS /
ADOPT_SESSION / RELEASE_SESSION codecs and server dispatch."""

import pytest

from repro.core.spec import DFCMSpec
from repro.serve import protocol
from repro.serve.client import ServeClient, ServeError
from repro.serve.server import ServerThread


def workload(n, seed=0):
    pcs, values = [], []
    for i in range(n):
        pcs.append(0x400 + 4 * ((i + seed) % 7))
        values.append((11 * i + seed * 3 + (i % 4)) & 0xFFFFFFFF)
    return pcs, values


class TestCodecs:
    def test_open_session_as_round_trip(self):
        config = DFCMSpec(64, 256).to_config()
        body = protocol.encode_open_session_as(77, config, window=3)
        session, got_config, window = protocol.decode_open_session_as(body)
        assert session == 77
        assert got_config == config
        assert window == 3

    def test_open_session_as_is_a_prefixed_open_session(self):
        # The router builds OPEN_SESSION_AS from a client OPEN_SESSION
        # by prefixing 8 bytes -- the codec must agree with that.
        config = DFCMSpec(64, 256).to_config()
        open_body = protocol.encode_open_session(config, 0)
        as_body = protocol.encode_open_session_as(9, config, 0)
        assert as_body == protocol.encode_session_op(9) + open_body

    def test_control_frame_types_are_distinct(self):
        values = {protocol.FrameType.ADOPT_SESSION,
                  protocol.FrameType.RELEASE_SESSION,
                  protocol.FrameType.OPEN_SESSION_AS}
        assert len(values) == 3
        assert all(v < protocol.RESPONSE_BIT for v in values)


class TestOpenSessionAs:
    def test_explicit_id_is_honoured(self, tmp_path):
        spec = DFCMSpec(64, 256)
        with ServerThread(max_delay=0, state_dir=tmp_path) as server, \
                ServeClient("127.0.0.1", server.port) as client:
            sid = client.open_session_as(1234, spec)
            assert sid == 1234
            pcs, values = workload(50)
            _, hits = client.step_block(sid, pcs, values)
            assert client.close_session(sid)["hits"] == hits

    def test_id_counter_advances_past_dictated_ids(self, tmp_path):
        spec = DFCMSpec(64, 256)
        with ServerThread(max_delay=0, state_dir=tmp_path) as server, \
                ServeClient("127.0.0.1", server.port) as client:
            client.open_session_as(50, spec)
            assert client.open_session(spec) > 50

    def test_duplicate_id_is_rejected(self, tmp_path):
        spec = DFCMSpec(64, 256)
        with ServerThread(max_delay=0, state_dir=tmp_path) as server, \
                ServeClient("127.0.0.1", server.port) as client:
            client.open_session_as(7, spec)
            with pytest.raises(ServeError) as excinfo:
                client.open_session_as(7, spec)
            assert excinfo.value.code == protocol.ErrorCode.BAD_FRAME

    def test_zero_id_is_rejected(self, tmp_path):
        spec = DFCMSpec(64, 256)
        with ServerThread(max_delay=0, state_dir=tmp_path) as server, \
                ServeClient("127.0.0.1", server.port) as client:
            with pytest.raises(ServeError) as excinfo:
                client.open_session_as(0, spec)
            assert excinfo.value.code == protocol.ErrorCode.BAD_FRAME


class TestReleaseAdopt:
    def test_release_then_adopt_preserves_stream(self, tmp_path):
        """The migration barrier: RELEASE on one server, ADOPT on
        another sharing the state dir, stream bit-identical to an
        uninterrupted session."""
        spec = DFCMSpec(64, 256)
        pcs, values = workload(160)
        with ServerThread(max_delay=0, state_dir=tmp_path) as source, \
                ServerThread(max_delay=0, state_dir=tmp_path,
                             adopt_arenas=False) as target, \
                ServeClient("127.0.0.1", source.port) as src_client, \
                ServeClient("127.0.0.1", target.port) as dst_client:
            sid = src_client.open_session_as(42, spec)
            _, hits_a = src_client.step_block(sid, pcs[:80], values[:80])
            report = src_client.release_session(sid)
            assert report["session"] == 42
            # Source forgot it entirely.
            with pytest.raises(ServeError) as excinfo:
                src_client.step(sid, pcs[80], values[80])
            assert excinfo.value.code == protocol.ErrorCode.UNKNOWN_SESSION
            dst_client.adopt_session(sid)
            _, hits_b = dst_client.step_block(sid, pcs[80:], values[80:])

        with ServerThread(max_delay=0) as oracle, \
                ServeClient("127.0.0.1", oracle.port) as client:
            ref = client.open_session(spec)
            _, want = client.step_block(ref, pcs, values)
        assert hits_a + hits_b == want

    def test_adopt_is_idempotent(self, tmp_path):
        spec = DFCMSpec(64, 256)
        with ServerThread(max_delay=0, state_dir=tmp_path) as server, \
                ServeClient("127.0.0.1", server.port) as client:
            sid = client.open_session_as(5, spec)
            client.release_session(sid)
            first = client.adopt_session(sid)
            second = client.adopt_session(sid)
            assert first["session"] == second["session"] == 5

    def test_adopt_without_arena_is_unknown_session(self, tmp_path):
        with ServerThread(max_delay=0, state_dir=tmp_path) as server, \
                ServeClient("127.0.0.1", server.port) as client:
            with pytest.raises(ServeError) as excinfo:
                client.adopt_session(999)
            assert excinfo.value.code == protocol.ErrorCode.UNKNOWN_SESSION

    def test_release_unknown_session_is_unknown_session(self, tmp_path):
        with ServerThread(max_delay=0, state_dir=tmp_path) as server, \
                ServeClient("127.0.0.1", server.port) as client:
            with pytest.raises(ServeError) as excinfo:
                client.release_session(999)
            assert excinfo.value.code == protocol.ErrorCode.UNKNOWN_SESSION

    def test_scalar_session_cannot_release(self, tmp_path):
        # Windowed (scalar-mode) sessions have no arena shape.
        spec = DFCMSpec(64, 256)
        with ServerThread(max_delay=0, state_dir=tmp_path) as server, \
                ServeClient("127.0.0.1", server.port) as client:
            sid = client.open_session(spec, window=4)
            with pytest.raises(ServeError) as excinfo:
                client.release_session(sid)
            assert excinfo.value.code == protocol.ErrorCode.BAD_FRAME

    def test_without_state_dir_release_is_state_unavailable(self):
        spec = DFCMSpec(64, 256)
        with ServerThread(max_delay=0) as server, \
                ServeClient("127.0.0.1", server.port) as client:
            sid = client.open_session(spec)
            with pytest.raises(ServeError) as excinfo:
                client.release_session(sid)
            assert excinfo.value.code == \
                protocol.ErrorCode.STATE_UNAVAILABLE

    def test_release_counts_in_server_metrics(self, tmp_path):
        spec = DFCMSpec(64, 256)
        with ServerThread(max_delay=0, state_dir=tmp_path) as server, \
                ServeClient("127.0.0.1", server.port) as client:
            sid = client.open_session_as(3, spec)
            client.release_session(sid)
            client.adopt_session(sid)
            stats = client.stats()
            assert stats["releases_total"] == 1
