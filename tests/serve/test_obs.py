"""The observability endpoint, end to end over real sockets.

Covers the acceptance paths of the live-observability work: /metrics
is valid Prometheus 0.0.4 (parsed, not pattern-matched) and /healthz
answers while loadgen traffic is in flight; every request's trace id
shows up in span events and the slow-request sample; an induced
latency breach flips /healthz to degraded through the burn-rate
monitor; and the observability plumbing keeps batched throughput
within tolerance of a server without it.
"""

import json
import re
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.spec import DFCMSpec, StrideSpec
from repro.serve.client import ServeClient
from repro.serve.loadgen import run_loadgen
from repro.serve.server import ServerThread
from repro.serve.tracing import format_trace_id
from repro.telemetry import run as telemetry_run_module
from repro.telemetry.export import find_run, read_events
from repro.telemetry.slo import SLO
from repro.trace.trace import ValueTrace


def make_trace(n=300):
    pcs = np.tile(np.asarray([0x40, 0x44, 0x48], dtype=np.int64),
                  n // 3 + 1)
    values = (np.arange(n, dtype=np.int64) * 5) & 0xFFFFFFFF
    return ValueTrace("obs-test", pcs[:n], values[:n])


def http_get(port, path, timeout=5.0):
    """(status, content_type, body_text) for a GET against localhost."""
    url = f"http://127.0.0.1:{port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return (resp.status, resp.headers.get("Content-Type", ""),
                    resp.read().decode("utf-8"))
    except urllib.error.HTTPError as err:
        return (err.code, err.headers.get("Content-Type", ""),
                err.read().decode("utf-8"))


_SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>[^}]*)\})? '
    r'(?P<value>[0-9eE.+-]+|\+Inf|-Inf|NaN)$')
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(text):
    """Strict 0.0.4 parse: {name: {kind, samples: [(labels, value)]}}.

    Raises AssertionError on any line that is not a comment, a blank,
    or a well-formed sample -- the test's validity check *is* the
    parse.
    """
    metrics = {}
    types = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# TYPE"):
            _, _, name, kind = line.split(None, 3)
            types[name] = kind
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        assert match, f"unparseable exposition line: {line!r}"
        labels = dict(_LABEL_RE.findall(match.group("labels") or ""))
        name = match.group("name")
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in types:
                base = name[:-len(suffix)]
        assert base in types, f"sample {name} has no # TYPE header"
        metrics.setdefault(name, []).append(
            (labels, float(match.group("value"))))
    return metrics, types


class TestEndpointSurface:
    def test_routes_and_content_types(self):
        with ServerThread(max_delay=0, obs_port=0) as server:
            assert server.obs_port  # ephemeral port was bound
            status, ctype, body = http_get(server.obs_port, "/")
            assert status == 200 and "json" in ctype
            assert "/metrics" in json.loads(body)["endpoints"]
            status, ctype, _ = http_get(server.obs_port, "/metrics")
            assert status == 200
            assert ctype == "text/plain; version=0.0.4; charset=utf-8"
            for path in ("/healthz", "/slo", "/slow"):
                status, ctype, body = http_get(server.obs_port, path)
                assert status == 200 and "json" in ctype
                json.loads(body)

    def test_unknown_path_is_404(self):
        with ServerThread(max_delay=0, obs_port=0) as server:
            status, _, _ = http_get(server.obs_port, "/nope")
            assert status == 404

    def test_non_get_is_405(self):
        with ServerThread(max_delay=0, obs_port=0) as server:
            req = urllib.request.Request(
                f"http://127.0.0.1:{server.obs_port}/metrics",
                data=b"x", method="POST")
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(req, timeout=5)
            assert err.value.code == 405

    def test_no_obs_port_means_no_endpoint(self):
        with ServerThread(max_delay=0) as server:
            assert server.obs_port is None


class TestScrapeUnderTraffic:
    def test_metrics_and_healthz_answer_during_loadgen(self):
        """The acceptance path: scrape the live endpoint *while* the
        data plane is replaying a trace."""
        scrapes = []
        errors = []
        done = threading.Event()

        def poller(port):
            while not done.is_set():
                try:
                    _, _, text = http_get(port, "/metrics")
                    _, _, health = http_get(port, "/healthz")
                    scrapes.append((text, json.loads(health)))
                except Exception as exc:  # noqa: BLE001 - fails the test
                    errors.append(exc)
                    return
                time.sleep(0.01)

        with ServerThread(shards=2, max_delay=0.001,
                          obs_port=0) as server:
            thread = threading.Thread(target=poller,
                                      args=(server.obs_port,))
            thread.start()
            report = run_loadgen(DFCMSpec(256, 1024), make_trace(600),
                                 "127.0.0.1", server.port, mode="batched",
                                 block=64, verify=False)
            # One scrape strictly after the traffic, before shutdown.
            _, _, final_text = http_get(server.obs_port, "/metrics")
            _, _, final_health = http_get(server.obs_port, "/healthz")
            done.set()
            thread.join(timeout=10)

        assert not errors
        assert scrapes, "poller never completed a scrape"
        assert report["modes"]["batched"]["records"] == 600

        metrics, types = parse_prometheus(final_text)
        assert types["repro_serve_requests_total"] == "counter"
        assert types["repro_serve_request_seconds"] == "histogram"
        served = sum(v for labels, v
                     in metrics["repro_serve_requests_total"]
                     if labels["type"] == "step_block")
        assert served >= 600 / 64
        # Histogram invariants: +Inf bucket present and equal to count.
        buckets = [s for s in metrics["repro_serve_request_seconds_bucket"]
                   if s[0]["type"] == "step_block"]
        assert any(labels["le"] == "+Inf" for labels, _ in buckets)
        inf = sum(v for labels, v in buckets if labels["le"] == "+Inf")
        count = sum(v for labels, v
                    in metrics["repro_serve_request_seconds_count"]
                    if labels["type"] == "step_block")
        assert inf == count >= 1

        health = json.loads(final_health)
        assert health["status"] == "ok"
        assert health["records_served"] >= 600
        assert len(health["shards"]) == 2
        assert all(s["queue_depth"] >= 0 for s in health["shards"])

    def test_slo_report_has_live_percentiles(self):
        with ServerThread(max_delay=0, obs_port=0) as server, \
                ServeClient(port=server.port) as client:
            session = client.open_session(StrideSpec(64))
            for i in range(20):
                client.step(session, 0x40, i)
            _, _, body = http_get(server.obs_port, "/slo")
        slo = json.loads(body)
        assert slo["records_served"] == 20
        assert slo["latency"]["count"] >= 1
        assert slo["latency"]["p99_ms"] >= slo["latency"]["p50_ms"]
        names = [s["name"] for s in slo["slos"]]
        assert "step_latency_p99" in names and "queue_depth" in names

    def test_metrics_exemplars_opt_in(self):
        with ServerThread(max_delay=0, obs_port=0) as server, \
                ServeClient(port=server.port) as client:
            session = client.open_session(StrideSpec(64))
            client.step(session, 0x40, 7)
            _, _, strict = http_get(server.obs_port, "/metrics")
            _, _, annotated = http_get(server.obs_port,
                                       "/metrics?exemplars=1")
        assert "# {" not in strict
        parse_prometheus(strict)  # still strict 0.0.4
        assert re.search(r'# \{trace_id="[0-9a-f]{16}"\}', annotated)


class TestTraceVisibility:
    def test_trace_id_reaches_spans_and_slow_sample(self, tmp_path):
        run = telemetry_run_module.start_run(tmp_path, command="obs-test")
        try:
            with ServerThread(max_delay=0, obs_port=0) as server:
                with ServeClient(port=server.port) as client:
                    session = client.open_session(StrideSpec(64))
                    client.step(session, 0x40, 7)
                    step_trace = format_trace_id(client.last_trace_id)
                    assert client.last_trace_id != 0
            final = server.final_stats
        finally:
            telemetry_run_module.finish_run()

        # The slow sample (here: everything, k >> requests) has it.
        slow_ids = [e["trace_id"]
                    for e in final["slow_requests"]["slowest"]]
        assert step_trace in slow_ids
        # Every sampled request carries a nonzero trace id.
        assert all(re.fullmatch(r"[0-9a-f]{16}", t) and int(t, 16)
                   for t in slow_ids)

        spans = [e for e in read_events(find_run(tmp_path, run.run_id))
                 if e.get("type") == "span"
                 and e.get("name") == "serve.request"]
        assert spans, "no serve.request span events were emitted"
        by_trace = {s["attrs"]["trace_id"]: s for s in spans}
        assert step_trace in by_trace
        span = by_trace[step_trace]
        assert span["attrs"]["type"] == "step"
        assert span["attrs"]["status"] == "ok"
        assert "stages_ms" in span["attrs"]
        # Stage stamps were actually taken on the data path.
        assert {"queue", "fuse", "execute", "flush"} <= set(
            span["attrs"]["stages_ms"])

    def test_slow_endpoint_matches_final_sample(self):
        with ServerThread(max_delay=0, obs_port=0) as server:
            with ServeClient(port=server.port) as client:
                session = client.open_session(StrideSpec(64))
                for i in range(10):
                    client.step(session, 0x40, i)
                _, _, body = http_get(server.obs_port, "/slow")
        live = json.loads(body)
        assert live["observed"] >= 10
        for entry in live["slowest"]:
            assert entry["latency_ms"] >= 0
            assert re.fullmatch(r"[0-9a-f]{16}", entry["trace_id"])

    def test_trace_endpoint_serves_stored_spans(self):
        with ServerThread(max_delay=0, obs_port=0) as server:
            with ServeClient(port=server.port) as client:
                session = client.open_session(StrideSpec(64))
                client.step(session, 0x40, 7)
                step_trace = format_trace_id(client.last_trace_id)
                status, _, body = http_get(
                    server.obs_port, f"/trace/{step_trace}")
                assert status == 200
                lookup = json.loads(body)
                assert lookup["found"] is True
                assert lookup["trace_id"] == step_trace
                (span,) = lookup["spans"]
                assert span["source"] == "worker"
                assert span["type"] == "step"
                assert {"queue", "fuse", "execute", "flush"} <= set(
                    span["stages_ms"])
                # The dump lists recent spans; ?limit bounds it.
                _, _, body = http_get(server.obs_port, "/trace?limit=1")
                dump = json.loads(body)
                assert dump["retained"] == 1
                assert dump["stored"] >= 2  # open_session + step

    def test_trace_endpoint_unknown_id_and_bad_id(self):
        with ServerThread(max_delay=0, obs_port=0) as server:
            status, _, body = http_get(
                server.obs_port, "/trace/00000000000000ff")
            assert status == 200
            assert json.loads(body)["found"] is False
            status, _, _ = http_get(server.obs_port, "/trace/nope!")
            assert status == 400


class TestBurnRateDegrade:
    def test_latency_breach_flips_healthz_degraded(self):
        # A 0-second latency bound every data request must violate,
        # against a 50% objective: burn = 1/0.5 = 2 >= burn_rate in
        # both windows as soon as requests flow.
        slo = SLO(name="latency_breach", kind="latency", threshold=0.0,
                  objective=0.5, fast_window_s=5.0, slow_window_s=10.0,
                  burn_rate=1.0)
        with ServerThread(max_delay=0, obs_port=0, slos=[slo]) as server:
            with ServeClient(port=server.port) as client:
                session = client.open_session(StrideSpec(64))
                for i in range(10):
                    client.step(session, 0x40, i)
                health = self._poll_until_degraded(server.obs_port)
                assert health["status"] == "degraded"
                assert health["alerts"] == ["latency_breach"]
                _, _, slo_body = http_get(server.obs_port, "/slo")
                _, _, metrics_text = http_get(server.obs_port, "/metrics")
        final = server.final_stats
        report = json.loads(slo_body)
        assert report["healthy"] is False
        (status,) = report["slos"]
        assert status["alerting"] is True
        assert status["fast_burn"] >= 1.0
        metrics, _ = parse_prometheus(metrics_text)
        assert metrics["repro_serve_healthy"][0][1] == 0.0
        alerts = [v for labels, v
                  in metrics["repro_serve_slo_alerts_total"]
                  if labels["slo"] == "latency_breach"]
        assert alerts == [1.0]
        assert final["alerts"] == ["latency_breach"]

    @staticmethod
    def _poll_until_degraded(port, deadline_s=10.0):
        deadline = time.monotonic() + deadline_s
        while True:
            _, _, body = http_get(port, "/healthz")
            health = json.loads(body)
            if health["status"] == "degraded" \
                    or time.monotonic() >= deadline:
                return health
            time.sleep(0.02)

    def test_healthy_server_stays_ok(self):
        # Generous bounds: nothing should fire on a quiet local replay.
        with ServerThread(max_delay=0, obs_port=0) as server:
            with ServeClient(port=server.port) as client:
                session = client.open_session(StrideSpec(64))
                for i in range(10):
                    client.step(session, 0x40, i)
                _, _, body = http_get(server.obs_port, "/healthz")
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["alerts"] == []

    def test_empty_slo_list_disables_monitor(self):
        with ServerThread(max_delay=0, obs_port=0, slos=[]) as server:
            _, _, body = http_get(server.obs_port, "/slo")
            report = json.loads(body)
            assert report["slos"] == []
            assert report["healthy"] is True


class TestOverheadGuard:
    def test_observability_keeps_batched_throughput(self):
        """Tracing + SLO monitor + obs endpoint must cost < 5% batched
        throughput. Samples are taken in interleaved base/obs pairs and
        the guard compares best-vs-best, so machine-load drift during
        the test hits both sides equally; extra pairs are only taken if
        the guard has not yet passed (flake armour, not gate-loosening).
        """
        spec = DFCMSpec(256, 1024)
        trace = make_trace(12_000)

        def rate(**kwargs):
            with ServerThread(shards=1, max_delay=0, **kwargs) as server:
                report = run_loadgen(spec, trace, "127.0.0.1",
                                     server.port, mode="batched",
                                     block=512, verify=False)
            return report["modes"]["batched"]["records_per_s"]

        base = observed = 0.0
        for _ in range(6):
            base = max(base, rate())
            observed = max(observed, rate(obs_port=0))
            if observed >= 0.95 * base:
                break
        assert observed >= 0.95 * base, (
            f"observability overhead too high: {observed:.0f} rec/s "
            f"with obs vs {base:.0f} rec/s without")
