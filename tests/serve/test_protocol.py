"""Wire-format round trips and rejection paths."""

import pytest

from repro.serve import protocol
from repro.serve.protocol import (Frame, FrameType, ProtocolError,
                                  decode_frame, encode_frame)


def round_trip(frame_type, request_id, body=b""):
    payload = encode_frame(frame_type, request_id, body)
    length = protocol.read_length(payload[:4])
    assert length == len(payload) - 4
    return decode_frame(payload[4:])


class TestFrames:
    def test_round_trip(self):
        frame = round_trip(FrameType.STEP, 42, b"abc")
        assert frame == Frame(FrameType.STEP, 42, b"abc")
        assert not frame.is_response

    def test_response_bit(self):
        frame = round_trip(FrameType.STEP | protocol.RESPONSE_BIT, 1, b"")
        assert frame.is_response
        assert frame.request_type == FrameType.STEP

    def test_error_frames_are_responses(self):
        frame = round_trip(FrameType.ERROR, 7,
                           protocol.encode_error(3, "nope"))
        assert frame.is_response
        assert protocol.decode_error(frame.body) == (3, "nope")

    def test_version_mismatch_rejected(self):
        payload = bytearray(encode_frame(FrameType.STEP, 1, b""))
        payload[4] = protocol.PROTOCOL_VERSION + 1
        with pytest.raises(ProtocolError, match="version"):
            decode_frame(bytes(payload[4:]))

    def test_truncated_header_rejected(self):
        with pytest.raises(ProtocolError, match="truncated"):
            decode_frame(b"\x01")

    def test_oversized_length_rejected(self):
        import struct
        prefix = struct.pack("!I", protocol.MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError, match="exceeds"):
            protocol.read_length(prefix)

    def test_undersized_length_rejected(self):
        import struct
        with pytest.raises(ProtocolError, match="below"):
            protocol.read_length(struct.pack("!I", 2))

    def test_oversized_body_rejected_at_encode(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame(FrameType.STEP, 1,
                         b"\x00" * protocol.MAX_FRAME_BYTES)


class TestVersion2:
    def test_default_encode_is_v2(self):
        frame = round_trip(FrameType.STEP, 1, b"x")
        assert frame.version == protocol.PROTOCOL_VERSION == 2

    def test_v2_trace_id_round_trip(self):
        payload = encode_frame(FrameType.STEP, 7, b"abc",
                               trace_id=0xDEADBEEFCAFEF00D)
        frame = decode_frame(payload[4:])
        assert frame.trace_id == 0xDEADBEEFCAFEF00D
        assert frame.version == 2
        assert frame.body == b"abc"

    def test_v1_round_trip_has_no_trace_id(self):
        payload = encode_frame(FrameType.STEP, 7, b"abc",
                               version=protocol.PROTOCOL_VERSION_V1)
        frame = decode_frame(payload[4:])
        assert frame.version == 1
        assert frame.trace_id == 0
        assert frame.body == b"abc"

    def test_v1_frame_is_8_bytes_smaller(self):
        v1 = encode_frame(FrameType.STEP, 1, b"", version=1)
        v2 = encode_frame(FrameType.STEP, 1, b"", version=2)
        assert len(v2) - len(v1) == 8

    def test_trace_id_masked_to_64_bits(self):
        payload = encode_frame(FrameType.STEP, 1, b"", trace_id=1 << 70)
        assert decode_frame(payload[4:]).trace_id == 0

    def test_truncated_v2_header_rejected(self):
        payload = encode_frame(FrameType.STEP, 1, b"", trace_id=5)
        # Cut into the trace-id field: header says v2 but bytes are short.
        with pytest.raises(ProtocolError, match="truncated"):
            decode_frame(payload[4:12])

    def test_unsupported_encode_version_rejected(self):
        with pytest.raises(ProtocolError, match="version"):
            encode_frame(FrameType.STEP, 1, b"", version=3)

    def test_both_versions_in_supported_tuple(self):
        assert protocol.SUPPORTED_VERSIONS == (1, 2)


class _FakeSocket:
    """Replays a byte string through recv_into(), then reports EOF."""

    def __init__(self, data: bytes, chunk: int = 1 << 16):
        self._data = data
        self._chunk = chunk

    def recv_into(self, buffer):
        n = min(len(buffer), self._chunk, len(self._data))
        buffer[:n] = self._data[:n]
        self._data = self._data[n:]
        return n


class TestBlockingRead:
    def test_reads_frame_in_small_chunks(self):
        payload = encode_frame(FrameType.STEP, 3, b"xyz")
        frame = protocol.read_frame_blocking(_FakeSocket(payload, chunk=1))
        assert frame == Frame(FrameType.STEP, 3, b"xyz")

    def test_clean_eof_returns_none(self):
        assert protocol.read_frame_blocking(_FakeSocket(b"")) is None

    def test_eof_mid_length_prefix_raises(self):
        payload = encode_frame(FrameType.STEP, 3, b"xyz")
        with pytest.raises(ProtocolError, match="mid-frame"):
            protocol.read_frame_blocking(_FakeSocket(payload[:2]))

    def test_eof_after_length_prefix_raises(self):
        payload = encode_frame(FrameType.STEP, 3, b"xyz")
        with pytest.raises(ProtocolError, match="mid-frame"):
            protocol.read_frame_blocking(_FakeSocket(payload[:4]))

    def test_eof_mid_payload_raises(self):
        payload = encode_frame(FrameType.STEP, 3, b"xyz")
        with pytest.raises(ProtocolError, match="mid-frame"):
            protocol.read_frame_blocking(_FakeSocket(payload[:-1]))


class TestBodies:
    def test_open_session(self):
        config = {"family": "dfcm", "l1_entries": 64}
        body = protocol.encode_open_session(config, 4)
        assert protocol.decode_open_session(body) == (config, 4)

    def test_open_session_truncated(self):
        body = protocol.encode_open_session({"family": "fcm"}, 0)
        with pytest.raises(ProtocolError):
            protocol.decode_open_session(body[:-2])

    def test_session_ops(self):
        assert protocol.decode_session_op(
            protocol.encode_session_op(9), 0) == (9,)
        assert protocol.decode_session_op(
            protocol.encode_session_op(9, 0x40), 1) == (9, 0x40)
        assert protocol.decode_session_op(
            protocol.encode_session_op(9, 0x40, 123), 2) == (9, 0x40, 123)

    def test_session_op_masks_to_32_bits(self):
        body = protocol.encode_session_op(1, -4, 1 << 33)
        assert protocol.decode_session_op(body, 2) == (1, 0xFFFFFFFC, 0)

    def test_step_block(self):
        body = protocol.encode_step_block(5, [1, 2, 3], [7, 8, 9])
        assert protocol.decode_step_block(body) == (5, [1, 2, 3], [7, 8, 9])

    def test_step_block_empty(self):
        body = protocol.encode_step_block(5, [], [])
        assert protocol.decode_step_block(body) == (5, [], [])

    def test_step_block_length_mismatch(self):
        with pytest.raises(ProtocolError):
            protocol.encode_step_block(5, [1], [])

    def test_step_block_truncated(self):
        body = protocol.encode_step_block(5, [1, 2], [3, 4])
        with pytest.raises(ProtocolError):
            protocol.decode_step_block(body[:-1])

    def test_block_result(self):
        body = protocol.encode_block_result([10, 20], 1)
        assert protocol.decode_block_result(body) == ([10, 20], 1)

    def test_json_body(self):
        payload = {"a": 1, "b": [1, 2]}
        assert protocol.decode_json_body(
            protocol.encode_json_body(payload)) == payload

    def test_json_body_truncated(self):
        body = protocol.encode_json_body({"a": 1})
        with pytest.raises(ProtocolError):
            protocol.decode_json_body(body[:-1])

    def test_scalar_results(self):
        assert protocol.decode_u32(protocol.encode_u32(7)) == 7
        assert protocol.decode_u8(protocol.encode_u8(1)) == 1
        assert protocol.decode_step_result(
            protocol.encode_step_result(99, 1)) == (99, 1)
