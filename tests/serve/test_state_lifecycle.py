"""Durable session state: snapshot/restore, LRU spill, restart parity.

The contract under test: a session round-trips through its arena
bit-identically (counts AND tables); the LRU evictor spills cold
sessions and the resolver reloads them transparently -- the client
sees zero protocol errors on the happy path; a drained server's
sessions survive into a fresh process on the same state directory;
and the state-version gate turns a mixed-deploy restore into an
explicit ``STATE_VERSION`` error instead of misread tables.
"""

import numpy as np
import pytest

from repro.core.spec import DFCMSpec, StrideSpec, spec_from_config
from repro.core.state import (STATE_VERSION, ArenaStore, open_arena,
                              write_arena)
from repro.serve import protocol
from repro.serve.client import ServeClient, ServeError
from repro.serve.server import ServerThread
from repro.serve.session import Session


def workload(n, seed=0):
    pcs, values = [], []
    for i in range(n):
        pcs.append(0x400 + 4 * ((i + seed) % 7))
        values.append((11 * i + seed * 3 + (i % 4)) & 0xFFFFFFFF)
    return pcs, values


class TestSessionSnapshotRestore:
    def test_round_trip_through_store_is_bit_identical(self, tmp_path):
        spec = DFCMSpec(64, 256)
        session = Session(1, spec)
        pcs, values = workload(120)
        session.step_block(pcs[:80], values[:80])
        session.predict(0x400)  # leave an outstanding prediction

        store = ArenaStore(tmp_path)
        arrays, meta = session.snapshot()
        store.save(1, spec.to_config(), arrays, meta)
        arena = store.load(1)
        restored = Session.restore(
            1, spec_from_config(arena.spec_config), arena.state(),
            arena.meta)

        assert restored.predictions == session.predictions
        assert restored.outcomes == session.outcomes
        assert restored.hits == session.hits
        assert restored.outstanding_predictions() == \
            session.outstanding_predictions()
        assert restored.recent_accuracy() == session.recent_accuracy()
        # Identical futures: both halves continue in lockstep.
        rest = (pcs[80:], values[80:])
        want_pred, want_hits = session.step_block(*rest)
        got_pred, got_hits = restored.step_block(*rest)
        assert list(got_pred) == list(want_pred)
        assert got_hits == want_hits
        for key, arr in session.table_state().items():
            np.testing.assert_array_equal(restored.table_state()[key], arr)

    def test_outstanding_outcome_scores_after_restore(self, tmp_path):
        spec = StrideSpec(64)
        session = Session(1, spec)
        predicted = session.predict(0x400)
        store = ArenaStore(tmp_path)
        store.save(1, spec.to_config(), *session.snapshot())
        arena = store.load(1)
        restored = Session.restore(1, spec, arena.state(), arena.meta)
        assert restored.outcome(0x400, predicted) == 1
        assert restored.outcome(0x400, 1) == Session.NO_PREDICTION

    def test_scalar_session_is_not_spillable(self):
        windowed = Session(1, DFCMSpec(64, 256), window=4)
        assert not windowed.spillable
        with pytest.raises(ValueError, match="scalar-mode"):
            windowed.snapshot()

    def test_restore_refuses_scalar_shape(self):
        with pytest.raises(ValueError, match="does not restore"):
            Session.restore(1, DFCMSpec(64, 256), {}, {"window": 4})


class TestSnapshotFrame:
    def test_snapshot_writes_arena_and_session_keeps_serving(
            self, tmp_path):
        spec = DFCMSpec(64, 256)
        reference = Session(0, spec)
        with ServerThread(max_delay=0, state_dir=tmp_path) as server, \
                ServeClient(port=server.port) as client:
            session = client.open_session(spec)
            pcs, values = workload(40)
            half = (pcs[:20], values[:20])
            assert client.step_block(session, *half) == \
                tuple_of(reference.step_block(*half))
            report = client.snapshot(session)
            assert report["schema"] == 1
            assert report["session"] == session
            assert report["state_version"] == STATE_VERSION
            store = ArenaStore(tmp_path)
            assert store.session_ids() == [session]
            # The barrier does not stop the session.
            rest = (pcs[20:], values[20:])
            assert client.step_block(session, *rest) == \
                tuple_of(reference.step_block(*rest))
            stats = client.stats(0)
            assert stats["snapshots_total"] == 1

    def test_snapshot_without_state_dir_is_state_unavailable(self):
        with ServerThread(max_delay=0) as server, \
                ServeClient(port=server.port) as client:
            session = client.open_session(DFCMSpec(64, 256))
            with pytest.raises(ServeError) as err:
                client.snapshot(session)
            assert err.value.code == protocol.ErrorCode.STATE_UNAVAILABLE

    def test_snapshot_unknown_session(self, tmp_path):
        with ServerThread(max_delay=0, state_dir=tmp_path) as server, \
                ServeClient(port=server.port) as client:
            with pytest.raises(ServeError) as err:
                client.snapshot(999)
            assert err.value.code == protocol.ErrorCode.UNKNOWN_SESSION

    def test_snapshot_scalar_session_is_bad_frame(self, tmp_path):
        with ServerThread(max_delay=0, state_dir=tmp_path) as server, \
                ServeClient(port=server.port) as client:
            session = client.open_session(DFCMSpec(64, 256), window=4)
            with pytest.raises(ServeError) as err:
                client.snapshot(session)
            assert err.value.code == protocol.ErrorCode.BAD_FRAME


class TestLRUEviction:
    def test_spill_and_transparent_reload_under_load(self, tmp_path):
        spec = DFCMSpec(64, 256)
        references = {}
        with ServerThread(shards=2, max_delay=0, state_dir=tmp_path,
                          max_resident=1) as server:
            with ServeClient(port=server.port) as client:
                sessions = [client.open_session(spec) for _ in range(3)]
                for sid in sessions:
                    references[sid] = Session(0, spec)
                # Round-robin across sessions: with one resident slot,
                # almost every touch reloads a spilled session.  The
                # happy path must stay error-free and bit-identical.
                for i in range(30):
                    sid = sessions[i % 3]
                    pcs, values = workload(5, seed=i)
                    got = client.step_block(sid, pcs, values)
                    want = references[sid].step_block(pcs, values)
                    assert got == tuple_of(want)
                stats = client.stats(0)
                assert stats["sessions_resident"] <= 1
                assert stats["sessions_open"] == 3
                assert stats["evictions_total"] >= 2
                assert stats["reloads_total"] >= 2
                for sid in sessions:
                    closed = client.close_session(sid)
                    assert closed["hits"] == references[sid].hits
        # Every request above succeeded (an ERROR frame raises
        # ServeError), so the spill/reload path served with zero
        # protocol errors; nothing was left behind on close.
        assert ArenaStore(tmp_path).session_ids() == []

    def test_scalar_sessions_never_evict(self, tmp_path):
        with ServerThread(max_delay=0, state_dir=tmp_path,
                          max_resident=1) as server, \
                ServeClient(port=server.port) as client:
            scalar = [client.open_session(DFCMSpec(64, 256), window=2)
                      for _ in range(3)]
            for sid in scalar:
                client.step(sid, 0x400, 7)
            stats = client.stats(0)
            assert stats["sessions_resident"] == 3
            assert stats["evictions_total"] == 0
            assert ArenaStore(tmp_path).session_ids() == []

    def test_close_deletes_the_arena(self, tmp_path):
        with ServerThread(max_delay=0, state_dir=tmp_path) as server, \
                ServeClient(port=server.port) as client:
            session = client.open_session(DFCMSpec(64, 256))
            client.step(session, 0x400, 7)
            client.snapshot(session)
            assert ArenaStore(tmp_path).session_ids() == [session]
            client.close_session(session)
            assert ArenaStore(tmp_path).session_ids() == []

    def test_max_resident_validation(self, tmp_path):
        from repro.serve.server import PredictionServer
        with pytest.raises(ValueError, match="max_resident"):
            PredictionServer(state_dir=tmp_path, max_resident=0)


class TestRestartParity:
    def test_drain_spills_and_a_new_process_resumes(self, tmp_path):
        spec = DFCMSpec(64, 256)
        pcs, values = workload(200, seed=3)
        reference = Session(0, spec)

        with ServerThread(shards=2, max_delay=0,
                          state_dir=tmp_path) as first:
            with ServeClient(port=first.port) as client:
                session = client.open_session(spec)
                first_half = (pcs[:100], values[:100])
                got = client.step_block(session, *first_half)
                assert got == tuple_of(reference.step_block(*first_half))
        # Graceful drain spilled the open session instead of dropping it.
        assert first.final_stats["sessions_spilled_on_drain"] == 1
        assert ArenaStore(tmp_path).session_ids() == [session]

        with ServerThread(shards=2, max_delay=0,
                          state_dir=tmp_path) as second:
            with ServeClient(port=second.port) as client:
                stats = client.stats(0)
                assert stats["sessions_open"] == 1
                assert stats["sessions_spilled"] == 1
                rest = (pcs[100:], values[100:])
                got = client.step_block(session, *rest)
                assert got == tuple_of(reference.step_block(*rest))
                closed = client.close_session(session)
                assert closed["hits"] == reference.hits
                assert closed["predictions"] == reference.predictions
                # New sessions never collide with adopted ids.
                assert client.open_session(spec) > session

    def test_adopted_tables_match_offline_bit_for_bit(self, tmp_path):
        spec = DFCMSpec(64, 256)
        pcs, values = workload(150, seed=5)
        with ServerThread(max_delay=0, state_dir=tmp_path) as first:
            with ServeClient(port=first.port) as client:
                session = client.open_session(spec)
                client.step_block(session, pcs[:75], values[:75])

        with ServerThread(max_delay=0, state_dir=tmp_path) as second:
            with ServeClient(port=second.port) as client:
                client.step_block(session, pcs[75:], values[75:])
                client.snapshot(session)

        offline = Session(0, spec)
        offline.step_block(pcs, values)
        arena = open_arena(ArenaStore(tmp_path).path_for(session))
        for key, want in offline.table_state().items():
            np.testing.assert_array_equal(arena.table_state()[key], want)


class TestStateVersionGate:
    def test_stale_arena_refuses_with_state_version_error(self, tmp_path):
        spec = DFCMSpec(64, 256)
        donor = Session(1, spec)
        donor.step_block(*workload(30))
        arrays, meta = donor.snapshot()
        store = ArenaStore(tmp_path)
        write_arena(store.path_for(1), spec.to_config(), arrays, meta,
                    state_version=STATE_VERSION + 1)

        with ServerThread(max_delay=0, state_dir=tmp_path) as server, \
                ServeClient(port=server.port) as client:
            assert client.stats(0)["sessions_spilled"] == 1
            with pytest.raises(ServeError) as err:
                client.step(1, 0x400, 7)
            assert err.value.code == protocol.ErrorCode.STATE_VERSION
            assert f"v{STATE_VERSION + 1}" in err.value.message
            # The arena was not quarantined: the old deploy still owns it.
            assert store.session_ids() == [1]


def tuple_of(step_block_result):
    """Normalise a Session.step_block result for == against the wire."""
    predicted, hits = step_block_result
    return list(predicted), hits
