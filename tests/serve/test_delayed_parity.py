"""Served windowed (delayed-update) sessions vs the offline harness.

The acceptance bar for the service: a session opened with window W
must produce bit-identical hit counts to the offline
``DelayedSpec(spec, W)`` replay -- the paper's delayed-update
experiment (section 4.5) served online.
"""

import numpy as np
import pytest

from repro.core.spec import DFCMSpec, DelayedSpec, FCMSpec
from repro.harness.simulate import measure_accuracy
from repro.serve.client import ServeClient
from repro.serve.server import ServerThread
from repro.trace.trace import ValueTrace

RECORDS = 400
WINDOWS = (1, 4, 16)
SPECS = (FCMSpec(64, 256), DFCMSpec(64, 256))


@pytest.fixture(scope="module")
def trace():
    """A deterministic mixed workload: strides, repeats, and noise."""
    rng = np.random.default_rng(20010127)  # HPCA 2001
    pcs = rng.choice([0x400, 0x404, 0x408, 0x40C], size=RECORDS)
    values = np.where(
        pcs == 0x400, np.arange(RECORDS) * 8,          # strided
        np.where(pcs == 0x404, 7,                      # constant
                 rng.integers(0, 50, size=RECORDS)))   # small-range noise
    return ValueTrace("parity", pcs.astype(np.int64),
                      values.astype(np.int64))


@pytest.fixture(scope="module")
def server():
    with ServerThread(shards=2, max_delay=0.001) as thread:
        yield thread


def offline_hits(spec, window, trace):
    return measure_accuracy(DelayedSpec(spec, window), trace).correct


@pytest.mark.parametrize("window", WINDOWS)
@pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.family)
class TestWindowedParity:
    def test_step_path(self, server, trace, spec, window):
        with ServeClient(port=server.port) as client:
            session = client.open_session(spec, window=window)
            hits = sum(
                client.step(session, int(pc), int(value))[1]
                for pc, value in zip(trace.pcs, trace.values))
            stats = client.close_session(session)
        assert hits == offline_hits(spec, window, trace)
        assert stats["hits"] == hits
        assert stats["window"] == window

    def test_step_block_path(self, server, trace, spec, window):
        pcs = [int(pc) for pc in trace.pcs]
        values = [int(v) for v in trace.values]
        with ServeClient(port=server.port) as client:
            session = client.open_session(spec, window=window)
            hits = 0
            for start in range(0, len(pcs), 64):
                _, block_hits = client.step_block(
                    session, pcs[start:start + 64],
                    values[start:start + 64])
                hits += block_hits
            # The in-flight window holds the last W updates unapplied,
            # exactly like the offline wrapper's unflushed tail.
            assert client.flush(session) == window
            client.close_session(session)
        assert hits == offline_hits(spec, window, trace)


@pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.family)
def test_window_zero_matches_undelayed_offline(server, trace, spec):
    """window=0 engine-mode sessions equal the plain offline replay."""
    with ServeClient(port=server.port) as client:
        session = client.open_session(spec, window=0)
        pcs = [int(pc) for pc in trace.pcs]
        values = [int(v) for v in trace.values]
        _, hits = client.step_block(session, pcs, values)
        stats = client.close_session(session)
    assert stats["mode"] == "engine"
    assert hits == measure_accuracy(spec, trace).correct


@pytest.mark.parametrize("window", (1, 4))
def test_windowed_beats_or_trails_consistently(trace, window):
    """Sanity: the delayed replay is deterministic across runs."""
    spec = DFCMSpec(64, 256)
    assert offline_hits(spec, window, trace) == \
        offline_hits(spec, window, trace)
