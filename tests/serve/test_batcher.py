"""MicroBatcher mechanics: batching, fusion, futures, backpressure."""

import asyncio

import pytest

from repro.core.spec import StrideSpec
from repro.serve.batcher import MicroBatcher, WorkItem
from repro.serve.session import Session


def run(coro):
    return asyncio.run(coro)


def make_item(loop, session_id, *, run_fn=None, fuse_key=None,
              pcs=(), values=()):
    return WorkItem(session_id=session_id, future=loop.create_future(),
                    run=run_fn, fuse_key=fuse_key,
                    pcs=list(pcs), values=list(values))


class TestValidation:
    def test_bad_max_batch(self):
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(max_batch=0)

    def test_bad_max_delay(self):
        with pytest.raises(ValueError, match="max_delay"):
            MicroBatcher(max_delay=-1)

    def test_bad_queue_depth(self):
        with pytest.raises(ValueError, match="queue_depth"):
            MicroBatcher(queue_depth=0)


class TestNextBatch:
    def test_collects_everything_available(self):
        async def body():
            loop = asyncio.get_running_loop()
            batcher = MicroBatcher(max_batch=64, max_delay=0)
            for i in range(5):
                await batcher.submit(make_item(loop, i))
            batch = await batcher.next_batch()
            assert [item.session_id for item in batch] == [0, 1, 2, 3, 4]
            assert batcher.batches == 1
            assert batcher.items == 5
        run(body())

    def test_caps_at_max_batch(self):
        async def body():
            loop = asyncio.get_running_loop()
            batcher = MicroBatcher(max_batch=3, max_delay=0)
            for i in range(5):
                await batcher.submit(make_item(loop, i))
            assert len(await batcher.next_batch()) == 3
            assert len(await batcher.next_batch()) == 2
        run(body())

    def test_waits_max_delay_for_stragglers(self):
        async def body():
            loop = asyncio.get_running_loop()
            batcher = MicroBatcher(max_batch=8, max_delay=0.2)

            async def straggler():
                await asyncio.sleep(0.01)
                await batcher.submit(make_item(loop, 2))

            await batcher.submit(make_item(loop, 1))
            task = asyncio.ensure_future(straggler())
            batch = await batcher.next_batch()
            await task
            assert len(batch) == 2
        run(body())

    def test_zero_delay_returns_immediately(self):
        async def body():
            loop = asyncio.get_running_loop()
            batcher = MicroBatcher(max_batch=8, max_delay=0)
            await batcher.submit(make_item(loop, 1))
            assert len(await batcher.next_batch()) == 1
        run(body())


class TestFusion:
    def test_adjacent_matching_keys_fuse(self):
        loop = asyncio.new_event_loop()
        try:
            items = [make_item(loop, 1, fuse_key="step"),
                     make_item(loop, 1, fuse_key="step"),
                     make_item(loop, 1, run_fn=lambda s: "fence"),
                     make_item(loop, 1, fuse_key="step")]
            runs = MicroBatcher._fuse_runs(items)
            assert [len(r) for r in runs] == [2, 1, 1]
        finally:
            loop.close()

    def test_sessions_group_independently(self):
        loop = asyncio.new_event_loop()
        try:
            batch = [make_item(loop, 1), make_item(loop, 2),
                     make_item(loop, 1)]
            grouped = MicroBatcher._by_session(batch)
            assert [i.session_id for i in grouped[1]] == [1, 1]
            assert len(grouped[2]) == 1
        finally:
            loop.close()


class TestExecute:
    def test_fused_execution_matches_sequential(self):
        async def body():
            loop = asyncio.get_running_loop()
            batcher = MicroBatcher()
            session = Session(1, StrideSpec(64))
            reference = Session(2, StrideSpec(64))
            items = [
                make_item(loop, 1, fuse_key="step", pcs=[4, 8],
                          values=[10, 20]),
                make_item(loop, 1, fuse_key="step", pcs=[4],
                          values=[17]),
            ]
            batcher.execute(items, {1: session})
            expected = [reference.step_block([4, 8], [10, 20]),
                        reference.step_block([4], [17])]
            got = [item.future.result() for item in items]
            for (got_pred, got_hits), (want_pred, want_hits) in zip(got,
                                                                    expected):
                assert list(got_pred) == list(want_pred)
                assert got_hits == want_hits
            assert batcher.fused_records == 3
        run(body())

    def test_run_items_receive_session(self):
        async def body():
            loop = asyncio.get_running_loop()
            batcher = MicroBatcher()
            session = Session(5, StrideSpec(64))
            item = make_item(loop, 5, run_fn=lambda s: s.session_id)
            batcher.execute([item], {5: session})
            assert item.future.result() == 5
        run(body())

    def test_exception_lands_on_futures_not_worker(self):
        async def body():
            loop = asyncio.get_running_loop()
            batcher = MicroBatcher()
            bad = make_item(loop, 9, fuse_key="step", pcs=[1], values=[2])
            ok = make_item(loop, 1, fuse_key="step", pcs=[4], values=[7])
            batcher.execute([bad, ok], {1: Session(1, StrideSpec(64))})
            with pytest.raises(KeyError):
                bad.future.result()
            predicted, _hits = ok.future.result()
            assert len(predicted) == 1
        run(body())

    def test_cancelled_futures_are_skipped(self):
        async def body():
            loop = asyncio.get_running_loop()
            batcher = MicroBatcher()
            item = make_item(loop, 1, fuse_key="step", pcs=[4], values=[7])
            item.future.cancel()
            batcher.execute([item], {1: Session(1, StrideSpec(64))})
            assert item.future.cancelled()
        run(body())


class TestDrain:
    def test_drain_waits_for_task_done(self):
        async def body():
            loop = asyncio.get_running_loop()
            batcher = MicroBatcher(max_delay=0)
            await batcher.submit(make_item(loop, 1))
            await batcher.submit(make_item(loop, 2))

            async def worker():
                batch = await batcher.next_batch()
                batcher.task_done(len(batch))

            task = asyncio.ensure_future(worker())
            pending = await batcher.drain()
            await task
            assert pending == 2
            assert batcher.qsize() == 0
        run(body())
