"""Scaling loadgen: report shape, parity, and the bench-history gate.

The scaling run itself is expensive (it spawns a fleet per point), so
one module-scoped run feeds every report-shape test; the history /
diff tests then work on that report plus synthetic mutations.
"""

import copy
import json

import numpy as np
import pytest

from repro.core.spec import DFCMSpec
from repro.harness import bench
from repro.serve.cluster.loadgen import render_scaling, run_scaling_loadgen
from repro.trace.trace import ValueTrace


def make_trace(n=600):
    pcs = (0x400 + (np.arange(n) % 13) * 4).astype(np.uint32)
    values = ((np.arange(n) * 3) % 97).astype(np.uint32)
    return ValueTrace("scaling-test", pcs, values)


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    state_dir = tmp_path_factory.mktemp("scaling-state")
    return run_scaling_loadgen(DFCMSpec(64, 256), make_trace(),
                               workers=(1, 2), sessions=2, block=128,
                               state_dir=str(state_dir), max_delay=0)


FAKE_BENCH = {
    "mode": "fast", "anchor": None, "python": "x", "machine": "y",
    "families": [{"family": "dfcm", "batch_records_per_sec": 100.0,
                  "scalar_records_per_sec": 10.0, "speedup": 10.0}],
    "suite": {"speedup": 10.0},
}


class TestScalingReport:
    def test_shape(self, report):
        assert report["schema"] == 1
        assert report["kind"] == "cluster_scaling"
        assert report["sessions"] == 2
        assert [p["workers"] for p in report["points"]] == [1, 2]
        for point in report["points"]:
            assert point["records"] == 600 * 2
            assert point["records_per_s"] > 0
            assert {"p50_ms", "p90_ms", "p99_ms"} <= \
                point["latency"].keys()

    def test_every_point_matches_offline(self, report):
        assert report["parity_ok"] is True
        assert all(p["parity_ok"] for p in report["points"])
        hits = {h for p in report["points"]
                for h in p["session_hits"].values()}
        assert len(hits) == 1  # fleet size never changes the answer
        assert hits == {report["points"][0]["offline_hits"]}

    def test_speedup_is_largest_over_single(self, report):
        p1 = next(p for p in report["points"] if p["workers"] == 1)
        p2 = next(p for p in report["points"] if p["workers"] == 2)
        assert report["speedup"] == round(
            p2["records_per_s"] / p1["records_per_s"], 2)
        assert report["speedup_workers"] == 2

    def test_no_losses_during_clean_runs(self, report):
        for point in report["points"]:
            assert point["sessions_lost_total"] == 0

    def test_render_scaling_table(self, report):
        text = render_scaling(report)
        assert "workers" in text and "rec/s" in text
        assert "ok" in text and "MISMATCH" not in text

    def test_scaling_gate_failure_is_reported(self, tmp_path):
        gated = run_scaling_loadgen(DFCMSpec(64, 256), make_trace(200),
                                    workers=(1, 2), sessions=1,
                                    block=64, state_dir=str(tmp_path),
                                    min_scaling=100.0, max_delay=0)
        # Nothing scales 100x -- the gate must say so without raising
        # (callers decide the exit code).
        assert gated["scaling_ok"] is False
        assert gated["min_scaling"] == 100.0
        assert gated["parity_ok"] is True


class TestClusterHistory:
    def test_entry_shape(self, report):
        entry = bench.cluster_history_entry(report)
        assert entry["kind"] == "cluster_scaling"
        assert set(entry["points"]) == {"1", "2"}
        assert entry["points"]["1"]["records_per_s"] > 0

    def test_mixed_history_diffs_both_kinds(self, report, tmp_path):
        path = tmp_path / "hist.jsonl"
        bench.append_history(copy.deepcopy(FAKE_BENCH), str(path))
        bench.append_cluster_history(report, str(path))
        newer = copy.deepcopy(FAKE_BENCH)
        newer["families"][0]["batch_records_per_sec"] = 104.0
        bench.append_history(newer, str(path))
        bench.append_cluster_history(report, str(path))
        diff = bench.diff_history(str(path), max_regression_pct=10)
        assert diff["passed"] is True
        assert [p["workers"] for p in diff["cluster"]["points"]] == [1, 2]
        rendered = bench.render_history_diff(diff)
        assert "cluster scaling diff" in rendered

    def test_cluster_regression_fails_the_gate(self, report, tmp_path):
        path = tmp_path / "hist.jsonl"
        bench.append_history(copy.deepcopy(FAKE_BENCH), str(path))
        bench.append_history(copy.deepcopy(FAKE_BENCH), str(path))
        bench.append_cluster_history(report, str(path))
        slower = copy.deepcopy(report)
        for point in slower["points"]:
            point["records_per_s"] *= 0.5
        bench.append_cluster_history(slower, str(path))
        diff = bench.diff_history(str(path), max_regression_pct=10)
        assert diff["passed"] is False
        assert any(tag.startswith("cluster:w")
                   for tag in diff["regressed"])

    def test_cluster_entries_are_jsonl_appended(self, report, tmp_path):
        path = tmp_path / "hist.jsonl"
        bench.append_cluster_history(report, str(path))
        bench.append_cluster_history(report, str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["kind"] == "cluster_scaling"
                   for line in lines)
