"""Session semantics: mode selection, accounting, engine/scalar parity."""

import pytest

from repro.core.spec import (DFCMSpec, FCMSpec, HashSpec, LastValueSpec,
                             StrideSpec)
from repro.serve.session import Session


def reference_session(spec, window=0):
    """A scalar-mode twin of the same spec (forced off the engine)."""
    session = Session.__new__(Session)
    Session.__init__(session, 999, spec, window)
    if session.mode == "engine":
        session.mode = "scalar"
        session._state = None
        session._predictor = spec.build()
    return session


class TestModeSelection:
    def test_resumable_window_zero_uses_engine(self):
        assert Session(1, DFCMSpec(64, 256)).mode == "engine"
        assert Session(1, FCMSpec(64, 256)).mode == "engine"
        assert Session(1, StrideSpec(64)).mode == "engine"

    def test_window_forces_scalar(self):
        session = Session(1, DFCMSpec(64, 256), window=4)
        assert session.mode == "scalar"
        assert session.window == 4

    def test_unsupported_hash_forces_scalar(self):
        spec = FCMSpec(64, 256, hash=HashSpec(8, "xor", 4))
        assert Session(1, spec).mode == "scalar"

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError, match="window"):
            Session(1, FCMSpec(64, 256), window=-1)


class TestAccounting:
    def test_predict_outcome_pairing(self):
        session = Session(1, StrideSpec(64))
        session.predict(0x40)
        session.outcome(0x40, 5)
        predicted = session.predict(0x40)
        hit = session.outcome(0x40, predicted)
        assert hit == 1
        assert session.predictions == 2
        assert session.outcomes == 2
        assert session.hits == 1  # first outcome was a cold miss

    def test_outcome_without_prediction(self):
        session = Session(1, LastValueSpec(64))
        assert session.outcome(0x40, 7) == Session.NO_PREDICTION
        assert session.outcomes == 0
        # ... but the tables trained: the next predict sees the value.
        assert session.predict(0x40) == 7

    def test_per_pc_fifo(self):
        session = Session(1, StrideSpec(64))
        first = session.predict(0x40)
        session.predict(0x40)
        assert session.outstanding_predictions() == 2
        session.outcome(0x40, first)
        assert session.outstanding_predictions() == 1
        assert session.hits == 1

    def test_step_block_counts_every_record(self):
        session = Session(1, StrideSpec(64))
        predicted, hits = session.step_block([4, 4, 4], [1, 2, 3])
        assert len(predicted) == 3
        assert session.predictions == 3
        assert session.outcomes == 3
        assert session.hits == hits
        assert 0 <= hits <= 3

    def test_step_block_length_mismatch(self):
        with pytest.raises(ValueError):
            Session(1, StrideSpec(64)).step_block([1], [])

    def test_empty_block(self):
        assert Session(1, StrideSpec(64)).step_block([], []) == ([], 0)

    def test_stats_shape(self):
        session = Session(7, DFCMSpec(64, 256), window=2)
        session.step(4, 9)
        stats = session.stats()
        assert stats["session"] == 7
        assert stats["family"] == "dfcm"
        assert stats["window"] == 2
        assert stats["mode"] == "scalar"
        assert stats["predictions"] == 1
        assert stats["pending_updates"] == 1  # the one update, still queued
        assert stats["accuracy"] == stats["hits"] / stats["outcomes"]

    def test_accuracy_none_before_outcomes(self):
        assert Session(1, StrideSpec(64)).stats()["accuracy"] is None


def stride_values(n):
    """A mixed workload two pcs can disagree on."""
    pcs, values = [], []
    for i in range(n):
        pcs.append(0x40 if i % 3 else 0x44)
        values.append((7 * i + (i % 5)) & 0xFFFFFFFF)
    return pcs, values


class TestEngineScalarParity:
    @pytest.mark.parametrize("spec", [
        FCMSpec(64, 256), DFCMSpec(64, 256), StrideSpec(64),
    ], ids=lambda s: s.family)
    def test_mixed_ops_match_scalar_reference(self, spec):
        engine = Session(1, spec)
        scalar = reference_session(spec)
        assert engine.mode == "engine"
        pcs, values = stride_values(120)
        for i, (pc, value) in enumerate(zip(pcs, values)):
            kind = i % 3
            if kind == 0:
                assert engine.predict(pc) == scalar.predict(pc)
                assert engine.outcome(pc, value) == scalar.outcome(pc, value)
            elif kind == 1:
                assert engine.step(pc, value) == scalar.step(pc, value)
            else:
                block = ([pc, pc ^ 4], [value, (value * 3) & 0xFFFFFFFF])
                engine_pred, engine_hits = engine.step_block(*block)
                scalar_pred, scalar_hits = scalar.step_block(*block)
                assert list(engine_pred) == list(scalar_pred)
                assert engine_hits == scalar_hits
        assert engine.hits == scalar.hits
        assert engine.stats()["hits"] == scalar.stats()["hits"]
