"""Load-generator report shape and offline verification."""

import numpy as np
import pytest

from repro.core.spec import DFCMSpec
from repro.serve.loadgen import _latency_summary, percentile, run_loadgen
from repro.serve.server import ServerThread
from repro.trace.trace import ValueTrace


def make_trace(n=300):
    pcs = np.tile(np.asarray([0x40, 0x44, 0x48], dtype=np.int64), n // 3)
    values = (np.arange(n, dtype=np.int64) * 5) & 0xFFFFFFFF
    return ValueTrace("loadgen-test", pcs[:n], values[:n])


class TestPercentile:
    def test_empty(self):
        assert percentile([], 50) == 0.0

    def test_single(self):
        assert percentile([7.0], 99) == 7.0

    def test_nearest_rank(self):
        values = [float(i) for i in range(100)]
        assert percentile(values, 50) == 50.0
        assert percentile(values, 100) == 99.0

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 10, 11, 100, 101])
    @pytest.mark.parametrize("p", [0, 1, 25, 50, 75, 90, 99, 100])
    def test_matches_numpy_nearest(self, n, p):
        """Our nearest-rank is exactly NumPy's method="nearest"."""
        rng = np.random.default_rng(n * 1000 + p)
        values = sorted(rng.uniform(0, 100, size=n).tolist())
        expected = float(np.percentile(values, p, method="nearest"))
        assert percentile(values, p) == expected

    def test_random_sweep_matches_numpy(self):
        rng = np.random.default_rng(7)
        for _ in range(200):
            n = int(rng.integers(1, 40))
            p = float(rng.uniform(0, 100))
            values = sorted(rng.normal(size=n).tolist())
            assert percentile(values, p) == \
                float(np.percentile(values, p, method="nearest"))

    def test_even_and_odd_pick_a_real_sample(self):
        even = [1.0, 2.0, 3.0, 4.0]
        odd = [1.0, 2.0, 3.0]
        for values in (even, odd):
            for p in range(0, 101, 5):
                assert percentile(values, p) in values


class TestLatencySummary:
    def test_rounds_to_4_decimal_ms(self):
        summary = _latency_summary([0.00123456, 0.00123456])
        assert summary["p50_ms"] == 1.2346
        assert summary["mean_ms"] == 1.2346

    def test_single_sample_is_every_percentile(self):
        summary = _latency_summary([0.002])
        assert summary["p50_ms"] == summary["p90_ms"] == \
            summary["p99_ms"] == summary["mean_ms"] == 2.0

    def test_empty_is_all_zero(self):
        summary = _latency_summary([])
        assert set(summary) == {"p50_ms", "p90_ms", "p99_ms", "mean_ms"}
        assert all(v == 0.0 for v in summary.values())

    def test_percentiles_are_monotone(self):
        rng = np.random.default_rng(3)
        summary = _latency_summary(rng.uniform(0, 1, 500).tolist())
        assert summary["p50_ms"] <= summary["p90_ms"] <= summary["p99_ms"]


class TestRunLoadgen:
    def test_report_shape_and_verify(self):
        spec = DFCMSpec(256, 1024)
        trace = make_trace()
        with ServerThread(shards=2, max_delay=0.001) as server:
            report = run_loadgen(spec, trace, "127.0.0.1", server.port,
                                 mode="both", block=64, min_speedup=0.01)
        assert report["schema"] == 1
        assert report["trace"] == "loadgen-test"
        assert report["records"] == len(trace)
        assert report["spec_config"]["family"] == "dfcm"
        assert set(report["modes"]) == {"naive", "batched"}
        for mode in report["modes"].values():
            assert mode["records"] == len(trace)
            assert mode["latency"]["p99_ms"] >= mode["latency"]["p50_ms"]
        # Both modes replay the same records, so hit counts agree...
        assert (report["modes"]["naive"]["hits"]
                == report["modes"]["batched"]["hits"])
        # ...and match the offline engines bit-for-bit.
        assert report["verify"]["matched"] is True
        assert report["speedup"] > 0
        assert report["speedup_ok"] is True  # 0.01x floor always passes

    def test_windowed_verify(self):
        spec = DFCMSpec(256, 1024)
        with ServerThread(max_delay=0.001) as server:
            report = run_loadgen(spec, make_trace(), "127.0.0.1",
                                 server.port, window=4, mode="batched",
                                 block=50)
        assert report["window"] == 4
        assert report["verify"]["offline_spec"].endswith("_d4")
        assert report["verify"]["matched"] is True
        assert "speedup" not in report  # single mode: no ratio

    def test_mode_validation(self):
        with pytest.raises(ValueError, match="mode"):
            run_loadgen(DFCMSpec(64, 256), make_trace(), "127.0.0.1", 1,
                        mode="bogus")
        with pytest.raises(ValueError, match="block"):
            run_loadgen(DFCMSpec(64, 256), make_trace(), "127.0.0.1", 1,
                        block=0)

    def test_no_verify_skips_offline_replay(self):
        spec = DFCMSpec(256, 1024)
        with ServerThread(max_delay=0.001) as server:
            report = run_loadgen(spec, make_trace(120), "127.0.0.1",
                                 server.port, mode="naive", verify=False)
        assert "verify" not in report
        assert report["modes"]["naive"]["records"] == 120

    def test_zero_copy_large_blocks_parity(self):
        # Blocks of 1024 records put ~8 KiB frames on the wire in both
        # directions -- larger than the reader's initial receive buffer
        # -- so this drives the recv_into growth path and the server's
        # single-allocation response framing, and still demands
        # bit-exact parity with the offline engines.
        spec = DFCMSpec(256, 1024)
        trace = make_trace(4098)
        with ServerThread(shards=2, max_delay=0.001) as server:
            report = run_loadgen(spec, trace, "127.0.0.1", server.port,
                                 mode="batched", block=1024)
        assert report["modes"]["batched"]["records"] == 4098
        assert report["verify"]["matched"] is True

    def test_report_carries_negotiated_protocol_version(self):
        spec = DFCMSpec(64, 256)
        with ServerThread(max_delay=0) as server:
            report = run_loadgen(spec, make_trace(30), "127.0.0.1",
                                 server.port, mode="batched",
                                 verify=False)
        assert report["protocol_version"] == 2
        assert report["modes"]["batched"]["protocol_version"] == 2
