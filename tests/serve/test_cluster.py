"""End-to-end cluster serving: parity, hot migration, failover.

Everything here drives a real fleet -- a ClusterThread hosting a
router over spawned worker processes -- through the public client.
The invariants: served hit counts are bit-identical to the offline
engine at every fleet size; a hot migration loses and reorders
nothing; a SIGTERM'd worker's sessions re-home with zero loss; the
aggregated observability endpoints describe the whole fleet.
"""

import json
import os
import signal
import threading
import time
import urllib.request

import pytest

from repro.core.spec import DFCMSpec
from repro.harness.simulate import measure_accuracy
from repro.serve.client import ServeClient, ServeError
from repro.serve.cluster import ClusterThread
from repro.trace.trace import ValueTrace


def workload(n, seed=0):
    pcs, values = [], []
    for i in range(n):
        pcs.append(0x400 + 4 * ((i + seed) % 7))
        values.append((11 * i + seed * 3 + (i % 4)) & 0xFFFFFFFF)
    return pcs, values


def offline_hits(spec, pcs, values):
    import numpy as np
    trace = ValueTrace("cluster-test", np.asarray(pcs, dtype=np.uint32),
                       np.asarray(values, dtype=np.uint32))
    return measure_accuracy(spec, trace).correct


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    """One 2-worker fleet shared by the read-mostly tests (spawning
    workers is the expensive part; failover tests build their own)."""
    state_dir = tmp_path_factory.mktemp("fleet-state")
    with ClusterThread(workers=2, state_dir=str(state_dir),
                       obs_port=0, max_delay=0) as cluster:
        yield cluster


class TestParity:
    def test_sessions_match_offline_engine(self, fleet):
        spec = DFCMSpec(64, 256)
        pcs, values = workload(300)
        want = offline_hits(spec, pcs, values)
        with ServeClient("127.0.0.1", fleet.port) as client:
            sids = [client.open_session(spec) for _ in range(4)]
            owners = {fleet.router.session_owner(s) for s in sids}
            assert len(owners) == 2  # both workers in play
            for sid in sids:
                _, hits = client.step_block(sid, pcs, values)
                assert hits == want
            for sid in sids:
                assert client.close_session(sid)["hits"] == want

    def test_session_ids_unique_across_workers(self, fleet):
        spec = DFCMSpec(64, 256)
        with ServeClient("127.0.0.1", fleet.port) as client:
            sids = [client.open_session(spec) for _ in range(8)]
            assert len(set(sids)) == 8
            for sid in sids:
                client.close_session(sid)

    def test_cluster_stats_frame(self, fleet):
        with ServeClient("127.0.0.1", fleet.port) as client:
            stats = client.stats(0)
        assert stats["cluster"] is True
        assert stats["workers_alive"] == 2
        assert len(stats["workers"]) == 2

    def test_unknown_session_is_an_error(self, fleet):
        with ServeClient("127.0.0.1", fleet.port) as client:
            with pytest.raises(ServeError) as excinfo:
                client.step(999_999, 0x400, 1)
            assert excinfo.value.code == 4  # UNKNOWN_SESSION


class TestMigration:
    def test_hot_migration_is_seamless(self, fleet):
        spec = DFCMSpec(64, 256)
        pcs, values = workload(400)
        want = offline_hits(spec, pcs, values)
        with ServeClient("127.0.0.1", fleet.port) as client:
            sid = client.open_session(spec)
            owner = fleet.router.session_owner(sid)
            target = 1 - owner
            hits = client.step_block(sid, pcs[:200], values[:200])[1]
            assert fleet.call(fleet.router.migrate(sid, target))
            assert fleet.router.session_owner(sid) == target
            hits += client.step_block(sid, pcs[200:], values[200:])[1]
            assert hits == want
            assert client.close_session(sid)["hits"] == want

    def test_migration_under_concurrent_load(self, fleet):
        """Frames racing a migration are parked and flushed in order:
        the stream stays bit-identical."""
        spec = DFCMSpec(64, 256)
        pcs, values = workload(1200)
        want = offline_hits(spec, pcs, values)
        with ServeClient("127.0.0.1", fleet.port) as client:
            sid = client.open_session(spec)
            owner = fleet.router.session_owner(sid)
            hits = []

            def replay():
                total = 0
                for start in range(0, len(pcs), 40):
                    total += client.step_block(
                        sid, pcs[start:start + 40],
                        values[start:start + 40])[1]
                hits.append(total)

            thread = threading.Thread(target=replay)
            thread.start()
            moved = fleet.call(fleet.router.migrate(sid, 1 - owner))
            thread.join()
            assert moved
            assert hits == [want]
            client.close_session(sid)

    def test_migrate_to_current_owner_is_a_noop(self, fleet):
        spec = DFCMSpec(64, 256)
        with ServeClient("127.0.0.1", fleet.port) as client:
            sid = client.open_session(spec)
            owner = fleet.router.session_owner(sid)
            assert fleet.call(fleet.router.migrate(sid, owner)) is False
            client.close_session(sid)

    def test_scalar_session_stays_put(self, fleet):
        # Windowed sessions run scalar mode: no arena, not migratable.
        spec = DFCMSpec(64, 256)
        with ServeClient("127.0.0.1", fleet.port) as client:
            sid = client.open_session(spec, window=4)
            owner = fleet.router.session_owner(sid)
            moved = fleet.call(fleet.router.migrate(sid, 1 - owner))
            assert moved is False
            assert fleet.router.session_owner(sid) == owner
            client.step(sid, 0x400, 7)  # still serving where it was
            client.close_session(sid)

    def test_migrate_unknown_session_raises(self, fleet):
        with pytest.raises(KeyError):
            fleet.call(fleet.router.migrate(123_456_789, 0))

    def test_migrations_counted(self, fleet):
        with ServeClient("127.0.0.1", fleet.port) as client:
            assert client.stats(0)["migrations_total"] >= 2


class TestObservability:
    def test_healthz_aggregates_the_fleet(self, fleet):
        with urllib.request.urlopen(
                f"http://127.0.0.1:{fleet.obs_port}/healthz") as resp:
            health = json.loads(resp.read())
        assert health["cluster"] is True
        assert health["status"] in ("ok", "degraded")
        assert len(health["workers"]) == 2
        assert all("resident" in w for w in health["workers"])

    def test_metrics_carry_worker_labels(self, fleet):
        spec = DFCMSpec(64, 256)
        with ServeClient("127.0.0.1", fleet.port) as client:
            sid = client.open_session(spec)
            client.step(sid, 0x400, 1)
            client.close_session(sid)
        with urllib.request.urlopen(
                f"http://127.0.0.1:{fleet.obs_port}/metrics") as resp:
            text = resp.read().decode()
        assert 'worker="0"' in text
        assert 'worker="1"' in text
        assert "repro_cluster_frames_proxied_total" in text
        # HELP/TYPE lines dedup across workers.
        helps = [line for line in text.splitlines()
                 if line.startswith("# HELP repro_serve_records_total ")]
        assert len(helps) == 1

    def test_tables_relabel_shards_per_worker(self, fleet):
        spec = DFCMSpec(64, 256)
        with ServeClient("127.0.0.1", fleet.port) as client:
            sid = client.open_session(spec)
            client.step(sid, 0x400, 1)
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{fleet.obs_port}/tables") as resp:
                tables = json.loads(resp.read())
            client.close_session(sid)
        shard_ids = {s["shard"] for s in tables["shards"]}
        assert all("." in shard for shard in shard_ids)
        assert tables["totals"]["storage_bits"] > 0


class TestFailover:
    def test_sigterm_worker_loses_no_sessions(self, tmp_path):
        spec = DFCMSpec(64, 256)
        pcs, values = workload(900)
        want = offline_hits(spec, pcs, values)
        with ClusterThread(workers=3, state_dir=str(tmp_path),
                           obs_port=0, max_delay=0,
                           router_kwargs={"auto_restart": False}) \
                as cluster:
            with ServeClient("127.0.0.1", cluster.port) as client:
                sids = [client.open_session(spec) for _ in range(6)]
                owners = {s: cluster.router.session_owner(s)
                          for s in sids}
                assert len(set(owners.values())) == 3
                victim_sid = sids[0]
                victim = owners[victim_sid]
                totals = {s: 0 for s in sids}
                for s in sids:
                    totals[s] += client.step_block(
                        s, pcs[:300], values[:300])[1]

                errors = []

                def replay_rest():
                    try:
                        for start in range(300, len(pcs), 30):
                            totals[victim_sid] += client.step_block(
                                victim_sid, pcs[start:start + 30],
                                values[start:start + 30])[1]
                    except Exception as exc:  # pragma: no cover
                        errors.append(exc)

                thread = threading.Thread(target=replay_rest)
                thread.start()
                time.sleep(0.02)
                os.kill(cluster.supervisor.handles[victim].pid,
                        signal.SIGTERM)
                thread.join()
                assert errors == []
                for s in sids:
                    if s != victim_sid:
                        totals[s] += client.step_block(
                            s, pcs[300:], values[300:])[1]
                # Zero loss, bit-identical streams, everything re-homed
                # off the dead worker, migrations counted.
                assert all(totals[s] == want for s in sids)
                for s in sids:
                    assert cluster.router.session_owner(s) != victim
                stats = client.stats(0)
                assert stats["sessions_lost_total"] == 0
                assert stats["migrations_total"] >= 1

    def test_auto_restart_brings_sessions_home(self, tmp_path):
        spec = DFCMSpec(64, 256)
        pcs, values = workload(200)
        with ClusterThread(workers=2, state_dir=str(tmp_path),
                           obs_port=0, max_delay=0,
                           router_kwargs={"tick_interval": 0.1}) \
                as cluster:
            with ServeClient("127.0.0.1", cluster.port) as client:
                sids = [client.open_session(spec) for _ in range(4)]
                for s in sids:
                    client.step_block(s, pcs, values)
                before = {s: cluster.router.session_owner(s)
                          for s in sids}
                victim = before[sids[0]]
                os.kill(cluster.supervisor.handles[victim].pid,
                        signal.SIGTERM)
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    stats = client.stats(0)
                    if (stats["workers_alive"] == 2
                            and any(w["restarts"] for w in
                                    stats["workers"])):
                        break
                    time.sleep(0.1)
                else:
                    pytest.fail("replacement worker never came up")
                # Rendezvous placement is restored exactly -- the
                # replacement slot got its predecessor's sessions back.
                after = {s: cluster.router.session_owner(s)
                         for s in sids}
                assert after == before
                for s in sids:
                    client.step(s, 0x400, 7)
                assert client.stats(0)["sessions_lost_total"] == 0


class TestDrainRestart:
    def test_fleet_drain_spills_and_next_fleet_adopts(self, tmp_path):
        spec = DFCMSpec(64, 256)
        pcs, values = workload(240)
        want = offline_hits(spec, pcs, values)
        with ClusterThread(workers=2, state_dir=str(tmp_path),
                           max_delay=0) as cluster:
            with ServeClient("127.0.0.1", cluster.port) as client:
                sid = client.open_session(spec)
                first = client.step_block(sid, pcs[:120], values[:120])[1]
        # The whole fleet drained; arenas are on disk.  A fresh fleet
        # over the same state dir adopts them at router startup.
        with ClusterThread(workers=2, state_dir=str(tmp_path),
                           max_delay=0) as cluster:
            assert cluster.router.adopted_at_start >= 1
            with ServeClient("127.0.0.1", cluster.port) as client:
                second = client.step_block(sid, pcs[120:], values[120:])[1]
                assert first + second == want
