"""Kill -9 and resume: durability across a real process boundary.

The satellite the durable-state layer exists for: run half a workload
against a live ``repro serve --state-dir`` process, take an explicit
SNAPSHOT (the durability barrier), SIGKILL the server -- no drain, no
atexit -- start a fresh process on the same directory, finish the
workload there, and require counts AND final table state bit-identical
to one uninterrupted offline run.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.spec import DFCMSpec
from repro.core.state import ArenaStore, open_arena
from repro.serve.client import ServeClient
from repro.serve.session import Session

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def workload(n, seed=9):
    pcs, values = [], []
    for i in range(n):
        pcs.append(0x400 + 4 * ((i + seed) % 11))
        values.append((13 * i + seed * 7 + (i % 5)) & 0xFFFFFFFF)
    return pcs, values


def start_server(state_dir):
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "serve", "--json",
         "--port", "0", "--shards", "2", "--max-delay-ms", "0",
         "--state-dir", str(state_dir)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
        text=True)
    line = proc.stdout.readline()
    if not line:
        proc.kill()
        pytest.fail(f"server did not start: {proc.stderr.read()}")
    event = json.loads(line)
    assert event["event"] == "listening"
    return proc, event["port"]


def connect(port, attempts=50):
    for _ in range(attempts):
        try:
            return ServeClient(port=port, timeout=10.0)
        except ConnectionError:
            time.sleep(0.05)
    raise ConnectionError(f"cannot reach server on port {port}")


def test_sigkill_then_restart_is_bit_identical(tmp_path):
    spec = DFCMSpec(64, 256)
    pcs, values = workload(300)
    half = len(pcs) // 2
    state_dir = tmp_path / "arenas"

    proc, port = start_server(state_dir)
    try:
        with connect(port) as client:
            session = client.open_session(spec)
            predicted_a, hits_a = client.step_block(
                session, pcs[:half], values[:half])
            report = client.snapshot(session)
            assert report["session"] == session
        # SIGKILL: no drain, no flush -- only the snapshot survives.
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)

    assert ArenaStore(state_dir).session_ids() == [session]

    proc, port = start_server(state_dir)
    try:
        with connect(port) as client:
            # The fresh process adopted the spilled session.
            stats = client.stats(0)
            assert stats["sessions_open"] == 1
            assert stats["sessions_spilled"] == 1
            predicted_b, hits_b = client.step_block(
                session, pcs[half:], values[half:])
            closed = client.close_session(session)
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=30)

    # One uninterrupted offline run is the referee.
    offline = Session(0, spec)
    want_predicted, want_hits = offline.step_block(pcs, values)
    assert predicted_a + predicted_b == list(want_predicted)
    assert hits_a + hits_b == want_hits
    assert closed["hits"] == offline.hits
    assert closed["predictions"] == offline.predictions
    assert closed["outcomes"] == offline.outcomes


def test_sigkill_final_tables_match_offline(tmp_path):
    spec = DFCMSpec(64, 256)
    pcs, values = workload(200, seed=4)
    half = len(pcs) // 2
    state_dir = tmp_path / "arenas"

    proc, port = start_server(state_dir)
    try:
        with connect(port) as client:
            session = client.open_session(spec)
            client.step_block(session, pcs[:half], values[:half])
            client.snapshot(session)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)

    proc, port = start_server(state_dir)
    try:
        with connect(port) as client:
            client.step_block(session, pcs[half:], values[half:])
            client.snapshot(session)  # persist the final tables
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=30)

    offline = Session(0, spec)
    offline.step_block(pcs, values)
    arena = open_arena(ArenaStore(state_dir).path_for(session))
    table_state = arena.table_state()
    assert table_state.keys() == offline.table_state().keys()
    for key, want in offline.table_state().items():
        np.testing.assert_array_equal(table_state[key], want)
    assert arena.meta["hits"] == offline.hits
