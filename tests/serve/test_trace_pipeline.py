"""Fleet-wide distributed tracing, /scale, and the soak harness.

The acceptance path of the tracing work, driven end to end over real
sockets and real worker processes: one request proxied through the
router leaves a router span and a worker span under the same trace id,
retrievable merged from the router's ``/trace/<id>``; a request that
survives a mid-flight worker SIGKILL reconstructs as a single ordered
cross-process trace spanning both workers; ``/scale`` strict-parses as
a Kubernetes custom-metrics MetricValueList; and ``run_soak`` holds a
fleet under sustained load and passes its own SLO-burn gate.
"""

import io
import json
import os
import re
import signal
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.spec import DFCMSpec
from repro.serve.client import ServeClient
from repro.serve.cluster import ClusterThread
from repro.serve.tracing import format_trace_id

HEX16 = r"[0-9a-f]{16}"


def workload(n, seed=0):
    pcs, values = [], []
    for i in range(n):
        pcs.append(0x400 + 4 * ((i + seed) % 7))
        values.append((11 * i + seed * 3 + (i % 4)) & 0xFFFFFFFF)
    return pcs, values


def http_json(port, path, timeout=10.0):
    url = f"http://127.0.0.1:{port}{path}"
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return json.loads(resp.read().decode("utf-8"))


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    state_dir = tmp_path_factory.mktemp("trace-fleet-state")
    with ClusterThread(workers=2, state_dir=str(state_dir),
                       obs_port=0, max_delay=0) as cluster:
        yield cluster


class TestCrossProcessTrace:
    def test_proxied_request_merges_router_and_worker_spans(self, fleet):
        spec = DFCMSpec(64, 256)
        with ServeClient("127.0.0.1", fleet.port) as client:
            sid = client.open_session(spec)
            client.step(sid, 0x400, 7)
            trace_id = client.last_trace_id
            assert trace_id != 0
            hex_id = format_trace_id(trace_id)
            report = http_json(fleet.obs_port, f"/trace/{hex_id}")
        assert report["found"] is True
        assert report["cluster"] is True
        assert report["trace_id"] == hex_id
        sources = [s["source"] for s in report["spans"]]
        assert sources == ["router", "worker"]
        router_span, worker_span = report["spans"]
        # Same id on both sides of the proxy hop.
        assert router_span["trace_id"] == hex_id
        assert worker_span["trace_id"] == hex_id
        assert router_span["workers"] == [worker_span["worker"]]
        assert router_span["resends"] == 0
        assert {"route", "proxy", "write"} <= set(
            router_span["stages_ms"])
        assert {"queue", "fuse", "execute", "flush"} <= set(
            worker_span["stages_ms"])
        # The worker round trip is inside the client-observed latency.
        assert (router_span["stages_ms"]["proxy"]
                <= router_span["latency_ms"])

    def test_cli_renders_the_fleet_trace(self, fleet):
        spec = DFCMSpec(64, 256)
        with ServeClient("127.0.0.1", fleet.port) as client:
            sid = client.open_session(spec)
            client.step(sid, 0x404, 9)
            hex_id = format_trace_id(client.last_trace_id)
        out = io.StringIO()
        code = cli_main(["trace", hex_id, "--from",
                         str(fleet.obs_port)], out=out)
        text = out.getvalue()
        assert code == 0
        assert hex_id in text
        assert "router" in text and "worker" in text
        assert "proxy" in text and "execute" in text

    def test_cli_unknown_trace_exits_nonzero(self, fleet):
        out = io.StringIO()
        code = cli_main(["trace", "00000000000000ff", "--from",
                         str(fleet.obs_port)], out=out)
        assert code == 1
        assert "not found" in out.getvalue()

    def test_router_slow_reports_client_experienced_latency(self, fleet):
        spec = DFCMSpec(64, 256)
        pcs, values = workload(120)
        with ServeClient("127.0.0.1", fleet.port) as client:
            sid = client.open_session(spec)
            for start in range(0, len(pcs), 30):
                client.step_block(sid, pcs[start:start + 30],
                                  values[start:start + 30])
        report = http_json(fleet.obs_port, "/slow")
        assert report["schema"] == 2
        assert report["observed"] >= 4
        assert report["worker_observed"] >= 4
        router_entries = [e for e in report["slowest"]
                          if e.get("source") == "router"]
        assert router_entries, "router sampler entries missing"
        for entry in router_entries:
            assert re.fullmatch(HEX16, entry["trace_id"])
            assert entry["latency_ms"] >= 0
        # The slowest entries join with the worker-side stage sample
        # under the same trace id.
        joined = [e for e in router_entries if e.get("worker_spans")]
        assert joined, "no slow entry joined with its worker span"
        span = joined[0]["worker_spans"][0]
        assert span["trace_id"] == joined[0]["trace_id"]
        assert span["source"] == "worker"


class TestFailoverTrace:
    def test_request_surviving_worker_death_is_one_trace(self, tmp_path):
        """SIGSTOP the owner so a STEP_BLOCK is pinned in flight, then
        SIGKILL it: the router re-homes the session and re-sends the
        frame to the surviving worker.  The client sees one answered
        request; ``/trace/<id>`` reconstructs it as one ordered
        cross-process trace spanning both workers."""
        spec = DFCMSpec(64, 256)
        pcs, values = workload(200)
        with ClusterThread(workers=2, state_dir=str(tmp_path),
                           obs_port=0, max_delay=0,
                           router_kwargs={"auto_restart": False}) \
                as cluster:
            with ServeClient("127.0.0.1", cluster.port,
                             timeout=60.0) as client:
                sid = client.open_session(spec)
                client.step_block(sid, pcs[:100], values[:100])
                # Durability barrier: the arena the survivor adopts.
                client.snapshot(sid)
                victim = cluster.router.session_owner(sid)
                victim_pid = cluster.supervisor.handles[victim].pid
                os.kill(victim_pid, signal.SIGSTOP)
                result = {}

                def blocked_step():
                    result["hits"] = client.step_block(
                        sid, pcs[100:130], values[100:130])[1]

                thread = threading.Thread(target=blocked_step)
                thread.start()
                time.sleep(0.3)   # frame forwarded to the frozen owner
                os.kill(victim_pid, signal.SIGKILL)
                thread.join(timeout=60)
                assert not thread.is_alive(), "step never completed"
                assert "hits" in result
                trace_id = client.last_trace_id
                hex_id = format_trace_id(trace_id)
                survivor = cluster.router.session_owner(sid)
                assert survivor != victim
                report = http_json(cluster.obs_port,
                                   f"/trace/{hex_id}", timeout=30.0)
        assert report["found"] is True
        router_span = report["spans"][0]
        assert router_span["source"] == "router"
        # The hop list records the death: forwarded to the victim,
        # re-sent to the survivor.
        assert router_span["workers"] == [victim, survivor]
        assert router_span["resends"] == 1
        assert router_span["status"] == "ok"
        assert "migrate_wait" in router_span["stages_ms"]
        # The victim died before completing its span; the survivor's
        # is there, under the same id, ordered after the router's.
        worker_spans = [s for s in report["spans"]
                        if s["source"] == "worker"]
        assert [s["worker"] for s in worker_spans] == [survivor]
        assert worker_spans[0]["trace_id"] == hex_id
        assert worker_spans[0]["status"] == "ok"


class TestScaleEndpoint:
    def test_scale_strict_parses_as_metric_value_list(self, fleet):
        spec = DFCMSpec(64, 256)
        pcs, values = workload(60)
        with ServeClient("127.0.0.1", fleet.port) as client:
            sid = client.open_session(spec)
            client.step_block(sid, pcs, values)
        report = http_json(fleet.obs_port, "/scale")
        assert report["kind"] == "MetricValueList"
        assert report["apiVersion"] == "custom.metrics.k8s.io/v1beta2"
        names = {item["metric"]["name"] for item in report["items"]}
        assert names == {"repro_sessions_per_worker",
                         "repro_step_latency_p99_ms",
                         "repro_queue_depth",
                         "repro_slo_burn_rate"}
        for item in report["items"]:
            described = item["describedObject"]
            assert described["kind"] == "Service"
            assert described["name"] == "repro-serve"
            assert item["windowSeconds"] == 60
            assert re.fullmatch(r"-?\d+m", item["value"])
            assert re.fullmatch(r"\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}Z",
                                item["timestamp"])
        signals = report["signals"]
        assert set(signals) == {"sessions_per_worker",
                                "step_latency_p99_ms", "queue_depth",
                                "slo_burn_rate"}
        assert signals["sessions_per_worker"] > 0
        assert signals["step_latency_p99_ms"] > 0
        assert report["workers_alive"] == 2
        assert report["sessions_open"] >= 1
        # The quantity encodes the signal in milli-units.
        by_name = {i["metric"]["name"]: i["value"]
                   for i in report["items"]}
        assert by_name["repro_sessions_per_worker"] == (
            f"{int(round(signals['sessions_per_worker'] * 1000))}m")


class TestSoakHarness:
    def test_short_soak_passes_its_gates(self, tmp_path):
        from repro.harness.bench import append_soak_history
        from repro.serve.cluster.soak import render_soak, run_soak
        from repro.trace.trace import ValueTrace

        pcs, values = workload(240)
        trace = ValueTrace("soak-test",
                           np.asarray(pcs, dtype=np.uint32),
                           np.asarray(values, dtype=np.uint32))
        report = run_soak(DFCMSpec(64, 256), trace, workers=2,
                          sessions=2, duration_s=2.0, block=64,
                          poll_interval_s=0.5, max_delay=0)
        assert report["kind"] == "cluster_soak"
        assert report["passes"] >= 2
        assert report["parity_ok"] is True
        assert report["mismatched_passes"] == 0
        assert report["errors"] == []
        assert report["slo_ok"] is True
        assert report["soak_ok"] is True
        assert report["records_per_s"] > 0
        samples = [s for s in report["samples"] if "signals" in s]
        assert samples, "no telemetry samples collected"
        assert samples[-1]["workers_alive"] == 2
        assert report["peak_burn"] <= report["max_burn"]
        # The trace dump ships recent cross-process spans.
        assert report["trace_dump"]["retained"] > 0
        for span in report["trace_dump"]["spans"]:
            assert span["source"] == "router"
        text = render_soak(report)
        assert "soak: PASS" in text
        # The history record files under its own kind.
        history = tmp_path / "hist.jsonl"
        entry = append_soak_history(report, str(history))
        assert entry["kind"] == "cluster_soak"
        assert entry["soak_ok"] is True
        line = json.loads(history.read_text().splitlines()[0])
        assert line["passes"] == report["passes"]

    def test_soak_rejects_bad_arguments(self):
        from repro.serve.cluster.soak import run_soak
        from repro.trace.trace import ValueTrace
        pcs, values = workload(10)
        trace = ValueTrace("soak-bad",
                           np.asarray(pcs, dtype=np.uint32),
                           np.asarray(values, dtype=np.uint32))
        spec = DFCMSpec(64, 256)
        with pytest.raises(ValueError):
            run_soak(spec, trace, workers=0)
        with pytest.raises(ValueError):
            run_soak(spec, trace, duration_s=0)
        with pytest.raises(ValueError):
            run_soak(spec, trace, max_burn=0)
