"""Request-trace identity, stage breakdowns, and the slow sampler."""

import pytest

from repro.serve.tracing import (RequestTrace, SlowRequestSampler,
                                 format_trace_id, new_trace_id)


def make_trace(trace_id=1, latency=0.01, **overrides):
    base = dict(trace_id=trace_id, frame_type="step", request_id=1,
                version=2, t_recv=100.0, t_submit=100.001,
                t_dequeue=100.002, t_exec_start=100.003,
                t_exec_end=100.004, t_done=100.0 + latency)
    base.update(overrides)
    return RequestTrace(**base)


class TestTraceIds:
    def test_ids_are_unique_and_nonzero(self):
        ids = {new_trace_id() for _ in range(1000)}
        assert len(ids) == 1000
        assert 0 not in ids

    def test_ids_fit_64_bits(self):
        assert all(0 < new_trace_id() < 1 << 64 for _ in range(100))

    def test_format_is_16_hex_digits(self):
        assert format_trace_id(0xAB) == "00000000000000ab"
        assert len(format_trace_id(new_trace_id())) == 16

    def test_format_masks_to_64_bits(self):
        assert format_trace_id(1 << 64) == "0000000000000000"


class TestRequestTrace:
    def test_latency_from_recv_to_done(self):
        trace = make_trace(latency=0.25)
        assert trace.latency_s() == pytest.approx(0.25)

    def test_latency_zero_while_incomplete(self):
        trace = make_trace()
        trace.t_done = None
        assert trace.latency_s() == 0.0

    def test_stage_durations(self):
        trace = make_trace()
        stages = trace.stages()
        assert set(stages) == {"queue", "fuse", "execute", "flush"}
        assert stages["queue"] == pytest.approx(0.001)
        assert stages["fuse"] == pytest.approx(0.001)
        assert stages["execute"] == pytest.approx(0.001)

    def test_skipped_stages_absent(self):
        trace = RequestTrace(trace_id=1, frame_type="stats",
                             t_recv=1.0, t_done=1.5)
        assert trace.stages() == {}

    def test_to_dict_shape(self):
        trace = make_trace(trace_id=0xFF, latency=0.002)
        entry = trace.to_dict()
        assert entry["trace_id"] == format_trace_id(0xFF)
        assert entry["type"] == "step"
        assert entry["latency_ms"] == pytest.approx(2.0)
        assert set(entry["stages_ms"]) == {"queue", "fuse", "execute",
                                           "flush"}
        assert "error" not in entry

    def test_to_dict_carries_error(self):
        trace = make_trace(status="error", error="boom")
        entry = trace.to_dict()
        assert entry["status"] == "error"
        assert entry["error"] == "boom"


class TestSlowRequestSampler:
    def test_keeps_top_k_by_latency(self):
        sampler = SlowRequestSampler(k=3)
        for i, latency in enumerate([0.01, 0.05, 0.02, 0.09, 0.001]):
            sampler.add(make_trace(trace_id=i + 1, latency=latency))
        snap = sampler.snapshot()
        assert snap["observed"] == 5
        assert snap["k"] == 3
        latencies = [e["latency_ms"] for e in snap["slowest"]]
        assert latencies == sorted(latencies, reverse=True)
        assert latencies == pytest.approx([90.0, 50.0, 20.0])

    def test_fills_below_k(self):
        sampler = SlowRequestSampler(k=8)
        sampler.add(make_trace(latency=0.01))
        snap = sampler.snapshot()
        assert snap["observed"] == 1
        assert len(snap["slowest"]) == 1

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            SlowRequestSampler(k=0)

    def test_snapshot_is_json_able(self):
        import json
        sampler = SlowRequestSampler(k=2)
        sampler.add(make_trace(latency=0.01))
        json.dumps(sampler.snapshot())
