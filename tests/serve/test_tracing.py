"""Request-trace identity, stage breakdowns, and the slow sampler."""

import pytest

from repro.serve.tracing import (RequestTrace, RouterTrace,
                                 SlowRequestSampler, TraceStore,
                                 format_trace_id, new_trace_id,
                                 parse_trace_id, render_trace_report)


def make_trace(trace_id=1, latency=0.01, **overrides):
    base = dict(trace_id=trace_id, frame_type="step", request_id=1,
                version=2, t_recv=100.0, t_submit=100.001,
                t_dequeue=100.002, t_exec_start=100.003,
                t_exec_end=100.004, t_done=100.0 + latency)
    base.update(overrides)
    return RequestTrace(**base)


class TestTraceIds:
    def test_ids_are_unique_and_nonzero(self):
        ids = {new_trace_id() for _ in range(1000)}
        assert len(ids) == 1000
        assert 0 not in ids

    def test_ids_fit_64_bits(self):
        assert all(0 < new_trace_id() < 1 << 64 for _ in range(100))

    def test_format_is_16_hex_digits(self):
        assert format_trace_id(0xAB) == "00000000000000ab"
        assert len(format_trace_id(new_trace_id())) == 16

    def test_format_masks_to_64_bits(self):
        assert format_trace_id(1 << 64) == "0000000000000000"

    def test_parse_round_trips_format(self):
        trace_id = new_trace_id()
        assert parse_trace_id(format_trace_id(trace_id)) == trace_id

    def test_parse_accepts_hex_spellings(self):
        assert parse_trace_id("ab") == 0xAB
        assert parse_trace_id("0xAB") == 0xAB
        assert parse_trace_id(" 00ab ") == 0xAB

    def test_parse_rejects_garbage(self):
        for bad in ("", "zz", "12g4", None, "-1", "1" * 17):
            with pytest.raises(ValueError):
                parse_trace_id(bad)


class TestRequestTrace:
    def test_latency_from_recv_to_done(self):
        trace = make_trace(latency=0.25)
        assert trace.latency_s() == pytest.approx(0.25)

    def test_latency_zero_while_incomplete(self):
        trace = make_trace()
        trace.t_done = None
        assert trace.latency_s() == 0.0

    def test_stage_durations(self):
        trace = make_trace()
        stages = trace.stages()
        assert set(stages) == {"queue", "fuse", "execute", "flush"}
        assert stages["queue"] == pytest.approx(0.001)
        assert stages["fuse"] == pytest.approx(0.001)
        assert stages["execute"] == pytest.approx(0.001)

    def test_skipped_stages_absent(self):
        trace = RequestTrace(trace_id=1, frame_type="stats",
                             t_recv=1.0, t_done=1.5)
        assert trace.stages() == {}

    def test_to_dict_shape(self):
        trace = make_trace(trace_id=0xFF, latency=0.002)
        entry = trace.to_dict()
        assert entry["trace_id"] == format_trace_id(0xFF)
        assert entry["type"] == "step"
        assert entry["latency_ms"] == pytest.approx(2.0)
        assert set(entry["stages_ms"]) == {"queue", "fuse", "execute",
                                           "flush"}
        assert "error" not in entry

    def test_to_dict_carries_error(self):
        trace = make_trace(status="error", error="boom")
        entry = trace.to_dict()
        assert entry["status"] == "error"
        assert entry["error"] == "boom"


class TestSlowRequestSampler:
    def test_keeps_top_k_by_latency(self):
        sampler = SlowRequestSampler(k=3)
        for i, latency in enumerate([0.01, 0.05, 0.02, 0.09, 0.001]):
            sampler.add(make_trace(trace_id=i + 1, latency=latency))
        snap = sampler.snapshot()
        assert snap["observed"] == 5
        assert snap["k"] == 3
        latencies = [e["latency_ms"] for e in snap["slowest"]]
        assert latencies == sorted(latencies, reverse=True)
        assert latencies == pytest.approx([90.0, 50.0, 20.0])

    def test_fills_below_k(self):
        sampler = SlowRequestSampler(k=8)
        sampler.add(make_trace(latency=0.01))
        snap = sampler.snapshot()
        assert snap["observed"] == 1
        assert len(snap["slowest"]) == 1

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            SlowRequestSampler(k=0)

    def test_snapshot_is_json_able(self):
        import json
        sampler = SlowRequestSampler(k=2)
        sampler.add(make_trace(latency=0.01))
        json.dumps(sampler.snapshot())

    def test_accepts_router_traces(self):
        sampler = SlowRequestSampler(k=2)
        sampler.add(make_router_trace(latency=0.5))
        entry = sampler.snapshot()["slowest"][0]
        assert entry["source"] == "router"
        assert entry["latency_ms"] == pytest.approx(500.0)


def make_router_trace(trace_id=1, latency=0.01, **overrides):
    trace = RouterTrace(trace_id=trace_id, frame_type="step_block",
                        request_id=7, version=2, session_id=3,
                        records=256, t_recv=200.0)
    trace.on_forward(0, 200.001)
    trace.t_replied = 200.0 + latency * 0.9
    trace.t_done = 200.0 + latency
    for key, value in overrides.items():
        setattr(trace, key, value)
    return trace


class TestRouterTrace:
    def test_plain_proxy_stages(self):
        trace = make_router_trace(latency=0.010)
        stages = trace.stages()
        assert set(stages) == {"route", "proxy", "write"}
        assert stages["route"] == pytest.approx(0.001)
        assert trace.resends == 0
        assert trace.latency_s() == pytest.approx(0.010)

    def test_failover_resend_adds_migrate_wait(self):
        trace = make_router_trace()
        trace.on_forward(2, 200.005)
        stages = trace.stages()
        assert trace.resends == 1
        assert stages["migrate_wait"] == pytest.approx(0.004)
        # proxy is measured from the forward that actually answered.
        assert stages["proxy"] == pytest.approx(
            trace.t_replied - 200.005)

    def test_park_and_flush_stages(self):
        trace = RouterTrace(trace_id=9, frame_type="step",
                            t_recv=300.0)
        trace.on_park(300.002)
        trace.on_park(300.003)      # re-parked: first stamp wins
        trace.on_unpark(300.010)
        trace.on_forward(1, 300.011)
        trace.t_replied = 300.020
        trace.t_done = 300.021
        stages = trace.stages()
        assert stages["route"] == pytest.approx(0.002)
        assert stages["park"] == pytest.approx(0.008)
        assert stages["flush"] == pytest.approx(0.001)
        assert trace.parks == 2

    def test_to_dict_shape(self):
        trace = make_router_trace(trace_id=0xFF)
        trace.on_forward(2, 200.005)
        entry = trace.to_dict()
        assert entry["source"] == "router"
        assert entry["trace_id"] == format_trace_id(0xFF)
        assert entry["workers"] == [0, 2]
        assert entry["resends"] == 1
        assert entry["parked"] is False
        assert "error" not in entry

    def test_to_dict_carries_error(self):
        trace = make_router_trace(status="timeout", error="boom")
        entry = trace.to_dict()
        assert entry["status"] == "timeout"
        assert entry["error"] == "boom"


class TestTraceStore:
    def test_put_get_round_trip(self):
        store = TraceStore(capacity=8)
        store.put(5, {"trace_id": "05", "latency_ms": 1.0})
        assert store.get(5) == [{"trace_id": "05", "latency_ms": 1.0}]
        assert store.get(6) == []

    def test_multiple_spans_per_id_in_order(self):
        store = TraceStore(capacity=8)
        store.put(5, {"n": 1})
        store.put(5, {"n": 2})
        assert [s["n"] for s in store.get(5)] == [1, 2]

    def test_capacity_evicts_oldest_first(self):
        store = TraceStore(capacity=3)
        for i in range(5):
            store.put(i, {"n": i})
        assert len(store) == 3
        assert store.get(0) == [] and store.get(1) == []
        assert store.get(4) == [{"n": 4}]
        assert store.stored == 5

    def test_eviction_drops_only_the_oldest_span_of_an_id(self):
        store = TraceStore(capacity=2)
        store.put(5, {"n": 1})
        store.put(5, {"n": 2})
        store.put(6, {"n": 3})
        assert [s["n"] for s in store.get(5)] == [2]

    def test_lookup_shape(self):
        store = TraceStore()
        body = store.lookup(0xAB)
        assert body == {"schema": 1, "trace_id": format_trace_id(0xAB),
                        "found": False, "spans": []}
        store.put(0xAB, {"n": 1})
        assert store.lookup(0xAB)["found"] is True

    def test_dump_limit_keeps_newest(self):
        store = TraceStore(capacity=8)
        for i in range(5):
            store.put(i, {"n": i})
        dump = store.dump(limit=2)
        assert dump["retained"] == 2
        assert [s["n"] for s in dump["spans"]] == [3, 4]
        assert dump["stored"] == 5

    def test_get_returns_copies(self):
        store = TraceStore()
        store.put(1, {"n": 1})
        store.get(1)[0]["n"] = 99
        assert store.get(1) == [{"n": 1}]

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            TraceStore(capacity=0)


class TestRenderTraceReport:
    def test_not_found(self):
        text = render_trace_report(
            {"trace_id": "ab", "found": False, "spans": []})
        assert "not found" in text

    def test_cross_process_timeline(self):
        router = make_router_trace(trace_id=0xAB)
        router.on_forward(2, 200.005)
        worker = dict(make_trace(trace_id=0xAB).to_dict(),
                      source="worker", worker=2)
        text = render_trace_report(
            {"trace_id": format_trace_id(0xAB), "found": True,
             "cluster": True, "spans": [router.to_dict(), worker]})
        assert "2 span(s), cluster" in text
        assert "router" in text and "worker 2" in text
        assert "workers 0->2" in text and "resends 1" in text
        assert "proxy" in text and "queue" in text
