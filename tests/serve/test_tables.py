"""Live table-usage observability: session stats, /tables, gauges, top.

The serve counterpart of the offline table auditor: every session
tracks level-1 write conflicts and can snapshot its live table state;
the server aggregates those into per-shard occupancy / efficiency /
aliasing, serves them on GET /tables, exports them as
``repro_serve_table_*`` gauges, and ``repro top`` renders the panel.
"""

import json

import numpy as np
import pytest

from repro.core.spec import DFCMSpec, LastValueSpec, StrideSpec
from repro.serve.client import ServeClient
from repro.serve.server import ServerThread
from repro.serve.session import Session, _AliasTracker
from repro.serve.top import render_dashboard
from tests.serve.test_obs import http_get, parse_prometheus


class TestAliasTracker:
    def test_scalar_conflict_accounting(self):
        tracker = _AliasTracker(8)
        # 0x40 and 0x60 collide on an 8-entry table: (pc >> 2) & 7 == 0.
        tracker.observe(0x40)
        assert (tracker.accesses, tracker.conflicts) == (1, 0)
        tracker.observe(0x40)  # same writer: clean
        assert tracker.conflicts == 0
        tracker.observe(0x60)  # different writer, same entry: conflict
        assert tracker.conflicts == 1
        assert tracker.ratio == pytest.approx(1 / 3)
        snapshot = tracker.snapshot()
        assert snapshot == {"accesses": 3, "conflicts": 1,
                            "ratio": round(1 / 3, 6)}

    def test_block_matches_scalar(self):
        rng = np.random.default_rng(7)
        pcs = rng.choice([0x40, 0x44, 0x60, 0x64, 0x80], size=200)
        scalar = _AliasTracker(8)
        for pc in pcs:
            scalar.observe(int(pc))
        blocked = _AliasTracker(8)
        for start in range(0, len(pcs), 33):  # uneven chunks
            blocked.observe_block(pcs[start:start + 33].astype(np.int64))
        assert blocked.snapshot() == scalar.snapshot()

    def test_empty_block_is_noop(self):
        tracker = _AliasTracker(8)
        tracker.observe_block(np.array([], dtype=np.int64))
        assert tracker.snapshot()["accesses"] == 0


class TestSessionTableStats:
    def test_engine_mode_live_bits_grow_with_training(self):
        session = Session(1, StrideSpec(64))
        assert session.table_stats()["live_bits"] == 0
        for i in range(10):
            session.outcome(0x40, 4 + i * 4)
        stats = session.table_stats()
        assert stats["session"] == 1
        assert stats["spec"] == "stride_64"
        assert stats["live_bits"] > 0
        assert stats["storage_bits"] == StrideSpec(64).storage_bits()
        assert 0 < stats["live_fraction"] <= 1
        assert stats["efficiency"] == round(
            session.hits / stats["live_bits"], 9)

    def test_scalar_mode_reports_the_same_shape(self):
        session = Session(2, DFCMSpec(64, 256), window=2)
        assert session.mode == "scalar"
        for i in range(20):
            session.outcome(0x40, i * 4)
        stats = session.table_stats()
        assert stats["live_bits"] > 0
        assert set(stats["tables"]) == {"last", "hist", "l2"}

    def test_aliasing_counters_follow_traffic(self):
        session = Session(3, LastValueSpec(8))
        session.outcome(0x40, 1)
        session.outcome(0x60, 2)  # same level-1 entry, different pc
        session.step_block([0x40, 0x60], [3, 4])
        aliasing = session.table_stats()["aliasing"]
        assert aliasing["accesses"] == 4
        assert aliasing["conflicts"] == 3

    def test_state_snapshot_matches_training(self):
        session = Session(4, LastValueSpec(64))
        session.outcome(0x40, 7)
        state = session.table_state()
        assert state["values"][(0x40 >> 2) & 63] == 7


class TestTablesEndpoint:
    def test_tables_route_serves_live_per_shard_stats(self):
        with ServerThread(shards=2, max_delay=0, obs_port=0) as server, \
                ServeClient(port=server.port) as client:
            first = client.open_session(DFCMSpec(64, 256))
            second = client.open_session(StrideSpec(64))
            for i in range(30):
                client.step(first, 0x40, i * 4)
                client.step(second, 0x44, i * 8)
            _, ctype, body = http_get(server.obs_port, "/tables")
            _, _, index = http_get(server.obs_port, "/")
        assert "json" in ctype
        assert "/tables" in json.loads(index)["endpoints"]
        report = json.loads(body)
        assert report["schema"] == 1
        totals = report["totals"]
        assert totals["sessions"] == 2
        assert totals["live_bits"] > 0
        assert totals["storage_bits"] > totals["live_bits"]
        assert 0 < totals["occupancy"] <= 1
        assert len(report["shards"]) == 2
        sessions = [s for shard in report["shards"]
                    for s in shard["sessions"]]
        assert {s["spec"] for s in sessions} == {"dfcm_l1=64_l2=256",
                                                 "stride_64"}
        for shard in report["shards"]:
            assert shard["live_bits"] == sum(
                s["live_bits"] for s in shard["sessions"])

    def test_gauges_exported_after_report(self):
        with ServerThread(shards=1, max_delay=0, obs_port=0) as server, \
                ServeClient(port=server.port) as client:
            session = client.open_session(StrideSpec(64))
            for i in range(20):
                client.step(session, 0x40, i * 4)
            http_get(server.obs_port, "/tables")  # refreshes the gauges
            _, _, text = http_get(server.obs_port, "/metrics")
        metrics, types = parse_prometheus(text)
        for name in ("repro_serve_table_occupancy",
                     "repro_serve_table_live_bits",
                     "repro_serve_table_efficiency",
                     "repro_serve_table_aliasing_ratio"):
            assert types[name] == "gauge"
            # The registry is process-global, so earlier servers in the
            # test run may have left other shard labels behind; this
            # server's shard 0 must be present and sane.
            by_shard = {labels["shard"]: v for labels, v in metrics[name]}
            assert "0" in by_shard
            assert all(v >= 0 for v in by_shard.values())
        live = {labels["shard"]: v for labels, v
                in metrics["repro_serve_table_live_bits"]}
        assert live["0"] > 0

    def test_empty_server_reports_zero_totals(self):
        with ServerThread(max_delay=0, obs_port=0) as server:
            _, _, body = http_get(server.obs_port, "/tables")
        report = json.loads(body)
        assert report["totals"]["sessions"] == 0
        assert report["totals"]["live_bits"] == 0


class TestTopPanel:
    def fake_feeds(self):
        health = {"status": "ok", "uptime_s": 1, "records_served": 10,
                  "sessions_open": 1, "shards": [], "alerts": []}
        slo = {"hit_rate": 0.5, "slos": [], "latency": {}}
        slow = {"observed": 0, "slowest": []}
        return health, slo, slow

    def test_tables_panel_rendered_when_present(self):
        health, slo, slow = self.fake_feeds()
        tables = {
            "totals": {"sessions": 2, "live_bits": 512,
                       "storage_bits": 4096, "occupancy": 0.125,
                       "efficiency": 0.031, "aliasing_ratio": 0.25},
            "shards": [{"shard": 0, "sessions_open": 2, "live_bits": 512,
                        "occupancy": 0.125, "efficiency": 0.031,
                        "aliasing_ratio": 0.25}],
        }
        frame = render_dashboard("http://x", health, slo, slow,
                                 tables=tables)
        assert "tables  occupancy 12.5%" in frame
        assert "aliasing 25.0%" in frame
        assert "shard  sessions   live bits" in frame

    def test_panel_omitted_without_tables_feed(self):
        health, slo, slow = self.fake_feeds()
        frame = render_dashboard("http://x", health, slo, slow,
                                 tables=None)
        assert "tables  occupancy" not in frame

    def test_run_top_once_against_live_server(self):
        import io

        from repro.serve.top import run_top
        with ServerThread(max_delay=0, obs_port=0) as server, \
                ServeClient(port=server.port) as client:
            session = client.open_session(StrideSpec(64))
            for i in range(10):
                client.step(session, 0x40, i * 4)
            out = io.StringIO()
            code = run_top(f"http://127.0.0.1:{server.obs_port}",
                           once=True, out=out)
        assert code == 0
        assert "tables  occupancy" in out.getvalue()
