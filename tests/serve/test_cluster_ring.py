"""Rendezvous hashing: uniformity, stability, minimal disruption."""

import pytest

from repro.serve.cluster.ring import RendezvousRing, rendezvous_score

IDS = list(range(1, 10_001))


class TestScore:
    def test_deterministic(self):
        assert rendezvous_score(3, 17) == rendezvous_score(3, 17)

    def test_64_bit_range(self):
        score = rendezvous_score(0, 1)
        assert 0 <= score < (1 << 64)

    def test_distinct_pairs_distinct_scores(self):
        scores = {rendezvous_score(w, s)
                  for w in range(4) for s in range(256)}
        assert len(scores) == 4 * 256  # no accidental collisions here


class TestAssign:
    def test_empty_ring_raises_lookup_error(self):
        with pytest.raises(LookupError):
            RendezvousRing().assign(1)

    def test_all_excluded_raises_lookup_error(self):
        ring = RendezvousRing([0, 1])
        with pytest.raises(LookupError):
            ring.assign(1, exclude=frozenset({0, 1}))

    def test_exclude_moves_off_the_owner(self):
        ring = RendezvousRing([0, 1, 2])
        owner = ring.assign(42)
        other = ring.assign(42, exclude=frozenset({owner}))
        assert other != owner
        assert other in (0, 1, 2)

    def test_single_worker_gets_everything(self):
        ring = RendezvousRing([5])
        assert all(ring.assign(sid) == 5 for sid in IDS[:100])

    def test_membership_api(self):
        ring = RendezvousRing()
        ring.add(2)
        ring.add(0)
        assert ring.workers == [0, 2]
        assert 2 in ring and 1 not in ring
        assert len(ring) == 2
        ring.discard(2)
        ring.discard(2)  # idempotent
        assert ring.workers == [0]


class TestUniformity:
    def test_balanced_over_10k_ids(self):
        ring = RendezvousRing([0, 1, 2])
        counts = {0: 0, 1: 0, 2: 0}
        for sid in IDS:
            counts[ring.assign(sid)] += 1
        assert sum(counts.values()) == len(IDS)
        expected = len(IDS) / 3
        for worker, count in counts.items():
            assert abs(count - expected) / expected < 0.10, \
                f"worker {worker} got {count} of {len(IDS)}"


class TestStability:
    def test_same_placement_across_instances(self):
        a = RendezvousRing([0, 1, 2])
        b = RendezvousRing([2, 1, 0])  # construction order irrelevant
        assert a.assignments(IDS[:1000]) == b.assignments(IDS[:1000])

    def test_restarted_slot_inherits_placement(self):
        ring = RendezvousRing([0, 1])
        before = ring.assignments(IDS[:1000])
        ring.discard(0)
        ring.add(0)  # a replacement process in the same slot
        assert ring.assignments(IDS[:1000]) == before


class TestMinimalDisruption:
    def test_leave_moves_only_the_dead_workers_sessions(self):
        ring = RendezvousRing([0, 1, 2])
        before = ring.assignments(IDS)
        ring.discard(1)
        after = ring.assignments(IDS)
        for sid in IDS:
            if before[sid] != 1:
                assert after[sid] == before[sid], \
                    f"session {sid} moved without cause"
            else:
                assert after[sid] != 1

    def test_join_steals_roughly_its_share_and_nothing_else(self):
        ring = RendezvousRing([0, 1, 2])
        before = ring.assignments(IDS)
        ring.add(3)
        after = ring.assignments(IDS)
        moved = [sid for sid in IDS if after[sid] != before[sid]]
        # Everything that moved went TO the new worker.
        assert all(after[sid] == 3 for sid in moved)
        share = len(moved) / len(IDS)
        assert 0.15 < share < 0.35  # ~1/4, generously bounded
