"""The ``repro top`` dashboard: rendering, rates, and live polling."""

import io

from repro.core.spec import StrideSpec
from repro.serve import top as top_module
from repro.serve.client import ServeClient
from repro.serve.server import ServerThread
from repro.serve.top import (_History, render_dashboard, run_top,
                             sparkline)


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_zero_uses_lowest_block(self):
        assert sparkline([0, 0, 0]) == "▁▁▁"

    def test_flat_positive_uses_mid_block(self):
        assert sparkline([5, 5]) == "▄▄"

    def test_ramp_spans_full_range(self):
        line = sparkline(list(range(9)))
        assert line[0] == "▁" and line[-1] == "█"
        assert len(line) == 9

    def test_width_keeps_latest_values(self):
        line = sparkline([0] * 50 + [100], width=5)
        assert len(line) == 5
        assert line[-1] == "█"


class TestHistory:
    def test_first_poll_has_no_rate(self):
        history = _History()
        rates = history.update({"records_served": 100, "shards": []}, {})
        assert rates["rate"] is None
        assert rates["shard_rates"] == {}

    def test_counter_deltas_become_rates(self, monkeypatch):
        clock = iter([10.0, 12.0])
        monkeypatch.setattr(top_module.time, "monotonic",
                            lambda: next(clock))
        history = _History()
        history.update({"records_served": 100,
                        "shards": [{"shard": 0, "items": 40}]},
                       {"hit_rate": 0.5})
        rates = history.update({"records_served": 300,
                                "shards": [{"shard": 0, "items": 140}]},
                               {"hit_rate": 0.6})
        assert rates["rate"] == 100.0      # 200 records over 2s
        assert rates["shard_rates"][0] == 50.0
        assert list(history.rate_series) == [100.0]
        assert list(history.hit_series) == [0.5, 0.6]

    def test_counter_reset_is_not_a_negative_rate(self, monkeypatch):
        clock = iter([10.0, 11.0])
        monkeypatch.setattr(top_module.time, "monotonic",
                            lambda: next(clock))
        history = _History()
        history.update({"records_served": 500, "shards": []}, {})
        rates = history.update({"records_served": 10, "shards": []}, {})
        assert rates["rate"] is None  # restarted server: skip the sample


class TestRenderDashboard:
    HEALTH = {
        "status": "ok", "uptime_s": 12.5, "protocol_version": 2,
        "sessions_open": 3, "connections_open": 1,
        "records_served": 1234, "hits_served": 600,
        "alerts": [],
        "shards": [{"shard": 0, "queue_depth": 2, "sessions": 2,
                    "batches": 10, "items": 700},
                   {"shard": 1, "queue_depth": 0, "sessions": 1,
                    "batches": 8, "items": 534}],
    }
    SLO = {
        "hit_rate": 0.486,
        "latency": {"count": 50, "p50_ms": 0.2, "p90_ms": 0.5,
                    "p99_ms": 1.1, "max_ms": 2.0},
        "slos": [{"name": "step_latency_p99", "kind": "latency",
                  "threshold": 0.25, "objective": 0.99,
                  "fast_burn": 0.1, "slow_burn": 0.05,
                  "alerting": False}],
    }
    SLOW = {"observed": 1234, "slowest": [
        {"trace_id": "00ab00ab00ab00ab", "type": "step_block",
         "latency_ms": 2.0,
         "stages_ms": {"queue": 0.5, "fuse": 0.1, "execute": 0.9,
                       "flush": 0.5}}]}

    def test_frame_contents(self):
        frame = render_dashboard("http://h:1", self.HEALTH, self.SLO,
                                 self.SLOW)
        assert "status: OK" in frame
        assert "records 1,234" in frame
        assert "hit-rate 48.6%" in frame
        assert "p99 1.100ms" in frame
        assert "alerts: none" in frame
        assert "step_latency_p99" in frame
        assert "00ab00ab00ab00ab" in frame
        assert "0.50/0.10/0.90/0.50" in frame  # stage breakdown
        assert "\x1b" not in frame  # screen control stays in run_top

    def test_alerts_line_lists_burns(self):
        health = dict(self.HEALTH, status="degraded",
                      alerts=["step_latency_p99"])
        slo = dict(self.SLO)
        slo["slos"] = [dict(self.SLO["slos"][0], fast_burn=3.5,
                            slow_burn=2.1, alerting=True)]
        frame = render_dashboard("http://h:1", health, slo, self.SLOW)
        assert "status: DEGRADED" in frame
        assert "ALERTS: step_latency_p99 (fast 3.5x, slow 2.1x)" in frame

    def test_empty_surfaces_render(self):
        frame = render_dashboard("http://h:1",
                                 {"status": "ok", "shards": []},
                                 {}, {})
        assert "status: OK" in frame
        assert "slowest" not in frame

    def test_older_server_without_state_fields(self):
        # HEALTH above deliberately predates --state-dir: no state
        # summary line, and the eviction column degrades to "--".
        frame = render_dashboard("http://h:1", self.HEALTH, self.SLO,
                                 self.SLOW)
        assert "state  resident" not in frame
        for line in frame.splitlines():
            if line.startswith("  ") and "queue" not in line \
                    and line.strip().startswith(("0 ", "1 ")):
                assert "--" in line

    def test_durable_state_line_and_eviction_column(self):
        health = dict(self.HEALTH, sessions_resident=2,
                      sessions_spilled=1, evictions_total=4,
                      reloads_total=3, snapshots_total=2,
                      state_dir=".state")
        health["shards"] = [dict(s, spilled=0, evictions=2, reloads=1)
                            for s in self.HEALTH["shards"]]
        frame = render_dashboard("http://h:1", health, self.SLO,
                                 self.SLOW)
        assert ("state  resident 2   spilled 1   evictions 4   "
                "reloads 3   snapshots 2   dir .state") in frame
        assert "evict" in frame  # the column header
        shard_rows = [line for line in frame.splitlines()
                      if line.strip().startswith(("0 ", "1 "))]
        assert all("2" in row for row in shard_rows)

    def test_cluster_panel_renders_worker_rows(self):
        # A cluster router's aggregated /healthz carries per-worker
        # rows; the dashboard grows a fleet panel for them.
        health = dict(self.HEALTH, cluster=True, migrations_total=3,
                      sessions_lost_total=0, sessions_parked=1,
                      workers=[
                          {"worker": 0, "pid": 101, "alive": True,
                           "status": "ok", "sessions": 2, "resident": 2,
                           "spilled": 0, "evictions": 0, "restarts": 0,
                           "alerts": []},
                          {"worker": 1, "pid": 0, "alive": False,
                           "sessions": 0, "restarts": 1,
                           "alerts": ["w1:worker_down"]},
                      ])
        frame = render_dashboard("http://h:1", health, self.SLO,
                                 self.SLOW)
        assert "cluster  1/2 workers up" in frame
        assert "migrations 3" in frame
        assert "parked 1" in frame
        assert "down" in frame  # the dead worker's state column
        assert "w1:worker_down" in frame

    def test_single_server_has_no_cluster_panel(self):
        frame = render_dashboard("http://h:1", self.HEALTH, self.SLO,
                                 self.SLOW)
        assert "cluster" not in frame
        assert "workers up" not in frame


class TestRunTop:
    def test_once_against_live_server(self):
        with ServerThread(max_delay=0, obs_port=0) as server:
            with ServeClient(port=server.port) as client:
                session = client.open_session(StrideSpec(64))
                for i in range(10):
                    client.step(session, 0x40, i)
                out = io.StringIO()
                rc = run_top(f"http://127.0.0.1:{server.obs_port}",
                             once=True, out=out)
        frame = out.getvalue()
        assert rc == 0
        assert "status: OK" in frame
        assert "records 10" in frame
        assert "\x1b" not in frame  # --once is plain text for CI logs

    def test_iterations_bound_the_loop(self):
        with ServerThread(max_delay=0, obs_port=0) as server:
            out = io.StringIO()
            rc = run_top(f"http://127.0.0.1:{server.obs_port}",
                         interval=0.01, iterations=2, out=out)
        assert rc == 0
        assert out.getvalue().count("\x1b[H\x1b[2J") == 2

    def test_dead_endpoint_is_an_error(self):
        out = io.StringIO()
        rc = run_top("http://127.0.0.1:1", once=True, out=out,
                     timeout=0.5)
        assert rc == 1
        assert out.getvalue().startswith("error: cannot poll")
