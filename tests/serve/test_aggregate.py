"""Prometheus merge/relabel edge cases (`cluster/aggregate.py`).

The fleet `/metrics` endpoint is only trustworthy if the merger
survives the awkward expositions real workers emit: samples that
already carry labels, label values containing escapes, and several
workers declaring the same family with drifting HELP text.
"""

from repro.serve.cluster.aggregate import (inject_labels,
                                           merge_prometheus_texts)


class TestInjectLabels:
    def test_bare_sample_gains_a_label_block(self):
        assert inject_labels("up 1", {"worker": "0"}) == \
            'up{worker="0"} 1'

    def test_spliced_into_existing_labels(self):
        line = 'requests_total{type="step"} 5'
        assert inject_labels(line, {"worker": "2"}) == \
            'requests_total{worker="2",type="step"} 5'

    def test_multiple_labels_in_order(self):
        assert inject_labels("up 1", {"a": "1", "b": "2"}) == \
            'up{a="1",b="2"} 1'

    def test_no_labels_is_identity(self):
        assert inject_labels("up 1", {}) == "up 1"

    def test_non_sample_line_passes_through(self):
        assert inject_labels("garbage", {"worker": "0"}) == "garbage"

    def test_escaped_label_values_survive(self):
        # A pre-existing label whose value contains an escaped quote
        # and a literal { must not confuse the splice point: the
        # injected label lands before it, byte-for-byte preserving it.
        line = 'errors_total{msg="bad \\"id{\\" seen"} 3'
        out = inject_labels(line, {"worker": "1"})
        assert out == \
            'errors_total{worker="1",msg="bad \\"id{\\" seen"} 3'

    def test_exemplar_suffix_untouched(self):
        line = ('latency_bucket{le="0.1"} 4 # {trace_id="00ab"} 0.07')
        out = inject_labels(line, {"worker": "0"})
        assert out == ('latency_bucket{worker="0",le="0.1"} 4 '
                       '# {trace_id="00ab"} 0.07')


class TestMergePrometheusTexts:
    def test_injects_worker_label_into_prelabeled_samples(self):
        text = ('# HELP req_total requests\n'
                '# TYPE req_total counter\n'
                'req_total{type="step"} 5\n')
        merged = merge_prometheus_texts(
            [({"worker": "0"}, text), ({"worker": "1"}, text)])
        assert 'req_total{worker="0",type="step"} 5' in merged
        assert 'req_total{worker="1",type="step"} 5' in merged

    def test_help_and_type_deduped_under_conflict(self):
        old = ('# HELP up liveness\n# TYPE up gauge\nup 1\n')
        new = ('# HELP up liveness (v2 wording)\n'
               '# TYPE up gauge\nup 1\n')
        merged = merge_prometheus_texts(
            [({"worker": "0"}, old), ({"worker": "1"}, new)])
        # First part's metadata wins, exactly once.
        assert merged.count("# HELP up") == 1
        assert merged.count("# TYPE up") == 1
        assert "# HELP up liveness\n" in merged
        assert "(v2 wording)" not in merged

    def test_histogram_children_group_under_base_family(self):
        text = ('# HELP lat seconds\n'
                '# TYPE lat histogram\n'
                'lat_bucket{le="+Inf"} 3\n'
                'lat_sum 0.5\n'
                'lat_count 3\n')
        merged = merge_prometheus_texts(
            [({"worker": "0"}, text), ({"worker": "1"}, text)])
        lines = merged.splitlines()
        # One header block, then every worker's child samples.
        assert lines[0] == "# HELP lat seconds"
        assert lines[1] == "# TYPE lat histogram"
        assert len([l for l in lines if l.startswith("lat_bucket")]) == 2
        assert merged.count("# TYPE lat histogram") == 1

    def test_plain_counter_ending_in_count_stays_itself(self):
        text = ('# HELP beans_count beans\n'
                '# TYPE beans_count counter\n'
                'beans_count 7\n')
        merged = merge_prometheus_texts([(None, text)])
        assert "# TYPE beans_count counter" in merged
        assert "beans_count 7" in merged

    def test_unlabelled_part_passes_through_verbatim(self):
        text = "router_frames_total 12\n"
        merged = merge_prometheus_texts([(None, text)])
        assert "router_frames_total 12" in merged

    def test_family_order_is_first_seen(self):
        a = "alpha 1\n"
        b = "beta 1\nalpha 2\n"
        merged = merge_prometheus_texts([(None, a), (None, b)])
        assert merged.index("alpha") < merged.index("beta")

    def test_empty_input(self):
        assert merge_prometheus_texts([]) == ""
