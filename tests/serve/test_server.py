"""End-to-end service tests over real sockets (thread-hosted server)."""

import threading
import time

import pytest

from repro.core.spec import DFCMSpec, StrideSpec
from repro.serve import protocol
from repro.serve.client import ServeClient, ServeError
from repro.serve.server import ServerThread, resolve_loop_factory
from repro.serve.session import Session


def workload(n, seed=0):
    pcs, values = [], []
    for i in range(n):
        pcs.append(0x400 + 4 * ((i + seed) % 7))
        values.append((11 * i + seed * 3 + (i % 4)) & 0xFFFFFFFF)
    return pcs, values


class TestRoundTrips:
    def test_mixed_ops_match_local_session(self):
        spec = DFCMSpec(64, 256)
        reference = Session(0, spec)
        with ServerThread(shards=2, max_delay=0) as server, \
                ServeClient(port=server.port) as client:
            session = client.open_session(spec)
            assert session >= 1
            pcs, values = workload(60)
            for i, (pc, value) in enumerate(zip(pcs, values)):
                if i % 3 == 0:
                    assert client.predict(session, pc) == \
                        reference.predict(pc)
                    assert client.outcome(session, pc, value) == \
                        reference.outcome(pc, value)
                elif i % 3 == 1:
                    assert client.step(session, pc, value) == \
                        reference.step(pc, value)
                else:
                    block = ([pc, pc + 4], [value, value + 9])
                    got_pred, got_hits = client.step_block(session, *block)
                    want_pred, want_hits = reference.step_block(*block)
                    assert list(got_pred) == list(want_pred)
                    assert got_hits == want_hits
            stats = client.close_session(session)
            assert stats["hits"] == reference.hits
            assert stats["predictions"] == reference.predictions

    def test_windowed_session_flush_and_stats(self):
        with ServerThread(max_delay=0) as server, \
                ServeClient(port=server.port) as client:
            session = client.open_session(DFCMSpec(64, 256), window=4)
            for pc, value in zip(*workload(10)):
                client.step(session, pc, value)
            assert client.flush(session) == 4
            stats = client.stats(session)
            assert stats["mode"] == "scalar"
            assert stats["window"] == 4
            assert stats["pending_updates"] == 4
            assert stats["outcomes"] == 10

    def test_server_stats(self):
        with ServerThread(shards=3, max_delay=0) as server, \
                ServeClient(port=server.port) as client:
            client.open_session(StrideSpec(64))
            stats = client.stats(0)
            assert stats["schema"] == 1
            assert stats["sessions_open"] == 1
            assert stats["connections_open"] == 1
            assert stats["shards"] == 3
            assert stats["draining"] is False

    def test_sessions_land_on_distinct_shards(self):
        with ServerThread(shards=2, max_delay=0) as server, \
                ServeClient(port=server.port) as client:
            ids = [client.open_session(StrideSpec(64)) for _ in range(4)]
            assert len({i % 2 for i in ids}) == 2
            for session in ids:
                client.step(session, 4, 7)
        assert server.final_stats["sessions_open"] == 4


class TestErrors:
    def test_unknown_session(self):
        with ServerThread(max_delay=0) as server, \
                ServeClient(port=server.port) as client:
            with pytest.raises(ServeError) as err:
                client.step(12345, 4, 7)
            assert err.value.code == protocol.ErrorCode.UNKNOWN_SESSION

    def test_closed_session_is_unknown(self):
        with ServerThread(max_delay=0) as server, \
                ServeClient(port=server.port) as client:
            session = client.open_session(StrideSpec(64))
            client.close_session(session)
            with pytest.raises(ServeError) as err:
                client.close_session(session)
            assert err.value.code == protocol.ErrorCode.UNKNOWN_SESSION

    def test_bad_spec(self):
        with ServerThread(max_delay=0) as server, \
                ServeClient(port=server.port) as client:
            with pytest.raises(ServeError) as err:
                client.request(protocol.FrameType.OPEN_SESSION,
                               protocol.encode_open_session(
                                   {"family": "no_such_family"}, 0))
            assert err.value.code == protocol.ErrorCode.BAD_SPEC

    def test_unknown_frame_type(self):
        with ServerThread(max_delay=0) as server, \
                ServeClient(port=server.port) as client:
            with pytest.raises(ServeError) as err:
                client.request(0x55, b"")
            assert err.value.code == protocol.ErrorCode.UNKNOWN_TYPE

    def test_connection_survives_errors(self):
        with ServerThread(max_delay=0) as server, \
                ServeClient(port=server.port) as client:
            with pytest.raises(ServeError):
                client.step(99, 4, 7)
            session = client.open_session(StrideSpec(64))
            assert client.step(session, 4, 7)[1] in (0, 1)


class TestConcurrency:
    def test_concurrent_clients_each_match_reference(self):
        spec = DFCMSpec(64, 256)
        failures = []

        def one_client(port, seed):
            try:
                reference = Session(0, spec)
                with ServeClient(port=port) as client:
                    session = client.open_session(spec)
                    pcs, values = workload(150, seed=seed)
                    for pc, value in zip(pcs, values):
                        assert client.step(session, pc, value) == \
                            reference.step(pc, value)
                    stats = client.close_session(session)
                    assert stats["hits"] == reference.hits
            except Exception as exc:  # noqa: BLE001 - reported by the test
                failures.append(exc)

        with ServerThread(shards=2, max_delay=0.001) as server:
            threads = [threading.Thread(target=one_client,
                                        args=(server.port, seed))
                       for seed in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
        assert not failures

    def test_pipelined_steps_fuse(self):
        # A generous accumulation window plus back-to-back sends makes
        # the shard worker see several STEPs for one session per batch.
        with ServerThread(shards=1, max_delay=0.05) as server, \
                ServeClient(port=server.port) as client:
            session = client.open_session(StrideSpec(64))
            pcs, values = workload(80)
            for pc, value in zip(pcs, values):
                client.send(protocol.FrameType.STEP,
                            protocol.encode_session_op(session, pc, value))
            results = [protocol.decode_step_result(client.recv().body)
                       for _ in range(len(pcs))]
            assert len(results) == 80
            # Parity with a local replay despite fusion.
            reference = Session(0, StrideSpec(64))
            expected, _ = reference.step_block(pcs, values)
            assert [p for p, _hit in results] == list(expected)
        assert server.final_stats["fused_records"] > 0


class TestLoopFactory:
    def test_default_is_stock_asyncio(self):
        factory, note = resolve_loop_factory(False)
        assert factory is None
        assert note == "asyncio"

    def test_uvloop_request_degrades_when_missing(self):
        factory, note = resolve_loop_factory(True)
        try:
            import uvloop  # noqa: F401
        except ImportError:
            assert factory is None
            assert "uvloop requested but not installed" in note
        else:
            assert factory is not None
            assert note == "uvloop"

    def test_server_thread_reports_loop_flavor(self):
        with ServerThread(max_delay=0, use_uvloop=True) as server, \
                ServeClient(port=server.port) as client:
            assert server.loop_flavor.startswith(("asyncio", "uvloop"))
            session = client.open_session(StrideSpec(64))
            assert client.step(session, 4, 7)[1] in (0, 1)


class TestDrain:
    def test_stop_answers_every_inflight_request(self):
        # A long accumulation window holds the whole pipelined burst in
        # the shard queue; stop() must still answer every request.
        with ServerThread(shards=1, max_delay=0.5) as server:
            client = ServeClient(port=server.port)
            session = client.open_session(StrideSpec(64))
            pcs, values = workload(50)
            for pc, value in zip(pcs, values):
                client.send(protocol.FrameType.STEP,
                            protocol.encode_session_op(session, pc, value))
            time.sleep(0.15)  # let the reader dispatch the burst
            stats = server.stop()
            # Every pipelined request was answered before the server
            # closed the connection; the responses sit in the socket.
            for _ in range(len(pcs)):
                frame = client.recv()
                assert frame.request_type == protocol.FrameType.STEP
            assert client.recv() is None  # clean EOF after the drain
            client.close()
            assert stats["draining"] is True

    def test_open_rejected_while_draining(self):
        server = ServerThread(max_delay=0).start()
        try:
            with ServeClient(port=server.port) as client:
                client.stats(0)  # connection fully accepted first
                server.server._stopping = True
                with pytest.raises(ServeError) as err:
                    client.open_session(StrideSpec(64))
                assert err.value.code == protocol.ErrorCode.SHUTTING_DOWN
        finally:
            server.stop()
