"""Client reconnect-on-reset: backoff schedule, transparent re-dial
across a server restart, and the opt-out path surfacing raw errors."""

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.spec import DFCMSpec
from repro.serve import protocol
from repro.serve.client import ServeClient, ServeError
from repro.serve.server import ServerThread

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def free_port():
    with socket.socket() as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def start_server(port, state_dir):
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "serve", "--json",
         "--port", str(port), "--shards", "1", "--max-delay-ms", "0",
         "--state-dir", str(state_dir)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
        text=True)
    line = proc.stdout.readline()
    if not line:
        proc.kill()
        pytest.fail(f"server did not start: {proc.stderr.read()}")
    assert json.loads(line)["event"] == "listening"
    return proc


class TestBackoffSchedule:
    def make_client(self, **kwargs):
        # No live server needed to test the schedule arithmetic.
        client = ServeClient.__new__(ServeClient)
        client.reconnect_backoff = kwargs.get("reconnect_backoff", 0.05)
        client.reconnect_backoff_max = kwargs.get(
            "reconnect_backoff_max", 2.0)
        return client

    def test_exponential_then_capped(self, monkeypatch):
        delays = []
        monkeypatch.setattr(time, "sleep", delays.append)
        client = self.make_client()
        for failures in range(1, 9):
            client._backoff(failures)
        assert delays[:6] == [0.05, 0.1, 0.2, 0.4, 0.8, 1.6]
        assert delays[6:] == [2.0, 2.0]  # capped at the max

    def test_zero_base_never_sleeps(self, monkeypatch):
        called = []
        monkeypatch.setattr(time, "sleep", called.append)
        client = self.make_client(reconnect_backoff=0.0)
        client._backoff(1)
        client._backoff(5)
        assert called == []

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            ServeClient("127.0.0.1", 1, reconnect=-1)


class TestTransparentReconnect:
    def test_survives_server_restart_mid_stream(self, tmp_path):
        """SIGKILL the server between STEPs; the client re-dials the
        replacement on the same port and the request completes (the
        un-snapshotted session is gone -- a clean server-side error,
        never a raw ECONNRESET)."""
        spec = DFCMSpec(64, 256)
        port = free_port()
        proc = start_server(port, tmp_path)
        try:
            client = ServeClient("127.0.0.1", port, reconnect=20,
                                 reconnect_backoff=0.05)
            sid = client.open_session(spec)
            client.step(sid, 0x400, 1)
            proc.kill()
            proc.wait()
            proc = start_server(port, tmp_path)
            try:
                client.step(sid, 0x404, 2)
            except ServeError as exc:
                # Whether the replacement re-adopted the arena or the
                # session died with the process, the failure mode is a
                # clean server-side answer, never a transport error.
                assert exc.code == protocol.ErrorCode.UNKNOWN_SESSION
            assert client.reconnects >= 1
            # The re-dialled connection is fully usable.
            fresh = client.open_session(spec)
            assert client.step(fresh, 0x400, 1)[0] is not None
            client.close()
        finally:
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=30)

    def test_reconnect_zero_surfaces_transport_error(self):
        spec = DFCMSpec(64, 256)
        with ServerThread(max_delay=0) as server:
            client = ServeClient("127.0.0.1", server.port, reconnect=0)
            sid = client.open_session(spec)
            # Tear the transport under the client.
            client.sock.shutdown(socket.SHUT_RDWR)
            with pytest.raises(OSError):
                client.step(sid, 0x400, 1)
            assert client.reconnects == 0
            client.close()

    def test_resent_frame_keeps_its_trace_id(self):
        """Trace continuity across reconnect: the frame re-sent after
        a torn connection must carry the *original* trace id, so the
        spans it leaves on both sides of the tear stay one trace."""
        import threading

        seen = []  # (connection_index, trace_id, request_id)

        def read_frame(conn):
            prefix = b""
            while len(prefix) < 4:
                chunk = conn.recv(4 - len(prefix))
                if not chunk:
                    return None
                prefix += chunk
            length = protocol.read_length(prefix)
            payload = b""
            while len(payload) < length:
                chunk = conn.recv(length - len(payload))
                if not chunk:
                    return None
                payload += chunk
            return protocol.decode_frame(payload)

        listener = socket.socket()
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(2)
        port = listener.getsockname()[1]

        def serve():
            # First connection: read the request, then hang up without
            # answering (a mid-request server death).
            conn, _ = listener.accept()
            frame = read_frame(conn)
            seen.append((0, frame.trace_id, frame.request_id))
            conn.close()
            # Second connection: the transparent retry; answer it.
            conn, _ = listener.accept()
            frame = read_frame(conn)
            seen.append((1, frame.trace_id, frame.request_id))
            conn.sendall(protocol.encode_frame(
                frame.type | protocol.RESPONSE_BIT, frame.request_id,
                protocol.encode_json_body({"ok": True}),
                version=frame.version, trace_id=frame.trace_id))
            conn.close()

        server = threading.Thread(target=serve, daemon=True)
        server.start()
        try:
            client = ServeClient("127.0.0.1", port, reconnect=5,
                                 reconnect_backoff=0.01)
            client._negotiated = True  # the fake never negotiates
            frame = client.request(protocol.FrameType.STATS,
                                   protocol.encode_session_op(0))
            assert protocol.decode_json_body(frame.body) == {"ok": True}
        finally:
            listener.close()
        server.join(timeout=10)
        assert len(seen) == 2
        (_, first_trace, first_rid), (_, retry_trace, retry_rid) = seen
        assert first_trace != 0
        assert retry_trace == first_trace  # pinned across the tear
        assert retry_rid != first_rid      # but a fresh request id
        assert client.last_trace_id == first_trace
        assert client.reconnects == 1

    def test_budget_exhaustion_raises_after_n_attempts(self, monkeypatch):
        port = free_port()  # nothing listening here
        delays = []
        monkeypatch.setattr(time, "sleep", delays.append)
        with ServerThread(max_delay=0) as server:
            client = ServeClient("127.0.0.1", server.port, reconnect=3)
        # Server gone: every re-dial is refused; after the budget the
        # original error propagates.
        client.close()
        client.host, client.port = "127.0.0.1", port
        client.sock = None
        with pytest.raises(OSError):
            client.request(protocol.FrameType.STATS,
                           protocol.encode_session_op(0))
        assert len(delays) == 3
