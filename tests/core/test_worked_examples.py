"""The paper's worked examples, asserted exactly.

Figure 4: a third-order FCM with a concatenating hash scatters the
repeating pattern 0 1 2 3 4 5 6 over seven level-2 entries, one per
context, each accessed once per iteration.

Figure 8: the DFCM sees the same pattern as difference history; the
context (1, 1, 1) is accessed four times per iteration and the three
reset-related contexts ((1, 1, -6), (1, -6, 1), (-6, 1, 1)) once each.
"""

from collections import Counter

from repro.core.dfcm import DFCMPredictor
from repro.core.fcm import FCMPredictor
from repro.core.hashing import ConcatHash


PATTERN = [0, 1, 2, 3, 4, 5, 6]


def drive(predictor, iterations, warmup_iterations):
    """Run the repeating pattern; returns Counter of L2 accesses after
    the warmup (steady state)."""
    pc = 0x1000
    accesses = Counter()
    total = len(PATTERN) * (warmup_iterations + iterations)
    for i in range(total):
        if i >= len(PATTERN) * warmup_iterations:
            accesses[predictor.l2_index(pc)] += 1
        predictor.update(pc, PATTERN[i % len(PATTERN)])
    return accesses


class TestFigure4:
    def test_fcm_uses_seven_entries_equally(self):
        p = FCMPredictor(64, 1 << 12, hash_fn=ConcatHash(12, order=3))
        accesses = drive(p, iterations=10, warmup_iterations=2)
        assert len(accesses) == 7
        assert all(count == 10 for count in accesses.values())

    def test_contexts_match_papers_table(self):
        # The paper's Figure 4 lists the seven contexts explicitly.
        h = ConcatHash(12, order=3)
        p = FCMPredictor(64, 1 << 12, hash_fn=h)
        pc = 0x1000
        for i in range(21):  # three warmup iterations
            p.update(pc, PATTERN[i % 7])
        # History is now (5, 6, 0) (oldest first after 21 values ...
        # last three were 4 5 6 -> next context)
        expected_context = [4, 5, 6]
        assert p.l2_index(pc) == h.of_history(expected_context)


class TestFigure8:
    def test_dfcm_access_distribution(self):
        # Contexts of the difference history (order 3, differences of
        # the repeating 0..6 pattern: 1 1 1 1 1 1 -6):
        #   (1,1,1)  -> 4 accesses per iteration
        #   (1,1,-6), (1,-6,1), (-6,1,1) -> 1 access each
        p = DFCMPredictor(64, 1 << 12, hash_fn=ConcatHash(12, order=3))
        accesses = drive(p, iterations=10, warmup_iterations=2)
        assert len(accesses) == 4
        counts = sorted(accesses.values(), reverse=True)
        assert counts == [40, 10, 10, 10]

    def test_dfcm_uses_strictly_fewer_entries_than_fcm(self):
        fcm = FCMPredictor(64, 1 << 12, hash_fn=ConcatHash(12, order=3))
        dfcm = DFCMPredictor(64, 1 << 12, hash_fn=ConcatHash(12, order=3))
        fcm_accesses = drive(fcm, 10, 2)
        dfcm_accesses = drive(dfcm, 10, 2)
        assert len(dfcm_accesses) < len(fcm_accesses)

    def test_all_same_stride_patterns_map_to_one_entry(self):
        # "all stride patterns with the same stride map to the same
        # entries" -- two different PCs with different ranges.
        p = DFCMPredictor(1 << 6, 1 << 12, hash_fn=ConcatHash(12, order=3))
        pc_a, pc_b = 0x1000, 0x1004
        for i in range(20):
            p.update(pc_a, i)
            p.update(pc_b, 1_000 + i)
        assert p.l2_index(pc_a) == p.l2_index(pc_b)
