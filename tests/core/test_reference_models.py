"""Model-based testing: fast predictors vs naive reference models.

Each reference model re-implements a predictor in the most direct way
possible (explicit histories in dicts, no incremental hashing, no flat
tables) and must agree with the optimised implementation on every
prediction of every hypothesis-generated trace.  Divergence localises
bugs in the table indexing, the incremental hash, or the wrap-around
arithmetic.
"""

from __future__ import annotations

from collections import defaultdict, deque

from hypothesis import given, settings, strategies as st

from repro.core.dfcm import DFCMPredictor
from repro.core.fcm import FCMPredictor
from repro.core.hashing import FoldShiftHash, fold
from repro.core.last_value import LastValuePredictor
from repro.core.stride import StridePredictor

MASK = 0xFFFFFFFF


class ReferenceFCM:
    """Order-k FCM with explicit (non-incremental) hashing."""

    def __init__(self, l1_entries: int, l2_entries: int):
        self.l1_mask = l1_entries - 1
        self.index_bits = l2_entries.bit_length() - 1
        self.order = FoldShiftHash(self.index_bits).order
        self.histories = defaultdict(lambda: deque(maxlen=self.order))
        self.l2 = defaultdict(int)

    def _index(self, l1_index: int) -> int:
        # Explicit FS(R-5): fold each history value, shift by 5*age
        # (age 0 = newest), XOR.  Must equal the incremental form.
        index = 0
        history = self.histories[l1_index]
        for age, value in enumerate(reversed(history)):
            index ^= fold(value, self.index_bits) << (5 * age)
        return index & ((1 << self.index_bits) - 1)

    def predict(self, pc: int) -> int:
        return self.l2[self._index((pc >> 2) & self.l1_mask)]

    def update(self, pc: int, value: int) -> None:
        value &= MASK
        l1_index = (pc >> 2) & self.l1_mask
        self.l2[self._index(l1_index)] = value
        self.histories[l1_index].append(value)


class ReferenceDFCM:
    """DFCM with explicit difference histories."""

    def __init__(self, l1_entries: int, l2_entries: int):
        self.fcm = ReferenceFCM(l1_entries, l2_entries)
        self.last = defaultdict(int)
        self.l1_mask = l1_entries - 1

    def predict(self, pc: int) -> int:
        l1_index = (pc >> 2) & self.l1_mask
        stride = self.fcm.l2[self.fcm._index(l1_index)]
        return (self.last[l1_index] + stride) & MASK

    def update(self, pc: int, value: int) -> None:
        value &= MASK
        l1_index = (pc >> 2) & self.l1_mask
        stride = (value - self.last[l1_index]) & MASK
        self.fcm.l2[self.fcm._index(l1_index)] = stride
        self.fcm.histories[l1_index].append(stride)
        self.last[l1_index] = value


class ReferenceStride:
    """Stride predictor with the paper's confidence gate, dict-based."""

    def __init__(self, entries: int):
        self.mask = entries - 1
        self.last = defaultdict(int)
        self.stride = defaultdict(int)
        self.conf = defaultdict(int)

    def predict(self, pc: int) -> int:
        index = (pc >> 2) & self.mask
        return (self.last[index] + self.stride[index]) & MASK

    def update(self, pc: int, value: int) -> None:
        value &= MASK
        index = (pc >> 2) & self.mask
        correct = self.predict(pc) == value
        replace = self.conf[index] < 7
        self.conf[index] = (min(7, self.conf[index] + 1) if correct
                            else max(0, self.conf[index] - 2))
        if replace:
            self.stride[index] = (value - self.last[index]) & MASK
        self.last[index] = value


# Traces: bursts of per-PC structure (constants/strides/noise) over a
# handful of PCs, so table sharing and history mixing actually happen.
def trace_strategy():
    pc = st.sampled_from([0x1000, 0x1004, 0x1008, 0x2000])
    value = st.one_of(
        st.integers(0, 20),
        st.integers(0, MASK),
        st.just(0xFFFFFFF0),
    )
    return st.lists(st.tuples(pc, value), min_size=1, max_size=120)


@settings(max_examples=80, deadline=None)
@given(records=trace_strategy())
def test_fcm_matches_reference(records):
    fast = FCMPredictor(4, 1 << 8)
    model = ReferenceFCM(4, 1 << 8)
    for pc, value in records:
        assert fast.predict(pc) == model.predict(pc)
        fast.update(pc, value)
        model.update(pc, value)


@settings(max_examples=80, deadline=None)
@given(records=trace_strategy())
def test_dfcm_matches_reference(records):
    fast = DFCMPredictor(4, 1 << 8)
    model = ReferenceDFCM(4, 1 << 8)
    for pc, value in records:
        assert fast.predict(pc) == model.predict(pc)
        fast.update(pc, value)
        model.update(pc, value)


@settings(max_examples=80, deadline=None)
@given(records=trace_strategy())
def test_stride_matches_reference(records):
    fast = StridePredictor(4)
    model = ReferenceStride(4)
    for pc, value in records:
        assert fast.predict(pc) == model.predict(pc)
        fast.update(pc, value)
        model.update(pc, value)


@settings(max_examples=60, deadline=None)
@given(records=trace_strategy(),
       l2_bits=st.sampled_from([8, 10, 12]))
def test_fcm_reference_across_table_sizes(records, l2_bits):
    fast = FCMPredictor(4, 1 << l2_bits)
    model = ReferenceFCM(4, 1 << l2_bits)
    for pc, value in records:
        assert fast.predict(pc) == model.predict(pc)
        fast.update(pc, value)
        model.update(pc, value)


@settings(max_examples=60, deadline=None)
@given(records=trace_strategy())
def test_lvp_trivially_matches_dict_model(records):
    fast = LastValuePredictor(4)
    model = defaultdict(int)
    for pc, value in records:
        assert fast.predict(pc) == model[(pc >> 2) & 3]
        fast.update(pc, value)
        model[(pc >> 2) & 3] = value & MASK
