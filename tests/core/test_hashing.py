"""Tests for the history hash family (repro.core.hashing)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.hashing import (
    ConcatHash,
    FoldShiftHash,
    XorFoldHash,
    fold,
    make_hash,
    order_for_index_bits,
)

u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)


class TestFold:
    def test_identity_at_32_bits(self):
        assert fold(0xDEADBEEF, 32) == 0xDEADBEEF

    def test_parity_at_1_bit(self):
        assert fold(0b1011, 1) == 1
        assert fold(0b1001, 1) == 0

    def test_known_16_bit_fold(self):
        # 0x12345678 -> 0x1234 ^ 0x5678
        assert fold(0x12345678, 16) == 0x1234 ^ 0x5678

    def test_known_8_bit_fold(self):
        assert fold(0x12345678, 8) == 0x12 ^ 0x34 ^ 0x56 ^ 0x78

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            fold(1, 0)
        with pytest.raises(ValueError):
            fold(1, 33)

    @given(u32, st.integers(min_value=1, max_value=32))
    def test_result_fits_width(self, value, n):
        assert 0 <= fold(value, n) < (1 << n)

    @given(u32, u32, st.integers(min_value=1, max_value=32))
    def test_fold_is_xor_homomorphic(self, a, b, n):
        # Folding distributes over XOR: chunks XOR independently.
        assert fold(a ^ b, n) == fold(a, n) ^ fold(b, n)


class TestOrderCoupling:
    def test_paper_table(self):
        # L2 size  2^8 2^10 2^12 2^14 2^16 2^18 2^20
        # order     2    2    3    3    4    4    4
        expected = {8: 2, 10: 2, 12: 3, 14: 3, 16: 4, 18: 4, 20: 4}
        for bits, order in expected.items():
            assert order_for_index_bits(bits) == order

    def test_other_shift(self):
        assert order_for_index_bits(12, shift=3) == 4
        assert order_for_index_bits(12, shift=12) == 1

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            order_for_index_bits(0)
        with pytest.raises(ValueError):
            order_for_index_bits(8, shift=0)


class TestFoldShiftHash:
    def test_default_order_follows_paper(self):
        assert FoldShiftHash(12).order == 3
        assert FoldShiftHash(20).order == 4

    def test_incremental_equals_explicit(self):
        # Advancing the state value-by-value must equal hashing the
        # last `order` values of the stream from scratch.
        h = FoldShiftHash(10)  # order 2
        stream = [7, 13, 0xFFFF, 42, 0x12345678, 9, 9, 1 << 31]
        state = h.initial_state
        for i, value in enumerate(stream):
            state = h.step(state, value)
            window = stream[max(0, i + 1 - h.order): i + 1]
            # Explicit hash of the window, oldest first, assuming the
            # pre-window contribution has shifted out.
            expected = 0
            for age, v in enumerate(reversed(window)):
                expected ^= fold(v, h.index_bits) << (h.shift * age)
            expected &= h.mask
            if len(window) == h.order:
                assert h.index(state) == expected

    def test_oldest_value_shifts_out(self):
        # After `order` further insertions a value no longer affects
        # the index (this is what makes the hash incremental).
        h = FoldShiftHash(8)  # order 2, shift 5
        a = h.step(h.initial_state, 0xABCDEF01)
        b = h.step(h.initial_state, 0x12345678)
        tail = [3, 4]
        for v in tail:
            a = h.step(a, v)
            b = h.step(b, v)
        assert h.index(a) == h.index(b)

    def test_rejects_non_incremental_order(self):
        with pytest.raises(ValueError):
            FoldShiftHash(12, order=2)  # 5*2 < 12

    def test_distinguishes_recency(self):
        # FS(R-5) is position-sensitive: [a, b] and [b, a] differ
        # (unlike a plain XOR fold).
        h = FoldShiftHash(10, order=2)
        assert h.of_history([1, 2]) != h.of_history([2, 1])

    @given(st.lists(u32, min_size=1, max_size=8))
    def test_index_in_range(self, history):
        h = FoldShiftHash(12)
        assert 0 <= h.of_history(history) < (1 << 12)


class TestXorFoldHash:
    def test_order_insensitive_within_window(self):
        h = XorFoldHash(8, order=2)
        assert h.of_history([1, 2]) == h.of_history([2, 1])

    def test_window_limited(self):
        h = XorFoldHash(8, order=2)
        assert h.of_history([99, 1, 2]) == h.of_history([1, 2])

    @given(st.lists(u32, min_size=1, max_size=6))
    def test_index_in_range(self, history):
        h = XorFoldHash(6, order=3)
        assert 0 <= h.of_history(history) < (1 << 6)


class TestConcatHash:
    def test_small_values_are_collision_free(self):
        # With 12 index bits and order 3, values < 16 concatenate
        # exactly -- the assumption behind Figures 4 and 8.
        h = ConcatHash(12, order=3)
        seen = {}
        for a in range(8):
            for b in range(8):
                for c in range(8):
                    idx = h.of_history([a, b, c])
                    assert seen.setdefault(idx, (a, b, c)) == (a, b, c)

    def test_paper_figure4_contexts(self):
        # The seven order-3 contexts of the repeating 0..6 pattern all
        # map to distinct entries (FCM scatters the stride pattern).
        h = ConcatHash(12, order=3)
        pattern = [0, 1, 2, 3, 4, 5, 6]
        contexts = [
            [pattern[i % 7], pattern[(i + 1) % 7], pattern[(i + 2) % 7]]
            for i in range(7)
        ]
        indices = {h.of_history(c) for c in contexts}
        assert len(indices) == 7


class TestMakeHash:
    def test_factory_kinds(self):
        assert isinstance(make_hash("fs", 12), FoldShiftHash)
        assert isinstance(make_hash("xor", 12, order=2), XorFoldHash)
        assert isinstance(make_hash("concat", 12, order=3), ConcatHash)

    def test_fs_shift_kwarg(self):
        h = make_hash("fs", 12, shift=3)
        assert h.shift == 3 and h.order == 4

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_hash("md5", 12)

    def test_order_required_for_non_fs(self):
        with pytest.raises(ValueError):
            make_hash("xor", 12)
