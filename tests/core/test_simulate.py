"""Tests for the measurement harness (repro.harness.simulate)."""

import pytest

from repro.core.fcm import FCMPredictor
from repro.core.hybrid import OracleHybridPredictor
from repro.core.last_value import LastValuePredictor
from repro.core.stride import StridePredictor
from repro.harness.simulate import measure_accuracy, measure_suite
from repro.trace.trace import ValueTrace
from tests.conftest import repeating_trace, stride_trace


class TestMeasureAccuracy:
    def test_counts_match_manual_stepping(self):
        trace = stride_trace("s", 0x1000, 0, 2, 50)
        manual = StridePredictor(64)
        expected = sum(manual.step(pc, v) for pc, v in trace.records())
        result = measure_accuracy(StridePredictor(64), trace)
        assert result.correct == expected
        assert result.total == 50

    def test_uses_overridden_step_for_oracles(self):
        # The oracle hybrid's correctness is defined by its step();
        # the harness must not fall back to predict/update.
        trace = stride_trace("s", 0x1000, 5, 3, 60)
        oracle = OracleHybridPredictor(
            [LastValuePredictor(64), StridePredictor(64)])
        result = measure_accuracy(oracle, trace)
        stride_alone = measure_accuracy(StridePredictor(64), trace)
        assert result.correct >= stride_alone.correct

    def test_empty_trace(self):
        trace = ValueTrace("empty", [], [])
        result = measure_accuracy(LastValuePredictor(16), trace)
        assert result.total == 0 and result.accuracy == 0.0

    def test_result_metadata(self):
        trace = repeating_trace("c", 0, [1], 10)
        result = measure_accuracy(LastValuePredictor(16), trace)
        assert result.trace_name == "c"
        assert result.predictor_name == "lvp_16"


class TestMeasureSuite:
    def test_weighted_mean_is_pooled_ratio(self):
        # Paper metric: weighted by number of predicted instructions.
        long_easy = repeating_trace("easy", 0x1000, [1], 300)
        short_hard = ValueTrace("hard", [0x2000] * 30,
                                [(i * 17 + i * i) % 2**32 for i in range(30)])
        suite = measure_suite(lambda: LastValuePredictor(64),
                              [long_easy, short_hard])
        pooled = suite.correct / suite.total
        assert suite.accuracy == pytest.approx(pooled)
        # The long benchmark dominates the weighted mean.
        unweighted = (suite.accuracy_of("easy") + suite.accuracy_of("hard")) / 2
        assert suite.accuracy > unweighted

    def test_fresh_predictor_per_trace(self):
        # Training must not leak across benchmarks: measuring the same
        # trace twice gives identical results.
        trace = stride_trace("s", 0x1000, 0, 1, 80)
        suite = measure_suite(
            lambda: FCMPredictor(64, 1 << 10),
            [trace, ValueTrace("s2", trace.pcs, trace.values)])
        assert (suite.per_trace["s"].correct
                == suite.per_trace["s2"].correct)

    def test_requires_traces(self):
        with pytest.raises(ValueError):
            measure_suite(lambda: LastValuePredictor(16), [])

    def test_per_trace_results_keyed_by_name(self):
        traces = [repeating_trace(n, 0x1000, [3], 20) for n in ("a", "b")]
        suite = measure_suite(lambda: LastValuePredictor(16), traces)
        assert set(suite.per_trace) == {"a", "b"}
