"""Tests for the alias taxonomy (paper section 4.2)."""

import pytest

from repro.core.aliasing import ALIAS_CATEGORIES, AliasReport, AliasingAnalyzer
from repro.core.dfcm import DFCMPredictor
from repro.core.fcm import FCMPredictor
from repro.core.last_value import LastValuePredictor
from tests.conftest import interleaved, repeating_trace, stride_trace


class TestAliasReport:
    def test_fractions_sum_to_one(self):
        report = AliasReport()
        report.record("none", True)
        report.record("hash", False)
        report.record("l2_pc", True)
        report.record("l2_pc", False)
        total = sum(report.fraction_of_predictions(c) for c in ALIAS_CATEGORIES)
        assert total == pytest.approx(1.0)

    def test_misprediction_fractions_stack_to_global_rate(self):
        report = AliasReport()
        report.record("none", True)
        report.record("hash", False)
        report.record("l1", False)
        stacked = sum(report.misprediction_fraction(c) for c in ALIAS_CATEGORIES)
        assert stacked == pytest.approx(1 - report.overall_accuracy())

    def test_merge_pools_counts(self):
        a, b = AliasReport(), AliasReport()
        a.record("none", True)
        b.record("none", False)
        b.record("hash", False)
        merged = a.merged_with(b)
        assert merged.total["none"] == 2 and merged.correct["none"] == 1
        assert merged.predictions == 3

    def test_empty_report_is_safe(self):
        report = AliasReport()
        assert report.overall_accuracy() == 0.0
        assert report.accuracy("none") == 0.0
        assert report.fraction_of_predictions("l1") == 0.0


class TestAliasingAnalyzerFCM:
    def test_only_instruments_context_predictors(self):
        with pytest.raises(TypeError):
            AliasingAnalyzer(LastValuePredictor(16))

    def test_single_repeating_pattern_is_alias_free_in_steady_state(self):
        # One instruction, private tables by construction: after the
        # learning phase everything should classify none/l2_pc-free.
        pattern = [4, 9, 1, 7, 12]
        analyzer = AliasingAnalyzer(FCMPredictor(64, 1 << 12))
        trace = repeating_trace("c", 0x1000, pattern, 40)
        report = analyzer.run(trace.records())
        # No other instruction exists: l1 and l2_pc are impossible.
        assert report.total["l1"] == 0
        assert report.total["l2_pc"] == 0
        assert report.total["none"] > 0

    def test_none_category_is_highly_accurate(self):
        # Figure 12: no detected aliasing => the FCM principle works.
        pattern = [4, 9, 1, 7, 12, 3, 8]
        analyzer = AliasingAnalyzer(FCMPredictor(64, 1 << 14))
        trace = repeating_trace("c", 0x1000, pattern, 60)
        report = analyzer.run(trace.records())
        assert report.accuracy("none") > 0.95

    def test_l1_aliasing_detected_on_level1_conflict(self):
        # Two instructions forced into a single L1 entry contaminate
        # each other's history.
        analyzer = AliasingAnalyzer(FCMPredictor(1, 1 << 12))
        a = repeating_trace("a", 0x1000, [3, 1, 4], 30)
        b = repeating_trace("b", 0x2000, [2, 7, 2], 30)
        report = analyzer.run(interleaved(a, b).records())
        # With one L1 entry shared by two PCs, essentially every
        # prediction uses a contaminated history.
        assert report.total["l1"] > 150

    def test_l1_aliasing_with_nonperiodic_interference_mispredicts(self):
        # When the interfering instruction never repeats (a ramp), the
        # contaminated joint history is unpredictable.
        analyzer = AliasingAnalyzer(FCMPredictor(1, 1 << 12))
        a = repeating_trace("a", 0x1000, [3, 1, 4], 40)
        b = stride_trace("b", 0x2000, 1, 17, 120)
        report = analyzer.run(interleaved(a, b).records())
        assert report.total["l1"] > 100
        assert report.accuracy("l1") < 0.5

    def test_l2_pc_detected_for_identical_patterns(self):
        # Two instructions with the *same* pattern and separate L1
        # entries share L2 entries constructively: tag mismatch, but
        # histories match.
        analyzer = AliasingAnalyzer(FCMPredictor(1 << 10, 1 << 12))
        a = repeating_trace("a", 0x1000, [5, 9, 2], 30)
        b = repeating_trace("b", 0x1004, [5, 9, 2], 30)
        report = analyzer.run(interleaved(a, b).records())
        assert report.total["l2_pc"] > 0
        # Paper: "aliasing between identical patterns originating from
        # different instructions is not destructive".
        assert report.accuracy("l2_pc") > 0.8

    def test_first_rule_wins_ordering(self):
        # A prediction with both an L1 conflict and a hash mismatch
        # counts as l1 only (categories are mutually exclusive).
        analyzer = AliasingAnalyzer(FCMPredictor(1, 1 << 8))
        a = stride_trace("a", 0x1000, 0, 3, 50)
        b = stride_trace("b", 0x2000, 7, 11, 50)
        report = analyzer.run(interleaved(a, b).records())
        assert report.predictions == 100
        assert sum(report.total.values()) == 100


class TestAliasingAnalyzerDFCM:
    def test_runs_and_classifies_every_prediction(self):
        analyzer = AliasingAnalyzer(DFCMPredictor(64, 1 << 10))
        trace = stride_trace("s", 0x1000, 0, 2, 100)
        report = analyzer.run(trace.records())
        assert report.predictions == 100

    def test_dfcm_shifts_hash_aliasing_to_l2_pc(self):
        # Section 4.2's key observation: for stride-heavy workloads the
        # DFCM intentionally maps many contexts to the same entry
        # (l2_pc) instead of colliding quasi-randomly (hash).
        records = interleaved(
            stride_trace("a", 0x1000, 0, 1, 200),
            stride_trace("b", 0x1004, 10_000, 1, 200),
            stride_trace("c", 0x1008, 123, 1, 200),
        ).records()
        fcm_report = AliasingAnalyzer(FCMPredictor(1 << 10, 1 << 8)).run(records)
        dfcm_report = AliasingAnalyzer(DFCMPredictor(1 << 10, 1 << 8)).run(records)
        assert dfcm_report.total["l2_pc"] > fcm_report.total["l2_pc"]
        assert dfcm_report.total["hash"] < fcm_report.total["hash"]

    def test_dfcm_l2_pc_sharing_is_not_destructive(self):
        records = interleaved(
            stride_trace("a", 0x1000, 0, 1, 150),
            stride_trace("b", 0x1004, 999, 1, 150),
        ).records()
        report = AliasingAnalyzer(DFCMPredictor(1 << 10, 1 << 10)).run(records)
        assert report.accuracy("l2_pc") > 0.9

    def test_analyzer_accuracy_matches_uninstrumented_predictor(self):
        # The shadow bookkeeping must not change predictions.
        from repro.harness.simulate import measure_accuracy
        trace = interleaved(
            stride_trace("a", 0x1000, 5, 3, 120),
            repeating_trace("b", 0x1004, [7, 1, 7, 2], 30),
        )
        plain = measure_accuracy(DFCMPredictor(64, 1 << 10), trace)
        report = AliasingAnalyzer(DFCMPredictor(64, 1 << 10)).run(trace.records())
        assert report.overall_accuracy() == pytest.approx(plain.accuracy)
