"""Tests for the shared 32-bit word helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.core.types import (MASK32, is_power_of_two, require_power_of_two,
                              to_s32, to_u32)


class TestWordHelpers:
    def test_to_u32(self):
        assert to_u32(-1) == 0xFFFFFFFF
        assert to_u32(2**32) == 0
        assert to_u32(5) == 5

    def test_to_s32(self):
        assert to_s32(0xFFFFFFFF) == -1
        assert to_s32(0x7FFFFFFF) == 2**31 - 1
        assert to_s32(0x80000000) == -(2**31)
        assert to_s32(7) == 7

    @given(st.integers(-2**40, 2**40))
    def test_roundtrip(self, value):
        assert to_u32(to_s32(value)) == value & MASK32
        assert to_s32(to_u32(value)) == to_s32(value)

    @given(st.integers(-2**40, 2**40))
    def test_s32_range(self, value):
        assert -(2**31) <= to_s32(value) < 2**31


class TestPowerOfTwo:
    def test_classification(self):
        assert is_power_of_two(1)
        assert is_power_of_two(1 << 20)
        assert not is_power_of_two(0)
        assert not is_power_of_two(-4)
        assert not is_power_of_two(24)

    def test_require_raises_with_context(self):
        with pytest.raises(ValueError, match="widget count"):
            require_power_of_two(3, "widget count")
        require_power_of_two(8, "fine")  # no raise

    @given(st.integers(min_value=0, max_value=30))
    def test_all_powers_pass(self, exponent):
        assert is_power_of_two(1 << exponent)
