"""Tests for the last value predictor."""

import pytest
from hypothesis import given, strategies as st

from repro.core.last_value import LastValuePredictor
from repro.harness.simulate import measure_accuracy
from tests.conftest import repeating_trace, stride_trace


class TestLastValuePredictor:
    def test_perfect_on_constants(self):
        trace = repeating_trace("const", 0x1000, [42], 100)
        result = measure_accuracy(LastValuePredictor(64), trace)
        # Only the very first (cold) prediction misses.
        assert result.correct == 99

    def test_useless_on_strides(self):
        trace = stride_trace("count", 0x1000, 5, 1, 100)
        result = measure_accuracy(LastValuePredictor(64), trace)
        assert result.correct == 0

    def test_aliasing_between_pcs(self):
        # Two PCs mapping to the same entry destroy each other's value.
        p = LastValuePredictor(2)
        pc_a, pc_b = 0x1000, 0x1000 + 2 * 4  # same index mod 2
        p.update(pc_a, 7)
        assert p.predict(pc_b) == 7

    def test_values_wrap_to_32_bits(self):
        p = LastValuePredictor(4)
        p.update(0, 2**40 + 5)
        assert p.predict(0) == 5

    def test_storage(self):
        assert LastValuePredictor(64).storage_bits() == 64 * 32
        assert LastValuePredictor(1 << 16).storage_kbit() == 2048.0

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            LastValuePredictor(100)

    @given(st.lists(st.tuples(st.integers(0, 2**20), st.integers(0, 2**32 - 1)),
                    min_size=1, max_size=60))
    def test_predicts_last_seen_value(self, records):
        p = LastValuePredictor(1 << 12)
        last_by_index = {}
        for pc, value in records:
            index = (pc >> 2) & (p.entries - 1)
            assert p.predict(pc) == last_by_index.get(index, 0)
            p.update(pc, value)
            last_by_index[index] = value
