"""Tests for the stride predictors."""

import pytest
from hypothesis import given, strategies as st

from repro.core.stride import StridePredictor, TwoDeltaStridePredictor
from repro.harness.simulate import measure_accuracy
from tests.conftest import repeating_trace, stride_trace


class TestStridePredictor:
    def test_learns_a_stride_quickly(self):
        p = StridePredictor(64)
        pc = 0x1000
        for value in [10, 13, 16, 19]:
            p.update(pc, value)
        assert p.predict(pc) == 22

    def test_perfect_on_constant_pattern(self):
        trace = repeating_trace("const", 0x1000, [5], 50)
        result = measure_accuracy(StridePredictor(64), trace)
        # Two cold misses: the first value, and the bogus stride it
        # momentarily installs (5 - 0) before the constant settles.
        assert result.correct >= 48

    def test_accuracy_on_pure_stride(self):
        trace = stride_trace("count", 0x1000, 0, 3, 100)
        result = measure_accuracy(StridePredictor(64), trace)
        # Cold start costs a couple of predictions, then perfect.
        assert result.correct >= 97

    def test_negative_strides_work(self):
        trace = stride_trace("down", 0x1000, 1000, -7, 50)
        result = measure_accuracy(StridePredictor(64), trace)
        assert result.correct >= 47

    def test_stride_wraps_mod_32_bits(self):
        p = StridePredictor(4)
        p.update(0, 0xFFFFFFFE)
        p.update(0, 0xFFFFFFFF)
        # stride 1 established; next prediction wraps to 0.
        assert p.predict(0) == 0

    def test_confident_stride_survives_one_disturbance(self):
        # The point of the confidence gate: after the counter
        # saturates, a single off-pattern value does not replace the
        # stride (a loop reset costs few mispredictions).
        p = StridePredictor(64)
        pc = 0x1000
        for i in range(20):  # saturate confidence on stride 1
            p.update(pc, i)
        p.update(pc, 0)  # loop restarts
        assert p.predict(pc) == 1  # stride 1 retained: predicts 0+1

    def test_unconfident_stride_is_replaced(self):
        p = StridePredictor(64)
        pc = 0x1000
        p.update(pc, 0)
        p.update(pc, 10)   # stride 10, no confidence yet
        p.update(pc, 13)   # stride replaced by 3
        assert p.predict(pc) == 16

    def test_storage_includes_counter(self):
        assert StridePredictor(64).storage_bits() == 64 * (32 + 32 + 3)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            StridePredictor(48)

    @given(st.integers(0, 2**32 - 1), st.integers(-1000, 1000),
           st.integers(5, 40))
    def test_eventually_perfect_on_any_stride(self, start, stride, length):
        p = StridePredictor(16)
        pc = 0x2000
        wrong = 0
        for i in range(length):
            value = (start + i * stride) & 0xFFFFFFFF
            if p.predict(pc) != value:
                wrong += 1
            p.update(pc, value)
        assert wrong <= 2  # cold start only


class TestTwoDeltaStridePredictor:
    def test_learns_stride_on_second_repeat(self):
        p = TwoDeltaStridePredictor(16)
        pc = 0
        p.update(pc, 10)
        p.update(pc, 13)  # s2 = 3
        assert p.predict(pc) != 16  # not yet promoted
        p.update(pc, 16)  # 3 twice in a row -> s1 = 3
        assert p.predict(pc) == 19

    def test_loop_reset_costs_one_misprediction(self):
        p = TwoDeltaStridePredictor(16)
        pc = 0
        for i in range(10):
            p.update(pc, i)
        assert p.predict(pc) == 10
        p.update(pc, 0)  # reset: stride -10 seen once, not promoted
        assert p.predict(pc) == 1  # still stride 1

    def test_storage(self):
        assert TwoDeltaStridePredictor(8).storage_bits() == 8 * 96

    def test_accuracy_close_to_confidence_variant_on_strides(self):
        trace = stride_trace("count", 0x1000, 100, 4, 200)
        two_delta = measure_accuracy(TwoDeltaStridePredictor(64), trace)
        gated = measure_accuracy(StridePredictor(64), trace)
        assert abs(two_delta.correct - gated.correct) <= 3
