"""Tests for the DFCM predictor (the paper's contribution)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.dfcm import DFCMPredictor
from repro.core.fcm import FCMPredictor
from repro.core.hashing import ConcatHash
from repro.harness.simulate import measure_accuracy
from tests.conftest import repeating_trace, stride_trace


class TestDFCMPredictor:
    def test_predicts_stride_pattern_without_repetition(self):
        # Section 3: "the DFCM can correctly predict stride patterns,
        # even if they have not been repeated yet" -- a fresh linear
        # ramp is predicted almost immediately.
        trace = stride_trace("ramp", 0x1000, 1000, 4, 60)
        result = measure_accuracy(DFCMPredictor(64, 1 << 12), trace)
        # Cold mispredictions only while the order-3 difference history
        # fills (~5 records); after that the ramp is predicted exactly.
        assert result.correct >= 54

    def test_fcm_needs_repetition_dfcm_does_not(self):
        trace = stride_trace("ramp", 0x1000, 7, 1, 50)  # never repeats
        fcm = measure_accuracy(FCMPredictor(64, 1 << 12), trace)
        dfcm = measure_accuracy(DFCMPredictor(64, 1 << 12), trace)
        assert fcm.correct == 0
        assert dfcm.correct >= 44

    def test_stride_pattern_occupies_one_l2_entry_in_steady_state(self):
        # Section 3 / Figure 8: once the stride history is constant,
        # every access uses the same level-2 entry.
        p = DFCMPredictor(64, 1 << 12)
        pc = 0x1000
        for i in range(10):  # warm up the difference history
            p.update(pc, i * 3)
        touched = set()
        for i in range(10, 30):
            touched.add(p.l2_index(pc))
            p.update(pc, i * 3)
        assert len(touched) == 1

    def test_same_stride_different_ranges_share_entries(self):
        # Two instructions counting with the same stride but disjoint
        # ranges collapse onto the same level-2 entries.
        p = DFCMPredictor(1 << 10, 1 << 12)
        pc_a, pc_b = 0x1000, 0x1004
        for i in range(10):
            p.update(pc_a, i)
            p.update(pc_b, 1_000_000 + i)
        assert p.l2_index(pc_a) == p.l2_index(pc_b)

    def test_prediction_is_last_plus_predicted_stride(self):
        p = DFCMPredictor(64, 1 << 10)
        pc = 0x1000
        for value in [100, 110, 120, 130]:
            p.update(pc, value)
        assert p.predict(pc) == 140

    def test_non_stride_repeating_pattern_still_learned(self):
        pattern = [9, 2, 14, 5, 11]
        trace = repeating_trace("ctx", 0x1000, pattern, 40)
        result = measure_accuracy(DFCMPredictor(64, 1 << 14), trace)
        assert result.accuracy > 0.85

    def test_wraparound_arithmetic(self):
        p = DFCMPredictor(64, 1 << 10)
        pc = 0
        for i in range(6):
            p.update(pc, (0xFFFFFFFD + i) & 0xFFFFFFFF)
        # Counting through the wrap: next value continues past zero.
        assert p.predict(pc) == (0xFFFFFFFD + 6) & 0xFFFFFFFF

    def test_storage_charges_last_value(self):
        p = DFCMPredictor(1 << 10, 1 << 12)
        fcm_bits = (1 << 10) * 12 + (1 << 12) * 32
        assert p.storage_bits() == fcm_bits + (1 << 10) * 32

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            DFCMPredictor(100, 1 << 10)
        with pytest.raises(ValueError):
            DFCMPredictor(64, 1 << 10, stride_bits=0)
        with pytest.raises(ValueError):
            DFCMPredictor(64, 1 << 10, stride_bits=33)


class TestPartialStrides:
    """Section 4.4: narrow level-2 stride storage."""

    def test_small_strides_unaffected_by_16_bit_storage(self):
        trace = stride_trace("ramp", 0x1000, 0, 100, 80)
        full = measure_accuracy(DFCMPredictor(64, 1 << 12), trace)
        narrow = measure_accuracy(
            DFCMPredictor(64, 1 << 12, stride_bits=16), trace)
        assert narrow.correct == full.correct

    def test_negative_strides_survive_truncation(self):
        # -3 fits 8 bits after sign extension.
        trace = stride_trace("down", 0x1000, 10_000, -3, 80)
        narrow = measure_accuracy(
            DFCMPredictor(64, 1 << 12, stride_bits=8), trace)
        assert narrow.accuracy > 0.9

    def test_large_strides_break_under_8_bits(self):
        # Stride 1000 does not fit 8 signed bits: every prediction
        # adds a wrong (sign-extended) difference.
        trace = stride_trace("big", 0x1000, 1, 1000, 80)
        narrow = measure_accuracy(
            DFCMPredictor(64, 1 << 12, stride_bits=8), trace)
        full = measure_accuracy(DFCMPredictor(64, 1 << 12), trace)
        assert narrow.correct == 0
        assert full.accuracy > 0.9

    def test_truncation_boundaries(self):
        p = DFCMPredictor(64, 1 << 10, stride_bits=8)
        assert p._store_stride(127) == 127
        assert p._store_stride((-128) & 0xFFFFFFFF) == (-128) & 0xFFFFFFFF
        # 128 wraps to -128 in 8-bit two's complement.
        assert p._store_stride(128) == (-128) & 0xFFFFFFFF

    def test_storage_shrinks_with_stride_bits(self):
        wide = DFCMPredictor(64, 1 << 12).storage_bits()
        narrow = DFCMPredictor(64, 1 << 12, stride_bits=8).storage_bits()
        assert wide - narrow == (1 << 12) * 24

    @given(st.integers(-127, 127), st.integers(0, 2**32 - 1))
    def test_8_bit_strides_roundtrip(self, stride, start):
        # Any stride representable in 8 bits predicts exactly like the
        # full-width predictor on a pure ramp.
        narrow = DFCMPredictor(16, 1 << 10, stride_bits=8)
        full = DFCMPredictor(16, 1 << 10)
        pc = 0x4000
        for i in range(8):
            value = (start + i * stride) & 0xFFFFFFFF
            narrow.update(pc, value)
            full.update(pc, value)
        assert narrow.predict(pc) == full.predict(pc)
