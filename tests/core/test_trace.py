"""Tests for the ValueTrace container."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.trace.trace import ValueTrace


class TestValueTrace:
    def test_length_and_iteration(self):
        t = ValueTrace("t", [4, 8, 4], [1, 2, 3])
        assert len(t) == 3
        assert list(t) == [(4, 1), (8, 2), (4, 3)]

    def test_values_coerced_to_u32(self):
        t = ValueTrace("t", [0], [2**32 + 7])
        assert t.records() == [(0, 7)]

    def test_negative_values_wrap(self):
        t = ValueTrace.from_records("t", [(4, -1)])
        assert t.records() == [(4, 0xFFFFFFFF)]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ValueTrace("t", [1, 2], [1])

    def test_head(self):
        t = ValueTrace("t", [0, 4, 8, 12], [9, 8, 7, 6])
        h = t.head(2)
        assert len(h) == 2 and h.records() == [(0, 9), (4, 8)]
        assert h.name == "t"

    def test_stats(self):
        t = ValueTrace("t", [0, 4, 0, 4], [1, 1, 2, 1])
        s = t.stats()
        assert s.predictions == 4
        assert s.static_instructions == 2
        assert s.distinct_values == 2

    def test_save_load_roundtrip(self, tmp_path):
        t = ValueTrace("bench", list(range(0, 400, 4)),
                       [i * i % 2**32 for i in range(100)])
        path = tmp_path / "trace.npz"
        t.save(path)
        loaded = ValueTrace.load(path)
        assert loaded.name == "bench"
        assert np.array_equal(loaded.pcs, t.pcs)
        assert np.array_equal(loaded.values, t.values)

    def test_records_cached(self):
        t = ValueTrace("t", [0, 4], [1, 2])
        assert t.records() is t.records()

    @given(st.lists(st.tuples(st.integers(0, 2**32 - 1),
                              st.integers(-2**31, 2**32 - 1)),
                    max_size=40))
    def test_from_records_roundtrip(self, pairs):
        t = ValueTrace.from_records("t", pairs)
        assert len(t) == len(pairs)
        for (pc, value), (rpc, rvalue) in zip(pairs, t.records()):
            assert rpc == pc & 0xFFFFFFFF
            assert rvalue == value & 0xFFFFFFFF
