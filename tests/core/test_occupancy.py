"""Tests for level-2 stride occupancy (paper Figures 6 and 9)."""

import pytest

from repro.core.dfcm import DFCMPredictor
from repro.core.fcm import FCMPredictor
from repro.core.last_value import LastValuePredictor
from repro.core.occupancy import stride_occupancy
from repro.core.stride import StridePredictor
from tests.conftest import interleaved, repeating_trace, stride_trace


def stride_heavy_records():
    return interleaved(
        stride_trace("i", 0x1000, 0, 1, 300),
        stride_trace("j8", 0x1004, 0, 8, 300),
        stride_trace("addr", 0x1008, 0x10008000, 4, 300),
    ).records()


class TestStrideOccupancy:
    def test_counts_are_sorted_descending(self):
        result = stride_occupancy(FCMPredictor(64, 1 << 8), stride_heavy_records())
        assert result.sorted_counts == sorted(result.sorted_counts, reverse=True)
        assert len(result.sorted_counts) == 1 << 8

    def test_totals_are_consistent(self):
        result = stride_occupancy(FCMPredictor(64, 1 << 8), stride_heavy_records())
        assert result.total_accesses == 900
        assert sum(result.sorted_counts) == result.stride_accesses
        assert result.stride_accesses <= result.total_accesses

    def test_fcm_spreads_strides_dfcm_concentrates(self):
        # The paper's core observation: the DFCM uses far fewer L2
        # entries for stride patterns than the FCM.
        records = stride_heavy_records()
        fcm = stride_occupancy(FCMPredictor(1 << 10, 1 << 10), records)
        dfcm = stride_occupancy(DFCMPredictor(1 << 10, 1 << 10), records)
        # FCM touches a new entry for almost every ramp value (hundreds
        # of entries, a handful of accesses each); DFCM funnels each
        # ramp through one hot entry per stride.
        assert dfcm.entries_with_at_least(1) < fcm.entries_with_at_least(1) / 10
        assert dfcm.entries_with_at_least(100) >= 3
        assert fcm.entries_with_at_least(100) == 0

    def test_dfcm_top_entries_take_most_stride_accesses(self):
        records = stride_heavy_records()
        dfcm = stride_occupancy(DFCMPredictor(1 << 10, 1 << 10), records)
        # All three streams share stride histories (1, 8, 4): a handful
        # of entries should absorb nearly everything.
        assert dfcm.top_share(8) > 0.9

    def test_entries_with_at_least(self):
        result = stride_occupancy(FCMPredictor(64, 1 << 8),
                                  stride_trace("s", 0, 0, 1, 50).records())
        assert result.entries_with_at_least(1) == sum(
            1 for c in result.sorted_counts if c >= 1)
        assert result.entries_with_at_least(10**9) == 0

    def test_top_share_of_empty_stride_set(self):
        # A pattern the reference stride predictor never predicts.
        import random
        rng = random.Random(7)
        records = [(0x100, rng.randrange(2**32)) for _ in range(200)]
        result = stride_occupancy(FCMPredictor(64, 1 << 8), records)
        assert result.stride_accesses < 10
        if result.stride_accesses == 0:
            assert result.top_share(4) == 0.0

    def test_rejects_non_context_predictors(self):
        with pytest.raises(TypeError):
            stride_occupancy(LastValuePredictor(16), [])

    def test_custom_reference_predictor(self):
        records = stride_trace("s", 0, 0, 1, 100).records()
        tiny_ref = StridePredictor(1)
        result = stride_occupancy(FCMPredictor(64, 1 << 8), records, tiny_ref)
        assert result.total_accesses == 100
