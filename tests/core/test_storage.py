"""Tests for the storage-cost model."""

import pytest

from repro.core import storage
from repro.core.dfcm import DFCMPredictor
from repro.core.fcm import FCMPredictor
from repro.core.last_value import LastValuePredictor
from repro.core.stride import StridePredictor


class TestClosedForms:
    def test_lvp(self):
        assert storage.lvp_bits(1 << 6) == (1 << 6) * 32

    def test_stride_default_counter(self):
        assert storage.stride_bits(1 << 6) == (1 << 6) * 67

    def test_stride_free_counter_accounting(self):
        assert storage.stride_bits(1 << 6, counter_bits=0) == (1 << 6) * 64

    def test_fcm(self):
        assert storage.fcm_bits(1 << 16, 1 << 12) == (1 << 16) * 12 + (1 << 12) * 32

    def test_dfcm_charges_last_value(self):
        fcm = storage.fcm_bits(1 << 16, 1 << 12)
        dfcm = storage.dfcm_bits(1 << 16, 1 << 12)
        assert dfcm - fcm == (1 << 16) * 32

    def test_dfcm_partial_strides(self):
        full = storage.dfcm_bits(1 << 10, 1 << 12)
        narrow = storage.dfcm_bits(1 << 10, 1 << 12, stride_width=16)
        assert full - narrow == (1 << 12) * 16

    def test_kbit(self):
        assert storage.kbit(2048) == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            storage.lvp_bits(100)
        with pytest.raises(ValueError):
            storage.stride_bits(64, counter_bits=-1)
        with pytest.raises(ValueError):
            storage.fcm_bits(64, 100)
        with pytest.raises(ValueError):
            storage.dfcm_bits(64, 64, stride_width=0)


class TestFormulasMatchPredictors:
    """The closed forms must agree with the instances' own accounting."""

    def test_lvp(self):
        assert LastValuePredictor(256).storage_bits() == storage.lvp_bits(256)

    def test_stride(self):
        assert StridePredictor(256).storage_bits() == storage.stride_bits(256)

    def test_fcm(self):
        p = FCMPredictor(1 << 10, 1 << 14)
        assert p.storage_bits() == storage.fcm_bits(1 << 10, 1 << 14)

    def test_dfcm(self):
        p = DFCMPredictor(1 << 10, 1 << 14, stride_bits=16)
        assert p.storage_bits() == storage.dfcm_bits(1 << 10, 1 << 14, 16)

    def test_paper_realistic_size_is_about_200_kbit(self):
        # Figure 11(b): the paper calls ~200 Kbit a realistic size;
        # check one plausible DFCM config lands in that ballpark.
        bits = storage.dfcm_bits(1 << 12, 1 << 10)
        assert 150 < storage.kbit(bits) < 300
