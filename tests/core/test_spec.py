"""Tests for the declarative spec layer (repro.core.spec)."""

import pytest

from repro.core.dfcm import DFCMPredictor
from repro.core.fcm import FCMPredictor
from repro.core.last_value import LastValuePredictor
from repro.core.spec import (SPEC_FAMILIES, DFCMSpec, DelayedSpec, FCMSpec,
                             HashSpec, LastNSpec, LastValueSpec,
                             MetaHybridSpec, OracleHybridSpec, StrideSpec,
                             TwoDeltaStrideSpec, spec_from_cli,
                             spec_from_config, spec_of)

ALL_SPECS = [
    LastValueSpec(1 << 10),
    LastNSpec(1 << 10),
    StrideSpec(1 << 10),
    StrideSpec(1 << 10, counter_bits=2, counter_inc=1, counter_dec=1),
    TwoDeltaStrideSpec(1 << 10),
    FCMSpec(1 << 12, 1 << 10),
    FCMSpec(1 << 12, 1 << 10, hash=HashSpec(10, "xor", order=3)),
    DFCMSpec(1 << 12, 1 << 10),
    DFCMSpec(1 << 12, 1 << 10, stride_bits=8),
    OracleHybridSpec((StrideSpec(1 << 10), FCMSpec(1 << 12, 1 << 10))),
    MetaHybridSpec((StrideSpec(1 << 10), FCMSpec(1 << 12, 1 << 10)),
                   1 << 10),
    DelayedSpec(FCMSpec(1 << 12, 1 << 10), 16),
]


class TestBuildParity:
    """A spec and the instance it builds must agree on identity."""

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
    def test_name_matches_instance(self, spec):
        assert spec.build().name == spec.name

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
    def test_storage_matches_instance(self, spec):
        assert spec.storage_kbit() == pytest.approx(
            spec.build().storage_kbit())

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
    def test_spec_is_its_own_factory(self, spec):
        # Specs are callable so every factory call-site accepts them.
        built = spec()
        assert type(built) is type(spec.build())
        assert built.name == spec.name


class TestConfigRoundTrip:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
    def test_round_trip(self, spec):
        config = spec.to_config()
        assert config["family"] == spec.family
        assert spec_from_config(config) == spec

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            spec_from_config({"family": "perceptron"})

    def test_families_registry_covers_all(self):
        for spec in ALL_SPECS:
            assert spec.family in SPEC_FAMILIES


class TestHashSpec:
    def test_order_normalised_from_index_bits(self):
        # Leaving order unset picks the paper's default for the size.
        assert HashSpec(12, "fs").order is not None

    def test_equality_ignores_order_spelling(self):
        explicit = HashSpec(12, "fs", order=HashSpec(12, "fs").order)
        assert explicit == HashSpec(12, "fs")

    def test_from_spec_matches_fcm_default(self):
        spec = FCMSpec(1 << 12, 1 << 10)
        assert spec.hash.kind == "fs"
        assert spec.hash.index_bits == 10


class TestSpecFromCli:
    @pytest.mark.parametrize("kind,expected", [
        ("lvp", LastValueSpec(1 << 16)),
        ("lastn", LastNSpec(1 << 16)),
        ("stride", StrideSpec(1 << 16)),
        ("stride2d", TwoDeltaStrideSpec(1 << 16)),
        ("fcm", FCMSpec(1 << 16, 1 << 12)),
        ("dfcm", DFCMSpec(1 << 16, 1 << 12)),
    ])
    def test_known_kinds(self, kind, expected):
        assert spec_from_cli(kind, 1 << 16, 1 << 12) == expected

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            spec_from_cli("perceptron", 16, 12)


class TestSpecOf:
    def test_facade_instances_expose_their_spec(self):
        predictor = DFCMPredictor(1 << 12, 1 << 10)
        spec = spec_of(predictor)
        assert spec == DFCMSpec(1 << 12, 1 << 10)

    def test_subclass_is_not_trusted(self):
        # A subclass inherits the parent's ``spec`` attribute but not
        # necessarily its semantics; spec_of must refuse it.
        class Tweaked(FCMPredictor):
            pass

        assert spec_of(Tweaked(1 << 12, 1 << 10)) is None

    def test_spec_less_object_gives_none(self):
        assert spec_of(object()) is None

    def test_spec_of_built_instance_round_trips(self):
        for spec in ALL_SPECS:
            rebuilt = spec_of(spec.build())
            assert rebuilt == spec, spec.name

    def test_factory_built_lvp(self):
        assert spec_of(LastValuePredictor(64)) == LastValueSpec(64)
