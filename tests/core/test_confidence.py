"""Tests for saturating counters (repro.core.confidence)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.confidence import CounterBank, SaturatingCounter


class TestSaturatingCounter:
    def test_paper_shape(self):
        # 3-bit, +1 correct, -2 wrong (paper section 4).
        c = SaturatingCounter()
        assert c.maximum == 7
        for _ in range(10):
            c.record(True)
        assert c.value == 7 and c.saturated
        c.record(False)
        assert c.value == 5 and not c.saturated

    def test_saturates_at_zero(self):
        c = SaturatingCounter(initial=1)
        c.record(False)
        assert c.value == 0
        c.record(False)
        assert c.value == 0

    def test_reaching_max_needs_max_corrects(self):
        c = SaturatingCounter()
        for i in range(7):
            assert not c.saturated
            c.record(True)
        assert c.saturated

    def test_validation(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=0)
        with pytest.raises(ValueError):
            SaturatingCounter(initial=8)
        with pytest.raises(ValueError):
            SaturatingCounter(inc=-1)

    @given(st.lists(st.booleans(), max_size=50),
           st.integers(min_value=1, max_value=6))
    def test_always_in_range(self, outcomes, bits):
        c = SaturatingCounter(bits=bits)
        for outcome in outcomes:
            c.record(outcome)
            assert 0 <= c.value <= c.maximum


class TestCounterBank:
    def test_independent_entries(self):
        bank = CounterBank(4)
        bank.record(0, True)
        bank.record(0, True)
        assert bank[0] == 2 and bank[1] == 0

    def test_matches_scalar_counter(self):
        bank = CounterBank(1)
        scalar = SaturatingCounter()
        outcomes = [True, True, False, True, False, False, True] * 3
        for outcome in outcomes:
            bank.record(0, outcome)
            scalar.record(outcome)
            assert bank[0] == scalar.value

    def test_saturated_query(self):
        bank = CounterBank(2, bits=2)
        for _ in range(3):
            bank.record(1, True)
        assert bank.saturated(1) and not bank.saturated(0)

    def test_len_and_validation(self):
        assert len(CounterBank(8)) == 8
        with pytest.raises(ValueError):
            CounterBank(0)
