"""Tests for the delayed-update wrapper (paper section 4.5)."""

import pytest

from repro.core.delayed import DelayedUpdatePredictor
from repro.core.dfcm import DFCMPredictor
from repro.core.fcm import FCMPredictor
from repro.core.last_value import LastValuePredictor
from repro.core.stride import StridePredictor
from repro.harness.simulate import measure_accuracy
from tests.conftest import repeating_trace, stride_trace


class TestDelayedUpdate:
    def test_zero_delay_is_transparent(self):
        trace = stride_trace("s", 0x1000, 0, 3, 100)
        plain = measure_accuracy(StridePredictor(64), trace)
        wrapped = measure_accuracy(
            DelayedUpdatePredictor(StridePredictor(64), 0), trace)
        assert wrapped.correct == plain.correct

    def test_updates_lag_by_delay(self):
        inner = LastValuePredictor(16)
        delayed = DelayedUpdatePredictor(inner, delay=2)
        delayed.update(0x100, 1)
        delayed.update(0x100, 2)
        assert inner.predict(0x100) == 0  # nothing applied yet
        delayed.update(0x100, 3)
        assert inner.predict(0x100) == 1  # first update drained

    def test_pending_window_bounded_by_delay(self):
        delayed = DelayedUpdatePredictor(LastValuePredictor(16), delay=5)
        for i in range(20):
            delayed.update(i * 4, i)
        assert delayed.pending_updates() == 5

    def test_stale_history_hurts_tight_loop(self):
        # A static instruction recurring within the delay window
        # predicts from stale tables (the paper's Figure 17 effect).
        trace = stride_trace("s", 0x1000, 0, 1, 200)
        sharp = measure_accuracy(FCMPredictor(64, 1 << 10), trace)
        # delay larger than the recurrence distance (1) is harmful
        blurred = measure_accuracy(
            DelayedUpdatePredictor(FCMPredictor(64, 1 << 10), 16), trace)
        assert blurred.correct <= sharp.correct

    def test_accuracy_monotone_degrades_for_dfcm_ramp(self):
        trace = stride_trace("s", 0x1000, 0, 1, 300)
        accs = []
        for delay in [0, 4, 64]:
            result = measure_accuracy(
                DelayedUpdatePredictor(DFCMPredictor(64, 1 << 10), delay),
                trace)
            accs.append(result.accuracy)
        assert accs[0] >= accs[1] >= accs[2]

    def test_constant_pattern_immune_to_delay(self):
        # Stale history of a constant instruction is still correct.
        trace = repeating_trace("c", 0x1000, [99], 300)
        delayed = measure_accuracy(
            DelayedUpdatePredictor(LastValuePredictor(64), 32), trace)
        assert delayed.correct >= 300 - 33  # only the window warms up

    def test_storage_is_inner_storage(self):
        inner = FCMPredictor(64, 1 << 10)
        assert DelayedUpdatePredictor(inner, 8).storage_bits() == inner.storage_bits()

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            DelayedUpdatePredictor(LastValuePredictor(16), -1)
