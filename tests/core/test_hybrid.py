"""Tests for hybrid predictors (paper section 4.3)."""

import pytest

from repro.core.dfcm import DFCMPredictor
from repro.core.fcm import FCMPredictor
from repro.core.hybrid import MetaHybridPredictor, OracleHybridPredictor
from repro.core.last_value import LastValuePredictor
from repro.core.stride import StridePredictor
from repro.harness.simulate import measure_accuracy
from tests.conftest import interleaved, repeating_trace, stride_trace


def mixed_workload():
    """Strides plus a context pattern: each component predictor is
    strong on one half only."""
    strides = stride_trace("s", 0x1000, 0, 7, 150)
    context = repeating_trace("c", 0x1004, [9, 2, 14, 5, 11, 3], 25)
    return interleaved(strides, context)


class TestOracleHybrid:
    def test_correct_when_any_component_correct(self):
        trace = mixed_workload()
        stride = measure_accuracy(StridePredictor(64), trace)
        fcm = measure_accuracy(FCMPredictor(64, 1 << 12), trace)
        hybrid = measure_accuracy(
            OracleHybridPredictor([StridePredictor(64),
                                   FCMPredictor(64, 1 << 12)]), trace)
        assert hybrid.correct >= max(stride.correct, fcm.correct)

    def test_upper_bounds_each_component_everywhere(self):
        for trace in [stride_trace("s", 0, 5, 3, 100),
                      repeating_trace("c", 0, [4, 9, 1], 40)]:
            solo = measure_accuracy(FCMPredictor(64, 1 << 10), trace)
            hybrid = measure_accuracy(
                OracleHybridPredictor([FCMPredictor(64, 1 << 10)]), trace)
            assert hybrid.correct == solo.correct

    def test_all_components_train_on_every_outcome(self):
        a, b = LastValuePredictor(16), StridePredictor(16)
        hybrid = OracleHybridPredictor([a, b])
        hybrid.step(0x100, 42)
        assert a.predict(0x100) == 42
        # The stride component trained too (last value written).
        assert b._last[(0x100 >> 2) & 15] == 42

    def test_storage_is_component_sum(self):
        a, b = LastValuePredictor(16), StridePredictor(16)
        hybrid = OracleHybridPredictor([a, b])
        assert hybrid.storage_bits() == a.storage_bits() + b.storage_bits()

    def test_requires_components(self):
        with pytest.raises(ValueError):
            OracleHybridPredictor([])

    def test_paper_claim_dfcm_close_to_oracle_stride_dfcm(self):
        # Section 4.3: STRIDE+DFCM (perfect meta) is only slightly
        # better than plain DFCM -- DFCM already catches the strides.
        trace = mixed_workload()
        dfcm = measure_accuracy(DFCMPredictor(1 << 10, 1 << 12), trace)
        hybrid = measure_accuracy(
            OracleHybridPredictor([StridePredictor(1 << 10),
                                   DFCMPredictor(1 << 10, 1 << 12)]), trace)
        gain = hybrid.accuracy - dfcm.accuracy
        assert 0.0 <= gain <= 0.1


class TestMetaHybrid:
    def test_beats_both_components_on_mixed_workload(self):
        trace = mixed_workload()
        stride = measure_accuracy(StridePredictor(64), trace)
        fcm = measure_accuracy(FCMPredictor(64, 1 << 12), trace)
        meta = measure_accuracy(
            MetaHybridPredictor([StridePredictor(64),
                                 FCMPredictor(64, 1 << 12)], 1 << 10), trace)
        assert meta.correct >= max(stride.correct, fcm.correct) - len(trace) // 20

    def test_oracle_upper_bounds_meta(self):
        trace = mixed_workload()
        meta = measure_accuracy(
            MetaHybridPredictor([StridePredictor(64),
                                 FCMPredictor(64, 1 << 12)], 1 << 10), trace)
        oracle = measure_accuracy(
            OracleHybridPredictor([StridePredictor(64),
                                   FCMPredictor(64, 1 << 12)]), trace)
        assert oracle.correct >= meta.correct

    def test_selection_follows_counters(self):
        lvp, stride = LastValuePredictor(16), StridePredictor(16)
        meta = MetaHybridPredictor([lvp, stride], 16)
        pc = 0x100
        for i in range(20):  # pure stride: stride component wins
            meta.update(pc, i * 5)
        assert meta.predict(pc) == stride.predict(pc)

    def test_storage_charges_meta_counters(self):
        lvp, stride = LastValuePredictor(16), StridePredictor(16)
        meta = MetaHybridPredictor([lvp, stride], 64, counter_bits=2)
        expected = lvp.storage_bits() + stride.storage_bits() + 64 * 2 * 2
        assert meta.storage_bits() == expected

    def test_validation(self):
        with pytest.raises(ValueError):
            MetaHybridPredictor([], 64)
        with pytest.raises(ValueError):
            MetaHybridPredictor([LastValuePredictor(16)], 100)
