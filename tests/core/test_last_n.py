"""Tests for the last-n value predictor."""

import pytest

from repro.core.last_n import LastNValuePredictor
from repro.core.last_value import LastValuePredictor
from repro.harness.simulate import measure_accuracy
from tests.conftest import repeating_trace, stride_trace


class TestLastNValuePredictor:
    def test_learns_alternating_pattern(self):
        # Period-2 toggling defeats a last value predictor; last-n
        # keeps both values and converges on the reinforced one...
        trace = repeating_trace("toggle", 0x1000, [7, 11], 100)
        lvp = measure_accuracy(LastValuePredictor(64), trace)
        lastn = measure_accuracy(LastNValuePredictor(64, n=2), trace)
        assert lvp.correct == 0
        # ...which for a fair alternation is at best one of the two.
        assert lastn.correct >= lvp.correct

    def test_perfect_on_constants(self):
        trace = repeating_trace("const", 0x1000, [42], 60)
        result = measure_accuracy(LastNValuePredictor(64), trace)
        assert result.correct >= 58

    def test_dominant_value_wins(self):
        # 0 0 0 1 repeated: predicting the dominant 0 gets 3 of 4.
        trace = repeating_trace("mostly", 0x1000, [0, 0, 0, 1], 50)
        result = measure_accuracy(LastNValuePredictor(64, n=2), trace)
        assert result.accuracy > 0.7

    def test_useless_on_strides(self):
        trace = stride_trace("ramp", 0x1000, 5, 1, 100)
        result = measure_accuracy(LastNValuePredictor(64), trace)
        assert result.correct == 0

    def test_matching_slot_reinforced_not_duplicated(self):
        p = LastNValuePredictor(16, n=3)
        for _ in range(5):
            p.update(0x100, 9)
        index = (0x100 >> 2) & 15
        assert p._values[index].count(9) == 1

    def test_eviction_targets_lowest_confidence(self):
        p = LastNValuePredictor(16, n=2, counter_bits=2)
        pc = 0x100
        for _ in range(3):
            p.update(pc, 1)   # slot A: counter 3
        p.update(pc, 2)       # slot B: counter 1
        p.update(pc, 3)       # evicts B (lowest confidence), not A
        assert p.predict(pc) == 1

    def test_storage_model(self):
        p = LastNValuePredictor(64, n=4, counter_bits=2)
        assert p.storage_bits() == 64 * 4 * (32 + 2 + 2)

    def test_n1_behaves_like_lvp_on_fresh_values(self):
        p1 = LastNValuePredictor(64, n=1)
        lvp = LastValuePredictor(64)
        trace = stride_trace("ramp", 0x1000, 3, 7, 60)
        a = measure_accuracy(p1, trace)
        b = measure_accuracy(lvp, trace)
        assert a.correct == b.correct

    def test_validation(self):
        with pytest.raises(ValueError):
            LastNValuePredictor(100)
        with pytest.raises(ValueError):
            LastNValuePredictor(64, n=0)
        with pytest.raises(ValueError):
            LastNValuePredictor(64, counter_bits=0)
