"""Tests for the FCM predictor."""

import pytest
from hypothesis import given, strategies as st

from repro.core.fcm import FCMPredictor
from repro.core.hashing import ConcatHash, FoldShiftHash
from repro.harness.simulate import measure_accuracy
from tests.conftest import interleaved, repeating_trace, stride_trace


class TestFCMPredictor:
    def test_order_follows_paper_coupling(self):
        assert FCMPredictor(64, 1 << 8).order == 2
        assert FCMPredictor(64, 1 << 12).order == 3
        assert FCMPredictor(64, 1 << 20).order == 4

    def test_learns_repeating_context_pattern(self):
        # A non-stride repeating pattern is FCM's home turf: after one
        # full repetition every context has been seen.
        pattern = [7, 3, 9, 2, 15, 4]
        trace = repeating_trace("ctx", 0x1000, pattern, 30)
        result = measure_accuracy(FCMPredictor(64, 1 << 12), trace)
        # Perfect after the warmup repetitions.
        assert result.accuracy > 0.9

    def test_predicts_pattern_invisible_to_stride(self):
        pattern = [1, 5, 2, 8, 3]  # no constant stride
        trace = repeating_trace("ctx", 0x1000, pattern, 40)
        result = measure_accuracy(FCMPredictor(64, 1 << 12), trace)
        assert result.correct > 0.85 * len(trace)

    def test_update_writes_entry_prediction_was_read_from(self):
        p = FCMPredictor(64, 1 << 10)
        pc = 0x1000
        index_before = p.l2_index(pc)
        p.update(pc, 1234)
        assert p._l2[index_before] == 1234

    def test_history_advances_on_update(self):
        p = FCMPredictor(64, 1 << 10)
        pc = 0x1000
        before = p.l2_index(pc)
        p.update(pc, 0xABCD)
        assert p.l2_index(pc) != before  # hash state moved

    def test_storage_model(self):
        p = FCMPredictor(1 << 10, 1 << 12)
        assert p.storage_bits() == (1 << 10) * 12 + (1 << 12) * 32

    def test_l1_aliasing_mixes_histories(self):
        # Two PCs colliding in a 1-entry L1 share one history.
        p = FCMPredictor(1, 1 << 10)
        pc_a, pc_b = 0x1000, 0x2000
        p.update(pc_a, 5)
        assert p.l2_index(pc_b) == p.l2_index(pc_a)

    def test_custom_hash_accepted(self):
        h = ConcatHash(10, order=2)
        p = FCMPredictor(64, 1 << 10, hash_fn=h)
        assert p.order == 2

    def test_mismatched_hash_rejected(self):
        with pytest.raises(ValueError):
            FCMPredictor(64, 1 << 10, hash_fn=FoldShiftHash(12))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            FCMPredictor(100, 1 << 10)
        with pytest.raises(ValueError):
            FCMPredictor(64, 1000)

    def test_scatters_stride_pattern_over_many_l2_entries(self):
        # Paper Figure 4: a length-7 stride pattern occupies as many
        # L2 entries as it has distinct contexts.
        p = FCMPredictor(64, 1 << 12)
        pc = 0x1000
        touched = set()
        for i in range(7 * 10):
            touched.add(p.l2_index(pc))
            p.update(pc, i % 7)
        assert len(touched) >= 7

    @given(st.lists(st.integers(0, 255), min_size=2, max_size=8,
                    unique=True),
           st.integers(10, 25))
    def test_eventually_learns_any_repeating_pattern(self, pattern, reps):
        # With a collision-free hash and all-distinct pattern elements,
        # every order-2 context uniquely determines the next value, so
        # the last repetition must be predicted perfectly.
        trace = repeating_trace("any", 0x1000, pattern, reps)
        p = FCMPredictor(64, 1 << 16, hash_fn=ConcatHash(16, order=2))
        records = trace.records()
        warmup = len(pattern) * (reps - 1)
        for pc, value in records[:warmup]:
            p.step(pc, value)
        last_rep = records[warmup:]
        correct = sum(p.step(pc, value) for pc, value in last_rep)
        assert correct == len(last_rep)
