"""Tests for confidence estimation (paper section 4.2 outlook)."""

import pytest

from repro.core.dfcm import DFCMPredictor
from repro.core.estimator import (CounterConfidencePredictor, CoverageResult,
                                  TaggedDFCMPredictor, TaggedFCMPredictor,
                                  measure_confidence)
from repro.core.last_value import LastValuePredictor
from tests.conftest import interleaved, repeating_trace, stride_trace


def mixed_trace():
    return interleaved(
        stride_trace("ramp", 0x1000, 0, 3, 400),
        repeating_trace("ctx", 0x1004, [9, 2, 14, 5], 100),
    )


class TestCoverageResult:
    def test_ratios(self):
        result = CoverageResult("p", "t", total=10, confident=4,
                                confident_correct=3, overall_correct=6)
        assert result.coverage == 0.4
        assert result.accuracy_when_confident == 0.75
        assert result.overall_accuracy == 0.6

    def test_empty_safe(self):
        result = CoverageResult("p", "t", 0, 0, 0, 0)
        assert result.coverage == 0.0
        assert result.accuracy_when_confident == 0.0


class TestCounterConfidence:
    def test_confident_subset_is_more_accurate(self):
        predictor = CounterConfidencePredictor(
            DFCMPredictor(1 << 10, 1 << 10), 1 << 10)
        result = measure_confidence(predictor, mixed_trace())
        assert 0 < result.coverage < 1
        assert result.accuracy_when_confident > result.overall_accuracy

    def test_threshold_trades_coverage_for_accuracy(self):
        loose = measure_confidence(
            CounterConfidencePredictor(
                DFCMPredictor(1 << 10, 1 << 10), 1 << 10, threshold=1),
            mixed_trace())
        strict = measure_confidence(
            CounterConfidencePredictor(
                DFCMPredictor(1 << 10, 1 << 10), 1 << 10, threshold=7),
            mixed_trace())
        assert strict.coverage < loose.coverage
        assert strict.accuracy_when_confident >= loose.accuracy_when_confident

    def test_never_confident_on_random_inner(self):
        # An always-wrong inner predictor should get no confidence.
        import random
        rng = random.Random(1)
        from repro.trace.trace import ValueTrace
        trace = ValueTrace("rand", [0x100] * 500,
                           [rng.randrange(2**32) for _ in range(500)])
        result = measure_confidence(
            CounterConfidencePredictor(LastValuePredictor(16), 16), trace)
        assert result.coverage < 0.05

    def test_wrapping_preserves_overall_accuracy(self):
        from repro.harness.simulate import measure_accuracy
        plain = measure_accuracy(DFCMPredictor(1 << 10, 1 << 10),
                                 mixed_trace())
        gated = measure_confidence(
            CounterConfidencePredictor(DFCMPredictor(1 << 10, 1 << 10),
                                       1 << 10),
            mixed_trace())
        assert gated.overall_accuracy == pytest.approx(
            plain.correct / plain.total)

    def test_storage_charges_counters(self):
        inner = DFCMPredictor(1 << 10, 1 << 10)
        wrapped = CounterConfidencePredictor(
            DFCMPredictor(1 << 10, 1 << 10), 1 << 8, counter_bits=3)
        assert wrapped.storage_bits() == inner.storage_bits() + (1 << 8) * 3

    def test_validation(self):
        with pytest.raises(ValueError):
            CounterConfidencePredictor(LastValuePredictor(16), 100)
        with pytest.raises(ValueError):
            CounterConfidencePredictor(LastValuePredictor(16), 16,
                                       threshold=99)


class TestTaggedPredictors:
    def test_tag_match_filters_hash_aliasing(self):
        tagged = TaggedDFCMPredictor(1 << 10, 1 << 8, tag_bits=6)
        result = measure_confidence(tagged, mixed_trace())
        assert result.accuracy_when_confident > result.overall_accuracy
        assert result.coverage > 0.5  # tags reject aliases, not everything

    def test_steady_stride_is_always_tag_confident(self):
        tagged = TaggedDFCMPredictor(1 << 8, 1 << 10, tag_bits=8)
        trace = stride_trace("ramp", 0x1000, 10, 5, 200)
        result = measure_confidence(tagged, trace)
        # After warmup the difference history is constant: same entry,
        # same tag, every time.
        assert result.coverage > 0.9

    def test_tagged_fcm_variant(self):
        tagged = TaggedFCMPredictor(1 << 10, 1 << 8, tag_bits=6)
        result = measure_confidence(tagged, mixed_trace())
        assert result.accuracy_when_confident >= result.overall_accuracy

    def test_prediction_equals_untagged(self):
        # Tagging adds a confidence signal; predictions are unchanged.
        plain = DFCMPredictor(1 << 8, 1 << 8)
        tagged = TaggedDFCMPredictor(1 << 8, 1 << 8)
        for pc, value in mixed_trace().records():
            assert tagged.predict(pc) == plain.predict(pc)
            plain.update(pc, value)
            tagged.update(pc, value)

    def test_storage_charges_tags_and_second_hash(self):
        plain = DFCMPredictor(1 << 10, 1 << 8)
        tagged = TaggedDFCMPredictor(1 << 10, 1 << 8, tag_bits=4)
        extra = (1 << 8) * 4 + (1 << 10) * tagged.tag_hash.index_bits
        assert tagged.storage_bits() == plain.storage_bits() + extra

    def test_orthogonality_enforced(self):
        with pytest.raises(ValueError, match="different shift"):
            TaggedDFCMPredictor(1 << 8, 1 << 8, tag_shift=5)

    def test_tag_bits_validated(self):
        with pytest.raises(ValueError):
            TaggedDFCMPredictor(1 << 8, 1 << 8, tag_bits=0)


class TestComposition:
    def test_counter_over_tagged_requires_both(self):
        trace = mixed_trace()
        tag_only = measure_confidence(
            TaggedDFCMPredictor(1 << 10, 1 << 8, tag_bits=6), trace)
        combined = measure_confidence(
            CounterConfidencePredictor(
                TaggedDFCMPredictor(1 << 10, 1 << 8, tag_bits=6), 1 << 10),
            trace)
        assert combined.coverage <= tag_only.coverage
        assert (combined.accuracy_when_confident
                >= tag_only.accuracy_when_confident)
