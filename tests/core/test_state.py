"""Durable arena layer: format round-trips, integrity, the store.

The contract under test: an arena file round-trips table state
bit-identically through zero-copy mmap views; every corruption mode is
detected before any view is built; a state-version mismatch is a
*distinct*, non-quarantining refusal; and the store's verify/compact
sweeps classify files the way ``repro state`` reports them.
"""

import numpy as np
import pytest

from repro.core.engines.resume import initial_state, step_block
from repro.core.spec import DFCMSpec, StrideSpec, spec_from_config
from repro.core.state import (ARENA_FORMAT_VERSION, ARENA_MAGIC,
                              STATE_VERSION, Arena, ArenaError, ArenaStore,
                              StateVersionError, arena_bytes, arena_info,
                              atomic_write_bytes, open_arena, quarantine_file,
                              spec_digest, verify_arena, write_arena)


def trained_state(spec, n=300, seed=7):
    rng = np.random.default_rng(seed)
    pcs = (rng.integers(0, 1 << 16, size=n) << 2).astype(np.int64)
    values = rng.integers(0, 1 << 32, size=n).astype(np.int64)
    _, state = step_block(spec, initial_state(spec), pcs, values)
    return state


class TestRoundTrip:
    def test_state_round_trips_bit_identically(self, tmp_path):
        spec = DFCMSpec(64, 256)
        state = trained_state(spec)
        path = tmp_path / "s.arena"
        write_arena(path, spec.to_config(), state, meta={"hits": 41})
        arena = open_arena(path)
        assert arena.spec_config == spec.to_config()
        assert arena.meta == {"hits": 41}
        assert arena.state_version == STATE_VERSION
        got = arena.state()
        assert got.keys() == state.keys()
        for key in state:
            np.testing.assert_array_equal(got[key], state[key])
            assert got[key].dtype == state[key].dtype

    def test_views_are_zero_copy_and_feed_step_block(self, tmp_path):
        spec = DFCMSpec(64, 256)
        state = trained_state(spec)
        path = tmp_path / "s.arena"
        write_arena(path, spec.to_config(), state)
        arena = open_arena(path)
        views = arena.state()
        for arr in views.values():
            # A view over the read-only map: no payload copy was made.
            assert not arr.flags.writeable
            assert arr.base is not None
        # The warm-start kernels accept the views directly and must
        # produce exactly what the in-memory state produces.
        pcs = np.asarray([0x400, 0x404, 0x400], dtype=np.int64)
        values = np.asarray([5, 9, 11], dtype=np.int64)
        want_pred, want_state = step_block(spec, state, pcs, values)
        got_pred, got_state = step_block(spec, views, pcs, values)
        np.testing.assert_array_equal(got_pred, want_pred)
        for key in want_state:
            np.testing.assert_array_equal(got_state[key], want_state[key])

    def test_aux_arrays_are_separated_from_tables(self, tmp_path):
        spec = StrideSpec(64)
        state = dict(trained_state(spec))
        state["__recent"] = np.asarray([1, 0, 1], dtype=np.int64)
        path = tmp_path / "s.arena"
        write_arena(path, spec.to_config(), state)
        arena = open_arena(path)
        assert "__recent" not in arena.table_state()
        np.testing.assert_array_equal(arena.aux("recent"), [1, 0, 1])
        assert arena.aux("nope") is None

    def test_spec_config_restores_an_equal_spec(self, tmp_path):
        spec = DFCMSpec(64, 256, stride_bits=8)
        path = tmp_path / "s.arena"
        write_arena(path, spec.to_config(), trained_state(spec))
        arena = open_arena(path)
        assert spec_from_config(arena.spec_config) == spec
        # to_config was not consumed: a second resolve still works.
        assert spec_from_config(arena.spec_config) == spec

    def test_empty_and_zero_size_arrays(self, tmp_path):
        spec = StrideSpec(64)
        state = {"table": np.zeros((0, 3), dtype=np.int64)}
        path = tmp_path / "s.arena"
        write_arena(path, spec.to_config(), state)
        got = open_arena(path).state()["table"]
        assert got.shape == (0, 3)
        assert got.dtype == np.int64


class TestIntegrity:
    def _write(self, tmp_path, name="s.arena"):
        spec = StrideSpec(64)
        path = tmp_path / name
        write_arena(path, spec.to_config(), trained_state(spec))
        return path

    def test_bad_magic(self, tmp_path):
        path = self._write(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[:8] = b"NOTARENA"
        path.write_bytes(raw)
        with pytest.raises(ArenaError, match="bad magic"):
            open_arena(path)

    def test_unknown_format_version(self, tmp_path):
        path = self._write(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[8:12] = (ARENA_FORMAT_VERSION + 1).to_bytes(4, "big")
        path.write_bytes(raw)
        with pytest.raises(ArenaError, match="arena format"):
            open_arena(path)

    def test_truncation(self, tmp_path):
        path = self._write(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[:len(raw) - 16])
        with pytest.raises(ArenaError, match="truncated"):
            open_arena(path)

    def test_payload_bitflip_fails_crc(self, tmp_path):
        path = self._write(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0x40
        path.write_bytes(raw)
        with pytest.raises(ArenaError, match="CRC mismatch"):
            open_arena(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "s.arena"
        path.write_bytes(b"")
        with pytest.raises(ArenaError, match="empty"):
            open_arena(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ArenaError, match="cannot open"):
            open_arena(tmp_path / "nope.arena")

    def test_verify_arena_names_the_defect(self, tmp_path):
        path = self._write(tmp_path)
        assert verify_arena(path) is None
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0x40
        path.write_bytes(raw)
        assert "CRC mismatch" in verify_arena(path)

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        path = tmp_path / "x.bin"
        assert atomic_write_bytes(path, b"hello") == 5
        assert path.read_bytes() == b"hello"
        assert list(tmp_path.glob("*.tmp")) == []

    def test_quarantine_moves_aside(self, tmp_path):
        path = tmp_path / "x.arena"
        path.write_bytes(b"junk")
        target = quarantine_file(path)
        assert not path.exists()
        assert target.name == "x.arena.corrupt"
        assert target.read_bytes() == b"junk"


class TestStateVersionGate:
    def test_mismatch_refuses_with_both_sides_named(self, tmp_path):
        spec = StrideSpec(64)
        path = tmp_path / "s.arena"
        write_arena(path, spec.to_config(), trained_state(spec),
                    state_version=STATE_VERSION + 1)
        with pytest.raises(StateVersionError) as err:
            open_arena(path)
        message = str(err.value)
        assert f"v{STATE_VERSION + 1}" in message
        assert f"v{STATE_VERSION}" in message

    def test_mismatch_is_not_a_defect(self, tmp_path):
        spec = StrideSpec(64)
        path = tmp_path / "s.arena"
        write_arena(path, spec.to_config(), trained_state(spec),
                    state_version=STATE_VERSION + 1)
        # The file is sound: verify passes, inspection tools open it.
        assert verify_arena(path) is None
        arena = open_arena(path, check_state_version=False)
        assert isinstance(arena, Arena)
        assert arena.state_version == STATE_VERSION + 1

    def test_store_load_propagates_and_does_not_quarantine(self, tmp_path):
        store = ArenaStore(tmp_path)
        spec = StrideSpec(64)
        write_arena(store.path_for(3), spec.to_config(),
                    trained_state(spec), state_version=STATE_VERSION + 1)
        with pytest.raises(StateVersionError):
            store.load(3)
        assert store.path_for(3).exists()
        assert list(tmp_path.glob("*.corrupt")) == []


class TestStore:
    def test_save_load_delete_cycle(self, tmp_path):
        store = ArenaStore(tmp_path)
        spec = DFCMSpec(64, 256)
        state = trained_state(spec)
        store.save(7, spec.to_config(), state, meta={"hits": 3})
        assert store.session_ids() == [7]
        arena = store.load(7)
        assert arena.meta["hits"] == 3
        for key in state:
            np.testing.assert_array_equal(arena.state()[key], state[key])
        assert store.delete(7) is True
        assert store.delete(7) is False
        assert store.load(7) is None

    def test_session_id_naming(self, tmp_path):
        store = ArenaStore(tmp_path)
        path = store.path_for(42)
        assert path.name == f"session-{42:016d}.arena"
        assert ArenaStore.session_id_of(path) == 42
        assert ArenaStore.session_id_of(tmp_path / "other.arena") is None
        assert ArenaStore.session_id_of(tmp_path / "session-x.arena") is None

    def test_corrupt_arena_is_quarantined_on_load(self, tmp_path):
        store = ArenaStore(tmp_path)
        spec = StrideSpec(64)
        store.save(5, spec.to_config(), trained_state(spec))
        path = store.path_for(5)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(raw)
        assert store.load(5) is None
        assert not path.exists()
        assert (tmp_path / (path.name + ".corrupt")).exists()

    def test_verify_classifies_defective_and_stale(self, tmp_path):
        store = ArenaStore(tmp_path)
        spec = StrideSpec(64)
        store.save(1, spec.to_config(), trained_state(spec))
        store.save(2, spec.to_config(), trained_state(spec))
        write_arena(store.path_for(3), spec.to_config(),
                    trained_state(spec), state_version=STATE_VERSION + 9)
        bad = store.path_for(2)
        bad.write_bytes(bad.read_bytes()[:40])
        result = store.verify()
        assert result["checked"] == 3
        assert [p.name for p, _ in result["defects"]] == [bad.name]
        assert [(p.name, v) for p, v in result["stale"]] == \
            [(store.path_for(3).name, STATE_VERSION + 9)]

    def test_compact_removes_litter_keeps_sound_and_stale(self, tmp_path):
        store = ArenaStore(tmp_path)
        spec = StrideSpec(64)
        store.save(1, spec.to_config(), trained_state(spec))
        write_arena(store.path_for(2), spec.to_config(),
                    trained_state(spec), state_version=STATE_VERSION + 1)
        (tmp_path / "stray.arena.tmp").write_bytes(b"half a write")
        (tmp_path / "old.arena.corrupt").write_bytes(b"quarantined")
        defective = store.path_for(9)
        defective.write_bytes(b"RPROARNA" + b"\x00" * 8)
        result = store.compact()
        assert result["removed"] == {"tmp": 1, "corrupt": 1, "defective": 1}
        assert result["reclaimed_bytes"] > 0
        assert result["kept"] == 2
        assert sorted(store.session_ids()) == [1, 2]

    def test_infos_skips_defective(self, tmp_path):
        store = ArenaStore(tmp_path)
        spec = DFCMSpec(64, 256)
        store.save(4, spec.to_config(), trained_state(spec),
                   meta={"spec_name": spec.name})
        store.path_for(6).write_bytes(b"junk")
        infos = store.infos()
        assert len(infos) == 1
        info = infos[0]
        assert info.spec_name == spec.name
        assert info.state_version == STATE_VERSION
        assert info.arrays == len(trained_state(spec))
        assert info.nbytes == store.path_for(4).stat().st_size


class TestHelpers:
    def test_spec_digest_is_stable_and_order_blind(self):
        a = {"family": "dfcm", "l1": 64, "l2": 256}
        b = {"l2": 256, "l1": 64, "family": "dfcm"}
        assert spec_digest(a) == spec_digest(b)
        assert spec_digest(a) != spec_digest(dict(a, l1=128))

    def test_arena_bytes_prefix_fields(self):
        spec = StrideSpec(64)
        raw = arena_bytes(spec.to_config(),
                          {"t": np.arange(4, dtype=np.int64)})
        assert bytes(raw[:8]) == ARENA_MAGIC
        assert int.from_bytes(raw[8:12], "big") == ARENA_FORMAT_VERSION
        assert int.from_bytes(raw[12:16], "big") == STATE_VERSION

    def test_arena_info_summary(self, tmp_path):
        spec = StrideSpec(64)
        path = tmp_path / "s.arena"
        write_arena(path, spec.to_config(), trained_state(spec),
                    meta={"spec_name": spec.name, "predictions": 300})
        info = arena_info(path)
        assert info.spec_name == spec.name
        assert info.meta["predictions"] == 300
        assert info.spec_digest == spec_digest(spec.to_config())
