"""Every workload compiles, runs, and produces a well-formed trace.

These are integration tests of the whole substrate stack: MinC
compiler -> assembler -> VM -> trace capture.
"""

import pytest

from repro.lang import compile_to_program
from repro.trace.capture import capture_trace
from repro.vm import Machine
from repro.workloads.registry import WORKLOADS, workload_names


@pytest.mark.parametrize("name", workload_names())
class TestWorkload:
    def test_compiles(self, name):
        program = compile_to_program(WORKLOADS[name].source)
        assert len(program.instructions) > 50

    def test_produces_trace(self, name):
        trace = capture_trace(name, limit=5000)
        assert len(trace) == 5000
        stats = trace.stats()
        # A real program: several static instructions, varied values.
        assert stats.static_instructions >= 20
        assert stats.distinct_values >= 10

    def test_trace_is_deterministic(self, name):
        first = capture_trace(name, limit=2000)
        second = capture_trace(name, limit=2000)
        assert first.records() == second.records()


class TestWorkloadSemantics:
    """Spot-check each program's printed output for correctness."""

    def run_to_completion(self, name, max_instructions=80_000_000):
        program = compile_to_program(WORKLOADS[name].source)
        machine = Machine(program)
        machine.run(max_instructions)
        return machine

    def test_li_counts_queens_solutions(self):
        # Shrink the round count so the solver finishes quickly; the
        # 5/6/7/8-queens solution counts are 10, 4, 40 and 92.
        source = WORKLOADS["li"].source.replace("round < 40", "round < 1")
        machine = Machine(compile_to_program(source))
        machine.run(20_000_000)
        assert "solutions=146" in machine.stdout  # 10 + 4 + 40 + 92

    def test_compress_roundtrips(self):
        source = WORKLOADS["compress"].source.replace(
            "round < 400", "round < 2")
        machine = Machine(compile_to_program(source))
        machine.run(20_000_000)
        assert "errors=0" in machine.stdout

    def test_m88ksim_guest_runs(self):
        source = WORKLOADS["m88ksim"].source.replace(
            "session < 500", "session < 2")
        machine = Machine(compile_to_program(source))
        machine.run(40_000_000)
        # Guest program: 40 outer x 25 inner; halts by itself.
        assert "m88ksim: guest_instructions=" in machine.stdout

    def test_norm_completes(self):
        source = WORKLOADS["norm"].source.replace("round < 30", "round < 1")
        machine = Machine(compile_to_program(source))
        machine.run(20_000_000)
        assert "norm: done" in machine.stdout
