"""Tests for the workload registry."""

import pytest

from repro.workloads.registry import (SPEC_NAMES, WORKLOADS, get_workload,
                                      workload_names)


class TestRegistry:
    def test_paper_suite_complete(self):
        # The eight benchmarks of Table 1, in the paper's order.
        assert SPEC_NAMES == ["compress", "cc1", "go", "ijpeg", "li",
                              "m88ksim", "perl", "vortex"]
        for name in SPEC_NAMES:
            assert name in WORKLOADS

    def test_norm_microbenchmark_present(self):
        assert "norm" in WORKLOADS
        assert workload_names() == SPEC_NAMES + ["norm"]

    def test_workload_fields(self):
        for workload in WORKLOADS.values():
            assert workload.description
            assert workload.paper_options
            assert "int main()" in workload.source

    def test_get_workload_error(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("gcc176")

    def test_sources_are_distinct(self):
        sources = [w.source for w in WORKLOADS.values()]
        assert len(set(sources)) == len(sources)
