"""Tests for the synthetic trace generators."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dfcm import DFCMPredictor
from repro.core.fcm import FCMPredictor
from repro.core.last_value import LastValuePredictor
from repro.core.stride import StridePredictor
from repro.harness.simulate import measure_accuracy
from repro.workloads.synthetic import (PatternMix, constant_stream,
                                       context_stream, mixed_trace,
                                       random_stream, stride_stream)


def take(stream, n):
    return list(itertools.islice(stream, n))


class TestStreams:
    def test_constant(self):
        assert take(constant_stream(7), 5) == [7] * 5

    def test_stride(self):
        assert take(stride_stream(10, 3), 4) == [10, 13, 16, 19]

    def test_stride_wraps(self):
        values = take(stride_stream(0xFFFFFFFE, 1), 4)
        assert values == [0xFFFFFFFE, 0xFFFFFFFF, 0, 1]

    def test_stride_reset(self):
        values = take(stride_stream(0, 1, reset_period=3), 7)
        assert values == [0, 1, 2, 0, 1, 2, 0]

    def test_context(self):
        assert take(context_stream([4, 9, 1]), 7) == [4, 9, 1, 4, 9, 1, 4]

    def test_context_rejects_empty(self):
        with pytest.raises(ValueError):
            next(context_stream([]))

    def test_random_deterministic(self):
        assert take(random_stream(5), 10) == take(random_stream(5), 10)
        assert take(random_stream(5), 10) != take(random_stream(6), 10)


class TestPatternMix:
    def test_validation(self):
        with pytest.raises(ValueError):
            PatternMix(constant=-1)
        with pytest.raises(ValueError):
            PatternMix(0, 0, 0, 0)

    def test_trace_shape(self):
        trace = mixed_trace(PatternMix(), instructions=16, length=2000)
        assert len(trace) == 2000
        assert trace.stats().static_instructions <= 16

    def test_deterministic(self):
        a = mixed_trace(PatternMix(seed=3), length=1500)
        b = mixed_trace(PatternMix(seed=3), length=1500)
        assert a.records() == b.records()

    def test_seed_changes_trace(self):
        a = mixed_trace(PatternMix(seed=3), length=1500)
        b = mixed_trace(PatternMix(seed=4), length=1500)
        assert a.records() != b.records()

    def test_argument_validation(self):
        with pytest.raises(ValueError):
            mixed_trace(PatternMix(), instructions=0)
        with pytest.raises(ValueError):
            mixed_trace(PatternMix(), length=0)


class TestMixesDriveTheExpectedPredictors:
    """Each pure mix is the home turf of exactly one predictor class."""

    def test_pure_constant_mix(self):
        trace = mixed_trace(PatternMix(1, 0, 0, 0), length=4000)
        lvp = measure_accuracy(LastValuePredictor(1 << 10), trace)
        assert lvp.accuracy > 0.95

    def test_pure_stride_mix(self):
        trace = mixed_trace(PatternMix(0, 1, 0, 0), length=4000)
        stride = measure_accuracy(StridePredictor(1 << 10), trace)
        lvp = measure_accuracy(LastValuePredictor(1 << 10), trace)
        assert stride.accuracy > 0.8
        assert stride.accuracy > lvp.accuracy + 0.3

    def test_pure_context_mix(self):
        trace = mixed_trace(PatternMix(0, 0, 1, 0), length=6000)
        fcm = measure_accuracy(FCMPredictor(1 << 10, 1 << 14), trace)
        stride = measure_accuracy(StridePredictor(1 << 10), trace)
        assert fcm.accuracy > 0.8
        assert fcm.accuracy > stride.accuracy + 0.2

    def test_pure_random_mix_defeats_everyone(self):
        trace = mixed_trace(PatternMix(0, 0, 0, 1), length=4000)
        for predictor in (LastValuePredictor(1 << 10),
                          StridePredictor(1 << 10),
                          DFCMPredictor(1 << 10, 1 << 12)):
            assert measure_accuracy(predictor, trace).accuracy < 0.05

    def test_dfcm_strong_on_stride_context_blend(self):
        trace = mixed_trace(PatternMix(0.1, 0.5, 0.4, 0.0), length=6000)
        dfcm = measure_accuracy(DFCMPredictor(1 << 10, 1 << 12), trace)
        fcm = measure_accuracy(FCMPredictor(1 << 10, 1 << 12), trace)
        assert dfcm.accuracy > fcm.accuracy

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_any_seed_produces_valid_trace(self, seed):
        trace = mixed_trace(PatternMix(seed=seed), length=500)
        assert len(trace) == 500
        assert all(0 <= v < 2**32 for v in trace.values.tolist())
