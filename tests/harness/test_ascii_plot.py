"""Tests for the terminal plot renderer."""

import pytest

from repro.harness.ascii_plot import render_series


class TestRenderSeries:
    def test_markers_and_legend(self):
        text = render_series({"up": ([1, 2, 3], [1, 2, 3]),
                              "down": ([1, 2, 3], [3, 2, 1])},
                             width=30, height=10)
        assert "o = up" in text
        assert "x = down" in text
        assert "o" in text and "x" in text

    def test_axis_labels(self):
        text = render_series({"s": ([1, 10], [0.0, 1.0])},
                             width=20, height=5)
        assert "1.000" in text and "0.000" in text

    def test_log_axis(self):
        text = render_series({"s": ([10, 10000], [0, 1])},
                             width=20, height=5, logx=True)
        assert "10" in text and "1e+04" in text

    def test_log_axis_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="log axis"):
            render_series({"s": ([0, 1], [0, 1])}, logx=True)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError, match="lengths differ"):
            render_series({"s": ([1, 2], [1])})

    def test_empty(self):
        assert render_series({}) == "(no data)"

    def test_title(self):
        text = render_series({"s": ([1, 2], [1, 2])}, title="my plot")
        assert text.splitlines()[0] == "my plot"

    def test_constant_series_does_not_crash(self):
        text = render_series({"s": ([1, 2, 3], [5, 5, 5])})
        assert "o" in text
