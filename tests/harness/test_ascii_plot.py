"""Tests for the terminal plot renderer."""

import pytest

from repro.harness.ascii_plot import render_heatmap, render_series


class TestRenderSeries:
    def test_markers_and_legend(self):
        text = render_series({"up": ([1, 2, 3], [1, 2, 3]),
                              "down": ([1, 2, 3], [3, 2, 1])},
                             width=30, height=10)
        assert "o = up" in text
        assert "x = down" in text
        assert "o" in text and "x" in text

    def test_axis_labels(self):
        text = render_series({"s": ([1, 10], [0.0, 1.0])},
                             width=20, height=5)
        assert "1.000" in text and "0.000" in text

    def test_log_axis(self):
        text = render_series({"s": ([10, 10000], [0, 1])},
                             width=20, height=5, logx=True)
        assert "10" in text and "1e+04" in text

    def test_log_axis_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="log axis"):
            render_series({"s": ([0, 1], [0, 1])}, logx=True)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError, match="lengths differ"):
            render_series({"s": ([1, 2], [1])})

    def test_empty(self):
        assert render_series({}) == "(no data)"

    def test_title(self):
        text = render_series({"s": ([1, 2], [1, 2])}, title="my plot")
        assert text.splitlines()[0] == "my plot"

    def test_constant_series_does_not_crash(self):
        text = render_series({"s": ([1, 2, 3], [5, 5, 5])})
        assert "o" in text


class TestRenderHeatmap:
    def test_extremes_get_lightest_and_darkest_shades(self):
        text = render_heatmap({"low": [0.0, 0.0], "high": [1.0, 1.0]},
                              ["a", "b"], cell_width=5)
        low_line = next(l for l in text.splitlines()
                        if l.startswith(" low"))
        high_line = next(l for l in text.splitlines()
                         if l.startswith("high"))
        assert "@" * 4 in high_line and "@" not in low_line
        assert low_line.split("low", 1)[1].strip() == ""

    def test_column_labels_and_scale_line(self):
        text = render_heatmap({"r": [1.0, 2.0, 3.0]}, ["64K", "128K", "256K"],
                              title="occupancy")
        lines = text.splitlines()
        assert lines[0] == "occupancy"
        assert "64K" in lines[1] and "256K" in lines[1]
        assert lines[-1] == "  scale: ' '=1 .. '@'=3"

    def test_mismatched_row_length_rejected(self):
        with pytest.raises(ValueError, match="expected 2 values"):
            render_heatmap({"r": [1.0]}, ["a", "b"])

    def test_empty_grid(self):
        assert render_heatmap({}, []) == "(no data)"

    def test_constant_grid_does_not_crash(self):
        text = render_heatmap({"r": [5.0, 5.0]}, ["a", "b"])
        assert "scale:" in text
