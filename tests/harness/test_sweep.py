"""Tests for sweeps and Pareto fronts."""

import pytest

from repro.core.last_value import LastValuePredictor
from repro.core.stride import StridePredictor
from repro.harness.sweep import SweepPoint, pareto_front, sweep
from tests.conftest import stride_trace


def point(size, accuracy, label="p"):
    return SweepPoint(label=label, size_kbit=size, accuracy=accuracy)


class TestParetoFront:
    def test_keeps_only_improvements(self):
        points = [point(1, 0.5), point(2, 0.4), point(3, 0.7), point(4, 0.6)]
        front = pareto_front(points)
        assert [(p.size_kbit, p.accuracy) for p in front] == [(1, 0.5), (3, 0.7)]

    def test_equal_size_keeps_best(self):
        points = [point(1, 0.5), point(1, 0.8), point(2, 0.6)]
        front = pareto_front(points)
        assert [(p.size_kbit, p.accuracy) for p in front] == [(1, 0.8)]

    def test_equal_accuracy_not_kept_twice(self):
        points = [point(1, 0.5), point(2, 0.5)]
        front = pareto_front(points)
        assert len(front) == 1 and front[0].size_kbit == 1

    def test_empty(self):
        assert pareto_front([]) == []

    def test_monotone_output(self):
        import random
        rng = random.Random(3)
        points = [point(rng.uniform(1, 100), rng.random()) for _ in range(50)]
        front = pareto_front(points)
        sizes = [p.size_kbit for p in front]
        accs = [p.accuracy for p in front]
        assert sizes == sorted(sizes)
        assert accs == sorted(accs)


class TestSweep:
    def test_points_carry_size_and_label(self):
        traces = [stride_trace("s", 0x1000, 0, 1, 200)]
        points = sweep([lambda: StridePredictor(64),
                        lambda: LastValuePredictor(64)], traces)
        assert points[0].label == "stride_64"
        assert points[0].size_kbit == StridePredictor(64).storage_kbit()
        assert points[0].accuracy > points[1].accuracy

    def test_params_metadata(self):
        traces = [stride_trace("s", 0x1000, 0, 1, 50)]
        points = sweep([lambda: LastValuePredictor(64)], traces,
                       params=[{"l1": 64}])
        assert points[0].param("l1") == 64

    def test_params_length_mismatch(self):
        with pytest.raises(ValueError):
            sweep([lambda: LastValuePredictor(64)],
                  [stride_trace("s", 0, 0, 1, 10)], params=[{}, {}])
