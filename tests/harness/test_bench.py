"""The engine throughput benchmark (repro.harness.bench)."""

import json

import pytest

from repro.harness.bench import (MIN_SPEEDUP, bench_specs, render_bench,
                                 resolve_min_speedup, run_bench,
                                 write_report)
from tests.conftest import repeating_trace, stride_trace


@pytest.fixture(scope="module")
def report():
    traces = [stride_trace("a", 0x1000, 0, 3, 2000),
              repeating_trace("b", 0x2000, [5, 9, 2, 7], 500)]
    return run_bench(traces=traces, fast=True, repeats=1)


class TestBenchSpecs:
    def test_grid_covers_batch_families(self):
        families = [family for family, _ in bench_specs()]
        assert families == ["lvp", "stride", "stride2d", "fcm", "dfcm",
                            "hybrid"]

    def test_specs_are_picklable_specs(self):
        import pickle
        for _, spec in bench_specs():
            assert pickle.loads(pickle.dumps(spec)) == spec


class TestMinSpeedup:
    def test_default(self):
        assert resolve_min_speedup() == MIN_SPEEDUP

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_MIN_SPEEDUP", "9")
        assert resolve_min_speedup(2.5) == 2.5

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_MIN_SPEEDUP", "7.5")
        assert resolve_min_speedup() == 7.5

    def test_malformed_env_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_MIN_SPEEDUP", "fast")
        with pytest.raises(ValueError, match="REPRO_BENCH_MIN_SPEEDUP"):
            resolve_min_speedup()

    @pytest.mark.parametrize("value", [0, -1.5])
    def test_non_positive_rejected(self, value):
        with pytest.raises(ValueError, match="positive"):
            resolve_min_speedup(value)

    def test_threshold_recorded_in_report(self):
        traces = [stride_trace("t", 0x1000, 0, 3, 1500)]
        report = run_bench(traces=traces, fast=True, repeats=1,
                           min_speedup=0.01)
        assert report["guard"]["min_speedup"] == 0.01
        assert "0.01x" in render_bench(report)


class TestRunBench:
    def test_schema(self, report):
        assert report["schema"] == 1
        assert report["schema_version"] == 1
        assert report["mode"] == "fast"
        assert report["anchor"] == {"benchmark": "a", "records": 2000}
        assert report["suite_traces"] == ["a", "b"]
        assert len(report["families"]) == len(bench_specs())
        for entry in report["families"]:
            assert entry["scalar_seconds"] > 0
            assert entry["batch_seconds"] > 0
            assert entry["speedup"] == pytest.approx(
                entry["scalar_seconds"] / entry["batch_seconds"], rel=1e-2)

    def test_engines_agree_on_counts(self, report):
        # run_bench raises if they don't; the recorded count is real.
        for entry in report["families"]:
            assert 0 <= entry["correct"] <= entry["records"]

    def test_fast_mode_records_but_never_fails_guard(self, report):
        guard = report["guard"]
        assert guard["min_speedup"] == MIN_SPEEDUP
        assert guard["enforced"] is False
        assert guard["passed"] is True

    def test_needs_a_trace(self):
        with pytest.raises(ValueError):
            run_bench(traces=[])


class TestRendering:
    def test_render_mentions_guard_and_families(self, report):
        text = render_bench(report)
        assert "guard" in text
        assert "dfcm" in text and "hybrid" in text
        assert "recorded only" in text

    def test_write_report_round_trips(self, report, tmp_path):
        path = tmp_path / "bench.json"
        write_report(report, str(path))
        assert json.loads(path.read_text()) == report
