"""The parallel sweep executor: resolution, determinism, telemetry.

Process-pool tests use real worker processes (fork on Linux); traces
are kept tiny so the whole module stays fast.
"""

import json

import pytest

from repro.core.spec import DFCMSpec, StrideSpec
from repro.harness.executor import (EXECUTOR_NAMES, executor_default,
                                    resolve_executor, run_cells)
from repro.harness.simulate import measure_suite
from repro.harness.sweep import sweep
from tests.conftest import repeating_trace, stride_trace

SPEC = DFCMSpec(256, 64)


@pytest.fixture(autouse=True)
def clean_telemetry_state():
    """Close stray runs and zero the registry around every test."""
    from repro.telemetry import run as run_module
    from repro.telemetry import spans as spans_module
    from repro.telemetry.registry import registry
    registry().reset()
    run_module.finish_run()
    spans_module._STACK.clear()
    yield
    run_module.finish_run()
    spans_module._STACK.clear()
    registry().reset()


def small_suite():
    return [stride_trace("a", 0x1000, 0, 3, 600),
            repeating_trace("b", 0x2000, [5, 9, 2], 200),
            stride_trace("c", 0x3000, 7, -1, 600)]


class TestResolveExecutor:
    def test_default_is_serial(self):
        assert resolve_executor() == ("serial", 1)

    def test_jobs_above_one_implies_process(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 8)
        assert resolve_executor(jobs=4) == ("process", 4)

    def test_serial_forces_one_job(self):
        assert resolve_executor("serial", jobs=8) == ("serial", 1)

    def test_process_without_count_takes_cpu_count(self):
        name, jobs = resolve_executor("process")
        assert name == "process" and jobs >= 1

    def test_invalid_jobs(self):
        with pytest.raises(ValueError):
            resolve_executor(jobs=0)

    def test_unknown_executor(self):
        with pytest.raises(ValueError):
            resolve_executor("threads")
        assert "threads" not in EXECUTOR_NAMES

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 8)
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_executor() == ("process", 3)

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_executor("serial") == ("serial", 1)


class TestEnvJobsValidation:
    @pytest.mark.parametrize("value", ["abc", "3.5", "0", "-2", " "])
    def test_malformed_env_jobs_raise_at_resolve(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_JOBS", value)
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            resolve_executor("process")

    def test_empty_env_means_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "")
        assert resolve_executor() == ("serial", 1)

    def test_explicit_jobs_skip_env_validation(self, monkeypatch):
        # A bad env var must not poison an explicitly-configured run.
        monkeypatch.setenv("REPRO_JOBS", "abc")
        assert resolve_executor("serial", jobs=1) == ("serial", 1)


class TestJobsClamping:
    def _clamp_count(self):
        from repro.telemetry.registry import registry
        snapshot = registry().snapshot().get("repro_jobs_clamped_total")
        if not snapshot:
            return 0
        return sum(s["value"] for s in snapshot["samples"])

    def test_oversubscription_clamps_to_cores(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 2)
        assert resolve_executor(jobs=16) == ("process", 2)
        assert self._clamp_count() == 1

    def test_env_jobs_clamp_too(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 2)
        monkeypatch.setenv("REPRO_JOBS", "64")
        assert resolve_executor() == ("process", 2)

    def test_within_budget_untouched(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 8)
        assert resolve_executor(jobs=8) == ("process", 8)
        assert self._clamp_count() == 0

    def test_clamp_emits_warning_event_under_telemetry(self, monkeypatch,
                                                       tmp_path):
        from repro.telemetry.run import finish_run, start_run
        monkeypatch.setattr("os.cpu_count", lambda: 2)
        run = start_run(tmp_path / "telemetry", command="test")
        run_dir = run.dir
        resolve_executor(jobs=5)
        finish_run()
        events = [json.loads(line) for line
                  in (run_dir / "events.jsonl").read_text().splitlines()]
        warnings = [e for e in events if e.get("what") == "jobs_clamped"]
        assert len(warnings) == 1
        assert warnings[0]["requested"] == 5
        assert warnings[0]["cpu_count"] == 2


class TestExecutorDefault:
    def test_installs_and_restores(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 8)
        with executor_default(jobs=4):
            assert resolve_executor() == ("process", 4)
        assert resolve_executor() == ("serial", 1)

    def test_explicit_argument_wins(self):
        with executor_default(jobs=4):
            assert resolve_executor("serial") == ("serial", 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            with executor_default("threads"):
                pass
        with pytest.raises(ValueError):
            with executor_default(jobs=0):
                pass


class TestProcessDeterminism:
    def test_measure_suite_matches_serial(self):
        traces = small_suite()
        serial = measure_suite(SPEC, traces, executor="serial")
        parallel = measure_suite(SPEC, traces, executor="process", jobs=3)
        assert parallel.per_trace.keys() == serial.per_trace.keys()
        for name in serial.per_trace:
            assert parallel.per_trace[name] == serial.per_trace[name]
        assert parallel.accuracy == serial.accuracy

    def test_sweep_matches_serial(self):
        traces = small_suite()
        factories = [StrideSpec(64), SPEC]
        serial = sweep(factories, traces, executor="serial")
        parallel = sweep(factories, traces, executor="process", jobs=2)
        assert parallel == serial

    def test_run_cells_preserves_submission_order(self):
        traces = small_suite()
        cells = [(SPEC, trace) for trace in traces]
        outcomes = run_cells(cells, jobs=2)
        assert [o.trace_name for o in outcomes] == [t.name for t in traces]

    def test_opaque_factory_stays_serial(self):
        # Closures don't pickle; the suite must fall back silently and
        # still produce the same numbers.
        from repro.core.dfcm import DFCMPredictor
        traces = small_suite()
        opaque = measure_suite(lambda: DFCMPredictor(256, 64), traces,
                               executor="process", jobs=3)
        assert opaque.accuracy == measure_suite(SPEC, traces).accuracy


class TestWorkerTelemetry:
    def _run_events(self, tmp_path):
        from repro.telemetry.run import finish_run, start_run
        from repro.telemetry.spans import span
        run = start_run(tmp_path / "telemetry", command="test")
        run_dir = run.dir
        with span("experiment", experiment="x"):
            measure_suite(SPEC, small_suite(), executor="process",
                          jobs=2)
        finish_run()
        lines = (run_dir / "events.jsonl").read_text().splitlines()
        return [json.loads(line) for line in lines]

    def test_worker_spans_forwarded_and_reparented(self, tmp_path):
        events = self._run_events(tmp_path)
        spans = {e["span_id"]: e for e in events if e["type"] == "span"}
        worker = [e for e in spans.values()
                  if e["span_id"].startswith("w")]
        assert worker, "no worker spans forwarded"
        cells = {e["attrs"]["cell"] for e in worker}
        assert cells == {0, 1, 2}
        experiment = next(e for e in spans.values()
                          if e["name"] == "experiment")
        for event in worker:
            prefix = event["span_id"].split(":")[0]
            if event["parent_id"] is None or \
                    not event["parent_id"].startswith(prefix + ":"):
                # Worker root spans hang off the parent's open span.
                assert event["parent_id"] == experiment["span_id"]
            assert event["depth"] >= 1
            assert "ts" in event  # re-stamped on the parent clock

    def test_worker_trace_spans_carry_engine(self, tmp_path):
        events = self._run_events(tmp_path)
        predictor_spans = [e for e in events if e["type"] == "span"
                           and e["name"] == "predictor"
                           and e["span_id"].startswith("w")]
        assert predictor_spans
        for event in predictor_spans:
            assert event["attrs"]["engine"] in ("batch", "scalar")

    def test_worker_metrics_merged(self, tmp_path):
        from repro.telemetry.registry import registry
        from repro.telemetry.run import finish_run, start_run
        from repro.telemetry.spans import span
        run = start_run(tmp_path / "telemetry", command="test")
        with span("experiment"):
            suite = measure_suite(SPEC, small_suite(), executor="process",
                                  jobs=2)
        snapshot = registry().snapshot()
        finish_run()
        totals = snapshot["repro_predictions_total"]
        assert sum(s["value"] for s in totals["samples"]) == suite.total

    def test_probe_events_tagged_with_cell(self, tmp_path):
        events = self._run_events(tmp_path)
        probes = [e for e in events if e["type"] == "probe"]
        assert probes
        assert all("cell" in e for e in probes)


class TestSweepSpans:
    def test_sweep_points_labelled_with_engine_and_jobs(self, tmp_path,
                                                        monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 8)
        from repro.telemetry.run import finish_run, start_run
        run = start_run(tmp_path / "telemetry", command="test")
        run_dir = run.dir
        sweep([StrideSpec(64), SPEC], small_suite(),
              executor="process", jobs=2)
        finish_run()
        events = [json.loads(line) for line
                  in (run_dir / "events.jsonl").read_text().splitlines()]
        points = [e for e in events if e["type"] == "span"
                  and e["name"] == "sweep_point"]
        assert len(points) == 2
        for event in points:
            assert event["attrs"]["jobs"] == 2
            assert event["attrs"]["engine"] in ("auto", "scalar", "batch")
