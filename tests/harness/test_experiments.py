"""Tests for the experiment registry (on tiny synthetic traces).

The paper-claim assertions live in benchmarks/; these tests check the
*machinery*: every experiment runs, produces its tables, and the tables
have the expected structure.
"""

import pytest

from repro.harness.experiments import (EXPERIMENTS, experiment_ids,
                                       run_experiment)
from tests.conftest import interleaved, repeating_trace, stride_trace


@pytest.fixture(scope="module")
def tiny_traces():
    """Small mixed traces standing in for the benchmark suite."""
    traces = []
    for index, name in enumerate(["alpha", "beta"]):
        base = 0x1000 + index * 0x40
        traces.append(interleaved(
            stride_trace(f"{name}", base, index, 3 + index, 400),
            repeating_trace(f"{name}_ctx", base + 4,
                            [7, 2, 9, 4, 1][index:], 80),
        ))
        traces[-1].name = name
    return traces


class TestRegistry:
    def test_known_ids(self):
        expected = {"table1", "fig3", "fig6_9", "fig10", "fig11",
                    "fig12_14", "fig16", "sec4_4", "fig17",
                    "ablation_hash", "ablation_order",
                    "ablation_confidence"}
        assert expected <= set(experiment_ids())

    def test_unknown_id(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig99", traces=[])


# table1, fig6_9, ext_optlevel and ext_seeds resolve trace names against
# the real workload registry, so they cannot run on synthetic traces.
@pytest.mark.parametrize("experiment_id", sorted(
    set(experiment_ids()) - {"table1", "fig6_9", "ext_optlevel",
                             "ext_seeds"}))
def test_experiment_runs_on_tiny_traces(experiment_id, tiny_traces):
    result = run_experiment(experiment_id, traces=tiny_traces, fast=True)
    assert result.experiment_id == experiment_id
    assert result.tables
    text = result.render()
    assert experiment_id in text
    for table in result.tables:
        assert table.rows, f"{table.title} is empty"


class TestStructure:
    def test_fig10_columns(self, tiny_traces):
        result = run_experiment("fig10", traces=tiny_traces, fast=True)
        sweep = result.table("accuracy vs level-2 size")
        assert sweep.headers == ["log2_l2", "fcm", "dfcm", "relative_gain"]
        per_bench = result.table("per-benchmark")
        names = per_bench.column("benchmark")
        assert names[:-1] == [t.name for t in tiny_traces]
        assert names[-1] == "weighted_avg"

    def test_fig12_14_fractions_sum_to_one(self, tiny_traces):
        result = run_experiment("fig12_14", traces=tiny_traces, fast=True)
        for kind in ("fcm", "dfcm"):
            table = result.table(f"Figure 13 ({kind})")
            for row in table.rows:
                assert sum(row[1:]) == pytest.approx(1.0)

    def test_fig17_has_requested_delays(self, tiny_traces):
        result = run_experiment("fig17", traces=tiny_traces, fast=True)
        table = result.table("accuracy vs update delay")
        assert table.column("delay") == [0, 16, 64]

    def test_sec4_4_all_widths(self, tiny_traces):
        result = run_experiment("sec4_4", traces=tiny_traces, fast=True)
        table = result.table("accuracy and size")
        assert sorted(set(table.column("stride_bits"))) == [8, 16, 32]
