"""The ``repro tables`` sweep: matched specs, report shape, rendering."""

import pytest

from repro.core.spec import DFCMSpec, FCMSpec, OracleHybridSpec, StrideSpec
from repro.harness.tables_report import (DEFAULT_BUDGETS_KBIT,
                                         DEFAULT_FAMILIES, matched_spec,
                                         render_tables_report,
                                         run_tables_report)
from tests.conftest import interleaved, repeating_trace, stride_trace


def mixed_trace(n_each=400):
    return interleaved(
        stride_trace("s", 0x1000, 0, 4, n_each),
        repeating_trace("ctx", 0x1004, [3, 8, 1, 9, 4, 7], n_each // 6),
    )


class TestMatchedSpec:
    @pytest.mark.parametrize("family", DEFAULT_FAMILIES)
    @pytest.mark.parametrize("budget", DEFAULT_BUDGETS_KBIT)
    def test_storage_lands_near_the_budget(self, family, budget):
        spec = matched_spec(family, budget)
        # Power-of-two sizing can at worst straddle the budget by ~2x
        # in either direction; anything further off means the search
        # walked away from the target.
        assert budget / 2.5 <= spec.storage_kbit() <= budget * 2.5

    def test_context_specs_keep_the_paper_shape(self):
        for family, cls in (("fcm", FCMSpec), ("dfcm", DFCMSpec)):
            for budget in DEFAULT_BUDGETS_KBIT:
                spec = matched_spec(family, budget)
                assert isinstance(spec, cls)
                ratio = spec.l1_entries // spec.l2_entries
                assert ratio in (8, 16, 32), (
                    f"{spec.name} left the level-1:level-2 ratio band")

    def test_hybrid_splits_stride_plus_dfcm(self):
        spec = matched_spec("hybrid", 256.0)
        assert isinstance(spec, OracleHybridSpec)
        stride, dfcm = spec.components
        assert isinstance(stride, StrideSpec)
        assert isinstance(dfcm, DFCMSpec)
        # The DFCM takes three quarters of the budget.
        assert dfcm.storage_kbit() > stride.storage_kbit()

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown family"):
            matched_spec("tage", 64.0)

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            matched_spec("fcm", 0.0)


class TestRunTablesReport:
    def test_report_shape_and_comparison(self):
        trace = mixed_trace()
        report = run_tables_report(trace, budgets_kbit=[32.0, 64.0],
                                   families=["fcm", "dfcm"])
        assert report["schema"] == 1
        assert report["command"] == "tables"
        assert report["benchmark"] == trace.name
        assert report["sampled_records"] == len(trace)
        assert len(report["cells"]) == 4
        for cell in report["cells"]:
            assert cell["family"] in ("fcm", "dfcm")
            assert cell["budget_kbit"] in (32.0, 64.0)
            assert 0 <= cell["accuracy"] <= 1
            assert cell["efficiency"] >= 0
            assert cell["engine"] in ("batch", "scalar")
        assert len(report["comparison"]) == 2
        assert report["dfcm_beats_fcm"] in (True, False)
        for row in report["comparison"]:
            assert row["dfcm_beats_fcm"] == (
                row["dfcm_efficiency"] > row["fcm_efficiency"])

    def test_cells_are_keyed_by_sweep_family(self):
        # The sweep key ("lvp"), not the spec family ("last_value"):
        # the renderer's grids look cells up by sweep key.
        report = run_tables_report(mixed_trace(60), budgets_kbit=[32.0],
                                   families=["lvp"])
        [cell] = report["cells"]
        assert cell["family"] == "lvp"
        assert cell["spec"].startswith("lvp_")

    def test_no_verdict_without_both_context_families(self):
        report = run_tables_report(mixed_trace(60), budgets_kbit=[32.0],
                                   families=["lvp", "stride"])
        assert report["comparison"] == []
        assert report["dfcm_beats_fcm"] is None

    def test_sample_bounds_the_replay(self):
        report = run_tables_report(mixed_trace(), budgets_kbit=[32.0],
                                   families=["dfcm"], sample=100)
        assert report["sampled_records"] == 100
        assert report["cells"][0]["sampled_records"] == 100

    def test_empty_trace_rejected(self):
        from repro.trace.trace import ValueTrace
        with pytest.raises(ValueError, match="no records"):
            run_tables_report(ValueTrace("empty", [], []))

    def test_scalar_engine_matches_batch(self):
        trace = mixed_trace(120)
        kwargs = dict(budgets_kbit=[32.0], families=["fcm", "dfcm"])
        batch = run_tables_report(trace, engine="batch", **kwargs)
        scalar = run_tables_report(trace, engine="scalar", **kwargs)
        for b_cell, s_cell in zip(batch["cells"], scalar["cells"]):
            assert b_cell["efficiency"] == s_cell["efficiency"]
            assert b_cell["accuracy"] == s_cell["accuracy"]


class TestRenderTablesReport:
    def test_table_heatmaps_and_verdict(self):
        report = run_tables_report(mixed_trace(), budgets_kbit=[32.0, 64.0],
                                   families=["fcm", "dfcm"])
        text = render_tables_report(report)
        assert "table usage on" in text
        assert "occupancy (entries used / entries)" in text
        assert "destructive aliasing rate" in text
        assert "efficiency (correct per live bit)" in text
        assert "scale:" in text
        assert ("DFCM beats FCM" in text
                or "DFCM does NOT beat FCM" in text)

    def test_no_verdict_line_without_comparison(self):
        report = run_tables_report(mixed_trace(60), budgets_kbit=[32.0],
                                   families=["stride"])
        text = render_tables_report(report)
        assert "DFCM" not in text
