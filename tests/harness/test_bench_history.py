"""Bench history: append/read round trip and the regression gate."""

import json

import pytest

from repro.harness.bench import (MAX_REGRESSION_PCT, append_history,
                                 diff_history, history_entry, read_history,
                                 render_history_diff,
                                 resolve_max_regression_pct)


def make_report(batch=100_000, scalar=10_000, family="dfcm",
                efficiency=None):
    """The slice of a run_bench report that history cares about."""
    entry = {
        "family": family,
        "predictor": f"{family}_x",
        "batch_records_per_sec": batch,
        "scalar_records_per_sec": scalar,
        "speedup": round(batch / scalar, 2),
    }
    if efficiency is not None:
        entry["table_efficiency"] = efficiency
    return {
        "mode": "python",
        "anchor": {"benchmark": "synth", "records": 5000},
        "python": "3.11.0",
        "machine": "x86_64",
        "families": [entry],
        "suite": {"speedup": 9.5},
    }


def append(tmp_path, batch, family="dfcm"):
    path = tmp_path / "BENCH_history.jsonl"
    append_history(make_report(batch=batch, family=family), str(path))
    return str(path)


class TestThresholdResolution:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_MAX_REGRESSION_PCT", raising=False)
        assert resolve_max_regression_pct() == MAX_REGRESSION_PCT

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_MAX_REGRESSION_PCT", "25")
        assert resolve_max_regression_pct() == 25.0

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_MAX_REGRESSION_PCT", "25")
        assert resolve_max_regression_pct(5.0) == 5.0

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_MAX_REGRESSION_PCT", "fast")
        with pytest.raises(ValueError, match="must be a number"):
            resolve_max_regression_pct()

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            resolve_max_regression_pct(-1.0)


class TestHistoryRecords:
    def test_entry_shape(self):
        entry = history_entry(make_report())
        assert entry["schema"] == 1
        assert entry["mode"] == "python"
        assert entry["families"]["dfcm"]["batch_records_per_sec"] == 100_000
        assert entry["suite_speedup"] == 9.5
        # Run from a git checkout, the sha is recorded.
        assert entry["git_sha"] is None or len(entry["git_sha"]) == 40
        assert "T" in entry["timestamp"]

    def test_append_read_round_trip(self, tmp_path):
        path = append(tmp_path, 100_000)
        append(tmp_path, 120_000)
        entries = read_history(path)
        assert len(entries) == 2
        assert [e["families"]["dfcm"]["batch_records_per_sec"]
                for e in entries] == [100_000, 120_000]

    def test_entries_are_json_lines(self, tmp_path):
        path = append(tmp_path, 100_000)
        lines = open(path).read().splitlines()
        assert len(lines) == 1
        json.loads(lines[0])


class TestDiffGate:
    def test_needs_two_records(self, tmp_path):
        path = append(tmp_path, 100_000)
        with pytest.raises(ValueError, match="at least 2"):
            diff_history(path)

    def test_improvement_passes(self, tmp_path):
        path = append(tmp_path, 100_000)
        append(tmp_path, 120_000)
        diff = diff_history(path)
        assert diff["passed"] is True
        (family,) = diff["families"]
        assert family["delta_pct"] == 20.0
        assert not family["regressed"]

    def test_regression_beyond_threshold_fails(self, tmp_path):
        path = append(tmp_path, 100_000)
        append(tmp_path, 80_000)  # -20% against a 10% default gate
        diff = diff_history(path)
        assert diff["passed"] is False
        assert diff["regressed"] == ["dfcm"]
        assert diff["families"][0]["delta_pct"] == -20.0

    def test_threshold_argument_loosens_gate(self, tmp_path):
        path = append(tmp_path, 100_000)
        append(tmp_path, 80_000)
        assert diff_history(path, max_regression_pct=30.0)["passed"]

    def test_env_threshold_applies(self, tmp_path, monkeypatch):
        path = append(tmp_path, 100_000)
        append(tmp_path, 80_000)
        monkeypatch.setenv("REPRO_BENCH_MAX_REGRESSION_PCT", "50")
        diff = diff_history(path)
        assert diff["passed"] is True
        assert diff["max_regression_pct"] == 50.0

    def test_diffs_last_two_records_only(self, tmp_path):
        path = append(tmp_path, 50_000)   # old slow record
        append(tmp_path, 100_000)
        append(tmp_path, 99_000)          # -1% vs previous: fine
        assert diff_history(path)["passed"] is True

    def test_family_mismatch_raises_both_named(self, tmp_path):
        # A family silently appearing in or vanishing from the grid
        # would dodge the gate, so either direction is an error.
        path = append(tmp_path, 100_000, family="dfcm")
        append(tmp_path, 100, family="stride")
        with pytest.raises(ValueError) as err:
            diff_history(path)
        message = str(err.value)
        assert "missing from the current run: dfcm" in message
        assert "not in the previous record: stride" in message
        assert "re-baseline" in message

    def test_family_vanishing_raises(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        report = make_report(family="dfcm")
        report["families"].append(make_report(family="stride")["families"][0])
        append_history(report, str(path))
        append_history(make_report(family="dfcm"), str(path))
        with pytest.raises(ValueError, match="missing from the current run: "
                                             "stride"):
            diff_history(str(path))

    def test_family_appearing_raises(self, tmp_path):
        path = append(tmp_path, 100_000, family="dfcm")
        report = make_report(family="dfcm")
        report["families"].append(make_report(family="stride")["families"][0])
        append_history(report, str(path))
        with pytest.raises(ValueError, match="not in the previous record: "
                                             "stride"):
            diff_history(path)

    def test_efficiency_is_reported_but_never_gates(self, tmp_path):
        # A 50% efficiency collapse with steady throughput still passes:
        # efficiency moves with deliberate table-shape changes.
        path = tmp_path / "BENCH_history.jsonl"
        append_history(make_report(efficiency=2.0), str(path))
        append_history(make_report(efficiency=1.0), str(path))
        diff = diff_history(str(path))
        assert diff["passed"] is True
        (family,) = diff["families"]
        assert family["base_table_efficiency"] == 2.0
        assert family["head_table_efficiency"] == 1.0
        assert family["efficiency_delta_pct"] == -50.0
        assert not family["regressed"]
        text = render_history_diff(diff)
        assert "-50.00%" in text and "PASS" in text

    def test_old_records_without_efficiency_render_as_dash(self, tmp_path):
        # Records written before the efficiency column predate the
        # field; the diff degrades to "--" instead of crashing.
        path = tmp_path / "BENCH_history.jsonl"
        append_history(make_report(), str(path))
        append_history(make_report(efficiency=1.5), str(path))
        diff = diff_history(str(path))
        (family,) = diff["families"]
        assert family["base_table_efficiency"] is None
        assert family["efficiency_delta_pct"] is None
        assert "--" in render_history_diff(diff)

    def test_history_entry_carries_efficiency(self):
        entry = history_entry(make_report(efficiency=0.25))
        assert entry["families"]["dfcm"]["table_efficiency"] == 0.25

    def test_render_mentions_verdict(self, tmp_path):
        path = append(tmp_path, 100_000)
        append(tmp_path, 80_000)
        text = render_history_diff(diff_history(path))
        assert "REGRESSED" in text
        assert "FAIL" in text
        text_ok = render_history_diff(
            diff_history(path, max_regression_pct=90.0))
        assert "PASS" in text_ok
