"""Tests for result tables and rendering."""

import pytest

from repro.harness.report import ExperimentResult, Table, format_table


class TestTable:
    def test_add_and_column(self):
        table = Table("t", ["a", "b"])
        table.add(1, 2)
        table.add(3, 4)
        assert table.column("a") == [1, 3]
        assert table.column("b") == [2, 4]

    def test_add_wrong_arity(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add(1)

    def test_lookup(self):
        table = Table("t", ["name", "value"])
        table.add("x", 10)
        table.add("y", 20)
        assert table.lookup("name", "y", "value") == 20
        with pytest.raises(KeyError):
            table.lookup("name", "z", "value")

    def test_render_aligns(self):
        table = Table("title", ["col", "value"])
        table.add("aaa", 0.123456)
        text = table.render()
        assert "title" in text
        assert "0.1235" in text  # floats rendered with 4 decimals

    def test_csv(self):
        table = Table("t", ["a", "b"])
        table.add("x,y", 1.5)
        csv = table.to_csv()
        assert csv.splitlines()[0] == "a,b"
        assert '"x,y"' in csv and "1.5" in csv


class TestExperimentResult:
    def test_table_lookup_by_fragment(self):
        result = ExperimentResult("e1", "title")
        result.tables.append(Table("alpha metrics", ["x"]))
        result.tables.append(Table("beta metrics", ["x"]))
        assert result.table("beta").title == "beta metrics"
        with pytest.raises(KeyError):
            result.table("gamma")

    def test_render_includes_everything(self):
        result = ExperimentResult("e1", "my experiment")
        table = Table("numbers", ["n"])
        table.add(7)
        result.tables.append(table)
        result.notes.append("a note")
        text = result.render()
        assert "e1" in text and "my experiment" in text
        assert "numbers" in text and "7" in text
        assert "note: a note" in text


class TestFormatTable:
    def test_right_aligned_cells(self):
        text = format_table(["x"], [[1], [100]])
        lines = text.splitlines()
        assert lines[-1] == "100"
        assert lines[-2] == "  1"
