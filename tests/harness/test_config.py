"""Tests for harness configuration."""

import pytest

from repro.harness.config import default_trace_length, suite_traces
from repro.workloads.registry import SPEC_NAMES


class TestTraceLength:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_LEN", raising=False)
        assert default_trace_length() == 100_000

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_LEN", "12345")
        assert default_trace_length() == 12345

    def test_rejects_nonpositive(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_LEN", "0")
        with pytest.raises(ValueError):
            default_trace_length()


class TestSuiteTraces:
    def test_suite_in_paper_order(self):
        traces = suite_traces(1000)
        assert [t.name for t in traces] == SPEC_NAMES
        assert all(len(t) == 1000 for t in traces)
