"""The table-usage auditor's accounting, taken apart metric by metric."""

import numpy as np
import pytest

from repro.core.spec import (DFCMSpec, FCMSpec, LastNSpec, LastValueSpec,
                             OracleHybridSpec, StrideSpec)
from repro.telemetry.tables import (REUSE_BUCKETS, TableUsageAuditor,
                                    level1_entries, state_table_specs,
                                    table_stats_from_state)
from tests.conftest import stride_trace


class TestConstruction:
    def test_unauditable_family_rejected(self):
        spec = LastNSpec(64, 4)
        with pytest.raises(ValueError, match="not auditable"):
            TableUsageAuditor(spec)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            TableUsageAuditor(StrideSpec(64), engine="gpu")

    def test_length_mismatch_rejected(self):
        auditor = TableUsageAuditor(StrideSpec(64))
        with pytest.raises(ValueError, match="lengths differ"):
            auditor.update([1, 2], [3])


class TestHeadlineMetrics:
    def test_accuracy_and_efficiency_formulae(self):
        # A perfect stride stream after the two-record warm-up.
        trace = stride_trace("s", 0x40, 0, 4, 100)
        auditor = TableUsageAuditor(StrideSpec(64))
        auditor.update(trace.pcs, trace.values)
        report = auditor.report()
        assert report["sampled_records"] == 100
        assert 90 <= report["correct"] < 100  # only the warm-up misses
        assert report["accuracy"] == round(report["correct"] / 100, 6)
        assert report["live_bits"] > 0
        assert report["efficiency"] == round(
            report["correct"] / report["live_bits"], 9)

    def test_efficiency_zero_when_nothing_live(self):
        # A single all-zero record leaves every table word zero.
        auditor = TableUsageAuditor(LastValueSpec(64))
        auditor.update([0x40], [0])
        report = auditor.report()
        assert report["live_bits"] == 0
        assert report["efficiency"] == 0.0

    def test_l1_accesses_equal_records(self):
        trace = stride_trace("s", 0x40, 0, 4, 50)
        auditor = TableUsageAuditor(DFCMSpec(64, 64))
        auditor.update(trace.pcs, trace.values)
        assert auditor.access_counts("l1").sum() == 50
        assert auditor.access_counts("l2").sum() == 50


class TestLevelAudit:
    def test_single_pc_occupies_one_l1_entry(self):
        trace = stride_trace("s", 0x40, 0, 4, 64)
        auditor = TableUsageAuditor(LastValueSpec(64))
        auditor.update(trace.pcs, trace.values)
        level = auditor.report()["levels"]["l1"]
        assert level["entries_used"] == 1
        assert level["occupancy_ratio"] == round(1 / 64, 6)
        assert level["cold_fraction"] == round(1 - 1 / 64, 6)
        assert level["conflicts"] == 0
        assert level["alias_rate"] == 0.0

    def test_colliding_pcs_are_counted_as_conflicts(self):
        # Two pcs, 8-entry table: (pc >> 2) & 7 maps 0x40 and 0x60 to
        # the same entry, so every access after the first conflicts.
        pcs = [0x40, 0x60] * 20
        values = list(range(40))
        auditor = TableUsageAuditor(LastValueSpec(8))
        auditor.update(pcs, values)
        level = auditor.report()["levels"]["l1"]
        assert level["conflicts"] == 39
        assert level["alias_rate"] == round(39 / 40, 6)
        # Constructive + destructive partition the conflicts exactly.
        assert (level["alias_constructive_rate"]
                + level["alias_destructive_rate"]) == level["alias_rate"]

    def test_reuse_histogram_buckets_log2_distances(self):
        # One pc re-accessed every record: all reuse distances are 1,
        # which lands in bucket 0 ([1, 2)).
        trace = stride_trace("s", 0x40, 0, 4, 33)
        auditor = TableUsageAuditor(LastValueSpec(64))
        auditor.update(trace.pcs, trace.values)
        histogram = auditor.report()["levels"]["l1"]["reuse_histogram"]
        assert len(histogram) == REUSE_BUCKETS
        assert histogram[0] == 32  # 33 accesses, 32 revisits
        assert sum(histogram[1:]) == 0

    def test_dead_entries_are_single_access(self):
        pcs = [0x40, 0x44, 0x44]  # 0x40 touched once, 0x44 twice
        auditor = TableUsageAuditor(LastValueSpec(64))
        auditor.update(pcs, [1, 2, 3])
        level = auditor.report()["levels"]["l1"]
        assert level["entries_used"] == 2
        assert level["dead_entries"] == 1


class TestStateStats:
    def test_live_bits_count_nonzero_entries(self):
        spec = LastValueSpec(8)
        [(key, table)] = state_table_specs(spec)
        state = {key: np.array([0, 5, 0, 9, 0, 0, 0, 1])}
        stats = table_stats_from_state(spec, state)
        assert stats["tables"][key]["live"] == 3
        assert stats["live_bits"] == 3 * table.entry_bits
        assert stats["storage_bits"] == spec.storage_bits()
        assert stats["live_fraction"] == round(
            stats["live_bits"] / stats["storage_bits"], 6)

    def test_hybrid_state_keys_are_prefixed(self):
        spec = OracleHybridSpec((StrideSpec(8), DFCMSpec(16, 8)))
        keys = [key for key, _ in state_table_specs(spec)]
        assert all(key.startswith(("c0.", "c1.")) for key in keys)
        auditor = TableUsageAuditor(spec)
        trace = stride_trace("s", 0x40, 0, 4, 32)
        auditor.update(trace.pcs, trace.values)
        assert set(auditor.report()["tables"]) == set(keys)


class TestLevel1Entries:
    def test_per_family_sizes(self):
        assert level1_entries(LastValueSpec(64)) == 64
        assert level1_entries(StrideSpec(32)) == 32
        assert level1_entries(FCMSpec(128, 512)) == 128
        assert level1_entries(DFCMSpec(256, 64)) == 256

    def test_hybrid_reports_largest_component(self):
        spec = OracleHybridSpec((StrideSpec(32), DFCMSpec(128, 64)))
        assert level1_entries(spec) == 128
