"""Span behaviour: the no-op fast path and live nesting."""

import json

import pytest

from repro.telemetry.spans import NOOP_SPAN, NoopSpan, current_span, span


class TestDisabledFastPath:
    def test_span_returns_shared_noop_singleton(self):
        # The zero-allocation contract: every disabled call hands back
        # the same object -- nothing is constructed per call site.
        assert span("a") is NOOP_SPAN
        assert span("a") is span("b", attr=1)

    def test_noop_span_is_inert(self):
        with span("anything", k="v") as sp:
            assert sp is NOOP_SPAN
            sp.set("key", "discarded")
        assert current_span() is None

    def test_noop_does_not_swallow_exceptions(self):
        with pytest.raises(ValueError):
            with span("x"):
                raise ValueError("boom")

    def test_noop_span_has_no_instance_dict(self):
        assert NoopSpan.__slots__ == ()
        with pytest.raises(AttributeError):
            NOOP_SPAN.anything = 1


class TestLiveSpans:
    def _events(self, run):
        run_dir = run.dir
        from repro.telemetry.run import finish_run
        finish_run()
        lines = (run_dir / "events.jsonl").read_text().splitlines()
        return [json.loads(line) for line in lines]

    def test_nesting_parent_ids_and_depth(self, active_run):
        with span("outer") as outer:
            assert current_span() is outer
            with span("inner") as inner:
                assert current_span() is inner
                with span("leaf"):
                    pass
        events = [e for e in self._events(active_run)
                  if e["type"] == "span"]
        by_name = {e["name"]: e for e in events}
        assert by_name["outer"]["parent_id"] is None
        assert by_name["outer"]["depth"] == 0
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["inner"]["depth"] == 1
        assert by_name["leaf"]["parent_id"] == by_name["inner"]["span_id"]
        assert by_name["leaf"]["depth"] == 2
        # Emitted on exit: children close before parents.
        assert [e["name"] for e in events] == ["leaf", "inner", "outer"]

    def test_attributes_and_duration(self, active_run):
        with span("work", static="attr") as sp:
            sp.set("dynamic", 42)
        [event] = [e for e in self._events(active_run)
                   if e["type"] == "span"]
        assert event["attrs"] == {"static": "attr", "dynamic": 42}
        assert event["status"] == "ok"
        assert event["duration_s"] >= 0
        assert "ts" in event

    def test_exception_marks_span_error(self, active_run):
        with pytest.raises(RuntimeError):
            with span("doomed"):
                raise RuntimeError("boom")
        [event] = [e for e in self._events(active_run)
                   if e["type"] == "span"]
        assert event["status"] == "error"
        assert event["attrs"]["error"] == "RuntimeError"

    def test_span_ids_are_sequential_per_run(self, active_run):
        with span("a"):
            pass
        with span("b"):
            pass
        events = [e for e in self._events(active_run)
                  if e["type"] == "span"]
        assert [e["span_id"] for e in events] == ["s1", "s2"]
