"""Live registry scrape path (the /metrics read side)."""

from repro.telemetry.live import live_prometheus_text, live_snapshot
from repro.telemetry.registry import registry


def seed_metrics():
    registry().counter("live_requests_total", "Requests").inc(5)
    registry().gauge("live_depth").set(3)
    registry().histogram("other_seconds", buckets=(1,)).observe(0.5)


class TestLiveSnapshot:
    def test_reflects_current_registry(self):
        seed_metrics()
        snap = live_snapshot()
        assert snap["live_requests_total"]["samples"][0]["value"] == 5
        assert snap["live_depth"]["samples"][0]["value"] == 3

    def test_prefix_filter(self):
        seed_metrics()
        snap = live_snapshot(prefix="live_")
        assert "live_requests_total" in snap
        assert "live_depth" in snap
        assert "other_seconds" not in snap

    def test_scrape_is_read_only(self):
        seed_metrics()
        before = live_snapshot()
        live_prometheus_text()
        assert live_snapshot() == before


class TestLivePrometheusText:
    def test_renders_current_values(self):
        seed_metrics()
        text = live_prometheus_text()
        assert "# TYPE live_requests_total counter" in text
        assert "live_requests_total 5" in text
        assert "live_depth 3" in text
        assert 'other_seconds_bucket{le="+Inf"} 1' in text

    def test_prefix_filter_applies(self):
        seed_metrics()
        text = live_prometheus_text(prefix="live_")
        assert "live_requests_total 5" in text
        assert "other_seconds" not in text

    def test_exemplars_off_by_default(self):
        registry().histogram("live_lat_seconds", buckets=(1,)).observe(
            0.5, exemplar="00ab")
        strict = live_prometheus_text()
        assert "trace_id" not in strict
        annotated = live_prometheus_text(exemplars=True)
        assert '# {trace_id="00ab"} 0.5' in annotated
