"""VM profiling: sampling is observable and execution is unchanged."""

import pytest

from repro.lang import compile_to_program
from repro.vm import Machine, VMProfile

SOURCE = """
int main() {
    int total = 0;
    int i = 0;
    while (i < 200) {
        total = total + i * 3;
        i = i + 1;
    }
    print_int(total);
    return 0;
}
"""


@pytest.fixture(scope="module")
def program():
    return compile_to_program(SOURCE)


class TestProfiledExecution:
    def test_execution_is_bit_identical_with_profiling(self, program):
        plain = Machine(program)
        plain_exit = plain.run(1_000_000)
        profile = VMProfile(sample_interval=64)
        profiled = Machine(program, profile=profile)
        profiled_exit = profiled.run(1_000_000)
        assert profiled_exit == plain_exit
        assert profiled.stdout == plain.stdout
        assert (profiled.instructions_executed
                == plain.instructions_executed)

    def test_profile_contents(self, program):
        profile = VMProfile(sample_interval=64)
        machine = Machine(program, profile=profile)
        machine.run(1_000_000)
        assert profile.retired == machine.instructions_executed
        # One sample per full 64-instruction chunk (the final, partial
        # chunk ends at program exit without a boundary sample).
        expected = machine.instructions_executed // 64
        assert profile.samples in (expected, max(expected - 1, 0))
        assert profile.samples > 0
        assert sum(profile.pc_counts.values()) == profile.samples
        assert profile.op_counts  # mnemonics resolved at sampled PCs
        assert profile.syscall_counts  # print_int + exit
        hot = profile.top_pcs(3)
        assert hot == sorted(hot, key=lambda item: (-item[1], item[0]))

    def test_sampling_interval_validation(self):
        with pytest.raises(ValueError):
            VMProfile(sample_interval=0)

    def test_budget_still_enforced_when_profiling(self, program):
        from repro.vm import ExecutionLimitExceeded
        profile = VMProfile(sample_interval=16)
        machine = Machine(program, profile=profile)
        with pytest.raises(ExecutionLimitExceeded):
            machine.run(100)
        assert machine.instructions_executed == 100
        assert profile.retired == 100

    def test_opcode_mix_fractions(self, program):
        profile = VMProfile(sample_interval=32)
        Machine(program, profile=profile).run(1_000_000)
        mix = profile.opcode_mix()
        assert mix
        assert sum(mix.values()) == pytest.approx(1.0)
        as_dict = profile.as_dict()
        assert as_dict["retired_instructions"] == profile.retired
        assert as_dict["hot_pcs"]
