"""SLO validation, burn-rate math, and two-window alerting."""

import pytest

from repro.telemetry.slo import SLO, SLOMonitor, default_serve_slos


def make_slo(**overrides):
    base = dict(name="lat", kind="latency", threshold=0.1,
                objective=0.99, fast_window_s=10.0, slow_window_s=60.0,
                burn_rate=2.0)
    base.update(overrides)
    return SLO(**base)


class FakeClock:
    def __init__(self, t=1000.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestSLOValidation:
    def test_budget_is_complement_of_objective(self):
        assert make_slo(objective=0.99).budget == pytest.approx(0.01)

    @pytest.mark.parametrize("objective", [0.0, 1.0, -0.5, 1.5])
    def test_objective_must_be_open_interval(self, objective):
        with pytest.raises(ValueError, match="objective"):
            make_slo(objective=objective)

    def test_windows_must_be_ordered(self):
        with pytest.raises(ValueError, match="window"):
            make_slo(fast_window_s=60.0, slow_window_s=10.0)

    def test_fast_window_must_be_positive(self):
        with pytest.raises(ValueError, match="window"):
            make_slo(fast_window_s=0.0)

    def test_burn_rate_must_be_positive(self):
        with pytest.raises(ValueError, match="burn_rate"):
            make_slo(burn_rate=0.0)

    def test_describe_round_trips_fields(self):
        desc = make_slo().describe()
        assert desc["name"] == "lat"
        assert desc["kind"] == "latency"
        assert desc["threshold"] == 0.1
        assert desc["objective"] == 0.99


class TestBurnRates:
    def test_no_data_means_zero_burn(self):
        monitor = SLOMonitor([make_slo()], clock=FakeClock())
        (status,) = monitor.evaluate()
        assert status["fast_burn"] == 0.0
        assert status["slow_burn"] == 0.0
        assert not status["alerting"]

    def test_burn_is_error_rate_over_budget(self):
        clock = FakeClock()
        monitor = SLOMonitor([make_slo(objective=0.9)], clock=clock)
        # 20% errors against a 10% budget -> burn 2.0 in both windows.
        monitor.record("lat", good=80, bad=20)
        (status,) = monitor.evaluate()
        assert status["fast_burn"] == pytest.approx(2.0)
        assert status["slow_burn"] == pytest.approx(2.0)
        assert status["alerting"]

    def test_all_good_burns_nothing(self):
        monitor = SLOMonitor([make_slo()], clock=FakeClock())
        monitor.record("lat", good=1000)
        (status,) = monitor.evaluate()
        assert status["fast_burn"] == 0.0
        assert not status["alerting"]

    def test_unknown_slo_rejected(self):
        monitor = SLOMonitor([make_slo()])
        with pytest.raises(KeyError):
            monitor.record("nope", bad=1)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SLOMonitor([make_slo(), make_slo()])


class TestTwoWindowAlerting:
    def test_fast_burn_alone_does_not_fire(self):
        clock = FakeClock()
        monitor = SLOMonitor([make_slo(objective=0.9)], clock=clock)
        # A long healthy history dilutes the slow window...
        monitor.record("lat", good=1000)
        clock.advance(15.0)  # ...outside the 10s fast window.
        monitor.record("lat", good=0, bad=10)
        (status,) = monitor.evaluate()
        assert status["fast_burn"] >= 2.0
        assert status["slow_burn"] < 2.0
        assert not status["alerting"]
        assert monitor.healthy

    def test_sustained_errors_fire_then_clear(self):
        clock = FakeClock()
        monitor = SLOMonitor([make_slo(objective=0.9)], clock=clock)
        monitor.record("lat", good=0, bad=50)
        (status,) = monitor.evaluate()
        assert status["alerting"]
        assert monitor.alerting() == ["lat"]
        assert not monitor.healthy
        # Errors age past the fast window: alert clears quickly.
        clock.advance(15.0)
        monitor.record("lat", good=100)
        (status,) = monitor.evaluate()
        assert not status["alerting"]
        assert monitor.healthy

    def test_entries_pruned_past_slow_window(self):
        clock = FakeClock()
        monitor = SLOMonitor([make_slo(objective=0.9)], clock=clock)
        monitor.record("lat", good=0, bad=100)
        clock.advance(120.0)  # > slow_window_s
        (status,) = monitor.evaluate()
        assert status["slow_burn"] == 0.0
        assert not status["alerting"]
        # Lifetime totals survive pruning.
        assert status["total_bad"] == 100

    def test_multiple_slos_evaluate_independently(self):
        clock = FakeClock()
        monitor = SLOMonitor(
            [make_slo(), make_slo(name="queue", kind="queue_depth",
                                  objective=0.9)],
            clock=clock)
        monitor.record("queue", bad=10)
        statuses = {s["name"]: s for s in monitor.evaluate()}
        assert not statuses["lat"]["alerting"]
        assert statuses["queue"]["alerting"]
        assert monitor.alerting() == ["queue"]


class TestDefaults:
    def test_stock_slos_without_accuracy(self):
        slos = default_serve_slos()
        assert [s.name for s in slos] == ["step_latency_p99", "queue_depth"]
        by_name = {s.name: s for s in slos}
        assert by_name["step_latency_p99"].kind == "latency"
        assert by_name["step_latency_p99"].objective == 0.99
        assert by_name["queue_depth"].kind == "queue_depth"

    def test_accuracy_floor_is_opt_in(self):
        slos = default_serve_slos(accuracy_floor=0.4)
        names = [s.name for s in slos]
        assert names[-1] == "session_accuracy"
        assert slos[-1].threshold == 0.4

    def test_parameters_thread_through(self):
        slos = default_serve_slos(p99_latency_s=0.5,
                                  queue_depth_ceiling=64.0,
                                  fast_window_s=5.0, slow_window_s=20.0,
                                  burn_rate=1.5)
        by_name = {s.name: s for s in slos}
        assert by_name["step_latency_p99"].threshold == 0.5
        assert by_name["queue_depth"].threshold == 64.0
        assert all(s.fast_window_s == 5.0 and s.burn_rate == 1.5
                   for s in slos)
