"""Run lifecycle: manifest, JSONL sink, metrics dump, globals."""

import json

import pytest

from repro.telemetry.registry import registry
from repro.telemetry.run import (active_run, enabled, finish_run, start_run,
                                 telemetry_run)


def read_jsonl(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestLifecycle:
    def test_start_creates_directory_and_manifest(self, tmp_path):
        run = start_run(tmp_path, command="test", argv=["a", "--b"])
        assert run.dir.is_dir()
        assert active_run() is run
        assert enabled()
        manifest = json.loads((run.dir / "manifest.json").read_text())
        assert manifest["schema"] == 1
        assert manifest["run_id"] == run.run_id
        assert manifest["command"] == "test"
        assert manifest["argv"] == ["a", "--b"]
        assert manifest["python"]
        assert manifest["platform"]
        assert "config" in manifest
        finish_run()

    def test_only_one_active_run(self, tmp_path):
        start_run(tmp_path)
        with pytest.raises(RuntimeError):
            start_run(tmp_path)
        finish_run()

    def test_finish_is_idempotent(self, tmp_path):
        run = start_run(tmp_path)
        assert finish_run() is run
        assert finish_run() is None
        assert not enabled()

    def test_close_finalizes_manifest(self, tmp_path):
        run = start_run(tmp_path)
        finish_run()
        manifest = json.loads((run.dir / "manifest.json").read_text())
        assert manifest["status"] == "ok"
        assert manifest["duration_s"] >= 0
        assert manifest["finished_at"] >= manifest["started_at"]
        assert manifest["events"] == 2  # run_start + run_end

    def test_context_manager_marks_errors(self, tmp_path):
        with pytest.raises(ValueError):
            with telemetry_run(tmp_path):
                raise ValueError("boom")
        assert not enabled()
        [run_dir] = [p for p in tmp_path.iterdir() if p.is_dir()]
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["status"] == "error"
        events = read_jsonl(run_dir / "events.jsonl")
        assert events[-1]["type"] == "run_end"
        assert events[-1]["status"] == "error"


class TestEventSink:
    def test_events_round_trip_with_timestamps(self, tmp_path):
        run = start_run(tmp_path)
        run.emit({"type": "probe", "probe": "x", "value": 1})
        run.emit({"type": "probe", "probe": "y", "value": 2})
        finish_run()
        events = read_jsonl(run.dir / "events.jsonl")
        assert [e["type"] for e in events] == [
            "run_start", "probe", "probe", "run_end"]
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)
        assert events[1]["value"] == 1

    def test_emit_after_close_is_dropped(self, tmp_path):
        run = start_run(tmp_path)
        finish_run()
        run.emit({"type": "late"})  # must not raise or corrupt the file
        assert all(e["type"] != "late"
                   for e in read_jsonl(run.dir / "events.jsonl"))

    def test_once_deduplicates_per_run(self, tmp_path):
        run = start_run(tmp_path)
        assert run.once(("probe", "a"))
        assert not run.once(("probe", "a"))
        assert run.once(("probe", "b"))
        finish_run()
        # A fresh run starts a fresh dedup set.
        run2 = start_run(tmp_path)
        assert run2.once(("probe", "a"))
        finish_run()


class TestMetricsDump:
    def test_delta_contains_only_in_run_increments(self, tmp_path):
        counter = registry().counter("test_runs_total", labels=("k",))
        counter.inc(10, k="before")
        run = start_run(tmp_path)
        counter.inc(3, k="before")
        counter.inc(7, k="during")
        finish_run()
        metrics = json.loads((run.dir / "metrics.json").read_text())
        assert metrics["run_id"] == run.run_id
        # The full snapshot has the absolute values...
        samples = {tuple(s["labels"].items()): s["value"]
                   for s in metrics["metrics"]["test_runs_total"]["samples"]}
        assert samples[(("k", "before"),)] == 13
        # ...while the delta shows only what this run added.
        delta = {tuple(s["labels"].items()): s["value"]
                 for s in metrics["delta"]["test_runs_total"]["samples"]}
        assert delta == {(("k", "before"),): 3, (("k", "during"),): 7}

    def test_untouched_metrics_absent_from_delta(self, tmp_path):
        registry().counter("test_static_total").inc(5)
        run = start_run(tmp_path)
        finish_run()
        metrics = json.loads((run.dir / "metrics.json").read_text())
        assert "test_static_total" in metrics["metrics"]
        assert "test_static_total" not in metrics["delta"]
