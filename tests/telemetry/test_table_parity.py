"""Scalar-vs-batch table-usage parity: same reports, same events.

The auditor's two engines feed one shared vectorised accumulator, so
their reports -- and the ``table_usage`` probe events built from them
-- must be equal field for field across every audited family.  The
carried per-entry state additionally makes chunk boundaries
invisible: a warm-started (chunked) audit equals a one-shot audit bit
for bit.
"""

import json

import pytest

from repro.core.engines.batch import BatchEngine
from repro.core.spec import (DFCMSpec, FCMSpec, LastValueSpec,
                             OracleHybridSpec, StrideSpec,
                             TwoDeltaStrideSpec)
from repro.telemetry import run as telemetry_run_module
from repro.telemetry.probes import probe_table_usage
from repro.telemetry.tables import TableUsageAuditor
from tests.conftest import interleaved, repeating_trace, stride_trace

SPECS = [
    FCMSpec(256, 64),
    DFCMSpec(256, 64),
    StrideSpec(128),
    TwoDeltaStrideSpec(128),
    LastValueSpec(128),
    OracleHybridSpec((StrideSpec(64), DFCMSpec(128, 64))),
]


def mixed_trace(n_each=120):
    """Stride and context patterns interleaved, with pc collisions on
    the small audited tables (so the alias counters exercise too)."""
    return interleaved(
        stride_trace("s", 0x1000, 0, 4, n_each),
        repeating_trace("ctx", 0x1004, [3, 8, 1, 9, 4, 7], n_each // 6),
        stride_trace("t", 0x2008, 17, 9, n_each),
    )


def audit(spec, trace, engine, chunk=None):
    auditor = TableUsageAuditor(spec, engine=engine)
    pcs, values = trace.pcs, trace.values
    if chunk is None:
        auditor.update(pcs, values)
    else:
        for start in range(0, len(pcs), chunk):
            auditor.update(pcs[start:start + chunk],
                           values[start:start + chunk])
    return auditor


class TestReportParity:
    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
    def test_batch_equals_scalar(self, spec):
        trace = mixed_trace()
        batch = audit(spec, trace, "batch")
        scalar = audit(spec, trace, "scalar")
        assert batch.report() == scalar.report()

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
    def test_chunked_equals_one_shot(self, spec):
        # Chunk size 37 never divides the trace: every boundary lands
        # mid-pattern, which is exactly what the carried state hides.
        trace = mixed_trace()
        for engine in ("batch", "scalar"):
            one_shot = audit(spec, trace, engine).report()
            chunked = audit(spec, trace, engine, chunk=37).report()
            assert chunked == one_shot, f"{engine} audit is chunk-sensitive"

    def test_batch_falls_back_for_unsupported_specs(self):
        from repro.core.spec import HashSpec
        spec = FCMSpec(64, 256, hash=HashSpec(8, "xor", 4))
        assert not BatchEngine.supports(spec)
        auditor = TableUsageAuditor(spec, engine="batch")
        assert auditor.engine == "scalar"


def table_usage_events(run):
    telemetry_run_module.finish_run()
    events = [json.loads(line) for line
              in (run.dir / "events.jsonl").read_text().splitlines()]
    return [e for e in events if e.get("probe") == "table_usage"]


class TestEventParity:
    """Both emission paths publish the identical ``table_usage`` sample
    and share one once() key per (spec, trace) pair."""

    def test_batch_run_and_scalar_probe_emit_equal_payloads(self, tmp_path):
        spec = DFCMSpec(256, 64)
        trace = mixed_trace()

        run = telemetry_run_module.start_run(tmp_path / "batch",
                                             command="parity")
        BatchEngine().run(spec, trace)
        [from_batch] = table_usage_events(run)

        run = telemetry_run_module.start_run(tmp_path / "scalar",
                                             command="parity")
        probe_table_usage(spec, trace)
        [from_scalar] = table_usage_events(run)

        from_batch.pop("ts")
        from_scalar.pop("ts")
        assert from_batch == from_scalar
        assert from_batch["probe"] == "table_usage"
        assert from_batch["predictor"] == spec.name
        assert from_batch["trace"] == trace.name

    def test_shared_once_key_deduplicates_across_paths(self, tmp_path):
        spec = FCMSpec(256, 64)
        trace = mixed_trace()
        run = telemetry_run_module.start_run(tmp_path, command="parity")
        BatchEngine().run(spec, trace)
        probe_table_usage(spec, trace)  # same (spec, trace): no-op
        assert len(table_usage_events(run)) == 1

    def test_sample_limit_bounds_both_paths(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY_SAMPLE", "100")
        spec = DFCMSpec(256, 64)
        trace = mixed_trace()
        assert len(trace) > 100
        run = telemetry_run_module.start_run(tmp_path, command="parity")
        BatchEngine().run(spec, trace)
        [event] = table_usage_events(run)
        assert event["sampled_records"] == 100

    def test_sample_limit_zero_disables_batch_probe(self, tmp_path,
                                                    monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY_SAMPLE", "0")
        run = telemetry_run_module.start_run(tmp_path, command="parity")
        BatchEngine().run(DFCMSpec(256, 64), mixed_trace())
        assert table_usage_events(run) == []
