"""The global cache stats as a registry view (trace/stats re-plumb)."""

import pytest

from repro.telemetry.registry import registry
from repro.trace.stats import (CacheStats, RegistryCacheStats, cache_stats,
                               reset_cache_stats)


class TestRegistryView:
    def test_cache_stats_reads_registry_counters(self):
        stats = cache_stats()
        assert isinstance(stats, RegistryCacheStats)
        assert stats.hits == 0
        stats.add("hits", 2)
        stats.add("bytes_read", 100)
        assert stats.hits == 2
        assert stats.bytes_read == 100
        assert registry().counter("repro_cache_hits_total").value() == 2
        assert registry().counter(
            "repro_cache_read_bytes_total").value() == 100

    def test_registry_writes_are_visible_through_the_view(self):
        registry().counter("repro_cache_misses_total").inc(3)
        assert cache_stats().misses == 3

    def test_counts_read_back_as_ints_seconds_as_float(self):
        stats = cache_stats()
        stats.add("hits", 1)
        stats.add("capture_seconds", 0.25)
        assert isinstance(stats.hits, int)
        assert stats.capture_seconds == pytest.approx(0.25)

    def test_direct_assignment_rejected(self):
        with pytest.raises(AttributeError):
            cache_stats().hits = 5

    def test_unknown_counter_rejected(self):
        with pytest.raises(AttributeError):
            cache_stats().add("frobs", 1)

    def test_reset_cache_stats_zeroes_only_cache_metrics(self):
        cache_stats().add("hits", 4)
        other = registry().counter("unrelated_total")
        other.inc(9)
        reset_cache_stats()
        assert cache_stats().hits == 0
        assert other.value() == 9

    def test_render_keeps_historical_shape(self):
        cache_stats().add("hits", 1)
        cache_stats().add("misses", 2)
        text = cache_stats().render()
        assert "hits=1" in text and "misses=2" in text
        assert "capture_seconds=0.00" in text


class TestPerCallInstances:
    def test_plain_instances_stay_local(self):
        local = CacheStats()
        local.add("hits", 3)
        assert local.hits == 3
        assert registry().counter("repro_cache_hits_total").value() == 0

    def test_merge(self):
        a = CacheStats(hits=1, bytes_read=10)
        b = CacheStats(hits=2, misses=5)
        a.merge(b)
        assert a.hits == 3 and a.misses == 5 and a.bytes_read == 10
