"""Export surfaces: run discovery, Prometheus text, summaries, tail."""

import json

import pytest

from repro.telemetry.export import (find_run, list_runs, prometheus_text,
                                    read_events, snapshot_prometheus_text,
                                    summary_text, tail_text)
from repro.telemetry.registry import registry
from repro.telemetry.run import finish_run, start_run
from repro.telemetry.spans import span


def make_run(tmp_path, name="r"):
    """One closed run with a span, a probe and some metrics."""
    run = start_run(tmp_path, command="test")
    registry().counter("exp_hits_total",
                       "Help text", labels=("kind",)).inc(3, kind='a"b\\c')
    registry().gauge("exp_ratio").set(0.25)
    registry().histogram("exp_seconds", "Latency",
                         buckets=(1, 5)).observe(0.5)
    with span("outer"):
        with span("inner"):
            pass
    run.emit({"type": "probe", "probe": "demo", "value": 1})
    finish_run()
    return run


class TestDiscovery:
    def test_list_runs_oldest_first(self, tmp_path):
        first = make_run(tmp_path)
        second = make_run(tmp_path)
        runs = list_runs(tmp_path)
        assert [r.run_id for r in runs] == [first.run_id, second.run_id]

    def test_non_run_dirs_ignored(self, tmp_path):
        (tmp_path / "stray").mkdir()
        (tmp_path / "stray" / "notes.txt").write_text("hi")
        run = make_run(tmp_path)
        assert [r.run_id for r in list_runs(tmp_path)] == [run.run_id]

    def test_find_run_latest_and_named(self, tmp_path):
        first = make_run(tmp_path)
        second = make_run(tmp_path)
        assert find_run(tmp_path).run_id == second.run_id
        assert find_run(tmp_path, first.run_id).run_id == first.run_id

    def test_find_run_missing_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            find_run(tmp_path)  # empty root
        make_run(tmp_path)
        with pytest.raises(FileNotFoundError) as exc:
            find_run(tmp_path, "run-nope")
        assert "known:" in str(exc.value)

    def test_read_events(self, tmp_path):
        run = make_run(tmp_path)
        events = list(read_events(find_run(tmp_path, run.run_id)))
        kinds = [e["type"] for e in events]
        assert kinds[0] == "run_start" and kinds[-1] == "run_end"
        assert "probe" in kinds and "span" in kinds


class TestPrometheusText:
    def test_format(self, tmp_path):
        run = make_run(tmp_path)
        text = prometheus_text(find_run(tmp_path, run.run_id))
        assert "# HELP exp_hits_total Help text" in text
        assert "# TYPE exp_hits_total counter" in text
        # Label values escaped per the exposition format.
        assert 'exp_hits_total{kind="a\\"b\\\\c"} 3' in text
        assert "# TYPE exp_ratio gauge" in text
        assert "exp_ratio 0.25" in text

    def test_histogram_series(self, tmp_path):
        run = make_run(tmp_path)
        text = prometheus_text(find_run(tmp_path, run.run_id))
        assert 'exp_seconds_bucket{le="1"} 1' in text
        assert 'exp_seconds_bucket{le="5"} 1' in text
        assert 'exp_seconds_bucket{le="+Inf"} 1' in text
        assert "exp_seconds_sum 0.5" in text
        assert "exp_seconds_count 1" in text

    def test_every_series_has_a_type_header(self, tmp_path):
        run = make_run(tmp_path)
        text = prometheus_text(find_run(tmp_path, run.run_id))
        declared = {line.split()[2] for line in text.splitlines()
                    if line.startswith("# TYPE")}
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            name = line.split("{")[0].split(" ")[0]
            base = name
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix) and name[:-len(suffix)] in declared:
                    base = name[:-len(suffix)]
            assert base in declared, line


class TestSnapshotEdgeCases:
    """snapshot_prometheus_text on hand-built (possibly hostile) input."""

    def test_label_values_escaped(self):
        snap = {"m": {"kind": "counter", "samples": [
            {"labels": {"k": 'quote" slash\\ newline\n'}, "value": 1}]}}
        text = snapshot_prometheus_text(snap)
        assert r'm{k="quote\" slash\\ newline\n"} 1' in text
        assert "\n\n" not in text  # the raw newline never leaks

    def test_metric_name_sanitised(self):
        snap = {"9bad name-x": {"kind": "counter",
                                "samples": [{"labels": {}, "value": 2}]}}
        text = snapshot_prometheus_text(snap)
        assert "# TYPE _9bad_name_x counter" in text
        assert "_9bad_name_x 2" in text

    def test_label_name_sanitised(self):
        snap = {"m": {"kind": "counter", "samples": [
            {"labels": {"bad-label": "v"}, "value": 1}]}}
        assert 'm{bad_label="v"} 1' in snapshot_prometheus_text(snap)

    def test_help_newlines_escaped(self):
        snap = {"m": {"kind": "counter", "help": "line1\nline2",
                      "samples": []}}
        assert r"# HELP m line1\nline2" in snapshot_prometheus_text(snap)

    def test_inf_bucket_synthesised_when_missing(self):
        snap = {"h": {"kind": "histogram", "samples": [
            {"labels": {}, "value": {"buckets": [[1.0, 3], [5.0, 4]],
                                     "sum": 2.5, "count": 6}}]}}
        text = snapshot_prometheus_text(snap)
        assert 'h_bucket{le="+Inf"} 6' in text
        assert "h_sum 2.5" in text
        assert "h_count 6" in text

    def test_inf_bucket_not_duplicated_when_present(self):
        snap = {"h": {"kind": "histogram", "samples": [
            {"labels": {}, "value": {"buckets": [[1.0, 3], ["+Inf", 4]],
                                     "sum": 2.5, "count": 4}}]}}
        text = snapshot_prometheus_text(snap)
        assert text.count('le="+Inf"') == 1

    def test_exemplar_suffix_opt_in(self):
        snap = {"h": {"kind": "histogram", "samples": [
            {"labels": {}, "value": {
                "buckets": [[1.0, 1], ["+Inf", 1]], "sum": 0.5, "count": 1,
                "exemplars": [[1.0, {"trace_id": "00ff", "value": 0.5}]],
            }}]}}
        strict = snapshot_prometheus_text(snap)
        assert "trace_id" not in strict
        annotated = snapshot_prometheus_text(snap, exemplars=True)
        assert 'h_bucket{le="1"} 1 # {trace_id="00ff"} 0.5' in annotated
        # Only the matching bucket is annotated.
        assert 'le="+Inf"} 1 #' not in annotated

    def test_empty_snapshot_renders_empty(self):
        assert snapshot_prometheus_text({}) == ""


class TestSummaryAndTail:
    def test_summary_contents(self, tmp_path):
        run = make_run(tmp_path)
        text = summary_text(find_run(tmp_path, run.run_id))
        assert f"run {run.run_id}" in text
        assert "status: ok" in text
        assert "spans (2 closed" in text
        assert "outer" in text and "inner" in text
        assert "probes: demo x1" in text
        assert "exp_hits_total" in text  # per-run counter delta

    def test_tail_returns_last_n_lines(self, tmp_path):
        run = make_run(tmp_path)
        info = find_run(tmp_path, run.run_id)
        two = tail_text(info, 2).splitlines()
        assert len(two) == 2
        assert json.loads(two[-1])["type"] == "run_end"
        everything = tail_text(info, 10_000).splitlines()
        assert json.loads(everything[0])["type"] == "run_start"
