"""Registry semantics: counters, gauges, histograms, snapshots."""

import json

import pytest

from repro.telemetry.registry import (Counter, Gauge, Histogram, MetricError,
                                      MetricsRegistry, registry)


@pytest.fixture
def reg():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, reg):
        counter = reg.counter("widgets_total")
        counter.inc()
        counter.inc(4)
        assert counter.value() == 5

    def test_labelled_series_are_independent(self, reg):
        counter = reg.counter("hits_total", labels=("kind",))
        counter.inc(2, kind="a")
        counter.inc(3, kind="b")
        assert counter.value(kind="a") == 2
        assert counter.value(kind="b") == 3
        assert counter.value(kind="unseen") == 0

    def test_negative_increment_rejected(self, reg):
        with pytest.raises(MetricError):
            reg.counter("ups_total").inc(-1)

    def test_label_mismatch_rejected(self, reg):
        counter = reg.counter("hits_total", labels=("kind",))
        with pytest.raises(MetricError):
            counter.inc(1)
        with pytest.raises(MetricError):
            counter.inc(1, kind="a", extra="b")

    def test_label_values_stringified(self, reg):
        counter = reg.counter("codes_total", labels=("code",))
        counter.inc(1, code=42)
        assert counter.value(code="42") == 1
        assert counter.samples() == [({"code": "42"}, 1)]


class TestGauge:
    def test_set_inc_dec(self, reg):
        gauge = reg.gauge("depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value() == 13

    def test_gauges_may_go_negative(self, reg):
        gauge = reg.gauge("delta")
        gauge.dec(3)
        assert gauge.value() == -3


class TestHistogram:
    def test_cumulative_buckets_and_inf(self, reg):
        histogram = reg.histogram("seconds", buckets=(1, 5))
        for value in (0.5, 0.7, 3, 100):
            histogram.observe(value)
        [(labels, sample)] = histogram.samples()
        assert labels == {}
        # le=1 catches two, le=5 cumulatively three, +Inf all four.
        assert sample["buckets"] == [[1.0, 2], [5.0, 3], ["+Inf", 4]]
        assert sample["count"] == 4
        assert sample["sum"] == pytest.approx(104.2)
        assert histogram.count() == 4
        assert histogram.sum() == pytest.approx(104.2)

    def test_buckets_must_increase(self, reg):
        with pytest.raises(MetricError):
            reg.histogram("bad", buckets=(5, 1))
        with pytest.raises(MetricError):
            reg.histogram("bad2", buckets=(1, 1))
        with pytest.raises(MetricError):
            reg.histogram("bad3", buckets=())


class TestGetOrCreate:
    def test_same_name_returns_same_instrument(self, reg):
        assert reg.counter("a_total") is reg.counter("a_total")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_clash_raises(self, reg):
        reg.counter("x")
        with pytest.raises(MetricError):
            reg.gauge("x")
        with pytest.raises(MetricError):
            reg.histogram("x")

    def test_label_clash_raises(self, reg):
        reg.counter("y", labels=("a",))
        with pytest.raises(MetricError):
            reg.counter("y", labels=("a", "b"))

    def test_bucket_clash_raises(self, reg):
        reg.histogram("z", buckets=(1, 2))
        with pytest.raises(MetricError):
            reg.histogram("z", buckets=(1, 2, 3))

    def test_invalid_name_rejected(self, reg):
        for bad in ("", "has space", "has-dash"):
            with pytest.raises(MetricError):
                reg.counter(bad)


class TestSnapshotAndReset:
    def test_snapshot_is_json_able(self, reg):
        reg.counter("c_total", "help!", labels=("k",)).inc(2, k="v")
        reg.gauge("g").set(1.5)
        reg.histogram("h", buckets=(1,)).observe(0.5)
        snapshot = reg.snapshot()
        round_trip = json.loads(json.dumps(snapshot))
        assert round_trip == snapshot
        assert snapshot["c_total"]["kind"] == "counter"
        assert snapshot["c_total"]["help"] == "help!"
        assert snapshot["c_total"]["samples"] == [
            {"labels": {"k": "v"}, "value": 2}]

    def test_reset_one_metric_keeps_instrument(self, reg):
        counter = reg.counter("c_total")
        counter.inc(3)
        reg.reset("c_total")
        assert counter.value() == 0
        assert reg.counter("c_total") is counter

    def test_reset_all(self, reg):
        reg.counter("a_total").inc()
        reg.gauge("g").set(2)
        reg.reset()
        assert reg.counter("a_total").value() == 0
        assert reg.gauge("g").value() == 0


def test_module_registry_is_a_singleton():
    assert registry() is registry()
    assert isinstance(registry(), MetricsRegistry)


def test_instrument_classes_exported():
    assert Counter.kind == "counter"
    assert Gauge.kind == "gauge"
    assert Histogram.kind == "histogram"
