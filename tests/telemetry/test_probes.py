"""Domain probes: predictor table/confidence samples, VM profiles."""

import json

from repro.core.dfcm import DFCMPredictor
from repro.core.stride import StridePredictor
from repro.telemetry.probes import (probe_confidence, probe_context_tables,
                                    probe_sample_limit, record_accuracy,
                                    record_vm_profile)
from repro.telemetry.registry import registry
from repro.telemetry.run import finish_run
from repro.vm.profile import VMProfile
from tests.conftest import repeating_trace, stride_trace


def dfcm_factory():
    return DFCMPredictor(1 << 6, 1 << 6)


def closed_events(run):
    finish_run()
    return [json.loads(line)
            for line in (run.dir / "events.jsonl").read_text().splitlines()]


class TestDisabledProbesAreNoops:
    def test_probes_do_nothing_without_a_run(self):
        trace = stride_trace("s", 0x1000, 0, 4, 50)
        probe_context_tables(dfcm_factory, trace)
        probe_confidence(dfcm_factory, trace)
        record_vm_profile(VMProfile(), "bench")
        assert registry().get("repro_l2_stride_entries_used") is None \
            or not registry().get("repro_l2_stride_entries_used").samples()

    def test_sample_limit_default_and_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY_SAMPLE", raising=False)
        assert probe_sample_limit() == 8192
        monkeypatch.setenv("REPRO_TELEMETRY_SAMPLE", "100")
        assert probe_sample_limit() == 100


class TestContextTableProbe:
    def test_records_occupancy_and_aliasing(self, active_run):
        # Stride content is what the occupancy counter tracks: an
        # access only counts when the reference stride predictor gets
        # the value right (paper Figures 6/9).
        trace = stride_trace("ctx", 0x1000, 0, 4, 200)
        probe_context_tables(dfcm_factory, trace)
        events = closed_events(active_run)
        probes = {e["probe"]: e for e in events if e["type"] == "probe"}
        assert "l2_occupancy" in probes and "aliasing" in probes
        occupancy = probes["l2_occupancy"]
        assert occupancy["l2_entries"] == 64
        assert 0 < occupancy["entries_used"] <= 64
        assert 0 < occupancy["occupancy_ratio"] <= 1
        fractions = probes["aliasing"]["fractions"]
        assert abs(sum(fractions.values()) - 1.0) < 1e-6
        gauge = registry().get("repro_l2_stride_occupancy_ratio")
        [(labels, value)] = gauge.samples()
        assert labels["trace"] == "ctx"
        assert value == occupancy["occupancy_ratio"]

    def test_non_context_predictors_skipped(self, active_run):
        trace = stride_trace("s", 0x1000, 0, 4, 50)
        probe_context_tables(lambda: StridePredictor(1 << 6), trace)
        events = closed_events(active_run)
        assert not [e for e in events if e["type"] == "probe"]

    def test_deduplicated_within_a_run(self, active_run):
        trace = repeating_trace("ctx", 0x1000, [1, 2, 3], 30)
        probe_context_tables(dfcm_factory, trace)
        probe_context_tables(dfcm_factory, trace)
        events = closed_events(active_run)
        occupancy = [e for e in events if e.get("probe") == "l2_occupancy"]
        assert len(occupancy) == 1

    def test_sample_limit_zero_disables(self, active_run, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY_SAMPLE", "0")
        trace = repeating_trace("ctx", 0x1000, [1, 2, 3], 30)
        probe_context_tables(dfcm_factory, trace)
        assert not [e for e in closed_events(active_run)
                    if e["type"] == "probe"]


class TestConfidenceProbe:
    def test_wraps_and_measures(self, active_run):
        trace = repeating_trace("ctx", 0x1000, list(range(7)), 40)
        probe_confidence(dfcm_factory, trace)
        events = closed_events(active_run)
        [event] = [e for e in events if e.get("probe") == "confidence"]
        assert event["sampled_records"] == len(trace)
        assert 0 <= event["coverage"] <= 1
        assert 0 <= event["accuracy_when_confident"] <= 1
        coverage = registry().get("repro_confidence_coverage")
        [(labels, value)] = coverage.samples()
        assert labels["trace"] == "ctx"
        assert value == event["coverage"]


class TestAccuracyAndVMProbes:
    def test_record_accuracy_counters(self, active_run):
        predictor = dfcm_factory()
        record_accuracy(predictor, "tr", correct=30, total=100, seconds=0.02)
        assert registry().get("repro_predictions_total").value(
            predictor=predictor.name, trace="tr") == 100
        assert registry().get("repro_prediction_hits_total").value(
            predictor=predictor.name, trace="tr") == 30
        histogram = registry().get("repro_measure_seconds")
        assert histogram.count(predictor=predictor.name) == 1

    def test_record_vm_profile(self, active_run):
        profile = VMProfile(sample_interval=10)
        profile.record_sample(0x1000, "addi")
        profile.record_sample(0x1000, "addi")
        profile.record_sample(0x2000, "lw")
        profile.record_syscall(3)
        profile.retired = 30
        record_vm_profile(profile, "bench")
        assert registry().get("repro_vm_instructions_total").value(
            benchmark="bench") == 30
        assert registry().get("repro_vm_syscalls_total").value(
            benchmark="bench", code="3") == 1
        events = closed_events(active_run)
        [event] = [e for e in events if e.get("probe") == "vm_profile"]
        assert event["opcode_mix"] == {"addi": 2, "lw": 1}
        assert event["hot_pcs"][0] == ["0x00001000", 2]
