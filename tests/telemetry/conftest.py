"""Telemetry test fixtures: isolate the process-global state."""

from __future__ import annotations

import pytest

from repro.telemetry import run as telemetry_run_module
from repro.telemetry import spans as spans_module
from repro.telemetry.registry import registry


@pytest.fixture(autouse=True)
def clean_telemetry_state():
    """Zero the registry and close any stray run around every test.

    Instruments stay registered (handles held by call sites remain
    valid); only their samples are cleared, so tests see fresh counts
    without breaking other modules' cached metric handles.
    """
    registry().reset()
    telemetry_run_module.finish_run()
    spans_module._STACK.clear()
    yield
    telemetry_run_module.finish_run()
    spans_module._STACK.clear()
    registry().reset()


@pytest.fixture
def active_run(tmp_path):
    """A live telemetry run rooted in tmp_path; closed on teardown."""
    run = telemetry_run_module.start_run(tmp_path / "telemetry",
                                         command="test")
    yield run
    telemetry_run_module.finish_run()
