"""The overhead guarantee: disabled telemetry must be (nearly) free.

The CI guard from the issue: with no telemetry run active,
``measure_accuracy`` on a 100k-record trace must be within 5% of an
uninstrumented baseline loop (a verbatim copy of the pre-telemetry hot
loop).  Min-of-several interleaved timings keeps scheduler noise out of
the ratio.
"""

import time

import numpy as np

from repro.core.dfcm import DFCMPredictor
from repro.core.engines.batch import (_KERNELS, _NOOP_PROBE, BatchEngine,
                                      _KernelContext)
from repro.core.spec import DFCMSpec
from repro.harness.simulate import measure_accuracy
from repro.telemetry.run import enabled
from repro.telemetry.spans import NOOP_SPAN, span
from tests.conftest import interleaved, repeating_trace, stride_trace

RECORDS = 100_000
REPEATS = 5


def build_trace():
    third = RECORDS // 3
    return interleaved(
        stride_trace("s", 0x1000, 0, 4, third),
        repeating_trace("ctx", 0x1004, [3, 8, 1, 9, 4, 7], third // 6 + 1),
        stride_trace("t", 0x1008, 17, 9, third),
    )


def baseline_count(predictor, records):
    # The pre-telemetry measurement loop, verbatim.
    correct = 0
    predict = predictor.predict
    update = predictor.update
    for pc, value in records:
        if predict(pc) == value:
            correct += 1
        update(pc, value)
    return correct


def test_disabled_measure_accuracy_within_5_percent():
    assert not enabled()
    trace = build_trace()
    records = trace.records()
    assert len(records) >= RECORDS * 0.9

    def fresh():
        return DFCMPredictor(1 << 10, 1 << 10)

    # Warm up allocators and branch caches once per path.
    baseline_count(fresh(), records)
    measure_accuracy(fresh(), trace)

    baseline_best = float("inf")
    instrumented_best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        expected = baseline_count(fresh(), records)
        baseline_best = min(baseline_best, time.perf_counter() - start)

        start = time.perf_counter()
        result = measure_accuracy(fresh(), trace)
        instrumented_best = min(instrumented_best,
                                time.perf_counter() - start)
        assert result.correct == expected

    ratio = instrumented_best / baseline_best
    assert ratio <= 1.05, (
        f"disabled-telemetry measure_accuracy is {ratio:.3f}x the "
        f"uninstrumented baseline ({instrumented_best:.4f}s vs "
        f"{baseline_best:.4f}s); the 5% overhead budget is blown")


def test_disabled_batch_probe_within_5_percent():
    """The batch-path guard: with no telemetry run active, a full
    BatchEngine counting run (kernel probe attribute check + the
    table-usage gating in ``run()``) must be within 5% of a bare
    kernel invocation -- the pre-probe hot path."""
    assert not enabled()
    spec = DFCMSpec(1 << 10, 1 << 10)
    trace = build_trace()

    def bare_kernel():
        # run() verbatim, minus _maybe_probe_tables: the dtype
        # conversions belong to the pre-probe hot path as well.
        ctx = _KernelContext(trace.pcs.astype(np.int64),
                             trace.values.astype(np.int64))
        _, correct, _ = _KERNELS[spec.family](spec, ctx, None,
                                              want_predicted=False)
        return int(correct.sum())

    engine = BatchEngine()
    expected = bare_kernel()
    engine.run(spec, trace)  # warm caches once per path

    baseline_best = instrumented_best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        assert bare_kernel() == expected
        baseline_best = min(baseline_best, time.perf_counter() - start)

        start = time.perf_counter()
        result = engine.run(spec, trace)
        instrumented_best = min(instrumented_best,
                                time.perf_counter() - start)
        assert result.correct == expected

    ratio = instrumented_best / baseline_best
    assert ratio <= 1.05, (
        f"disabled-probe batch run is {ratio:.3f}x the bare kernel "
        f"({instrumented_best:.4f}s vs {baseline_best:.4f}s); the 5% "
        f"overhead budget is blown")


def test_disabled_batch_probe_is_shared_noop_singleton():
    # Kernels check one attribute on a process-wide singleton; nothing
    # is allocated per run when telemetry is off.
    contexts = [_KernelContext(np.array([1]), np.array([2]))
                for _ in range(20)]
    assert {id(ctx.probe) for ctx in contexts} == {id(_NOOP_PROBE)}
    assert not _NOOP_PROBE.enabled


def test_disabled_span_is_allocation_free():
    # The fast path hands out one shared singleton -- no object is
    # constructed per call, which is what keeps span() safe to call
    # unconditionally in hot code.
    spans = {id(span(f"name_{i}", index=i)) for i in range(100)}
    assert spans == {id(NOOP_SPAN)}
