"""Worker-side telemetry: CollectorRun, detach_run, merge_snapshot."""

import pytest

from repro.telemetry.registry import MetricError, registry
from repro.telemetry.run import (CollectorRun, active_run, collecting_run,
                                 detach_run, enabled, start_run)


class TestCollectorRun:
    def test_buffers_events_without_timestamps(self):
        with collecting_run("cell-0") as collector:
            assert active_run() is collector
            assert enabled()
            collector.emit({"type": "probe", "x": 1})
        assert active_run() is None
        assert collector.events == [{"type": "probe", "x": 1}]
        assert "ts" not in collector.events[0]

    def test_span_ids_are_sequential(self):
        collector = CollectorRun("c")
        assert [collector.next_span_id() for _ in range(3)] \
            == ["s1", "s2", "s3"]

    def test_once_deduplicates(self):
        collector = CollectorRun("c")
        assert collector.once(("probe", "a"))
        assert not collector.once(("probe", "a"))
        assert collector.once(("probe", "b"))

    def test_refuses_to_shadow_active_run(self, tmp_path):
        start_run(tmp_path / "t", command="test")
        with pytest.raises(RuntimeError):
            with collecting_run("cell-0"):
                pass

    def test_emit_copies_the_event(self):
        collector = CollectorRun("c")
        event = {"type": "probe"}
        collector.emit(event)
        event["mutated"] = True
        assert "mutated" not in collector.events[0]


class TestDetachRun:
    def test_detach_leaves_file_unflushed(self, tmp_path):
        run = start_run(tmp_path / "t", command="test")
        run.emit({"type": "probe"})
        detach_run()
        assert active_run() is None
        # The parent's buffered handle must not have been flushed or
        # closed -- detach only forgets the object.
        assert not run._events.closed

    def test_detach_without_run_is_noop(self):
        detach_run()
        assert active_run() is None


class TestMergeSnapshot:
    def test_counters_add(self):
        reg = registry()
        counter = reg.counter("m_total", "t", labels=("k",))
        counter.inc(2, k="a")
        snapshot = reg.snapshot()
        reg.merge_snapshot(snapshot)
        merged = {tuple(s["labels"].items()): s["value"]
                  for s in reg.snapshot()["m_total"]["samples"]}
        assert merged[(("k", "a"),)] == 4

    def test_gauges_take_incoming_value(self):
        reg = registry()
        gauge = reg.gauge("m_gauge", "t")
        gauge.set(3.0)
        snapshot = reg.snapshot()
        gauge.set(7.0)
        reg.merge_snapshot(snapshot)
        assert reg.snapshot()["m_gauge"]["samples"][0]["value"] == 3.0

    def test_histograms_add_buckets_and_sums(self):
        reg = registry()
        histogram = reg.histogram("m_seconds", "t", buckets=(1, 5))
        histogram.observe(0.5)
        histogram.observe(3.0)
        snapshot = reg.snapshot()
        reg.merge_snapshot(snapshot)
        value = reg.snapshot()["m_seconds"]["samples"][0]["value"]
        assert value["count"] == 4
        assert value["sum"] == pytest.approx(7.0)
        assert value["buckets"][0] == [1.0, 2]  # le=1 count doubled

    def test_unknown_kind_rejected(self):
        with pytest.raises(MetricError):
            registry().merge_snapshot({
                "m_bad": {"kind": "summary", "help": "", "label_names": [],
                          "samples": []}})

    def test_merge_creates_missing_metrics(self):
        reg = registry()
        reg.counter("m_new_total", "t").inc(5)
        snapshot = reg.snapshot()
        reg.reset()
        reg.merge_snapshot(snapshot)
        assert reg.snapshot()["m_new_total"]["samples"][0]["value"] == 5
