"""End-to-end: --telemetry/--json flags and the telemetry subcommand."""

import io
import json

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def read_jsonl(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


def only_run_dir(root):
    [run_dir] = [p for p in root.iterdir() if p.is_dir()]
    return run_dir


class TestRunExperimentWithTelemetry:
    def test_fig10_fast_produces_manifest_spans_and_probes(self, tmp_path):
        root = tmp_path / "tel"
        code, text = run_cli("run", "fig10", "--fast", "--limit", "500",
                             "--telemetry", str(root))
        assert code == 0
        assert "telemetry:" in text
        run_dir = only_run_dir(root)

        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["command"] == "run"
        assert manifest["status"] == "ok"
        assert manifest["argv"][0:2] == ["run", "fig10"]
        assert manifest["events"] > 0 and manifest["spans"] > 0

        events = read_jsonl(run_dir / "events.jsonl")
        assert events[0]["type"] == "run_start"
        assert events[-1]["type"] == "run_end"

        spans = [e for e in events if e["type"] == "span"]
        by_id = {s["span_id"]: s for s in spans}
        predictor_spans = [s for s in spans if s["name"] == "predictor"]
        assert predictor_spans
        # The required nesting: experiment -> trace -> predictor.
        nested = [s for s in predictor_spans if s["parent_id"]]
        assert nested
        parent = by_id[nested[0]["parent_id"]]
        assert parent["name"] == "trace"
        assert by_id[parent["parent_id"]]["name"] == "experiment"

        probes = {e["probe"] for e in events if e["type"] == "probe"}
        assert {"l2_occupancy", "aliasing", "confidence"} <= probes

        metrics = json.loads((run_dir / "metrics.json").read_text())
        assert "repro_predictions_total" in metrics["metrics"]


class TestPredictJson:
    def test_payload_without_telemetry(self):
        code, text = run_cli("predict", "li", "--limit", "1000", "--json")
        assert code == 0
        payload = json.loads(text)
        assert payload["command"] == "predict"
        assert payload["benchmark"] == "li"
        assert payload["total"] == 1000
        assert payload["correct"] == round(
            payload["accuracy"] * payload["total"])
        assert payload["params"]["predictor"] == "dfcm"
        assert payload["telemetry_run_id"] is None

    def test_payload_with_telemetry_links_the_run(self, tmp_path):
        root = tmp_path / "tel"
        code, text = run_cli("predict", "li", "--limit", "1000", "--json",
                             "--telemetry", str(root))
        assert code == 0
        payload = json.loads(text)
        run_id = payload["telemetry_run_id"]
        assert run_id
        assert (root / run_id / "manifest.json").is_file()
        events = read_jsonl(root / run_id / "events.jsonl")
        [predictor_span] = [e for e in events
                            if e.get("name") == "predictor"]
        assert predictor_span["attrs"]["correct"] == payload["correct"]


class TestCompareJson:
    def test_payload_lists_every_predictor(self, tmp_path):
        root = tmp_path / "tel"
        code, text = run_cli("compare", "li", "--limit", "1000", "--json",
                             "--telemetry", str(root))
        assert code == 0
        payload = json.loads(text)
        assert payload["command"] == "compare"
        names = [r["predictor"] for r in payload["results"]]
        assert len(names) == 6
        for fragment in ("lvp_", "stride_", "dfcm_l1="):
            assert any(fragment in name for name in names)
        assert payload["telemetry_run_id"] in {
            p.name for p in root.iterdir()}


class TestTelemetrySubcommand:
    def _record_run(self, tmp_path):
        root = tmp_path / "tel"
        run_cli("predict", "li", "--limit", "500",
                "--telemetry", str(root))
        return root

    def test_summary(self, tmp_path):
        root = self._record_run(tmp_path)
        code, text = run_cli("telemetry", "summary", "--dir", str(root))
        assert code == 0
        assert "command: predict" in text
        assert "status: ok" in text
        assert "predictor" in text  # span digest

    def test_export_prom(self, tmp_path):
        root = self._record_run(tmp_path)
        code, text = run_cli("telemetry", "export", "--format", "prom",
                             "--dir", str(root))
        assert code == 0
        assert "# TYPE repro_predictions_total counter" in text
        assert "repro_predictions_total{" in text
        assert "repro_measure_seconds_bucket{" in text

    def test_export_jsonl_round_trips(self, tmp_path):
        root = self._record_run(tmp_path)
        code, text = run_cli("telemetry", "export", "--format", "jsonl",
                             "--dir", str(root))
        assert code == 0
        events = [json.loads(line) for line in text.splitlines()]
        assert events[0]["type"] == "run_start"
        assert events[-1]["type"] == "run_end"

    def test_tail(self, tmp_path):
        root = self._record_run(tmp_path)
        code, text = run_cli("telemetry", "tail", "-n", "2",
                             "--dir", str(root))
        assert code == 0
        lines = text.splitlines()
        assert len(lines) == 2
        assert json.loads(lines[-1])["type"] == "run_end"

    def test_named_run_selection(self, tmp_path):
        root = self._record_run(tmp_path)
        [run_dir] = [p for p in root.iterdir() if p.is_dir()]
        code, text = run_cli("telemetry", "summary", "--dir", str(root),
                             "--run", run_dir.name)
        assert code == 0
        assert run_dir.name in text

    def test_missing_root_exits_1(self, tmp_path):
        code, text = run_cli("telemetry", "summary", "--dir",
                             str(tmp_path / "nope"))
        assert code == 1
        assert "no telemetry runs" in text
