"""Tests for operand parsing and symbol resolution."""

import pytest

from repro.asm.operands import (OperandError, parse_immediate,
                                parse_memory_operand, parse_register,
                                resolve_value)


class TestParseImmediate:
    def test_decimal(self):
        assert parse_immediate("42") == 42
        assert parse_immediate("-7") == -7

    def test_hex_and_binary(self):
        assert parse_immediate("0x10") == 16
        assert parse_immediate("0b101") == 5

    def test_char_literals(self):
        assert parse_immediate("'a'") == 97
        assert parse_immediate("'\\n'") == 10
        assert parse_immediate("'\\0'") == 0

    def test_symbolic_returns_none(self):
        assert parse_immediate("loop") is None

    def test_bad_char_literal(self):
        with pytest.raises(OperandError):
            parse_immediate("'ab'")
        with pytest.raises(OperandError):
            parse_immediate("'\\q'")


class TestResolveValue:
    SYMBOLS = {"arr": 0x10000010, "main": 0x400000}

    def test_literal_passthrough(self):
        assert resolve_value("5", self.SYMBOLS) == 5

    def test_label(self):
        assert resolve_value("arr", self.SYMBOLS) == 0x10000010

    def test_label_arithmetic(self):
        assert resolve_value("arr+8", self.SYMBOLS) == 0x10000018
        assert resolve_value("arr-4", self.SYMBOLS) == 0x1000000C

    def test_hi_lo_relocations(self):
        assert resolve_value("%hi(arr)", self.SYMBOLS) == 0x1000
        assert resolve_value("%lo(arr)", self.SYMBOLS) == 0x0010

    def test_unknown_symbol(self):
        with pytest.raises(OperandError, match="cannot resolve"):
            resolve_value("nope", self.SYMBOLS)


class TestParseMemoryOperand:
    def test_plain(self):
        assert parse_memory_operand("4(sp)", {}) == (4, 29)

    def test_no_offset(self):
        assert parse_memory_operand("(t0)", {}) == (0, 8)

    def test_negative_offset(self):
        assert parse_memory_operand("-8(fp)", {}) == (-8, 30)

    def test_symbolic_offset(self):
        assert parse_memory_operand("off(t1)", {"off": 12}) == (12, 9)

    def test_rejects_garbage(self):
        with pytest.raises(OperandError):
            parse_memory_operand("t0", {})
        with pytest.raises(OperandError):
            parse_memory_operand("4(nope)", {})


class TestParseRegister:
    def test_ok(self):
        assert parse_register(" t0 ") == 8

    def test_error_type(self):
        with pytest.raises(OperandError):
            parse_register("x19")
