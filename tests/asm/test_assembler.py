"""Tests for the two-pass assembler."""

import pytest

from repro.asm.assembler import (DATA_BASE, TEXT_BASE, AssemblyError,
                                 Program, assemble)
from repro.isa.instruction import Instruction


class TestBasicAssembly:
    def test_single_instruction(self):
        program = assemble("add t0, t1, t2")
        assert program.instructions == [Instruction("add", rd=8, rs=9, rt=10)]
        assert program.text_base == TEXT_BASE

    def test_labels_get_addresses(self):
        program = assemble("""
        .text
        main:
            nop
        loop:
            nop
        """)
        assert program.symbols["main"] == TEXT_BASE
        assert program.symbols["loop"] == TEXT_BASE + 4

    def test_entry_prefers_start_then_main(self):
        assert assemble("main: nop").entry == TEXT_BASE
        program = assemble("""
        pad: nop
        __start: nop
        main: nop
        """)
        assert program.entry == program.symbols["__start"]

    def test_forward_branch_resolves(self):
        program = assemble("""
        main:
            beq t0, t1, done
            nop
        done:
            nop
        """)
        # Displacement from main+4 to done = 1 instruction.
        assert program.instructions[0].imm == 1

    def test_backward_branch_resolves(self):
        program = assemble("""
        loop:
            nop
            bne t0, t1, loop
        """)
        assert program.instructions[1].imm == -2

    def test_jump_target_field(self):
        program = assemble("""
        main:
            j main
        """)
        assert program.instructions[0].target == TEXT_BASE >> 2

    def test_pseudo_expansion_inline(self):
        program = assemble("li t0, 0x12345678")
        assert [i.mnemonic for i in program.instructions] == ["lui", "ori"]

    def test_la_resolves_data_address(self):
        program = assemble("""
        .data
        x: .word 7
        .text
        main: la t0, x
        """)
        lui, ori = program.instructions
        address = (lui.imm << 16) | (ori.imm & 0xFFFF)
        assert address == program.symbols["x"] == DATA_BASE


class TestDataSegment:
    def test_word_values(self):
        program = assemble("""
        .data
        v: .word 1, -1, 0x10
        """)
        assert program.data[0:4] == (1).to_bytes(4, "little")
        assert program.data[4:8] == (0xFFFFFFFF).to_bytes(4, "little")
        assert program.data[8:12] == (16).to_bytes(4, "little")

    def test_word_of_label(self):
        program = assemble("""
        .data
        a: .word 7
        p: .word a
        """)
        assert int.from_bytes(program.data[4:8], "little") == DATA_BASE

    def test_asciiz(self):
        program = assemble('.data\ns: .asciiz "hi"')
        assert bytes(program.data[:3]) == b"hi\x00"

    def test_ascii_no_terminator(self):
        program = assemble('.data\ns: .ascii "hi"')
        assert len(program.data) == 2

    def test_escapes_in_strings(self):
        program = assemble('.data\ns: .asciiz "a\\n\\t\\0"')
        assert bytes(program.data[:5]) == b"a\n\t\x00\x00"

    def test_space_reserves_zeroed(self):
        program = assemble(".data\nbuf: .space 8\nx: .word 1")
        assert program.symbols["x"] == DATA_BASE + 8
        assert bytes(program.data[:8]) == bytes(8)

    def test_align(self):
        program = assemble("""
        .data
        b: .byte 1
        .align 2
        w: .word 2
        """)
        assert program.symbols["w"] == DATA_BASE + 4

    def test_word_auto_aligns_after_string(self):
        program = assemble("""
        .data
        s: .asciiz "abc"
        w: .word 5
        """)
        assert program.symbols["w"] % 4 == 0
        offset = program.symbols["w"] - DATA_BASE
        assert int.from_bytes(program.data[offset:offset + 4], "little") == 5

    def test_half_and_byte(self):
        program = assemble(".data\nh: .half 0x1234\nb: .byte 0xFF")
        assert program.data[0:2] == (0x1234).to_bytes(2, "little")
        assert program.data[2] == 0xFF


class TestErrors:
    def test_unknown_instruction(self):
        with pytest.raises(AssemblyError, match="unknown instruction"):
            assemble("frobnicate t0")

    def test_unknown_directive(self):
        with pytest.raises(AssemblyError, match="unknown directive"):
            assemble(".fnord 1")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError, match="duplicate label"):
            assemble("x: nop\nx: nop")

    def test_unresolved_branch_target(self):
        with pytest.raises(AssemblyError, match="cannot resolve"):
            assemble("beq t0, t1, nowhere")

    def test_line_number_in_error(self):
        with pytest.raises(AssemblyError, match="line 3"):
            assemble("nop\nnop\nbadop t0")

    def test_data_directive_in_text(self):
        with pytest.raises(AssemblyError, match="outside the .data"):
            assemble(".text\n.word 5")

    def test_instruction_in_data(self):
        with pytest.raises(AssemblyError, match="outside the .text"):
            assemble(".data\nadd t0, t1, t2")

    def test_immediate_overflow(self):
        with pytest.raises(AssemblyError, match="does not fit"):
            assemble("addi t0, t0, 40000")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError):
            assemble("add t0, t1")


class TestDisassembly:
    def test_listing(self):
        program = assemble("main: add t0, t1, t2\nnop")
        listing = program.disassemble().splitlines()
        assert listing[0] == f"{TEXT_BASE:#010x}: add t0, t1, t2"
        assert "sll zero, zero, 0" in listing[1]
