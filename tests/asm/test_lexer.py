"""Tests for the assembly lexer."""

import pytest

from repro.asm.lexer import LexError, lex_line


class TestLexLine:
    def test_plain_instruction(self):
        line = lex_line("add t0, t1, t2", 1)
        assert line.opcode == "add"
        assert line.operands == ["t0", "t1", "t2"]
        assert line.labels == []

    def test_label_and_instruction(self):
        line = lex_line("loop: addi t0, t0, 1", 1)
        assert line.labels == ["loop"]
        assert line.opcode == "addi"

    def test_multiple_labels(self):
        line = lex_line("a: b: nop", 1)
        assert line.labels == ["a", "b"]
        assert line.opcode == "nop"

    def test_label_only(self):
        line = lex_line("done:", 1)
        assert line.labels == ["done"] and line.opcode is None

    def test_comments_stripped(self):
        assert lex_line("  # just a comment", 1).empty
        line = lex_line("add t0, t1, t2 # sum", 1)
        assert line.operands == ["t0", "t1", "t2"]
        line = lex_line("nop // c-style", 1)
        assert line.opcode == "nop" and line.operands == []

    def test_hash_inside_string_preserved(self):
        line = lex_line('.asciiz "a#b"', 1)
        assert line.operands == ['"a#b"']

    def test_comma_inside_string_preserved(self):
        line = lex_line('.asciiz "a,b", "c"', 1)
        assert line.operands == ['"a,b"', '"c"']

    def test_memory_operand_kept_whole(self):
        line = lex_line("lw t0, 4(sp)", 1)
        assert line.operands == ["t0", "4(sp)"]

    def test_empty_line(self):
        assert lex_line("", 1).empty
        assert lex_line("   \t ", 1).empty

    def test_opcode_lowercased(self):
        assert lex_line("ADD t0, t1, t2", 1).opcode == "add"

    def test_empty_operand_rejected(self):
        with pytest.raises(LexError, match="empty operand"):
            lex_line("add t0,, t2", 1)

    def test_digit_label_rejected(self):
        with pytest.raises(LexError, match="starts with a digit"):
            lex_line("1loop: nop", 1)

    def test_unterminated_string(self):
        with pytest.raises(LexError, match="unterminated"):
            lex_line('.asciiz "oops', 3)

    def test_directive_is_opcode(self):
        line = lex_line(".word 1, 2, 3", 1)
        assert line.opcode == ".word"
        assert line.operands == ["1", "2", "3"]
