"""Tests for pseudo-instruction expansion."""

import pytest

from repro.asm.operands import OperandError
from repro.asm.pseudo import expand_pseudo


class TestExpandPseudo:
    def test_nop(self):
        assert expand_pseudo("nop", []) == [("sll", ["zero", "zero", "0"])]

    def test_move(self):
        assert expand_pseudo("move", ["t0", "t1"]) == [("add", ["t0", "t1", "zero"])]

    def test_li_small_positive(self):
        assert expand_pseudo("li", ["t0", "5"]) == [("addi", ["t0", "zero", "5"])]

    def test_li_small_negative(self):
        assert expand_pseudo("li", ["t0", "-3"]) == [("addi", ["t0", "zero", "-3"])]

    def test_li_unsigned_16bit(self):
        # 0x9000 doesn't fit signed 16-bit but does fit ori.
        assert expand_pseudo("li", ["t0", "0x9000"]) == [("ori", ["t0", "zero", "36864"])]

    def test_li_wide(self):
        expansion = expand_pseudo("li", ["t0", "0x12345678"])
        assert expansion == [("lui", ["t0", str(0x1234)]),
                             ("ori", ["t0", "t0", str(0x5678)])]

    def test_li_wide_zero_low_half_is_single_lui(self):
        assert expand_pseudo("li", ["t0", "0x10000"]) == [("lui", ["t0", "1"])]

    def test_li_wraps_negative_wide(self):
        expansion = expand_pseudo("li", ["t0", str(-0x12345678)])
        assert expansion[0][0] == "lui"

    def test_la(self):
        expansion = expand_pseudo("la", ["t0", "arr"])
        assert expansion == [("lui", ["t0", "%hi(arr)"]),
                             ("ori", ["t0", "t0", "%lo(arr)"])]

    def test_branch_zero_forms(self):
        assert expand_pseudo("beqz", ["t0", "done"]) == [("beq", ["t0", "zero", "done"])]
        assert expand_pseudo("bnez", ["t0", "loop"]) == [("bne", ["t0", "zero", "loop"])]
        assert expand_pseudo("b", ["out"]) == [("beq", ["zero", "zero", "out"])]

    def test_blt_registers(self):
        assert expand_pseudo("blt", ["t0", "t1", "l"]) == [
            ("slt", ["at", "t0", "t1"]), ("bne", ["at", "zero", "l"])]

    def test_bge_registers(self):
        assert expand_pseudo("bge", ["t0", "t1", "l"]) == [
            ("slt", ["at", "t0", "t1"]), ("beq", ["at", "zero", "l"])]

    def test_bgt_swaps_operands(self):
        assert expand_pseudo("bgt", ["t0", "t1", "l"]) == [
            ("slt", ["at", "t1", "t0"]), ("bne", ["at", "zero", "l"])]

    def test_blt_with_immediate(self):
        expansion = expand_pseudo("blt", ["t0", "4", "l"])
        assert expansion == [
            ("addi", ["at", "zero", "4"]),
            ("slt", ["at", "t0", "at"]),
            ("bne", ["at", "zero", "l"]),
        ]

    def test_subi(self):
        assert expand_pseudo("subi", ["t0", "t1", "4"]) == [("addi", ["t0", "t1", "-4"])]

    def test_not_and_neg(self):
        assert expand_pseudo("not", ["t0", "t1"]) == [("nor", ["t0", "t1", "zero"])]
        assert expand_pseudo("neg", ["t0", "t1"]) == [("sub", ["t0", "zero", "t1"])]

    def test_arity_errors(self):
        with pytest.raises(OperandError):
            expand_pseudo("move", ["t0"])
        with pytest.raises(OperandError):
            expand_pseudo("li", ["t0", "1", "2"])

    def test_li_requires_literal(self):
        with pytest.raises(OperandError):
            expand_pseudo("li", ["t0", "some_label"])

    def test_unknown_pseudo(self):
        with pytest.raises(OperandError):
            expand_pseudo("frobnicate", [])
