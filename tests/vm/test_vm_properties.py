"""Property tests of the VM's ALU semantics, independent of MinC.

Hypothesis builds random straight-line instruction sequences (no
control flow), assembles them behind a tiny prologue, executes them on
the VM, and checks the final register file against a direct Python
model of each instruction's 32-bit semantics.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.asm import assemble
from repro.vm import Machine

MASK = 0xFFFFFFFF


def s32(value: int) -> int:
    value &= MASK
    return value - (1 << 32) if value >= (1 << 31) else value


# Registers the generated code may touch (avoid zero/sp/fp/ra/v0).
_REGS = ["t0", "t1", "t2", "t3", "s0", "s1"]
_NUM = {"t0": 8, "t1": 9, "t2": 10, "t3": 11, "s0": 16, "s1": 17}


def _model_alu(op, a, b):
    if op == "add":
        return (a + b) & MASK
    if op == "sub":
        return (a - b) & MASK
    if op == "mul":
        return (s32(a) * s32(b)) & MASK
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "nor":
        return ~(a | b) & MASK
    if op == "slt":
        return 1 if s32(a) < s32(b) else 0
    if op == "sltu":
        return 1 if a < b else 0
    if op == "sllv":
        return (a << (b & 31)) & MASK
    if op == "srlv":
        return a >> (b & 31)
    if op == "srav":
        return (s32(a) >> (b & 31)) & MASK
    raise AssertionError(op)


_ALU_OPS = ["add", "sub", "mul", "and", "or", "xor", "nor", "slt",
            "sltu", "sllv", "srlv", "srav"]

_alu_instr = st.tuples(st.just("alu"), st.sampled_from(_ALU_OPS),
                       st.sampled_from(_REGS), st.sampled_from(_REGS),
                       st.sampled_from(_REGS))
_imm_instr = st.tuples(st.just("addi"), st.sampled_from(_REGS),
                       st.sampled_from(_REGS),
                       st.integers(-0x8000, 0x7FFF))
_li_instr = st.tuples(st.just("li"), st.sampled_from(_REGS),
                      st.integers(0, MASK))
_shift_instr = st.tuples(st.just("shift"),
                         st.sampled_from(["sll", "srl", "sra"]),
                         st.sampled_from(_REGS), st.sampled_from(_REGS),
                         st.integers(0, 31))


@settings(max_examples=150, deadline=None)
@given(program=st.lists(
    st.one_of(_li_instr, _alu_instr, _imm_instr, _shift_instr),
    min_size=1, max_size=30))
def test_alu_sequences_match_model(program):
    lines = ["main:"]
    regs = {name: 0 for name in _REGS}
    for instr in program:
        if instr[0] == "li":
            _, rd, value = instr
            lines.append(f"li {rd}, {value}")
            regs[rd] = value & MASK
        elif instr[0] == "addi":
            _, rd, rs, imm = instr
            lines.append(f"addi {rd}, {rs}, {imm}")
            regs[rd] = (regs[rs] + imm) & MASK
        elif instr[0] == "alu":
            _, op, rd, rs, rt = instr
            lines.append(f"{op} {rd}, {rs}, {rt}")
            regs[rd] = _model_alu(op, regs[rs], regs[rt])
        else:  # immediate shift
            _, op, rd, rs, shamt = instr
            lines.append(f"{op} {rd}, {rs}, {shamt}")
            if op == "sll":
                regs[rd] = (regs[rs] << shamt) & MASK
            elif op == "srl":
                regs[rd] = regs[rs] >> shamt
            else:
                regs[rd] = (s32(regs[rs]) >> shamt) & MASK
    lines.append("jr ra")
    machine = Machine(assemble("\n".join(lines)))
    machine.run(10_000)
    for name, expected in regs.items():
        assert machine.regs[_NUM[name]] == expected, name


@settings(max_examples=100, deadline=None)
@given(values=st.lists(st.integers(0, MASK), min_size=1, max_size=16))
def test_memory_wordwise_roundtrip_through_vm(values):
    """sw then lw of arbitrary words through the VM's data segment."""
    stores = "\n".join(
        f"li t0, {v}\nsw t0, {4 * i}(t1)" for i, v in enumerate(values))
    loads = "\n".join(
        f"lw t{2 + (i % 2)}, {4 * i}(t1)\nadd t9, t9, t{2 + (i % 2)}"
        for i in range(len(values)))
    source = f"""
    .data
    buf: .space {4 * len(values)}
    .text
    main:
        la t1, buf
        li t9, 0
        {stores}
        {loads}
        jr ra
    """
    machine = Machine(assemble(source))
    machine.run(10_000)
    assert machine.regs[25] == sum(values) & MASK  # t9


@settings(max_examples=80, deadline=None)
@given(value=st.integers(0, MASK), shamt=st.integers(0, 31))
def test_shift_identities(value, shamt):
    """srl/sra agree on non-negative values; sll/srl invert for safe shifts."""
    source = f"""
    main:
        li t0, {value & 0x7FFFFFFF}
        srl t1, t0, {shamt}
        sra t2, t0, {shamt}
        jr ra
    """
    machine = Machine(assemble(source))
    machine.run(1_000)
    assert machine.regs[9] == machine.regs[10]
