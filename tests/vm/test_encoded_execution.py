"""Binary round-trip execution: encode -> decode -> identical behaviour.

The assembler produces decoded instructions; `Program.reencoded()`
pushes them through the 32-bit binary encoding and back.  Both images
must execute identically -- this exercises the encoder/decoder over
every instruction the compiler actually emits, far beyond the
per-format property tests.
"""

import pytest

from repro.asm import assemble
from repro.lang import compile_to_program
from repro.vm import Machine
from repro.workloads.registry import WORKLOADS


def run_both(program, max_instructions=3_000_000):
    original = Machine(program, collect_trace=True)
    original.run(max_instructions)
    roundtripped = Machine(program.reencoded(), collect_trace=True)
    roundtripped.run(max_instructions)
    return original, roundtripped


class TestEncodedExecution:
    def test_assembly_program(self):
        program = assemble("""
        .data
        arr: .word 3, 1, 4, 1, 5
        .text
        main:
            li t0, 0
            li t1, 0
            la t2, arr
        loop:
            sll t3, t1, 2
            add t3, t3, t2
            lw t4, 0(t3)
            add t0, t0, t4
            addi t1, t1, 1
            blt t1, 5, loop
            move v0, t0
            jr ra
        """)
        original, roundtripped = run_both(program)
        assert original.exit_code == roundtripped.exit_code == 14
        assert original.trace == roundtripped.trace

    def test_compiled_recursion(self):
        program = compile_to_program("""
        int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
        int main() { return fib(12); }
        """)
        original, roundtripped = run_both(program)
        assert original.exit_code == roundtripped.exit_code == 144
        assert original.trace == roundtripped.trace

    @pytest.mark.parametrize("name", ["li", "norm", "m88ksim"])
    def test_workload_prefix(self, name):
        program = compile_to_program(WORKLOADS[name].source)
        original = Machine(program, collect_trace=True, trace_limit=4000)
        original.run(50_000_000)
        roundtripped = Machine(program.reencoded(), collect_trace=True,
                               trace_limit=4000)
        roundtripped.run(50_000_000)
        assert original.trace == roundtripped.trace

    def test_encoded_words_are_32_bit(self):
        program = compile_to_program(WORKLOADS["li"].source)
        for word in program.encoded_text():
            assert 0 <= word < (1 << 32)

    def test_reencoded_preserves_metadata(self):
        program = assemble("main: nop\njr ra")
        clone = program.reencoded()
        assert clone.entry == program.entry
        assert clone.symbols == program.symbols
        assert clone.instructions == program.instructions
        assert clone.data == program.data and clone.data is not program.data
