"""Tests for the sparse paged memory."""

import pytest
from hypothesis import given, strategies as st

from repro.vm.errors import MemoryFault
from repro.vm.memory import PAGE_SIZE, Memory

addr32 = st.integers(min_value=0, max_value=0xFFFFFFFF)


class TestMemory:
    def test_uninitialised_reads_zero(self):
        memory = Memory()
        assert memory.read_u8(0x1234) == 0
        assert memory.read_u32(0x1000) == 0

    def test_byte_roundtrip(self):
        memory = Memory()
        memory.write_u8(5, 0xAB)
        assert memory.read_u8(5) == 0xAB

    def test_word_is_little_endian(self):
        memory = Memory()
        memory.write_u32(0x100, 0x11223344)
        assert memory.read_u8(0x100) == 0x44
        assert memory.read_u8(0x103) == 0x11

    def test_halfword_roundtrip(self):
        memory = Memory()
        memory.write_u16(0x200, 0xBEEF)
        assert memory.read_u16(0x200) == 0xBEEF

    def test_alignment_enforced(self):
        memory = Memory()
        with pytest.raises(MemoryFault):
            memory.read_u32(0x101)
        with pytest.raises(MemoryFault):
            memory.write_u32(0x102, 0)
        with pytest.raises(MemoryFault):
            memory.read_u16(0x101)

    def test_values_masked(self):
        memory = Memory()
        memory.write_u8(0, 0x1FF)
        assert memory.read_u8(0) == 0xFF
        memory.write_u32(4, 0x1_0000_0001)
        assert memory.read_u32(4) == 1

    def test_cross_page_bytes(self):
        memory = Memory()
        blob = bytes(range(10))
        memory.write_bytes(PAGE_SIZE - 5, blob)
        assert memory.read_bytes(PAGE_SIZE - 5, 10) == blob

    def test_cstring(self):
        memory = Memory()
        memory.write_bytes(0x300, b"hello\x00world")
        assert memory.read_cstring(0x300) == "hello"

    def test_unterminated_cstring_faults(self):
        memory = Memory()
        memory.write_bytes(0x400, b"abcdef")  # no NUL within the limit
        with pytest.raises(MemoryFault, match="unterminated"):
            memory.read_cstring(0x400, limit=4)

    def test_sparseness(self):
        memory = Memory()
        memory.write_u8(0, 1)
        memory.write_u8(0xF000_0000, 1)
        assert memory.resident_bytes == 2 * PAGE_SIZE

    def test_address_wraps_32_bits(self):
        memory = Memory()
        memory.write_u8(0x1_0000_0004, 7)
        assert memory.read_u8(4) == 7

    @given(st.integers(0, (1 << 30) - 1), st.integers(0, 0xFFFFFFFF))
    def test_word_roundtrip_property(self, word_index, value):
        memory = Memory()
        addr = word_index * 4
        memory.write_u32(addr, value)
        assert memory.read_u32(addr) == value
