"""Tests for the R32 functional simulator."""

import pytest

from repro.asm import assemble
from repro.vm import HALT_ADDRESS, Machine
from repro.vm.errors import (ArithmeticFault, ExecutionLimitExceeded,
                             MemoryFault)


def run(source: str, max_instructions: int = 1_000_000, **kwargs) -> Machine:
    machine = Machine(assemble(source), **kwargs)
    machine.run(max_instructions)
    return machine


class TestArithmetic:
    def test_add_sub(self):
        m = run("main: li t0, 7\nli t1, 5\nadd t2, t0, t1\nsub t3, t0, t1\njr ra")
        assert m.register("t2") == 12 and m.register("t3") == 2

    def test_wraparound(self):
        m = run("main: li t0, 0x7FFFFFFF\naddi t0, t0, 1\njr ra")
        assert m.register("t0") == 0x80000000

    def test_mul_and_mulh(self):
        m = run("""
        main:
            li t0, 100000
            li t1, 100000
            mul t2, t0, t1
            mulh t3, t0, t1
            jr ra
        """)
        product = 100000 * 100000
        assert m.register("t2") == product & 0xFFFFFFFF
        assert m.register("t3") == product >> 32

    def test_div_truncates_toward_zero(self):
        m = run("""
        main:
            li t0, -7
            li t1, 2
            div t2, t0, t1
            rem t3, t0, t1
            jr ra
        """)
        assert m.register("t2") == (-3) & 0xFFFFFFFF  # C semantics, not floor
        assert m.register("t3") == (-1) & 0xFFFFFFFF

    def test_division_by_zero_faults(self):
        with pytest.raises(ArithmeticFault):
            run("main: li t0, 1\ndiv t1, t0, zero\njr ra")

    def test_logic_ops(self):
        m = run("""
        main:
            li t0, 0xF0F0
            li t1, 0x0FF0
            and t2, t0, t1
            or  t3, t0, t1
            xor t4, t0, t1
            nor t5, t0, t1
            jr ra
        """)
        assert m.register("t2") == 0x00F0
        assert m.register("t3") == 0xFFF0
        assert m.register("t4") == 0xFF00
        assert m.register("t5") == 0xFFFF000F

    def test_shifts(self):
        m = run("""
        main:
            li t0, -8
            sra t1, t0, 1
            srl t2, t0, 1
            sll t3, t0, 1
            li t4, 2
            srav t5, t0, t4
            jr ra
        """)
        assert m.register("t1") == (-4) & 0xFFFFFFFF
        assert m.register("t2") == 0x7FFFFFFC
        assert m.register("t3") == (-16) & 0xFFFFFFFF
        assert m.register("t5") == (-2) & 0xFFFFFFFF

    def test_slt_signed_vs_unsigned(self):
        m = run("""
        main:
            li t0, -1
            li t1, 1
            slt t2, t0, t1
            sltu t3, t0, t1
            jr ra
        """)
        assert m.register("t2") == 1   # -1 < 1 signed
        assert m.register("t3") == 0   # 0xFFFFFFFF > 1 unsigned

    def test_zero_register_is_immutable(self):
        m = run("main: li t0, 5\nadd zero, t0, t0\nmove t1, zero\njr ra")
        assert m.register("zero") == 0 and m.register("t1") == 0


class TestMemoryOps:
    def test_word_store_load(self):
        m = run("""
        .data
        buf: .space 16
        .text
        main:
            la t0, buf
            li t1, 0xDEAD
            sw t1, 4(t0)
            lw t2, 4(t0)
            jr ra
        """)
        assert m.register("t2") == 0xDEAD

    def test_byte_sign_extension(self):
        m = run("""
        .data
        b: .byte 0xFF
        .text
        main:
            la t0, b
            lb t1, 0(t0)
            lbu t2, 0(t0)
            jr ra
        """)
        assert m.register("t1") == 0xFFFFFFFF
        assert m.register("t2") == 0xFF

    def test_half_sign_extension(self):
        m = run("""
        .data
        h: .half 0x8000
        .text
        main:
            la t0, h
            lh t1, 0(t0)
            lhu t2, 0(t0)
            jr ra
        """)
        assert m.register("t1") == 0xFFFF8000
        assert m.register("t2") == 0x8000

    def test_data_segment_loaded(self):
        m = run("""
        .data
        arr: .word 11, 22, 33
        .text
        main:
            la t0, arr
            lw t1, 8(t0)
            jr ra
        """)
        assert m.register("t1") == 33


class TestControlFlow:
    def test_loop_counts(self):
        m = run("""
        main:
            li t0, 0
            li t1, 10
        loop:
            addi t0, t0, 1
            bne t0, t1, loop
            jr ra
        """)
        assert m.register("t0") == 10

    def test_function_call_and_return(self):
        m = run("""
        main:
            addi sp, sp, -4
            sw ra, 0(sp)
            li a0, 20
            jal double
            move t0, v0
            lw ra, 0(sp)
            addi sp, sp, 4
            jr ra
        double:
            add v0, a0, a0
            jr ra
        """)
        assert m.register("t0") == 40

    def test_conditional_branches(self):
        m = run("""
        main:
            li t0, -5
            li t1, 0
            bltz t0, neg
            li t1, 1
        neg:
            bgez t0, done
            li t2, 42
        done:
            jr ra
        """)
        assert m.register("t1") == 0 and m.register("t2") == 42

    def test_return_from_main_halts(self):
        m = run("main: li v0, 3\njr ra")
        assert m.exit_code == 3
        assert m.pc == HALT_ADDRESS

    def test_pc_outside_text_faults(self):
        with pytest.raises(MemoryFault, match="outside the text"):
            run("main: jr zero")

    def test_instruction_budget(self):
        with pytest.raises(ExecutionLimitExceeded):
            run("main: j main", max_instructions=100)


class TestSyscalls:
    def test_print_int_and_char(self):
        m = run("""
        main:
            li a0, -42
            li v0, 1
            syscall
            li a0, '\\n'
            li v0, 11
            syscall
            li v0, 0
            jr ra
        """)
        assert m.stdout == "-42\n"

    def test_print_string(self):
        m = run("""
        .data
        s: .asciiz "hello"
        .text
        main:
            la a0, s
            li v0, 4
            syscall
            jr ra
        """)
        assert m.stdout == "hello"

    def test_exit_syscall(self):
        m = run("""
        main:
            li a0, 7
            li v0, 10
            syscall
            li t0, 99
        """)
        assert m.exit_code == 7
        assert m.register("t0") == 0  # never reached

    def test_sbrk_grows_heap(self):
        m = run("""
        main:
            li a0, 64
            li v0, 9
            syscall
            move t0, v0
            li a0, 64
            li v0, 9
            syscall
            sub t1, v0, t0
            jr ra
        """)
        assert m.register("t1") == 64


class TestTracing:
    def test_producers_traced(self):
        m = Machine(assemble("""
        main:
            li t0, 5
            li t1, 7
            add t2, t0, t1
            sw t2, 0(sp)
            lw t3, 0(sp)
            beq t2, t3, skip
        skip:
            jr ra
        """), collect_trace=True)
        m.run()
        values = [value for _, value in m.trace]
        # li(x2), add, lw are traced; sw, beq, jr are not.
        assert values == [5, 7, 12, 12]

    def test_trace_pcs_are_instruction_addresses(self):
        program = assemble("main: li t0, 1\nli t1, 2\njr ra")
        m = Machine(program, collect_trace=True)
        m.run()
        assert [pc for pc, _ in m.trace] == [program.text_base,
                                             program.text_base + 4]

    def test_writes_to_zero_not_traced(self):
        m = Machine(assemble("main: add zero, sp, sp\nli t0, 1\njr ra"),
                    collect_trace=True)
        m.run()
        assert [value for _, value in m.trace] == [1]

    def test_trace_limit_truncates_cleanly(self):
        m = Machine(assemble("""
        main:
            li t0, 0
        loop:
            addi t0, t0, 1
            j loop
        """), collect_trace=True, trace_limit=50)
        m.run()
        assert len(m.trace) == 50
        assert m.truncated

    def test_no_trace_when_disabled(self):
        m = run("main: li t0, 1\njr ra")
        assert m.trace == []


class TestStartupState:
    def test_stack_pointer_initialised(self):
        m = run("main: move t0, sp\njr ra")
        assert m.register("t0") != 0
        assert m.register("t0") % 8 == 0

    def test_entry_is_main(self):
        m = run("helper: li t0, 1\njr ra\nmain: li t1, 2\njr ra")
        assert m.register("t0") == 0 and m.register("t1") == 2
