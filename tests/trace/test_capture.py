"""Tests for trace capture and the on-disk cache."""

import pytest

from repro.trace.cache import cached_trace, clear_cache, default_cache_dir
from repro.trace.capture import capture_source, capture_trace


SIMPLE = """
int main() {
    int i;
    int s = 0;
    for (i = 0; i < 1000; i = i + 1) s = s + i;
    return 0;
}
"""


class TestCaptureSource:
    def test_captures_limit_predictions(self):
        trace = capture_source("t", SIMPLE, limit=500)
        assert len(trace) == 500
        assert trace.name == "t"

    def test_runs_to_completion_without_limit(self):
        trace = capture_source("t", SIMPLE, limit=None)
        assert len(trace) > 4000  # the loop body produces several per trip

    def test_values_are_u32(self):
        trace = capture_source("t", SIMPLE, limit=100)
        assert all(0 <= v < 2**32 for v in trace.values.tolist())

    def test_truncated_on_instruction_budget(self):
        # A budget too small to finish still yields a partial trace.
        trace = capture_source("t", SIMPLE, limit=None,
                               max_instructions=1000)
        assert 0 < len(trace) < 1500

    def test_empty_trace_budget_raises(self):
        from repro.vm.errors import ExecutionLimitExceeded
        with pytest.raises(ExecutionLimitExceeded):
            capture_source("t", SIMPLE, limit=None, max_instructions=1)


class TestCaptureTrace:
    def test_known_workload(self):
        trace = capture_trace("norm", limit=1000)
        assert trace.name == "norm" and len(trace) == 1000

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            capture_trace("doom", limit=10)


class TestCache:
    def test_cache_roundtrip(self, tmp_path):
        first = cached_trace("li", limit=1500, cache_dir=tmp_path)
        files = list(tmp_path.glob("*.npz"))
        assert len(files) == 1
        second = cached_trace("li", limit=1500, cache_dir=tmp_path)
        assert first.records() == second.records()
        assert len(list(tmp_path.glob("*.npz"))) == 1  # no re-capture

    def test_different_limits_are_different_entries(self, tmp_path):
        cached_trace("li", limit=100, cache_dir=tmp_path)
        cached_trace("li", limit=200, cache_dir=tmp_path)
        assert len(list(tmp_path.glob("*.npz"))) == 2

    def test_clear_cache(self, tmp_path):
        cached_trace("li", limit=100, cache_dir=tmp_path)
        assert clear_cache(tmp_path) == 1
        assert list(tmp_path.glob("*.npz")) == []
        assert clear_cache(tmp_path) == 0

    def test_clear_missing_dir(self, tmp_path):
        assert clear_cache(tmp_path / "nope") == 0

    def test_default_cache_dir_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "cache"))
        assert default_cache_dir() == tmp_path / "cache"
