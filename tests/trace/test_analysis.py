"""Tests for the value-pattern taxonomy."""

import pytest

from repro.trace.analysis import analyze_trace
from repro.trace.trace import ValueTrace
from tests.conftest import interleaved, repeating_trace, stride_trace


class TestAnalyzeTrace:
    def test_constant_stream(self):
        trace = repeating_trace("c", 0x1000, [9], 100)
        profiles, summary = analyze_trace(trace)
        assert summary.constant_rate == pytest.approx(0.99)  # cold miss
        assert profiles[0].dominant_class == "constant"

    def test_stride_stream(self):
        trace = stride_trace("s", 0x1000, 0, 4, 100)
        profiles, summary = analyze_trace(trace)
        assert summary.constant_rate == 0.0
        # Two cold records before the first difference is known.
        assert summary.stride_rate == pytest.approx(0.98)
        assert profiles[0].dominant_class == "stride"

    def test_context_stream(self):
        # A repeating non-stride pattern: context-predictable only.
        pattern = [7, 3, 9, 2, 15]
        trace = repeating_trace("ctx", 0x1000, pattern, 40)
        profiles, summary = analyze_trace(trace, order=3)
        assert summary.constant_rate < 0.05
        assert summary.stride_rate < 0.05
        assert summary.context_rate > 0.9
        assert profiles[0].dominant_class == "context"

    def test_random_stream_is_residual(self):
        import random
        rng = random.Random(5)
        trace = ValueTrace("r", [0x1000] * 300,
                           [rng.randrange(2**32) for _ in range(300)])
        profiles, summary = analyze_trace(trace)
        assert summary.residual_rate > 0.95
        assert profiles[0].dominant_class == "residual"

    def test_disjoint_priority_constant_over_stride(self):
        # A constant stream is stride-predictable too (stride 0), but
        # disjoint attribution must credit 'constant'.
        trace = repeating_trace("c", 0x1000, [5], 50)
        _, summary = analyze_trace(trace)
        assert summary.disjoint_constant > 0
        assert summary.disjoint_stride == 0

    def test_disjoint_classes_partition_with_residual(self):
        trace = interleaved(
            stride_trace("s", 0x1000, 0, 2, 100),
            repeating_trace("ctx", 0x1004, [3, 8, 1, 9], 25),
        )
        _, summary = analyze_trace(trace)
        covered = (summary.disjoint_constant + summary.disjoint_stride
                   + summary.disjoint_context)
        assert covered <= summary.total
        assert summary.residual_rate == pytest.approx(
            (summary.total - covered) / summary.total)

    def test_per_pc_isolation(self):
        # Two interleaved streams must be analysed independently.
        trace = interleaved(
            repeating_trace("c", 0x1000, [7], 60),
            stride_trace("s", 0x1004, 0, 3, 60),
        )
        profiles, _ = analyze_trace(trace)
        by_pc = {p.pc: p for p in profiles}
        assert by_pc[0x1000].dominant_class == "constant"
        assert by_pc[0x1004].dominant_class == "stride"

    def test_min_occurrences_filter(self):
        trace = ValueTrace("t", [0x1000] * 50 + [0x2000], [1] * 51)
        profiles, _ = analyze_trace(trace, min_occurrences=10)
        assert [p.pc for p in profiles] == [0x1000]

    def test_profiles_sorted_by_dynamic_count(self):
        trace = interleaved(
            repeating_trace("a", 0x1000, [1], 10),
            repeating_trace("b", 0x1004, [2], 90),
        )
        profiles, _ = analyze_trace(trace)
        counts = [p.breakdown.total for p in profiles]
        assert counts == sorted(counts, reverse=True)

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            analyze_trace(repeating_trace("c", 0, [1], 5), order=0)

    def test_context_needs_full_history(self):
        # With order 3, a stream shorter than 4 values can never score
        # a context hit.
        trace = repeating_trace("c", 0x1000, [1, 2, 3], 1)
        _, summary = analyze_trace(trace, order=3)
        assert summary.context_hits == 0
