"""Tests for the self-healing trace cache: corruption recovery, atomic
writes, versioning/checksums, CacheStats, verify/warm, and the
``repro cache`` CLI."""

import io

import numpy as np
import pytest

from repro.cli import main
from repro.harness.config import suite_traces
from repro.trace.cache import (CacheEntry, CacheStats, cache_entries,
                               cached_trace, clear_cache, verify_cache,
                               verify_entry, warm_cache)
from repro.trace.trace import (FORMAT_VERSION, TraceCacheError, ValueTrace,
                               payload_checksum)
from repro.workloads.registry import SPEC_NAMES


def one_entry(tmp_path, limit=300):
    """Capture one cached entry; returns its path."""
    cached_trace("li", limit=limit, cache_dir=tmp_path)
    (path,) = tmp_path.glob("*.npz")
    return path


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestLoadValidation:
    def test_garbage_bytes(self, tmp_path):
        path = tmp_path / "x.npz"
        path.write_bytes(b"this is not a zip file")
        with pytest.raises(TraceCacheError):
            ValueTrace.load(path)

    def test_truncated_tail(self, tmp_path):
        path = one_entry(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:len(data) // 2])
        with pytest.raises(TraceCacheError):
            ValueTrace.load(path)

    def test_missing_members(self, tmp_path):
        path = tmp_path / "x.npz"
        np.savez_compressed(path, pcs=np.zeros(3, dtype=np.uint32))
        with pytest.raises(TraceCacheError, match="missing members"):
            ValueTrace.load(path)

    def test_unversioned_legacy_entry(self, tmp_path):
        path = tmp_path / "x.npz"
        np.savez_compressed(path, name=np.array("t"),
                            pcs=np.zeros(3, dtype=np.uint32),
                            values=np.zeros(3, dtype=np.uint32))
        with pytest.raises(TraceCacheError, match="unversioned"):
            ValueTrace.load(path)

    def test_version_mismatch(self, tmp_path):
        path = tmp_path / "x.npz"
        pcs = values = np.zeros(3, dtype=np.uint32)
        np.savez_compressed(path, name=np.array("t"), pcs=pcs, values=values,
                            version=np.array(FORMAT_VERSION + 1,
                                             dtype=np.uint32),
                            checksum=np.array(payload_checksum(pcs, values),
                                              dtype=np.uint32))
        with pytest.raises(TraceCacheError, match="format v"):
            ValueTrace.load(path)

    def test_checksum_mismatch(self, tmp_path):
        path = tmp_path / "x.npz"
        pcs = values = np.zeros(3, dtype=np.uint32)
        np.savez_compressed(path, name=np.array("t"), pcs=pcs, values=values,
                            version=np.array(FORMAT_VERSION, dtype=np.uint32),
                            checksum=np.array(12345, dtype=np.uint32))
        with pytest.raises(TraceCacheError, match="checksum mismatch"):
            ValueTrace.load(path)

    @pytest.mark.parametrize("pcs,values,match", [
        (np.zeros((2, 2), dtype=np.uint32), np.zeros((2, 2), dtype=np.uint32),
         "one-dimensional"),
        (np.zeros(3, dtype=np.uint32), np.zeros(4, dtype=np.uint32),
         "length mismatch"),
        (np.zeros(3, dtype=np.int64), np.zeros(3, dtype=np.int64),
         "uint32"),
    ])
    def test_bad_arrays(self, tmp_path, pcs, values, match):
        path = tmp_path / "x.npz"
        np.savez_compressed(path, name=np.array("t"), pcs=pcs, values=values,
                            version=np.array(FORMAT_VERSION, dtype=np.uint32),
                            checksum=np.array(payload_checksum(pcs, values),
                                              dtype=np.uint32))
        with pytest.raises(TraceCacheError, match=match):
            ValueTrace.load(path)

    def test_roundtrip_still_works(self, tmp_path):
        path = tmp_path / "t.npz"
        trace = ValueTrace("t", [4, 8, 12], [1, 2, 3])
        trace.save(path)
        loaded = ValueTrace.load(path)
        assert loaded.records() == trace.records()
        assert loaded.name == "t"


class TestSelfHealing:
    def test_garbage_entry_recaptured(self, tmp_path):
        path = one_entry(tmp_path)
        original = ValueTrace.load(path).records()
        path.write_bytes(b"\x00garbage\x00")
        stats = CacheStats()
        trace = cached_trace("li", limit=300, cache_dir=tmp_path, stats=stats)
        assert trace.records() == original
        assert stats.corrupt_quarantined == 1 and stats.recaptures == 1
        assert stats.hits == 0 and stats.misses == 0
        # the bad bytes were kept for post-mortem, and replaced on disk
        assert (tmp_path / (path.name + ".corrupt")).exists()
        assert verify_entry(path) is None

    def test_truncated_entry_recaptured(self, tmp_path):
        path = one_entry(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:-40])  # chop the tail (central directory)
        trace = cached_trace("li", limit=300, cache_dir=tmp_path)
        assert len(trace) == 300
        assert verify_entry(path) is None

    def test_suite_traces_heals_and_reports(self, tmp_path, monkeypatch):
        """The acceptance scenario: damage one entry's tail, re-run the
        suite loader, observe recovery in CacheStats."""
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        suite_traces(1000)
        victim = sorted(tmp_path.glob("*.npz"))[0]
        data = victim.read_bytes()
        victim.write_bytes(data[:-25])
        stats = CacheStats()
        traces = suite_traces(1000, stats=stats)
        assert [t.name for t in traces] == SPEC_NAMES
        assert all(len(t) == 1000 for t in traces)
        assert stats.recaptures == 1 and stats.corrupt_quarantined == 1
        assert stats.hits == len(SPEC_NAMES) - 1

    def test_version_bump_invalidates(self, tmp_path):
        path = one_entry(tmp_path)
        with np.load(path, allow_pickle=False) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["version"] = np.array(FORMAT_VERSION - 1, dtype=np.uint32)
        np.savez_compressed(path, **arrays)
        stats = CacheStats()
        trace = cached_trace("li", limit=300, cache_dir=tmp_path, stats=stats)
        assert len(trace) == 300
        assert stats.recaptures == 1


class TestAtomicWrites:
    def test_interrupted_save_leaves_no_npz(self, tmp_path, monkeypatch):
        trace = ValueTrace("t", [4, 8], [1, 2])

        def explode(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez_compressed", explode)
        with pytest.raises(OSError):
            trace.save(tmp_path / "t.npz")
        assert list(tmp_path.iterdir()) == []  # no partial file, tmp swept

    def test_leftover_tmp_is_ignored(self, tmp_path):
        (tmp_path / "li-300-deadbeef.npz.1234.tmp").write_bytes(b"partial")
        trace = cached_trace("li", limit=300, cache_dir=tmp_path)
        assert len(trace) == 300
        assert cache_entries(tmp_path)[0].path.suffix == ".npz"

    def test_save_overwrites_atomically(self, tmp_path):
        path = tmp_path / "t.npz"
        ValueTrace("t", [4], [1]).save(path)
        ValueTrace("t", [4, 8], [1, 2]).save(path)
        assert len(ValueTrace.load(path)) == 2
        assert list(tmp_path.glob("*.tmp")) == []


class TestCacheStats:
    def test_miss_then_hit(self, tmp_path):
        stats = CacheStats()
        cached_trace("li", limit=200, cache_dir=tmp_path, stats=stats)
        assert stats.misses == 1 and stats.hits == 0
        assert stats.bytes_written > 0 and stats.capture_seconds > 0
        cached_trace("li", limit=200, cache_dir=tmp_path, stats=stats)
        assert stats.hits == 1 and stats.misses == 1
        assert stats.bytes_read > 0

    def test_global_stats_always_updated(self, tmp_path):
        from repro.trace.stats import cache_stats, reset_cache_stats
        reset_cache_stats()
        cached_trace("li", limit=250, cache_dir=tmp_path)
        assert cache_stats().misses == 1

    def test_merge_and_render(self):
        a = CacheStats(hits=1, bytes_read=10)
        b = CacheStats(hits=2, misses=1, capture_seconds=0.5)
        a.merge(b)
        assert a.hits == 3 and a.misses == 1 and a.bytes_read == 10
        assert "hits=3" in a.render()
        assert a.as_dict()["capture_seconds"] == 0.5


class TestVerifySweep:
    def test_clean_cache_ok(self, tmp_path):
        warm_cache(["li", "norm"], 200, cache_dir=tmp_path)
        result = verify_cache(tmp_path)
        assert result.ok and result.checked == 2

    def test_detects_defects_without_touching(self, tmp_path):
        path = one_entry(tmp_path)
        path.write_bytes(b"junk")
        result = verify_cache(tmp_path)
        assert not result.ok
        assert result.defects[0][0] == path
        assert path.exists()  # report-only: nothing moved

    def test_repair_recaptures_matching_key(self, tmp_path):
        path = one_entry(tmp_path)
        path.write_bytes(b"junk")
        result = verify_cache(tmp_path, repair=True)
        assert result.repaired == [path]
        assert verify_cache(tmp_path).ok
        assert len(ValueTrace.load(path)) == 300

    def test_repair_quarantines_foreign_file(self, tmp_path):
        bad = tmp_path / "notaworkload-123-0000000000000000.npz"
        bad.write_bytes(b"junk")
        result = verify_cache(tmp_path, repair=True)
        assert result.repaired == []
        assert not bad.exists()
        assert (tmp_path / (bad.name + ".corrupt")).exists()
        assert verify_cache(tmp_path).ok

    def test_clear_sweeps_quarantine_and_tmp(self, tmp_path):
        one_entry(tmp_path)
        (tmp_path / "a.npz.corrupt").write_bytes(b"x")
        (tmp_path / "b.npz.99.tmp").write_bytes(b"x")
        assert clear_cache(tmp_path) == 1
        assert list(tmp_path.iterdir()) == []


class TestCacheEntryParsing:
    def test_plain(self, tmp_path):
        path = one_entry(tmp_path)
        entry = CacheEntry.from_path(path)
        assert entry.benchmark == "li" and entry.limit == 300
        assert entry.optimize == 0 and entry.size == path.stat().st_size

    def test_optlevel_and_full(self, tmp_path):
        (tmp_path / "go-full-0123456789abcdef-O2.npz").write_bytes(b"x")
        entry = cache_entries(tmp_path)[0]
        assert entry.benchmark == "go" and entry.limit is None
        assert entry.optimize == 2


class TestCacheCli:
    def test_warm_ls_verify_clear_roundtrip(self, tmp_path):
        d = str(tmp_path)
        code, text = run_cli("cache", "warm", "li", "400", "--dir", d)
        assert code == 0 and "warmed 1 benchmark" in text
        assert "misses=1" in text

        code, text = run_cli("cache", "ls", "--dir", d)
        assert code == 0 and "li" in text and "400" in text
        assert "(1 entries)" in text

        code, text = run_cli("cache", "verify", "--dir", d)
        assert code == 0 and "0 defective" in text

        code, text = run_cli("cache", "clear", "--dir", d)
        assert code == 0 and "removed 1 entries" in text
        assert list(tmp_path.iterdir()) == []

    def test_verify_exit_codes_around_repair(self, tmp_path):
        d = str(tmp_path)
        run_cli("cache", "warm", "li", "400", "--dir", d)
        (victim,) = tmp_path.glob("*.npz")
        victim.write_bytes(b"junk")

        code, text = run_cli("cache", "verify", "--dir", d)
        assert code == 1 and "BAD" in text

        code, text = run_cli("cache", "verify", "--repair", "--dir", d)
        assert code == 0 and "1 recaptured" in text

        code, text = run_cli("cache", "verify", "--dir", d)
        assert code == 0 and "0 defective" in text

    def test_warm_rejects_nonpositive_limit(self, tmp_path):
        code, text = run_cli("cache", "warm", "li", "0",
                             "--dir", str(tmp_path))
        assert code == 2 and "must be positive" in text
        assert list(tmp_path.iterdir()) == []

    def test_limit_zero_does_not_alias_full_key(self, tmp_path):
        cached_trace("li", limit=0, cache_dir=tmp_path)
        entry = cache_entries(tmp_path)[0]
        assert entry.limit == 0 and "full" not in entry.path.name

    def test_warm_all(self, tmp_path):
        code, text = run_cli("cache", "warm", "all", "100",
                             "--dir", str(tmp_path))
        assert code == 0
        assert len(list(tmp_path.glob("*.npz"))) == len(SPEC_NAMES)
