"""Smoke tests: every example script runs end to end.

Each example is executed in-process (imported as __main__-style run via
subprocess) with small arguments so the whole set stays fast.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def run_example(name, *args, timeout=300):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout)


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py", "li", "3000")
        assert result.returncode == 0, result.stderr
        assert "dfcm" in result.stdout
        assert "accuracy" in result.stdout

    def test_custom_workload(self):
        result = run_example("custom_workload.py")
        assert result.returncode == 0, result.stderr
        assert "checksum total" in result.stdout
        assert "predictor accuracy" in result.stdout

    def test_custom_predictor(self):
        result = run_example("custom_predictor.py", "2000")
        assert result.returncode == 0, result.stderr
        assert "last2_4096" in result.stdout

    def test_alias_analysis(self):
        result = run_example("alias_analysis.py", "norm", "5000")
        assert result.returncode == 0, result.stderr
        assert "alias taxonomy" in result.stdout
        assert "stride accesses per level-2 entry" in result.stdout

    def test_paper_figures_lists_experiments(self):
        result = run_example("paper_figures.py")
        assert result.returncode == 0, result.stderr
        assert "fig10" in result.stdout and "table1" in result.stdout

    def test_paper_figures_runs_one(self, tmp_path, monkeypatch):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / "paper_figures.py"),
             "table1", "--fast", "--csv", str(tmp_path)],
            capture_output=True, text=True, timeout=300,
            env={"REPRO_TRACE_LEN": "2000", "PATH": "/usr/bin:/bin",
                 "HOME": "/root"},
        )
        assert result.returncode == 0, result.stderr
        assert "Benchmarks" in result.stdout
        assert list(tmp_path.glob("table1_*.csv"))
