"""Shared test fixtures and helpers."""

from __future__ import annotations

import itertools
from typing import List, Tuple

import pytest

from repro.trace.trace import ValueTrace


def repeating_trace(name: str, pc: int, pattern: List[int],
                    repetitions: int) -> ValueTrace:
    """A single static instruction producing *pattern* repeatedly."""
    values = list(itertools.islice(itertools.cycle(pattern),
                                   len(pattern) * repetitions))
    return ValueTrace(name, [pc] * len(values), values)


def stride_trace(name: str, pc: int, start: int, stride: int,
                 length: int) -> ValueTrace:
    """A single static instruction counting with a fixed stride."""
    values = [(start + i * stride) & 0xFFFFFFFF for i in range(length)]
    return ValueTrace(name, [pc] * length, values)


def interleaved(*traces: ValueTrace) -> ValueTrace:
    """Round-robin interleave several traces (simulates a loop body)."""
    records: List[Tuple[int, int]] = []
    iterators = [iter(t.records()) for t in traces]
    live = list(iterators)
    while live:
        nxt = []
        for it in live:
            try:
                records.append(next(it))
                nxt.append(it)
            except StopIteration:
                pass
        live = nxt
    return ValueTrace("+".join(t.name for t in traces),
                      [pc for pc, _ in records], [v for _, v in records])


@pytest.fixture
def sawtooth():
    """The paper's running example: 0 1 2 3 4 5 6 repeated (section 2.4)."""
    return repeating_trace("sawtooth", 0x400000, list(range(7)), 40)
