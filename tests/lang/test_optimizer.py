"""Tests for the peephole optimizer."""

import pytest

from repro.lang.compiler import compile_source, compile_to_program
from repro.lang.optimizer import optimize_assembly
from repro.vm import Machine
from repro.workloads.registry import WORKLOADS


def optimize_lines(text):
    optimized, stats = optimize_assembly(text)
    return [l.strip() for l in optimized.splitlines() if l.strip()], stats


class TestPatterns:
    def test_store_load_forwarding_same_register(self):
        lines, stats = optimize_lines(
            "    sw t0, 4(fp)\n    lw t0, 4(fp)\n    jr ra\n")
        assert "lw t0, 4(fp)" not in lines
        assert "sw t0, 4(fp)" in lines
        assert stats.store_load_forwards == 1

    def test_store_load_forwarding_different_register(self):
        lines, _ = optimize_lines(
            "    sw t0, 4(fp)\n    lw t1, 4(fp)\n    jr ra\n")
        assert "move t1, t0" in lines
        assert "lw t1, 4(fp)" not in lines

    def test_store_load_different_slot_untouched(self):
        lines, stats = optimize_lines(
            "    sw t0, 4(fp)\n    lw t1, 8(fp)\n    jr ra\n")
        assert "lw t1, 8(fp)" in lines
        assert stats.store_load_forwards == 0

    def test_label_blocks_forwarding(self):
        lines, stats = optimize_lines(
            "    sw t0, 4(fp)\nL:\n    lw t1, 4(fp)\n    jr ra\n")
        assert "lw t1, 4(fp)" in lines
        assert stats.store_load_forwards == 0

    def test_self_move_dropped(self):
        lines, stats = optimize_lines("    move t0, t0\n    jr ra\n")
        assert "move t0, t0" not in lines
        assert stats.self_moves == 1

    def test_branch_to_next_dropped(self):
        lines, stats = optimize_lines(
            "    b .L1\n.L1:\n    jr ra\n")
        assert "b .L1" not in lines
        assert stats.branches_to_next == 1

    def test_branch_elsewhere_kept(self):
        lines, _ = optimize_lines(
            "    b .L2\n.L1:\n    nop\n.L2:\n    jr ra\n")
        assert "b .L2" in lines

    def test_dead_code_after_unconditional_branch(self):
        lines, stats = optimize_lines(
            "    b .Lx\n    li v0, 0\n    li v0, 1\n.Lx:\n    jr ra\n")
        assert "li v0, 0" not in lines and "li v0, 1" not in lines
        assert stats.dead_instructions == 2

    def test_code_after_label_is_live(self):
        lines, _ = optimize_lines(
            "    b .Lx\n.Lx:\n    li v0, 0\n    jr ra\n")
        assert "li v0, 0" in lines

    def test_push_pop_collapse(self):
        text = ("    addi sp, sp, -4\n    sw t0, 0(sp)\n"
                "    lw t1, 0(sp)\n    addi sp, sp, 4\n    jr ra\n")
        lines, stats = optimize_lines(text)
        assert "move t1, t0" in lines
        assert stats.push_pop_pairs == 1
        assert not any("sp, -4" in l for l in lines)

    def test_immediate_fusion_slt(self):
        lines, stats = optimize_lines(
            "    li t1, 50\n    slt t0, t0, t1\n    jr ra\n")
        assert "slti t0, t0, 50" in lines
        assert stats.immediates_fused == 1

    def test_immediate_fusion_commutative_add(self):
        lines, _ = optimize_lines(
            "    li t1, 7\n    add t0, t1, t2\n    jr ra\n")
        assert "addi t0, t2, 7" in lines

    def test_immediate_fusion_sub(self):
        lines, _ = optimize_lines(
            "    li t1, 3\n    sub t0, t0, t1\n    jr ra\n")
        assert "addi t0, t0, -3" in lines

    def test_no_fusion_when_too_wide(self):
        lines, stats = optimize_lines(
            "    li t1, 100000\n    slt t0, t0, t1\n    jr ra\n")
        assert "li t1, 100000" in lines
        assert stats.immediates_fused == 0

    def test_no_fusion_for_noncommutative_first_operand(self):
        lines, stats = optimize_lines(
            "    li t1, 5\n    slt t0, t1, t2\n    jr ra\n")
        assert "slt t0, t1, t2" in lines
        assert stats.immediates_fused == 0

    def test_register_cache_drops_reload(self):
        text = ("    lw t0, 4(fp)\n    sw t0, 8(fp)\n"
                "    lw t1, 4(fp)\n    jr ra\n")
        lines, stats = optimize_lines(text)
        assert "move t1, t0" in lines
        assert stats.cached_reloads == 1

    def test_register_cache_invalidated_by_write(self):
        text = ("    lw t0, 4(fp)\n    addi t0, t0, 1\n"
                "    lw t1, 4(fp)\n    jr ra\n")
        lines, stats = optimize_lines(text)
        assert "lw t1, 4(fp)" in lines
        assert stats.cached_reloads == 0

    def test_data_segment_untouched(self):
        text = "    jr ra\n.data\nx:\n    .word 5\n"
        optimized, _ = optimize_assembly(text)
        assert ".word 5" in optimized


class TestEndToEnd:
    @pytest.mark.parametrize("optimize", [1, 2])
    @pytest.mark.parametrize("name", ["li", "norm", "cc1", "perl",
                                      "compress", "vortex"])
    def test_optimized_workload_behaves_identically(self, name, optimize):
        source = (WORKLOADS[name].source
                  .replace("round < 40", "round < 1")
                  .replace("round < 30", "round < 1")
                  .replace("round < 400", "round < 2")
                  .replace("round < 3000", "round < 50")
                  .replace("words < 60000", "words < 500")
                  .replace("txn < 120000", "txn < 4000"))
        plain = Machine(compile_to_program(source))
        plain.run(80_000_000)
        optimized = Machine(compile_to_program(source, optimize=optimize))
        optimized.run(80_000_000)
        assert optimized.stdout == plain.stdout
        assert optimized.exit_code == plain.exit_code
        assert (optimized.instructions_executed
                < plain.instructions_executed)

    @pytest.mark.parametrize("optimize", [1, 2])
    def test_optimizer_reduces_static_code_size(self, optimize):
        source = WORKLOADS["norm"].source
        plain = compile_to_program(source)
        optimized = compile_to_program(source, optimize=optimize)
        assert len(optimized.instructions) < len(plain.instructions)

    def test_o2_promotes_induction_variable_to_register(self):
        # The flagship -O2 effect: a hot loop counter lives in an
        # s-register and is bumped with a single addi, no loads/stores.
        source = """
        int main() {
            int i;
            int s = 0;
            for (i = 0; i < 100; i = i + 1) s = s + i;
            return s;
        }
        """
        from repro.lang.compiler import compile_source
        assembly = compile_source(source, optimize=2)
        body = [l.strip() for l in assembly.splitlines()]
        assert any(l.startswith("addi s") for l in body)
        # No frame traffic inside the loop: between the for-label and
        # the back-branch there are no lw/sw at all.
        start = next(i for i, l in enumerate(body) if l.startswith(".Lfor"))
        end = next(i for i, l in enumerate(body)
                   if i > start and l.startswith("b .Lfor"))
        loop_body = body[start:end]
        assert not any(l.startswith(("lw", "sw")) for l in loop_body)

    def test_fixpoint_is_idempotent(self):
        assembly = compile_source(WORKLOADS["li"].source, optimize=1)
        again, stats = optimize_assembly(assembly)
        assert stats.total == 0
        assert again.strip() == assembly.strip()
