"""End-to-end MinC tests: compile, assemble, run, check output.

These are the compiler's conformance suite -- each test pins down the
observable behaviour of one language feature on the real VM.
"""

import pytest

from repro.lang import compile_to_program
from repro.vm import Machine


def run(source: str, max_instructions: int = 2_000_000) -> Machine:
    machine = Machine(compile_to_program(source))
    machine.run(max_instructions)
    return machine


def output_of(source: str) -> str:
    return run(source).stdout


class TestBasics:
    def test_exit_code_is_mains_return(self):
        assert run("int main() { return 42; }").exit_code == 42

    def test_fall_through_returns_zero(self):
        assert run("int main() { }").exit_code == 0

    def test_print_builtins(self):
        source = """
        int main() {
            print_str("x=");
            print_int(7);
            print_char('!');
            return 0;
        }
        """
        assert output_of(source) == "x=7!"

    def test_exit_builtin(self):
        machine = run("int main() { exit(3); return 9; }")
        assert machine.exit_code == 3

    def test_negative_numbers_print_signed(self):
        assert output_of("int main() { print_int(0 - 5); return 0; }") == "-5"


class TestArithmetic:
    CASES = [
        ("1 + 2 * 3", 7),
        ("(1 + 2) * 3", 9),
        ("10 - 4 - 3", 3),
        ("17 / 5", 3),
        ("-17 / 5", -3),       # C-style truncation toward zero
        ("17 % 5", 2),
        ("-17 % 5", -2),
        ("5 << 3", 40),
        ("-40 >> 3", -5),      # arithmetic right shift
        ("12 & 10", 8),
        ("12 | 10", 14),
        ("12 ^ 10", 6),
        ("~0", -1),
        ("-(3 + 4)", -7),
        ("!0", 1),
        ("!7", 0),
        ("3 < 4", 1),
        ("4 < 3", 0),
        ("3 <= 3", 1),
        ("3 >= 4", 0),
        ("4 > 3", 1),
        ("5 == 5", 1),
        ("5 != 5", 0),
        ("1 && 2", 1),
        ("1 && 0", 0),
        ("0 || 3", 1),
        ("0 || 0", 0),
    ]

    @pytest.mark.parametrize("expr,expected", CASES)
    def test_expression(self, expr, expected):
        source = f"int main() {{ print_int({expr}); return 0; }}"
        assert output_of(source) == str(expected)

    def test_wraparound(self):
        source = """
        int main() {
            int x = 2147483647;
            print_int(x + 1);
            return 0;
        }
        """
        assert output_of(source) == "-2147483648"

    def test_short_circuit_skips_side_effects(self):
        source = """
        int hit = 0;
        int touch() { hit = 1; return 1; }
        int main() {
            int r = 0 && touch();
            print_int(hit);
            r = 1 || touch();
            print_int(hit);
            return 0;
        }
        """
        assert output_of(source) == "00"


class TestControlFlow:
    def test_if_else(self):
        source = """
        int main() {
            if (3 > 2) print_int(1); else print_int(2);
            if (3 < 2) print_int(3); else print_int(4);
            return 0;
        }
        """
        assert output_of(source) == "14"

    def test_while_loop(self):
        source = """
        int main() {
            int i = 0;
            int s = 0;
            while (i < 5) { s = s + i; i = i + 1; }
            print_int(s);
            return 0;
        }
        """
        assert output_of(source) == "10"

    def test_for_loop(self):
        source = """
        int main() {
            int s = 0;
            int i;
            for (i = 1; i <= 10; i = i + 1) s = s + i;
            print_int(s);
            return 0;
        }
        """
        assert output_of(source) == "55"

    def test_break_and_continue(self):
        source = """
        int main() {
            int i;
            for (i = 0; i < 10; i = i + 1) {
                if (i == 3) continue;
                if (i == 6) break;
                print_int(i);
            }
            return 0;
        }
        """
        assert output_of(source) == "01245"

    def test_nested_loops_with_break(self):
        source = """
        int main() {
            int i; int j;
            for (i = 0; i < 3; i = i + 1) {
                for (j = 0; j < 3; j = j + 1) {
                    if (j > i) break;
                    print_int(j);
                }
            }
            return 0;
        }
        """
        assert output_of(source) == "001012"


class TestFunctions:
    def test_recursion(self):
        source = """
        int fact(int n) { if (n < 2) return 1; return n * fact(n - 1); }
        int main() { print_int(fact(6)); return 0; }
        """
        assert output_of(source) == "720"

    def test_mutual_recursion(self):
        source = """
        int even(int n) { if (n == 0) return 1; return odd(n - 1); }
        int odd(int n) { if (n == 0) return 0; return even(n - 1); }
        int main() { print_int(even(9)); print_int(odd(9)); return 0; }
        """
        assert output_of(source) == "01"

    def test_many_arguments(self):
        source = """
        int f(int a, int b, int c, int d, int e, int g) {
            return a + 10*b + 100*c + 1000*d + 10000*e + 100000*g;
        }
        int main() { print_int(f(1, 2, 3, 4, 5, 6)); return 0; }
        """
        assert output_of(source) == "654321"

    def test_call_in_expression_preserves_temps(self):
        # The live temp prefix must survive the call.
        source = """
        int five() { int t = 2 + 3; return t; }
        int main() { print_int(10 * (1 + five())); return 0; }
        """
        assert output_of(source) == "60"

    def test_nested_calls(self):
        source = """
        int add(int a, int b) { return a + b; }
        int main() { print_int(add(add(1, 2), add(3, add(4, 5)))); return 0; }
        """
        assert output_of(source) == "15"


class TestVariables:
    def test_global_scalar_updates(self):
        source = """
        int g = 7;
        int bump() { g = g + 1; return g; }
        int main() { bump(); bump(); print_int(g); return 0; }
        """
        assert output_of(source) == "9"

    def test_global_array_init(self):
        source = """
        int a[5] = {10, 20, 30};
        int main() {
            print_int(a[0] + a[1] + a[2] + a[3] + a[4]);
            return 0;
        }
        """
        assert output_of(source) == "60"

    def test_local_arrays(self):
        source = """
        int main() {
            int a[4];
            int i;
            for (i = 0; i < 4; i = i + 1) a[i] = i * 2;
            print_int(a[3]);
            return 0;
        }
        """
        assert output_of(source) == "6"

    def test_array_passed_by_reference(self):
        source = """
        int fill(int a[], int n) {
            int i;
            for (i = 0; i < n; i = i + 1) a[i] = i + 1;
            return 0;
        }
        int main() {
            int buf[3];
            fill(buf, 3);
            print_int(buf[0] + buf[1] + buf[2]);
            return 0;
        }
        """
        assert output_of(source) == "6"

    def test_shadowing(self):
        source = """
        int x = 1;
        int main() {
            int x = 2;
            { int x = 3; print_int(x); }
            print_int(x);
            return 0;
        }
        """
        assert output_of(source) == "32"

    def test_array_index_expressions(self):
        source = """
        int a[10];
        int main() {
            int i;
            for (i = 0; i < 10; i = i + 1) a[i] = i;
            print_int(a[a[3] + a[4]]);
            return 0;
        }
        """
        assert output_of(source) == "7"


class TestDeepExpressions:
    def test_expression_deeper_than_temp_pool(self):
        # Depth > 10 forces the spill path in the code generator.
        expr = "(1+(2+(3+(4+(5+(6+(7+(8+(9+(10+(11+(12+13))))))))))))"
        source = f"int main() {{ print_int({expr}); return 0; }}"
        assert output_of(source) == str(sum(range(1, 14)))

    def test_deep_expression_with_nonassociative_op(self):
        expr = "(100-(1-(2-(3-(4-(5-(6-(7-(8-(9-(10-(11-12))))))))))))"
        value = eval(expr)
        source = f"int main() {{ print_int({expr}); return 0; }}"
        assert output_of(source) == str(value)

    def test_deep_index_spill(self):
        source = """
        int a[3] = {5, 6, 7};
        int main() {
            print_int(a[(1+(1+(1+(1+(1+(1+(1+(1+(1+(1+(1+(1-10))))))))))))]);
            return 0;
        }
        """
        assert output_of(source) == "7"

    def test_call_inside_deep_expression(self):
        source = """
        int one() { return 1; }
        int main() {
            print_int((1+(2+(3+(4+(5+(6+(7+(8+(9+(10+one())))))))))));
            return 0;
        }
        """
        assert output_of(source) == "56"


class TestTracing:
    def test_loop_produces_stride_pattern(self):
        source = """
        int main() {
            int i;
            int s = 0;
            for (i = 0; i < 50; i = i + 1) s = s + i;
            return s;
        }
        """
        machine = Machine(compile_to_program(source), collect_trace=True)
        machine.run()
        # The addi incrementing i produces the stride pattern 1..50:
        # find a PC whose values form a stride-1 ramp of length 50.
        by_pc = {}
        for pc, value in machine.trace:
            by_pc.setdefault(pc, []).append(value)
        ramps = [
            values for values in by_pc.values()
            if len(values) == 50 and all(
                b - a == 1 for a, b in zip(values, values[1:]))
        ]
        assert ramps, "no stride-1 induction pattern found in the trace"
