"""Differential testing: MinC-on-VM vs a Python model of C semantics.

Hypothesis generates random expression trees; each is rendered to MinC,
compiled, assembled and executed on the R32 VM, and the printed result
is compared against an independent Python evaluator implementing
32-bit two's-complement C semantics (wrap-around arithmetic, truncating
division, arithmetic right shift, signed comparisons, short-circuit
logic).  Any divergence pinpoints a bug in the compiler, assembler or
VM -- three subsystems checked at once.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.lang import compile_to_program
from repro.vm import Machine

MASK = 0xFFFFFFFF
INT_MIN, INT_MAX = -(1 << 31), (1 << 31) - 1


def to_signed(value: int) -> int:
    value &= MASK
    return value - (1 << 32) if value >= (1 << 31) else value


# ---- expression trees ----
# Nodes: ("lit", v) | ("var", name) | ("un", op, node)
#      | ("bin", op, left, right) | ("shift", op, node, amount)
#      | ("divmod", op, node, divisor)

_VARS = ("a", "b", "c")
_WRAP_OPS = ("+", "-", "*", "&", "|", "^")
_CMP_OPS = ("<", "<=", ">", ">=", "==", "!=")
_LOGIC_OPS = ("&&", "||")


def _exprs():
    literals = st.builds(lambda v: ("lit", v),
                         st.integers(INT_MIN, INT_MAX))
    variables = st.builds(lambda n: ("var", n), st.sampled_from(_VARS))
    leaves = literals | variables

    def extend(children):
        unary = st.builds(lambda op, e: ("un", op, e),
                          st.sampled_from(("-", "!", "~")), children)
        binary = st.builds(lambda op, l, r: ("bin", op, l, r),
                           st.sampled_from(_WRAP_OPS + _CMP_OPS + _LOGIC_OPS),
                           children, children)
        shift = st.builds(lambda op, e, n: ("shift", op, e, n),
                          st.sampled_from(("<<", ">>")), children,
                          st.integers(0, 31))
        # Divisor: nonzero literal, excluding -1 (INT_MIN / -1 is UB
        # in C; both implementations would wrap, but staying inside
        # defined behaviour keeps the oracle honest).
        divisor = st.integers(-1000, 1000).filter(lambda d: d not in (0, -1))
        divmod_ = st.builds(lambda op, e, d: ("divmod", op, e, d),
                            st.sampled_from(("/", "%")), children, divisor)
        return unary | binary | shift | divmod_

    return st.recursive(leaves, extend, max_leaves=12)


def render(node) -> str:
    kind = node[0]
    if kind == "lit":
        # Large negatives render via unary minus on the positive image;
        # the parser folds it back into a literal.
        return f"({node[1]})"
    if kind == "var":
        return node[1]
    if kind == "un":
        return f"({node[1]}{render(node[2])})"
    if kind == "bin":
        return f"({render(node[2])} {node[1]} {render(node[3])})"
    if kind == "shift":
        return f"({render(node[2])} {node[1]} {node[3]})"
    if kind == "divmod":
        return f"({render(node[2])} {node[1]} ({node[3]}))"
    raise AssertionError(kind)


def evaluate(node, env) -> int:
    """The oracle: C-on-int32 semantics, values kept as signed ints."""
    kind = node[0]
    if kind == "lit":
        return to_signed(node[1])
    if kind == "var":
        return env[node[1]]
    if kind == "un":
        value = evaluate(node[2], env)
        if node[1] == "-":
            return to_signed(-value)
        if node[1] == "!":
            return 0 if value else 1
        return to_signed(~value)
    if kind == "bin":
        op = node[1]
        if op in _LOGIC_OPS:
            left = evaluate(node[2], env)
            if op == "&&":
                return 1 if (left and evaluate(node[3], env)) else 0
            return 1 if (left or evaluate(node[3], env)) else 0
        left = evaluate(node[2], env)
        right = evaluate(node[3], env)
        if op == "+":
            return to_signed(left + right)
        if op == "-":
            return to_signed(left - right)
        if op == "*":
            return to_signed(left * right)
        if op == "&":
            return to_signed(left & right)
        if op == "|":
            return to_signed(left | right)
        if op == "^":
            return to_signed(left ^ right)
        if op == "<":
            return 1 if left < right else 0
        if op == "<=":
            return 1 if left <= right else 0
        if op == ">":
            return 1 if left > right else 0
        if op == ">=":
            return 1 if left >= right else 0
        if op == "==":
            return 1 if left == right else 0
        return 1 if left != right else 0
    if kind == "shift":
        value = evaluate(node[2], env)
        if node[1] == "<<":
            return to_signed(value << node[3])
        return to_signed(value >> node[3])  # arithmetic: python on signed
    if kind == "divmod":
        dividend = evaluate(node[2], env)
        divisor = node[3]
        quotient = abs(dividend) // abs(divisor)
        if (dividend < 0) != (divisor < 0):
            quotient = -quotient
        if node[1] == "/":
            return to_signed(quotient)
        return to_signed(dividend - quotient * divisor)
    raise AssertionError(kind)


def run_minc_expression(expression: str, env, optimize: int = 0) -> int:
    source = f"""
    int main() {{
        int a = {env['a']};
        int b = {env['b']};
        int c = {env['c']};
        print_int({expression});
        return 0;
    }}
    """
    machine = Machine(compile_to_program(source, optimize=optimize))
    machine.run(2_000_000)
    return int(machine.stdout)


@pytest.mark.parametrize("optimize", [0, 1, 2])
@settings(max_examples=120, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(tree=_exprs(),
       a=st.integers(INT_MIN, INT_MAX),
       b=st.integers(INT_MIN, INT_MAX),
       c=st.integers(-100, 100))
def test_expression_semantics_match_c_model(optimize, tree, a, b, c):
    env = {"a": to_signed(a), "b": to_signed(b), "c": to_signed(c)}
    expected = evaluate(tree, env)
    actual = run_minc_expression(render(tree), env, optimize)
    assert actual == expected, f"{render(tree)} with {env} at O{optimize}"


@settings(max_examples=40, deadline=None)
@given(values=st.lists(st.integers(INT_MIN, INT_MAX), min_size=1,
                       max_size=8))
def test_array_roundtrip_semantics(values):
    """Writing then summing an array matches Python's wrapped sum."""
    stores = "\n".join(
        f"data[{i}] = {to_signed(v)};" for i, v in enumerate(values))
    source = f"""
    int data[8];
    int main() {{
        int i;
        int sum = 0;
        {stores}
        for (i = 0; i < {len(values)}; i = i + 1) sum = sum + data[i];
        print_int(sum);
        return 0;
    }}
    """
    machine = Machine(compile_to_program(source))
    machine.run(1_000_000)
    expected = 0
    for value in values:
        expected = to_signed(expected + to_signed(value))
    assert int(machine.stdout) == expected


@settings(max_examples=30, deadline=None)
@given(start=st.integers(-1000, 1000), step=st.integers(1, 50),
       trips=st.integers(0, 60))
def test_loop_semantics(start, step, trips):
    """A counted while loop terminates with the exact iteration count."""
    source = f"""
    int main() {{
        int i = {start};
        int count = 0;
        while (i < {start + step * trips}) {{
            i = i + {step};
            count = count + 1;
        }}
        print_int(count);
        return 0;
    }}
    """
    machine = Machine(compile_to_program(source))
    machine.run(1_000_000)
    assert int(machine.stdout) == trips
