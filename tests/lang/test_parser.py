"""Tests for the MinC parser."""

import pytest

from repro.lang import ast
from repro.lang.errors import CompileError
from repro.lang.parser import parse


def parse_expr(text):
    """Parse `text` as the returned expression of a tiny main()."""
    program = parse(f"int main() {{ return {text}; }}")
    return program.functions[0].body.statements[0].value


class TestTopLevel:
    def test_globals_and_functions(self):
        program = parse("""
        int g;
        int arr[10];
        int init = 5;
        int vals[3] = {1, 2, 3};
        int f(int a) { return a; }
        int main() { return 0; }
        """)
        assert [g.name for g in program.globals] == ["g", "arr", "init", "vals"]
        assert program.globals[1].array_size == 10
        assert program.globals[2].initializer == 5
        assert program.globals[3].array_init == [1, 2, 3]
        assert [f.name for f in program.functions] == ["f", "main"]

    def test_negative_global_initializer(self):
        program = parse("int g = -7; int main() { return 0; }")
        assert program.globals[0].initializer == -7

    def test_array_params(self):
        program = parse("int f(int a[], int n) { return n; } int main() { return 0; }")
        params = program.functions[0].params
        assert params[0].is_array and not params[1].is_array

    def test_void_function_and_void_params(self):
        program = parse("void f(void) { } int main() { return 0; }")
        assert program.functions[0].params == []

    def test_too_many_array_initializers(self):
        with pytest.raises(CompileError, match="too many"):
            parse("int a[2] = {1,2,3}; int main() { return 0; }")

    def test_zero_size_array_rejected(self):
        with pytest.raises(CompileError, match="positive size"):
            parse("int a[0]; int main() { return 0; }")


class TestStatements:
    def test_if_else_binding(self):
        program = parse("""
        int main() {
            if (1) if (2) return 1; else return 2;
            return 0;
        }
        """)
        outer = program.functions[0].body.statements[0]
        assert outer.else_body is None        # else binds to inner if
        assert outer.then_body.else_body is not None

    def test_for_with_empty_slots(self):
        program = parse("int main() { for (;;) break; return 0; }")
        loop = program.functions[0].body.statements[0]
        assert loop.init is None and loop.condition is None and loop.step is None

    def test_assignment_requires_lvalue(self):
        with pytest.raises(CompileError, match="lvalue"):
            parse("int main() { 1 = 2; }")

    def test_local_array_initializer_rejected(self):
        with pytest.raises(CompileError, match="not supported"):
            parse("int main() { int a[3] = 1; }")

    def test_declaration_with_initializer(self):
        program = parse("int main() { int x = 5; return x; }")
        decl = program.functions[0].body.statements[0]
        assert isinstance(decl, ast.DeclStmt)
        assert decl.initializer.value == 5


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.op == "+" and expr.right.op == "*"

    def test_precedence_shift_below_add(self):
        expr = parse_expr("1 << 2 + 3")
        assert expr.op == "<<" and expr.right.op == "+"

    def test_precedence_comparison_below_shift(self):
        expr = parse_expr("1 < 2 << 3")
        assert expr.op == "<" and expr.right.op == "<<"

    def test_logical_lowest(self):
        expr = parse_expr("1 == 2 && 3 | 4")
        assert expr.op == "&&"
        assert expr.left.op == "==" and expr.right.op == "|"

    def test_left_associativity(self):
        expr = parse_expr("10 - 4 - 3")
        assert expr.op == "-" and expr.left.op == "-"

    def test_unary_negation_folds_literals(self):
        expr = parse_expr("-5")
        assert isinstance(expr, ast.IntLit) and expr.value == -5

    def test_unary_chains(self):
        expr = parse_expr("!!x")
        assert expr.op == "!" and expr.operand.op == "!"

    def test_parentheses(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*" and expr.left.op == "+"

    def test_call_and_index_postfix(self):
        expr = parse_expr("f(a[1], 2)")
        assert isinstance(expr, ast.Call)
        assert isinstance(expr.args[0], ast.Index)

    def test_missing_paren_error(self):
        with pytest.raises(CompileError, match="expected"):
            parse("int main() { return (1 + 2; }")

    def test_expected_expression_error(self):
        with pytest.raises(CompileError, match="expected an expression"):
            parse("int main() { return *; }")
