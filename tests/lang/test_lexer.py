"""Tests for the MinC lexer."""

import pytest

from repro.lang.errors import CompileError
from repro.lang.lexer import tokenize


def kinds(source):
    return [(t.kind, t.value) for t in tokenize(source)[:-1]]


class TestTokenize:
    def test_keywords_vs_identifiers(self):
        assert kinds("int x while whilex") == [
            ("keyword", "int"), ("ident", "x"),
            ("keyword", "while"), ("ident", "whilex")]

    def test_numbers(self):
        assert kinds("0 42 0x1F") == [
            ("int_lit", 0), ("int_lit", 42), ("int_lit", 31)]

    def test_char_literals(self):
        assert kinds(r"'a' '\n' '\0' '\\'") == [
            ("int_lit", 97), ("int_lit", 10), ("int_lit", 0),
            ("int_lit", 92)]

    def test_string_literals(self):
        assert kinds(r'"hi\n"') == [("string_lit", "hi\n")]

    def test_multichar_symbols_greedy(self):
        assert kinds("a<<=b") == [
            ("ident", "a"), ("symbol", "<<"), ("symbol", "="), ("ident", "b")]
        assert kinds("x<=y") == [
            ("ident", "x"), ("symbol", "<="), ("ident", "y")]

    def test_comments(self):
        assert kinds("a // c\nb") == [("ident", "a"), ("ident", "b")]
        assert kinds("a /* x\ny */ b") == [("ident", "a"), ("ident", "b")]

    def test_line_numbers_cross_comments(self):
        tokens = tokenize("a /* x\ny */ b")
        assert tokens[0].line == 1 and tokens[1].line == 2

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"

    def test_errors(self):
        with pytest.raises(CompileError, match="unterminated block"):
            tokenize("/* oops")
        with pytest.raises(CompileError, match="unexpected character"):
            tokenize("@")
        with pytest.raises(CompileError, match="bad numeric"):
            tokenize("12ab")
        with pytest.raises(CompileError, match="unterminated string"):
            tokenize('"oops')
        with pytest.raises(CompileError, match="unknown escape"):
            tokenize(r"'\q'")
