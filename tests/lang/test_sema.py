"""Tests for MinC semantic analysis."""

import pytest

from repro.lang.errors import CompileError
from repro.lang.parser import parse
from repro.lang.sema import analyze


def check(source):
    return analyze(parse(source))


class TestDeclarations:
    def test_main_required(self):
        with pytest.raises(CompileError, match="no main"):
            check("int f() { return 0; }")

    def test_main_arity(self):
        with pytest.raises(CompileError, match="no parameters"):
            check("int main(int x) { return 0; }")

    def test_duplicate_global(self):
        with pytest.raises(CompileError, match="duplicate"):
            check("int x; int x; int main() { return 0; }")

    def test_global_function_collision(self):
        with pytest.raises(CompileError, match="duplicate"):
            check("int f; int f() { return 0; } int main() { return 0; }")

    def test_duplicate_param(self):
        with pytest.raises(CompileError, match="duplicate parameter"):
            check("int f(int a, int a) { return 0; } int main() { return 0; }")

    def test_duplicate_local_same_scope(self):
        with pytest.raises(CompileError, match="duplicate declaration"):
            check("int main() { int x; int x; return 0; }")

    def test_shadowing_in_nested_scope_allowed(self):
        analysis = check("""
        int x;
        int main() { int x; { int x; x = 1; } return x; }
        """)
        assert analysis.functions["main"].locals_size == 8

    def test_reserved_names(self):
        with pytest.raises(CompileError, match="reserved"):
            check("int print_int() { return 0; } int main() { return 0; }")


class TestNameResolution:
    def test_undeclared_variable(self):
        with pytest.raises(CompileError, match="undeclared variable"):
            check("int main() { return nope; }")

    def test_undeclared_function(self):
        with pytest.raises(CompileError, match="undeclared function"):
            check("int main() { return nope(); }")

    def test_forward_and_recursive_calls_allowed(self):
        check("""
        int even(int n) { if (n == 0) return 1; return odd(n - 1); }
        int odd(int n) { if (n == 0) return 0; return even(n - 1); }
        int main() { return even(10); }
        """)

    def test_block_scope_expires(self):
        with pytest.raises(CompileError, match="undeclared"):
            check("int main() { { int x; } return x; }")


class TestArrayRules:
    def test_array_as_value_rejected(self):
        with pytest.raises(CompileError, match="used as a value"):
            check("int a[4]; int main() { return a; }")

    def test_assign_to_array_name_rejected(self):
        with pytest.raises(CompileError, match="cannot assign to array"):
            check("int a[4]; int main() { a = 1; return 0; }")

    def test_indexing_scalar_rejected(self):
        with pytest.raises(CompileError, match="is not an array"):
            check("int x; int main() { return x[0]; }")

    def test_array_param_requires_array_argument(self):
        with pytest.raises(CompileError, match="must be an array name"):
            check("""
            int f(int a[]) { return a[0]; }
            int main() { return f(5); }
            """)

    def test_scalar_param_rejects_array_argument(self):
        with pytest.raises(CompileError, match="used as a value"):
            check("""
            int a[4];
            int f(int x) { return x; }
            int main() { return f(a); }
            """)

    def test_array_flows_through_param(self):
        check("""
        int a[4];
        int g(int b[]) { return b[1]; }
        int f(int b[]) { return g(b); }
        int main() { return f(a); }
        """)


class TestCallRules:
    def test_arity_mismatch(self):
        with pytest.raises(CompileError, match="expects 2 argument"):
            check("""
            int f(int a, int b) { return a; }
            int main() { return f(1); }
            """)

    def test_builtin_arity(self):
        with pytest.raises(CompileError, match="expects 1 argument"):
            check("int main() { print_int(1, 2); return 0; }")

    def test_builtin_not_a_value(self):
        with pytest.raises(CompileError, match="returns no value"):
            check("int main() { return print_int(1); }")

    def test_print_str_needs_literal(self):
        with pytest.raises(CompileError, match="string literal"):
            check("int x; int main() { print_str(x); return 0; }")

    def test_string_literal_only_in_print_str(self):
        with pytest.raises(CompileError, match="only valid in print_str"):
            check('int main() { return "hi"; }')


class TestControlRules:
    def test_break_outside_loop(self):
        with pytest.raises(CompileError, match="break outside"):
            check("int main() { break; }")

    def test_continue_outside_loop(self):
        with pytest.raises(CompileError, match="continue outside"):
            check("int main() { continue; }")

    def test_break_in_loop_ok(self):
        check("int main() { while (1) break; return 0; }")


class TestFrameLayout:
    def test_locals_get_distinct_offsets(self):
        analysis = check("""
        int main() { int a; int b; int c[3]; int d; return 0; }
        """)
        layout = analysis.functions["main"]
        # a@0 b@4 c@8..16 d@20 -> 24 bytes of locals
        assert layout.locals_size == 24
        assert layout.frame_size == 32

    def test_param_indices(self):
        analysis = check("""
        int f(int a, int b, int c) { return b; }
        int main() { return f(1, 2, 3); }
        """)
        params = analysis.functions["f"].params
        assert [p.offset for p in params] == [0, 1, 2]
