"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestWorkloadsCommand:
    def test_lists_suite(self):
        code, text = run_cli("workloads")
        assert code == 0
        for name in ("compress", "li", "vortex", "norm"):
            assert name in text


class TestTraceCommand:
    def test_stats_and_head(self):
        code, text = run_cli("trace", "li", "--limit", "500", "--head", "3")
        assert code == 0
        assert "500 predictions" in text
        assert text.count("0x0040") >= 3  # three records printed

    def test_save(self, tmp_path):
        path = tmp_path / "li.npz"
        code, text = run_cli("trace", "li", "--limit", "100",
                             "--out", str(path))
        assert code == 0 and path.exists()
        from repro.trace.trace import ValueTrace
        assert len(ValueTrace.load(path)) == 100


class TestRunCommand:
    def test_list(self):
        code, text = run_cli("run", "list")
        assert code == 0
        assert "fig10" in text and "table1" in text

    def test_run_experiment(self):
        code, text = run_cli("run", "table1", "--limit", "500")
        assert code == 0
        assert "Benchmarks" in text and "compress" in text


class TestPredictCommand:
    def test_dfcm_default(self):
        code, text = run_cli("predict", "li", "--limit", "2000")
        assert code == 0
        assert "dfcm" in text and "accuracy" in text

    @pytest.mark.parametrize("kind", ["lvp", "stride", "stride2d", "fcm"])
    def test_other_predictors(self, kind):
        code, text = run_cli("predict", "li", "--predictor", kind,
                             "--l1", "8", "--l2", "10", "--limit", "1000")
        assert code == 0
        assert "accuracy" in text


class TestCompareCommand:
    def test_lists_all_predictor_classes(self):
        code, text = run_cli("compare", "li", "--limit", "2000")
        assert code == 0
        for fragment in ("lvp_", "last4_", "stride_", "stride2d_",
                         "fcm_l1=", "dfcm_l1="):
            assert fragment in text
        assert "2000 predictions" in text


class TestEngineAndJobsFlags:
    def test_predict_engines_agree(self):
        outputs = set()
        for engine in ("scalar", "batch", "auto"):
            code, text = run_cli("predict", "li", "--limit", "2000",
                                 "--engine", engine, "--json")
            assert code == 0
            outputs.add(text)
        assert len(outputs) == 1  # bit-identical across engines

    def test_run_jobs_matches_serial(self):
        code_serial, serial = run_cli("run", "fig10", "--fast",
                                      "--limit", "2000")
        code_jobs, parallel = run_cli("run", "fig10", "--fast",
                                      "--limit", "2000", "--jobs", "4")
        assert code_serial == 0 and code_jobs == 0
        assert parallel == serial  # byte-identical figure output

    def test_compare_engine_flag(self):
        code, text = run_cli("compare", "li", "--limit", "1000",
                             "--engine", "batch")
        assert code == 0 and "dfcm_l1=" in text


class TestBenchCommand:
    def test_fast_bench_writes_report(self, tmp_path):
        path = tmp_path / "BENCH_predictors.json"
        code, text = run_cli("bench", "--fast", "--out", str(path))
        assert code == 0
        assert "guard" in text and "recorded only" in text
        report = json.loads(path.read_text())
        assert report["mode"] == "fast"
        assert {f["family"] for f in report["families"]} >= {"dfcm", "fcm"}

    def test_json_output_without_file(self):
        code, text = run_cli("bench", "--fast", "--out", "-", "--json")
        assert code == 0
        report = json.loads(text)
        assert report["guard"]["enforced"] is False

    def test_min_speedup_flag_sets_threshold(self):
        code, text = run_cli("bench", "--fast", "--out", "-", "--json",
                             "--min-speedup", "0.25")
        assert code == 0
        assert json.loads(text)["guard"]["min_speedup"] == 0.25


class TestTablesCommand:
    def test_human_report_with_verdict(self):
        code, text = run_cli("tables", "li", "--limit", "3000",
                             "--budgets", "32,64",
                             "--families", "fcm,dfcm")
        assert code == 0
        assert "table usage on li" in text
        assert "efficiency (correct per live bit)" in text
        assert "DFCM" in text  # verdict line, either direction

    def test_json_report(self, tmp_path):
        path = tmp_path / "tables.json"
        code, text = run_cli("tables", "li", "--limit", "3000",
                             "--budgets", "32", "--families", "fcm,dfcm",
                             "--json", "--out", str(path))
        assert code == 0
        report = json.loads(text)
        assert report["schema"] == 1
        assert report["command"] == "tables"
        assert report["dfcm_beats_fcm"] in (True, False)
        assert json.loads(path.read_text()) == report

    def test_scalar_engine_flag(self):
        code, text = run_cli("tables", "li", "--limit", "1000",
                             "--budgets", "32", "--families", "lvp",
                             "--json")
        assert code == 0
        code_s, text_s = run_cli("tables", "li", "--limit", "1000",
                                 "--budgets", "32", "--families", "lvp",
                                 "--engine", "scalar", "--json")
        assert code_s == 0
        batch = json.loads(text)["cells"][0]
        scalar = json.loads(text_s)["cells"][0]
        assert batch["efficiency"] == scalar["efficiency"]


class TestJsonSchema:
    """Every --json payload carries a schema integer (satellite 3)."""

    def test_predict(self):
        code, text = run_cli("predict", "li", "--limit", "1000", "--json")
        assert code == 0
        assert json.loads(text)["schema"] == 1

    def test_compare(self):
        code, text = run_cli("compare", "li", "--limit", "1000", "--json")
        assert code == 0
        assert json.loads(text)["schema"] == 1

    def test_bench(self):
        code, text = run_cli("bench", "--fast", "--out", "-", "--json")
        assert code == 0
        assert json.loads(text)["schema"] == 1


class TestErrorExits:
    """Expected failures exit 1 with an error: line on stderr."""

    def test_unknown_workload(self, capsys):
        code, _text = run_cli("predict", "no_such_benchmark")
        assert code == 1
        assert capsys.readouterr().err.startswith("error:")

    def test_bad_min_speedup_env(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_MIN_SPEEDUP", "banana")
        code, _text = run_cli("bench", "--fast", "--out", "-")
        assert code == 1
        assert "REPRO_BENCH_MIN_SPEEDUP" in capsys.readouterr().err

    def test_bad_repro_jobs_env(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "lots")
        code, _text = run_cli("run", "fig10", "--fast", "--limit", "500")
        assert code == 1
        assert "REPRO_JOBS" in capsys.readouterr().err

    def test_loadgen_connection_refused(self, capsys):
        code, _text = run_cli("loadgen", "li", "--port", "1",
                              "--limit", "100")
        assert code == 1
        assert capsys.readouterr().err.startswith("error:")

    def test_genuine_bug_is_not_downgraded(self, monkeypatch):
        import repro.cli as cli

        def broken(args, out):
            return {}["missing"]  # a plain KeyError, i.e. a bug

        monkeypatch.setitem(cli._COMMANDS, "workloads", broken)
        with pytest.raises(KeyError):
            run_cli("workloads")


class TestServeAndLoadgen:
    def test_loadgen_against_live_server(self, tmp_path):
        from repro.serve.server import ServerThread
        out_path = tmp_path / "loadgen.json"
        with ServerThread(shards=2, max_delay=0.001) as server:
            code, text = run_cli(
                "loadgen", "li", "--port", str(server.port),
                "--limit", "400", "--mode", "batched", "--block", "64",
                "--json", "--out", str(out_path))
        assert code == 0
        report = json.loads(text)
        assert report["schema"] == 1
        assert report["records"] == 400
        assert report["verify"]["matched"] is True
        assert json.loads(out_path.read_text()) == report

    def test_loadgen_windowed_human_output(self):
        from repro.serve.server import ServerThread
        with ServerThread(max_delay=0.001) as server:
            code, text = run_cli(
                "loadgen", "li", "--port", str(server.port),
                "--limit", "300", "--window", "4", "--mode", "batched",
                "--block", "50")
        assert code == 0
        assert "offline parity: match" in text

    def test_loadgen_speedup_guard_fails(self):
        from repro.serve.server import ServerThread
        with ServerThread(max_delay=0.001) as server:
            code, _text = run_cli(
                "loadgen", "li", "--port", str(server.port),
                "--limit", "200", "--min-speedup", "1000000")
        assert code == 1

    def test_serve_subprocess_sigterm_drain(self):
        import os
        import signal
        import subprocess
        import sys
        import time

        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--json",
             "--port", "0"],
            stdout=subprocess.PIPE, text=True, env=env)
        try:
            listening = json.loads(proc.stdout.readline())
            assert listening["event"] == "listening"
            assert listening["schema"] == 1
            assert listening["port"] > 0
            time.sleep(0.1)
            proc.send_signal(signal.SIGTERM)
            stdout, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 0
        drained = json.loads(stdout.strip().splitlines()[-1])
        assert drained["event"] == "drained"
        assert drained["stats"]["draining"] is True

    def test_serve_subprocess_obs_endpoint_and_slow_out(self, tmp_path):
        import os
        import signal
        import subprocess
        import sys
        import urllib.request

        slow_path = tmp_path / "slow.json"
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--json",
             "--port", "0", "--obs-port", "0",
             "--slow-out", str(slow_path)],
            stdout=subprocess.PIPE, text=True, env=env)
        try:
            listening = json.loads(proc.stdout.readline())
            assert listening["obs_port"] > 0
            base = f"http://127.0.0.1:{listening['obs_port']}"
            with urllib.request.urlopen(base + "/healthz",
                                        timeout=5) as resp:
                health = json.loads(resp.read())
            assert health["status"] == "ok"
            with urllib.request.urlopen(base + "/metrics",
                                        timeout=5) as resp:
                assert "version=0.0.4" in resp.headers["Content-Type"]
                metrics = resp.read().decode()
            assert "repro_serve_healthy 1" in metrics
            proc.send_signal(signal.SIGTERM)
            proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 0
        sample = json.loads(slow_path.read_text())
        assert sample["schema"] == 1
        assert "slowest" in sample


class TestTopCommand:
    def test_once_against_live_server(self):
        from repro.serve.server import ServerThread
        with ServerThread(max_delay=0, obs_port=0) as server:
            code, text = run_cli("top", str(server.obs_port), "--once")
        assert code == 0
        assert "status: OK" in text
        assert "\x1b" not in text  # plain text in --once mode

    def test_host_port_target_normalised(self):
        from repro.serve.server import ServerThread
        with ServerThread(max_delay=0, obs_port=0) as server:
            code, text = run_cli("top", f"127.0.0.1:{server.obs_port}",
                                 "--once")
        assert code == 0
        assert "status: OK" in text

    def test_dead_endpoint_exits_1(self):
        code, text = run_cli("top", "1", "--once", "--timeout", "0.5")
        assert code == 1
        assert "error: cannot poll" in text


class TestBenchHistoryCLI:
    def entry(self, batch):
        return json.dumps({
            "schema": 1, "timestamp": "2026-08-05T00:00:00+0000",
            "git_sha": "0" * 40, "mode": "fast",
            "families": {"dfcm": {"batch_records_per_sec": batch,
                                  "scalar_records_per_sec": batch // 10,
                                  "speedup": 10.0}},
            "suite_speedup": 10.0})

    def test_history_flag_appends(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        code, text = run_cli("bench", "--fast", "--out", "-",
                             "--history", "--history-file", str(path))
        assert code == 0
        assert "history: appended" in text
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert "dfcm" in json.loads(lines[0])["families"]

    def test_diff_passes_and_fails(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        path.write_text(self.entry(100_000) + "\n"
                        + self.entry(80_000) + "\n")
        code, text = run_cli("bench", "diff", "--history-file", str(path))
        assert code == 1  # -20% against the 10% default gate
        assert "REGRESSED" in text and "FAIL" in text
        code, text = run_cli("bench", "diff", "--history-file", str(path),
                             "--max-regression-pct", "30")
        assert code == 0
        assert "PASS" in text

    def test_diff_json_output(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        path.write_text(self.entry(100_000) + "\n"
                        + self.entry(99_000) + "\n")
        code, text = run_cli("bench", "diff", "--history-file", str(path),
                             "--json")
        assert code == 0
        diff = json.loads(text)
        assert diff["passed"] is True
        assert diff["families"][0]["delta_pct"] == -1.0

    def test_diff_without_enough_history_errors(self, tmp_path, capsys):
        path = tmp_path / "hist.jsonl"
        path.write_text(self.entry(100_000) + "\n")
        code, _text = run_cli("bench", "diff", "--history-file", str(path))
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith(f"error: {path}:")
        assert "at least 2" in err

    def test_diff_missing_history_file_is_clean_error(self, tmp_path,
                                                      capsys):
        path = tmp_path / "no_such_history.jsonl"
        code, _text = run_cli("bench", "diff", "--history-file", str(path))
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith(f"error: {path}:")
        assert "no bench history" in err

    def test_diff_family_mismatch_is_clean_error(self, tmp_path, capsys):
        # Grid changed between records: a clear error, not a traceback.
        path = tmp_path / "hist.jsonl"
        stride = self.entry(100_000).replace('"dfcm"', '"stride"')
        path.write_text(self.entry(100_000) + "\n" + stride + "\n")
        code, _text = run_cli("bench", "diff", "--history-file", str(path))
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "different families" in err
        assert "missing from the current run: dfcm" in err
        assert "not in the previous record: stride" in err


class TestStateCLI:
    """``repro state ls|verify|compact`` over a directory of arenas."""

    def seed_store(self, directory, session_id=3, corrupt=False):
        from repro.core.spec import DFCMSpec
        from repro.core.state import ArenaStore
        from repro.serve.session import Session

        spec = DFCMSpec(64, 256)
        session = Session(session_id, spec)
        session.step_block([0x400, 0x404, 0x400], [5, 9, 11])
        store = ArenaStore(directory)
        arrays, meta = session.snapshot()
        store.save(session_id, spec.to_config(), arrays, meta)
        if corrupt:
            path = store.path_for(session_id)
            raw = bytearray(path.read_bytes())
            raw[-1] ^= 0xFF
            path.write_bytes(raw)
        return store

    def test_ls_lists_sessions(self, tmp_path):
        self.seed_store(tmp_path, session_id=7)
        code, text = run_cli("state", "ls", "--dir", str(tmp_path))
        assert code == 0
        assert "dfcm" in text
        assert "7" in text
        code, text = run_cli("state", "ls", "--dir", str(tmp_path),
                             "--json")
        assert code == 0
        listing = json.loads(text)
        assert listing["schema"] == 1
        assert listing["arenas"][0]["session"] == 7
        assert listing["arenas"][0]["predictions"] == 3

    def test_verify_clean_store(self, tmp_path):
        self.seed_store(tmp_path)
        code, text = run_cli("state", "verify", "--dir", str(tmp_path))
        assert code == 0
        assert "checked 1 arenas, 0 defective, 0 stale" in text

    def test_verify_flags_defects_and_exits_1(self, tmp_path):
        self.seed_store(tmp_path, corrupt=True)
        code, text = run_cli("state", "verify", "--dir", str(tmp_path))
        assert code == 1
        assert "BAD" in text and "CRC mismatch" in text

    def test_verify_single_file(self, tmp_path):
        store = self.seed_store(tmp_path, session_id=4)
        path = store.path_for(4)
        code, text = run_cli("state", "verify", str(path))
        assert code == 0
        assert text.startswith("OK")
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(raw)
        code, text = run_cli("state", "verify", str(path))
        assert code == 1
        assert "CRC mismatch" in text

    def test_verify_missing_file_is_clean_error(self, tmp_path, capsys):
        path = tmp_path / "no_such.arena"
        code, _text = run_cli("state", "verify", str(path))
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith(f"error: {path}:")
        assert "no such arena file" in err

    def test_verify_empty_file_is_clean_error(self, tmp_path, capsys):
        path = tmp_path / "empty.arena"
        path.write_bytes(b"")
        code, _text = run_cli("state", "verify", str(path))
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith(f"error: {path}:")
        assert "empty arena file" in err

    def test_missing_directory_is_clean_error(self, tmp_path, capsys):
        missing = tmp_path / "nowhere"
        code, _text = run_cli("state", "ls", "--dir", str(missing))
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith(f"error: {missing}:")
        assert "no state directory" in err
        assert not missing.exists()  # inspection never creates it

    def test_compact_reclaims_litter(self, tmp_path):
        self.seed_store(tmp_path)
        (tmp_path / "stray.arena.tmp").write_bytes(b"half")
        (tmp_path / "old.arena.corrupt").write_bytes(b"bad")
        code, text = run_cli("state", "compact", "--dir", str(tmp_path))
        assert code == 0
        assert "removed 1 tmp, 1 quarantined, 0 defective" in text
        assert "kept 1 arenas" in text

    def test_default_dir_from_env(self, tmp_path, monkeypatch):
        self.seed_store(tmp_path)
        monkeypatch.setenv("REPRO_STATE_DIR", str(tmp_path))
        code, text = run_cli("state", "verify")
        assert code == 0
        assert "checked 1 arenas" in text


class TestCompileAndExec:
    SOURCE = """
    int main() {
        print_str("hi ");
        print_int(6 * 7);
        return 3;
    }
    """

    def test_compile(self, tmp_path):
        source = tmp_path / "prog.mc"
        source.write_text(self.SOURCE)
        code, text = run_cli("compile", str(source))
        assert code == 0
        assert ".text" in text and "jal main" in text

    def test_exec(self, tmp_path):
        source = tmp_path / "prog.mc"
        source.write_text(self.SOURCE)
        code, text = run_cli("exec", str(source))
        assert code == 3  # main's return value is the exit code
        assert "hi 42" in text
        assert "[exit 3" in text


class TestDisasmCommand:
    def test_head_limit(self):
        code, text = run_cli("disasm", "norm", "--head", "5")
        assert code == 0
        assert len([l for l in text.splitlines() if l.startswith("0x")]) == 5
        assert "instructions total" in text

    def test_full_listing(self):
        code, text = run_cli("disasm", "norm", "--head", "0")
        assert code == 0
        assert "instructions total" not in text


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
