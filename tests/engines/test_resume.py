"""Resumable (warm-start) batch stepping vs the scalar reference.

The contract under test: chunking a trace arbitrarily and threading the
state through ``step_block`` produces, for every supported family,
bit-identical per-record predictions AND bit-identical final tables to
stepping a stateful scalar predictor record by record.
"""

import numpy as np
import pytest

from repro.core.engines import run_spec
from repro.core.engines.resume import (RESUMABLE_FAMILIES, initial_state,
                                       step_block, supports_resume)
from repro.core.spec import (DFCMSpec, FCMSpec, HashSpec, LastValueSpec,
                             OracleHybridSpec, StrideSpec, TwoDeltaStrideSpec)

SPECS = [
    LastValueSpec(64),
    StrideSpec(64),
    TwoDeltaStrideSpec(64),
    FCMSpec(64, 256),
    DFCMSpec(64, 256),
    DFCMSpec(64, 256, stride_bits=8),
]


def random_trace(seed, n=800, pcs_pool=40):
    rng = np.random.default_rng(seed)
    pc_choices = rng.integers(0, 1 << 20, size=pcs_pool) << 2
    pcs = rng.choice(pc_choices, size=n)
    # A mix of strided, repeating and random values, so every update
    # rule (promotion, confidence gates, hash paths) gets exercised.
    values = np.where(
        rng.random(n) < 0.5,
        (pcs >> 2) * 3 + np.arange(n) * rng.integers(1, 5),
        rng.integers(0, 1 << 32, size=n),
    ) & 0xFFFFFFFF
    return pcs.astype(np.int64), values.astype(np.int64)


def scalar_reference(spec, pcs, values):
    predictor = spec.build()
    predicted = []
    for pc, value in zip(pcs.tolist(), values.tolist()):
        predicted.append(predictor.predict(pc))
        predictor.update(pc, value)
    return np.asarray(predicted, dtype=np.int64), spec.extract_state(predictor)


def chunks(n, boundaries):
    edges = [0] + sorted(boundaries) + [n]
    return [(edges[i], edges[i + 1]) for i in range(len(edges) - 1)]


class TestSupports:
    def test_supported_families(self):
        for spec in SPECS:
            assert supports_resume(spec)
        assert set(s.family for s in SPECS) <= set(RESUMABLE_FAMILIES)

    def test_hybrid_not_resumable(self):
        hybrid = OracleHybridSpec((LastValueSpec(64),))
        assert not supports_resume(hybrid)
        with pytest.raises(ValueError):
            initial_state(hybrid)

    def test_non_fs_hash_not_resumable(self):
        spec = FCMSpec(64, 256, HashSpec(8, "xor", order=2))
        assert not supports_resume(spec)

    def test_families_partition_the_spec_registry(self):
        # Every registered family must be explicitly classified: a new
        # family added to SPEC_FAMILIES without a resumability decision
        # would otherwise silently fall through supports_resume (and
        # the serve durability layer) as non-resumable.
        from repro.core.engines.resume import NON_RESUMABLE_FAMILIES
        from repro.core.spec import SPEC_FAMILIES
        resumable = set(RESUMABLE_FAMILIES)
        non_resumable = set(NON_RESUMABLE_FAMILIES)
        assert not resumable & non_resumable
        assert resumable | non_resumable == set(SPEC_FAMILIES)


class TestColdStartMatchesBatch:
    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
    def test_whole_trace_equals_batch_engine(self, spec):
        from repro.trace.trace import ValueTrace
        pcs, values = random_trace(1)
        trace = ValueTrace("t", pcs, values)
        outcome = run_spec(spec, trace, engine="batch", want_state=True)
        predicted, state = step_block(spec, initial_state(spec), pcs, values)
        assert int((predicted == values).sum()) == outcome.correct
        assert state.keys() == outcome.state.keys()
        for key in state:
            np.testing.assert_array_equal(state[key], outcome.state[key])


class TestChunkedParity:
    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
    @pytest.mark.parametrize("seed", [2, 3])
    def test_chunked_predictions_and_state(self, spec, seed):
        pcs, values = random_trace(seed)
        want_predicted, want_state = scalar_reference(spec, pcs, values)
        rng = np.random.default_rng(seed + 100)
        boundaries = sorted(rng.integers(1, len(pcs), size=7).tolist())
        state = initial_state(spec)
        got = []
        for lo, hi in chunks(len(pcs), boundaries):
            predicted, state = step_block(spec, state, pcs[lo:hi],
                                          values[lo:hi])
            got.append(predicted)
        np.testing.assert_array_equal(np.concatenate(got), want_predicted)
        assert state.keys() == want_state.keys()
        for key in state:
            np.testing.assert_array_equal(state[key], want_state[key])

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
    def test_single_record_chunks(self, spec):
        pcs, values = random_trace(7, n=120, pcs_pool=6)
        want_predicted, want_state = scalar_reference(spec, pcs, values)
        state = initial_state(spec)
        got = []
        for i in range(len(pcs)):
            predicted, state = step_block(spec, state, pcs[i:i + 1],
                                          values[i:i + 1])
            got.append(int(predicted[0]))
        np.testing.assert_array_equal(np.asarray(got, dtype=np.int64),
                                      want_predicted)
        for key in want_state:
            np.testing.assert_array_equal(state[key], want_state[key])


class TestStepBlockContract:
    def test_empty_block_returns_state_unchanged(self):
        spec = LastValueSpec(16)
        state = initial_state(spec)
        predicted, after = step_block(spec, state, np.zeros(0, np.int64),
                                      np.zeros(0, np.int64))
        assert len(predicted) == 0 and after is state

    def test_input_state_not_mutated(self):
        spec = DFCMSpec(16, 64)
        state = initial_state(spec)
        before = {k: v.copy() for k, v in state.items()}
        pcs, values = random_trace(11, n=200, pcs_pool=5)
        step_block(spec, state, pcs, values)
        for key in state:
            np.testing.assert_array_equal(state[key], before[key])

    def test_length_mismatch_raises(self):
        spec = LastValueSpec(16)
        with pytest.raises(ValueError):
            step_block(spec, initial_state(spec),
                       np.zeros(3, np.int64), np.zeros(2, np.int64))
