"""Fused-kernel internals: conf scan, stride paths, shared context.

The public equivalence suite (test_equivalence / test_resume) pins the
batch engine to the scalar reference from the outside; these tests aim
at the fused machinery itself -- the clipped-counter prefix scan, the
fixpoint vs rounds stride paths (including lane populations straddling
``_STRIDE_LANE_CUTOFF`` and blocks straddling the fixpoint size gate),
the shared group decomposition hybrids reuse, and the warm-start
threading of live tables through the large-block path.
"""

import numpy as np
import pytest

from repro.core.engines import BatchEngine, ScalarEngine
from repro.core.engines import batch as batch_mod
from repro.core.engines.batch import (_STRIDE_FIXPOINT_MIN_N,
                                      _STRIDE_LANE_CUTOFF, _Groups,
                                      _KernelContext, _conf_scan,
                                      _run_stride, _stride_fixpoint,
                                      _stride_rounds)
from repro.core.engines.resume import initial_state, step_block
from repro.core.spec import DFCMSpec, OracleHybridSpec, StrideSpec
from repro.trace.trace import ValueTrace


def naive_conf_scan(correct_sorted, keys_sorted, inc, dec, counter_max,
                    initial):
    """Reference: per-group saturating counter, one record at a time."""
    counters = {}
    out = np.empty(len(correct_sorted), dtype=np.int64)
    for i, (ok, key) in enumerate(zip(correct_sorted, keys_sorted)):
        key = int(key)
        if key not in counters:
            counters[key] = (int(initial[i])
                             if isinstance(initial, np.ndarray) else initial)
        value = counters[key] + (inc if ok else -dec)
        counters[key] = min(max(value, 0), counter_max)
        out[i] = counters[key]
    return out


class TestConfScan:
    @pytest.mark.parametrize("inc,dec,counter_bits", [
        (1, 2, 3),    # the paper's asymmetric default
        (1, 1, 2),
        (3, 1, 3),
        (2, 3, 8),    # forces the int16 triple dtype
        (1, 2, 15),   # forces the int32 triple dtype
        (100, 100, 3),  # steps far beyond the domain: clamp must be exact
    ])
    def test_matches_naive_scan(self, inc, dec, counter_bits):
        rng = np.random.default_rng(counter_bits * 100 + inc * 10 + dec)
        keys = rng.integers(0, 7, size=600)
        groups = _Groups(keys, 8)
        correct = rng.random(600) < 0.6
        counter_max = (1 << counter_bits) - 1
        got = _conf_scan(correct, groups.rank, inc, dec, counter_max, 0,
                         int(groups.group_sizes.max()))
        want = naive_conf_scan(correct, groups.keys_sorted, inc, dec,
                               counter_max, 0)
        np.testing.assert_array_equal(got, want)

    def test_warm_initial_array(self):
        rng = np.random.default_rng(42)
        keys = rng.integers(0, 16, size=400)
        groups = _Groups(keys, 16)
        correct = rng.random(400) < 0.5
        counter_max = 7
        table = rng.integers(0, counter_max + 1, size=16)
        initial = table[groups.keys_sorted]
        got = _conf_scan(correct, groups.rank, 1, 2, counter_max, initial,
                         int(groups.group_sizes.max()))
        want = naive_conf_scan(correct, groups.keys_sorted, 1, 2,
                               counter_max, initial)
        np.testing.assert_array_equal(got, want)

    def test_single_group_long_run(self):
        # One group longer than any doubling step boundary.
        rng = np.random.default_rng(3)
        n = 1000
        groups = _Groups(np.zeros(n, dtype=np.int64), 1)
        correct = rng.random(n) < 0.5
        got = _conf_scan(correct, groups.rank, 1, 2, 7, 0, n)
        want = naive_conf_scan(correct, groups.keys_sorted, 1, 2, 7, 0)
        np.testing.assert_array_equal(got, want)


def straddling_trace(seed, n, pcs_pool=40):
    """Lane sizes from 1 to hundreds: some above the lane cutoff, some
    below it, with strided/noisy value phases per pc."""
    rng = np.random.default_rng(seed)
    # Zipf-flavoured pc draw: a few very hot pcs, a long cold tail.
    weights = 1.0 / np.arange(1, pcs_pool + 1)
    pcs = (rng.choice(pcs_pool, size=n, p=weights / weights.sum())
           * 4 + 0x1000)
    values = np.where(
        rng.random(n) < 0.6,
        (pcs >> 2) * 7 + np.arange(n) * ((pcs >> 2) % 5 + 1),
        rng.integers(0, 1 << 32, size=n),
    ) & 0xFFFFFFFF
    return pcs.astype(np.int64), values.astype(np.int64)


SPEC = StrideSpec(64)


class TestStridePaths:
    def assert_same_result(self, left, right):
        l_pred, l_correct, l_tables = left
        r_pred, r_correct, r_tables = right
        np.testing.assert_array_equal(l_pred, r_pred)
        np.testing.assert_array_equal(l_correct, r_correct)
        assert l_tables.keys() == r_tables.keys()
        for key in l_tables:
            np.testing.assert_array_equal(l_tables[key], r_tables[key],
                                          err_msg=key)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_fixpoint_equals_rounds_cold(self, seed):
        pcs, values = straddling_trace(seed, 4000)
        ctx = _KernelContext(pcs, values)
        groups, values_sorted = ctx.pc_groups(SPEC.entries)
        assert groups.group_sizes.min() < _STRIDE_LANE_CUTOFF
        assert groups.group_sizes.max() > _STRIDE_LANE_CUTOFF
        fixpoint = _stride_fixpoint(SPEC, groups, values_sorted, None, True)
        assert fixpoint is not None, "fixpoint failed to converge"
        rounds = _stride_rounds(SPEC, groups, values_sorted, None, True)
        self.assert_same_result(fixpoint, rounds)

    def test_fixpoint_equals_rounds_warm(self):
        pcs, values = straddling_trace(7, 3000)
        rng = np.random.default_rng(7)
        state = {
            "last": rng.integers(0, 1 << 32, size=SPEC.entries),
            "stride": rng.integers(0, 1 << 32, size=SPEC.entries),
            "conf": rng.integers(0, 8, size=SPEC.entries),
        }
        ctx = _KernelContext(pcs, values)
        groups, values_sorted = ctx.pc_groups(SPEC.entries)
        fixpoint = _stride_fixpoint(SPEC, groups, values_sorted, state, True)
        assert fixpoint is not None
        rounds = _stride_rounds(SPEC, groups, values_sorted, state, True)
        self.assert_same_result(fixpoint, rounds)

    @pytest.mark.parametrize("n", [_STRIDE_FIXPOINT_MIN_N - 1,
                                   _STRIDE_FIXPOINT_MIN_N,
                                   3 * _STRIDE_FIXPOINT_MIN_N])
    def test_both_size_regimes_match_scalar(self, n):
        # Below the gate the rounds path runs; at and above it the
        # fixpoint path does.  Either way: scalar counts AND tables.
        pcs, values = straddling_trace(11, n)
        trace = ValueTrace(f"straddle{n}", pcs, values)
        scalar = ScalarEngine().run(SPEC, trace, want_state=True)
        batch = BatchEngine().run(SPEC, trace, want_state=True)
        assert (batch.correct, batch.total) == (scalar.correct, scalar.total)
        for key in scalar.state:
            np.testing.assert_array_equal(scalar.state[key],
                                          batch.state[key], err_msg=key)

    def test_nonconvergence_falls_back_to_rounds(self, monkeypatch):
        # With the iteration budget forced to 1 the fixpoint can never
        # verify, so _run_stride must hand the block to the rounds path
        # and still produce the exact answer.
        pcs, values = straddling_trace(13, 4000)
        ctx = _KernelContext(pcs, values)
        want = _run_stride(SPEC, ctx, None, True)
        monkeypatch.setattr(batch_mod, "_STRIDE_MAX_ITERS", 1)
        groups, values_sorted = ctx.pc_groups(SPEC.entries)
        assert _stride_fixpoint(SPEC, groups, values_sorted, None,
                                True) is None
        got = _run_stride(SPEC, ctx, None, True)
        self.assert_same_result(want, got)

    def test_fixpoint_converges_in_few_iterations(self, monkeypatch):
        # The iteration count is a perf property worth pinning: the
        # observed workloads settle in two or three passes, and a
        # regression to O(group length) passes would show up here.
        calls = []
        real = batch_mod._conf_scan

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(batch_mod, "_conf_scan", counting)
        pcs, values = straddling_trace(17, 8000)
        ctx = _KernelContext(pcs, values)
        groups, values_sorted = ctx.pc_groups(SPEC.entries)
        assert _stride_fixpoint(SPEC, groups, values_sorted, None,
                                False) is not None
        assert len(calls) <= 6


class TestSharedContext:
    def test_pc_groups_memoised_per_entries(self):
        pcs, values = straddling_trace(1, 500)
        ctx = _KernelContext(pcs, values)
        assert ctx.pc_groups(64) is ctx.pc_groups(64)
        assert ctx.pc_groups(64) is not ctx.pc_groups(128)

    def test_hybrid_components_share_one_decomposition(self):
        # Stride(64) and DFCM(l1=64) key level 1 identically, so the
        # fused hybrid must build exactly one argsort for both.
        spec = OracleHybridSpec((StrideSpec(64), DFCMSpec(64, 256)))
        pcs, values = straddling_trace(2, 600)
        ctx = _KernelContext(pcs, values)
        batch_mod._KERNELS["oracle_hybrid"](spec, ctx, None, False)
        assert len(ctx._pc_groups) == 1

    def test_mixed_entry_hybrid_still_exact(self):
        # Components with different table sizes get distinct
        # decompositions -- sharing must never conflate them.
        spec = OracleHybridSpec((StrideSpec(32), DFCMSpec(128, 256)))
        pcs, values = straddling_trace(3, 2600)
        trace = ValueTrace("mixed", pcs, values)
        scalar = ScalarEngine().run(spec, trace, want_state=True)
        batch = BatchEngine().run(spec, trace, want_state=True)
        assert (batch.correct, batch.total) == (scalar.correct, scalar.total)
        for key in scalar.state:
            np.testing.assert_array_equal(scalar.state[key],
                                          batch.state[key], err_msg=key)

    @pytest.mark.parametrize("spec", [
        StrideSpec(64),
        DFCMSpec(64, 256),
        OracleHybridSpec((StrideSpec(64), DFCMSpec(64, 256))),
    ], ids=lambda s: s.family)
    def test_want_predicted_false_same_counts_and_tables(self, spec):
        pcs, values = straddling_trace(5, 3000)
        with_pred = batch_mod._KERNELS[spec.family](
            spec, _KernelContext(pcs, values), None, want_predicted=True)
        without = batch_mod._KERNELS[spec.family](
            spec, _KernelContext(pcs, values), None, want_predicted=False)
        assert with_pred[0] is not None
        assert without[0] is None
        np.testing.assert_array_equal(with_pred[1], without[1])
        for key in with_pred[2]:
            np.testing.assert_array_equal(with_pred[2][key], without[2][key])


class TestFixpointWarmStart:
    """Resume round trips whose blocks cross the fixpoint size gate."""

    @pytest.mark.parametrize("boundaries", [
        [2500],                  # warm fixpoint block after a cold one
        [1000],                  # cold rounds, then warm fixpoint
        [3000, 3500, 4990],      # fixpoint, rounds, rounds mix
    ])
    def test_chunked_equals_whole(self, boundaries):
        spec = StrideSpec(64)
        pcs, values = straddling_trace(23, 5000)
        whole, want_state = step_block(spec, initial_state(spec), pcs,
                                       values)
        state = initial_state(spec)
        edges = [0] + boundaries + [len(pcs)]
        got = []
        for lo, hi in zip(edges, edges[1:]):
            predicted, state = step_block(spec, state, pcs[lo:hi],
                                          values[lo:hi])
            got.append(predicted)
        np.testing.assert_array_equal(np.concatenate(got), whole)
        for key in want_state:
            np.testing.assert_array_equal(state[key], want_state[key])

    def test_scalar_reference_parity(self):
        spec = StrideSpec(64)
        pcs, values = straddling_trace(29, 2600)
        predictor = spec.build()
        want = []
        for pc, value in zip(pcs.tolist(), values.tolist()):
            want.append(predictor.predict(pc))
            predictor.update(pc, value)
        predicted, state = step_block(spec, initial_state(spec), pcs,
                                      values)
        np.testing.assert_array_equal(predicted,
                                      np.asarray(want, dtype=np.int64))
        want_state = spec.extract_state(predictor)
        for key in want_state:
            np.testing.assert_array_equal(state[key], want_state[key])
