"""Scalar/batch engine equivalence: counts and table state.

The batch engine's contract is *bit-identical* replay: for every
supported spec and any trace, it must return the same correct/total
counts and the same canonical table state as the scalar reference
loop.  The traces here mix stride phases, repeating patterns, value
noise and pc aliasing so the kernels' grouping logic is exercised
across level-1 collisions and mid-trace pattern changes.
"""

import numpy as np
import pytest

from repro.core.engines import BatchEngine, ScalarEngine, run_spec
from repro.core.spec import (DFCMSpec, DelayedSpec, FCMSpec, HashSpec,
                             LastNSpec, LastValueSpec, MetaHybridSpec,
                             OracleHybridSpec, StrideSpec,
                             TwoDeltaStrideSpec)
from repro.trace.trace import ValueTrace
from tests.conftest import interleaved, repeating_trace, stride_trace

BATCH_SPECS = [
    LastValueSpec(64),
    StrideSpec(64),
    StrideSpec(64, counter_bits=2, counter_inc=1, counter_dec=1),
    TwoDeltaStrideSpec(64),
    FCMSpec(256, 64),
    FCMSpec(256, 64, hash=HashSpec(6, "fs", order=2, shift=3)),
    DFCMSpec(256, 64),
    DFCMSpec(256, 64, stride_bits=8),
    OracleHybridSpec((StrideSpec(64), DFCMSpec(256, 64))),
]

FALLBACK_SPECS = [
    LastNSpec(64),
    MetaHybridSpec((StrideSpec(64), FCMSpec(256, 64)), 64),
    DelayedSpec(DFCMSpec(256, 64), 8),
    FCMSpec(256, 64, hash=HashSpec(6, "xor", order=3)),
]


def random_trace(seed: int, length: int = 3000,
                 static_pcs: int = 300) -> ValueTrace:
    """Pseudo-random mixed workload: strided, repeating and noisy pcs.

    ``static_pcs`` above the level-1 entry count forces index aliasing.
    """
    rng = np.random.default_rng(seed)
    pcs = rng.integers(0, static_pcs, size=length) * 4 + 0x400000
    kind = pcs % 3
    noise = rng.integers(0, 50, size=length)
    values = np.where(kind == 0, pcs * 3 + np.arange(length),   # strided
                      np.where(kind == 1, noise % 7,            # repeating
                               noise * 2654435761))             # noisy
    return ValueTrace(f"rand{seed}", pcs & 0xFFFFFFFF,
                      values & 0xFFFFFFFF)


def structured_trace() -> ValueTrace:
    return interleaved(
        stride_trace("s1", 0x1000, 0, 3, 400),
        repeating_trace("r1", 0x2000, [5, 9, 2, 7], 100),
        stride_trace("s2", 0x1000, 17, -2, 400),  # same pc, new phase
    )


TRACES = [random_trace(1), random_trace(2), structured_trace()]


class TestBatchEquivalence:
    @pytest.mark.parametrize("spec", BATCH_SPECS, ids=lambda s: s.name)
    @pytest.mark.parametrize("trace", TRACES, ids=lambda t: t.name)
    def test_counts_and_state_match_scalar(self, spec, trace):
        scalar = ScalarEngine().run(spec, trace, want_state=True)
        batch = BatchEngine().run(spec, trace, want_state=True)
        assert batch.engine == "batch"
        assert (batch.correct, batch.total) == (scalar.correct,
                                                scalar.total)
        assert scalar.state.keys() == batch.state.keys()
        for key in scalar.state:
            np.testing.assert_array_equal(scalar.state[key],
                                          batch.state[key],
                                          err_msg=f"{spec.name}:{key}")

    @pytest.mark.parametrize("spec", BATCH_SPECS, ids=lambda s: s.name)
    def test_empty_trace(self, spec):
        empty = ValueTrace("empty", [], [])
        outcome = BatchEngine().run(spec, empty)
        assert (outcome.correct, outcome.total) == (0, 0)


class TestScalarFallback:
    @pytest.mark.parametrize("spec", FALLBACK_SPECS, ids=lambda s: s.name)
    def test_unsupported_family_falls_back(self, spec):
        trace = TRACES[0]
        assert not BatchEngine.supports(spec)
        scalar = ScalarEngine().run(spec, trace)
        batch = BatchEngine().run(spec, trace)
        assert batch.engine == "scalar"  # labelled with what actually ran
        assert (batch.correct, batch.total) == (scalar.correct,
                                                scalar.total)


class TestRunSpec:
    def test_engine_pinning(self):
        spec = DFCMSpec(256, 64)
        trace = TRACES[0]
        scalar = run_spec(spec, trace, "scalar")
        batch = run_spec(spec, trace, "batch")
        auto = run_spec(spec, trace, "auto")
        assert scalar.engine == "scalar"
        assert batch.engine == "batch"
        assert auto.engine == "batch"  # supported family routes to batch
        assert scalar.correct == batch.correct == auto.correct

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            run_spec(DFCMSpec(256, 64), TRACES[0], "gpu")
