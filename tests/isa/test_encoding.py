"""Tests for binary instruction encode/decode."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.encoding import DecodeError, decode, encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import MNEMONICS, InstrFormat

reg = st.integers(min_value=0, max_value=31)
shamt = st.integers(min_value=0, max_value=31)
imm16 = st.integers(min_value=-0x8000, max_value=0x7FFF)
target26 = st.integers(min_value=0, max_value=(1 << 26) - 1)

_R_MNEMS = sorted(m for m, s in MNEMONICS.items() if s.format is InstrFormat.R)
_I_MNEMS = sorted(m for m, s in MNEMONICS.items() if s.format is InstrFormat.I)
_J_MNEMS = sorted(m for m, s in MNEMONICS.items() if s.format is InstrFormat.J)


class TestKnownEncodings:
    def test_add(self):
        # add t0, t1, t2: op 0, rs=9, rt=10, rd=8, funct 0x20
        word = encode(Instruction("add", rd=8, rs=9, rt=10))
        assert word == (9 << 21) | (10 << 16) | (8 << 11) | 0x20

    def test_addi_negative_imm(self):
        word = encode(Instruction("addi", rt=8, rs=8, imm=-1))
        assert word & 0xFFFF == 0xFFFF

    def test_j(self):
        word = encode(Instruction("j", target=0x100000))
        assert word >> 26 == 0x02
        assert word & 0x3FFFFFF == 0x100000

    def test_syscall(self):
        assert encode(Instruction("syscall")) == 0x0C


class TestDecodeErrors:
    def test_word_out_of_range(self):
        with pytest.raises(DecodeError):
            decode(1 << 32)
        with pytest.raises(DecodeError):
            decode(-1)

    def test_unknown_funct(self):
        with pytest.raises(DecodeError, match="funct"):
            decode(0x3F)  # R-format funct 0x3F unused

    def test_unknown_opcode(self):
        with pytest.raises(DecodeError, match="opcode"):
            decode(0x3F << 26)


class TestRoundTrip:
    @given(st.sampled_from(_R_MNEMS), reg, reg, reg, shamt)
    def test_r_format(self, mnemonic, rd, rs, rt, sh):
        instr = Instruction(mnemonic, rd=rd, rs=rs, rt=rt, shamt=sh)
        assert decode(encode(instr)) == instr

    @given(st.sampled_from(_I_MNEMS), reg, reg, imm16)
    def test_i_format(self, mnemonic, rs, rt, imm):
        instr = Instruction(mnemonic, rs=rs, rt=rt, imm=imm)
        assert decode(encode(instr)) == instr

    @given(st.sampled_from(_J_MNEMS), target26)
    def test_j_format(self, mnemonic, target):
        instr = Instruction(mnemonic, target=target)
        assert decode(encode(instr)) == instr

    @given(st.sampled_from(sorted(MNEMONICS)), reg, reg, reg, shamt, imm16,
           target26)
    def test_encode_always_32_bits(self, mnemonic, rd, rs, rt, sh, imm, tgt):
        instr = Instruction(mnemonic, rd=rd, rs=rs, rt=rt, shamt=sh,
                            imm=imm, target=tgt)
        assert 0 <= encode(instr) < (1 << 32)


class TestInstructionValidation:
    def test_register_fields_bounded(self):
        with pytest.raises(ValueError):
            Instruction("add", rd=32)
        with pytest.raises(ValueError):
            Instruction("add", rs=-1)

    def test_imm_bounded(self):
        with pytest.raises(ValueError):
            Instruction("addi", imm=0x10000)
        with pytest.raises(ValueError):
            Instruction("addi", imm=-0x8001)

    def test_target_bounded(self):
        with pytest.raises(ValueError):
            Instruction("j", target=1 << 26)


class TestDestRegister:
    def test_alu_dest_is_rd(self):
        assert Instruction("add", rd=8, rs=9, rt=10).dest_register == 8

    def test_load_dest_is_rt(self):
        assert Instruction("lw", rt=5, rs=29, imm=4).dest_register == 5

    def test_zero_dest_is_none(self):
        assert Instruction("add", rd=0, rs=9, rt=10).dest_register is None

    def test_branches_and_jumps_produce_nothing(self):
        for mnemonic in ("beq", "bne", "j", "jal", "jr", "syscall"):
            instr = Instruction(mnemonic)
            assert instr.dest_register is None

    def test_stores_produce_nothing(self):
        assert Instruction("sw", rt=5, rs=29).dest_register is None

    def test_is_branch_or_jump(self):
        assert Instruction("beq").is_branch_or_jump
        assert Instruction("jal").is_branch_or_jump
        assert Instruction("jr").is_branch_or_jump
        assert not Instruction("add").is_branch_or_jump
        assert not Instruction("lw").is_branch_or_jump


class TestDisassembly:
    def test_text_forms(self):
        assert Instruction("add", rd=8, rs=9, rt=10).text() == "add t0, t1, t2"
        assert Instruction("addi", rt=8, rs=0, imm=5).text() == "addi t0, zero, 5"
        assert Instruction("lw", rt=4, rs=29, imm=8).text() == "lw a0, 8(sp)"
        assert Instruction("syscall").text() == "syscall"
