"""Tests for the opcode table metadata."""

import pytest

from repro.isa.opcodes import (BRANCH_MNEMONICS, JUMP_MNEMONICS,
                               LOAD_MNEMONICS, MNEMONICS, STORE_MNEMONICS,
                               InstrFormat, spec_for)


class TestTableConsistency:
    def test_encodings_are_unique(self):
        r_functs = [s.funct for s in MNEMONICS.values()
                    if s.format is InstrFormat.R]
        assert len(r_functs) == len(set(r_functs))
        other_opcodes = [s.opcode for s in MNEMONICS.values()
                        if s.format is not InstrFormat.R]
        assert len(other_opcodes) == len(set(other_opcodes))
        assert all(op != 0 for op in other_opcodes)  # 0 is the R space

    def test_fields_fit_their_widths(self):
        for spec in MNEMONICS.values():
            assert 0 <= spec.opcode < 64
            assert 0 <= spec.funct < 64

    def test_category_sets_are_disjoint(self):
        assert not (BRANCH_MNEMONICS & JUMP_MNEMONICS)
        assert not (LOAD_MNEMONICS & STORE_MNEMONICS)
        for name in BRANCH_MNEMONICS | JUMP_MNEMONICS | LOAD_MNEMONICS | STORE_MNEMONICS:
            assert name in MNEMONICS

    def test_every_spec_has_known_operand_shape(self):
        known = {"rd,rs,rt", "rd,rt,sh", "rt,rs,imm", "rt,imm",
                 "rt,off(rs)", "rs,rt,label", "rs,label", "label",
                 "rs", "rd,rs", ""}
        for spec in MNEMONICS.values():
            assert spec.operands in known, spec.mnemonic


class TestPredictionSet:
    """The writes_register flag defines what the paper predicts."""

    def test_alu_and_loads_are_producers(self):
        for name in ("add", "addi", "mul", "slt", "lui", "lw", "lbu"):
            assert spec_for(name).writes_register

    def test_control_flow_and_stores_are_not(self):
        for name in ("beq", "bne", "j", "jal", "jr", "jalr", "sw", "sb",
                     "syscall"):
            assert not spec_for(name).writes_register

    def test_jal_excluded_despite_writing_ra(self):
        # The paper: "value prediction was not performed for branch and
        # jump instructions" -- jal writes $ra but is a jump.
        assert not spec_for("jal").writes_register


class TestLookup:
    def test_case_insensitive(self):
        assert spec_for("ADD") is spec_for("add")

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown mnemonic"):
            spec_for("vfmadd231ps")
