"""Tests for the R32 register file naming."""

import pytest

from repro.isa.registers import (REGISTER_NAMES, REGISTER_NUMBERS,
                                 register_number)


class TestRegisters:
    def test_thirty_two_names(self):
        assert len(REGISTER_NAMES) == 32
        assert len(set(REGISTER_NAMES)) == 32

    def test_abi_positions(self):
        assert REGISTER_NAMES[0] == "zero"
        assert REGISTER_NAMES[2] == "v0"
        assert REGISTER_NAMES[4] == "a0"
        assert REGISTER_NAMES[29] == "sp"
        assert REGISTER_NAMES[31] == "ra"

    def test_lookup_spellings(self):
        assert register_number("t0") == 8
        assert register_number("$t0") == 8
        assert register_number("r8") == 8
        assert register_number("$8") == 8
        assert register_number("T0") == 8  # case-insensitive

    def test_fp_aliases(self):
        assert register_number("fp") == 30
        assert register_number("s8") == 30

    def test_unknown_register(self):
        with pytest.raises(ValueError, match="unknown register"):
            register_number("t99")

    def test_every_number_spelling_roundtrips(self):
        for num in range(32):
            assert register_number(f"r{num}") == num
            assert register_number(f"${num}") == num
            assert REGISTER_NUMBERS[REGISTER_NAMES[num]] == num
