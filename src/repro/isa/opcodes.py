"""R32 opcode table: formats, encodings and operand shapes.

Every mnemonic has an :class:`InstrSpec` describing how it is encoded
(R/I/J format, opcode and funct fields) and how its assembly operands
map onto the instruction fields (``operands`` below).  The VM keys its
handler table on the mnemonic, so this module is the single source of
truth shared by the assembler, the encoder and the simulator.

Operand shapes (the ``operands`` field):

- ``"rd,rs,rt"``    three-register ALU (add rd, rs, rt)
- ``"rd,rt,sh"``    shift by immediate (sll rd, rt, shamt)
- ``"rt,rs,imm"``   immediate ALU (addi rt, rs, imm)
- ``"rt,imm"``      lui
- ``"rt,off(rs)"``  loads and stores
- ``"rs,rt,label"`` compare-and-branch (beq/bne)
- ``"rs,label"``    compare-with-zero branch (blez/bgtz/bltz/bgez)
- ``"label"``       j/jal
- ``"rs"``          jr
- ``"rd,rs"``       jalr
- ``""``            syscall
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

__all__ = ["InstrFormat", "InstrSpec", "MNEMONICS", "spec_for",
           "BRANCH_MNEMONICS", "JUMP_MNEMONICS", "LOAD_MNEMONICS",
           "STORE_MNEMONICS"]


class InstrFormat(enum.Enum):
    """The three classic MIPS encoding formats."""

    R = "R"
    I = "I"
    J = "J"


@dataclass(frozen=True)
class InstrSpec:
    """Static description of one mnemonic."""

    mnemonic: str
    format: InstrFormat
    opcode: int
    funct: int  # R-format only; 0 otherwise
    operands: str

    @property
    def writes_register(self) -> bool:
        """True when the instruction architecturally writes a GPR that
        value prediction targets (excludes branches, jumps, stores and
        syscall, matching the paper's prediction set)."""
        return self.mnemonic in _VALUE_PRODUCERS


def _r(mnemonic: str, funct: int, operands: str = "rd,rs,rt") -> InstrSpec:
    return InstrSpec(mnemonic, InstrFormat.R, 0, funct, operands)


def _i(mnemonic: str, opcode: int, operands: str) -> InstrSpec:
    return InstrSpec(mnemonic, InstrFormat.I, opcode, 0, operands)


def _j(mnemonic: str, opcode: int) -> InstrSpec:
    return InstrSpec(mnemonic, InstrFormat.J, opcode, 0, "label")


_SPECS = [
    # R-format ALU
    _r("sll", 0x00, "rd,rt,sh"),
    _r("srl", 0x02, "rd,rt,sh"),
    _r("sra", 0x03, "rd,rt,sh"),
    _r("sllv", 0x04),
    _r("srlv", 0x06),
    _r("srav", 0x07),
    _r("jr", 0x08, "rs"),
    _r("jalr", 0x09, "rd,rs"),
    _r("syscall", 0x0C, ""),
    _r("mul", 0x18),   # single-result multiply (low 32 bits)
    _r("mulh", 0x19),  # high 32 bits of the signed product
    _r("div", 0x1A),   # truncated quotient
    _r("rem", 0x1B),   # remainder
    _r("add", 0x20),
    _r("sub", 0x22),
    _r("and", 0x24),
    _r("or", 0x25),
    _r("xor", 0x26),
    _r("nor", 0x27),
    _r("slt", 0x2A),
    _r("sltu", 0x2B),
    # J-format
    _j("j", 0x02),
    _j("jal", 0x03),
    # I-format branches
    _i("beq", 0x04, "rs,rt,label"),
    _i("bne", 0x05, "rs,rt,label"),
    _i("blez", 0x06, "rs,label"),
    _i("bgtz", 0x07, "rs,label"),
    _i("bltz", 0x01, "rs,label"),   # rt field = 0
    _i("bgez", 0x1D, "rs,label"),
    # I-format ALU
    _i("addi", 0x08, "rt,rs,imm"),
    _i("slti", 0x0A, "rt,rs,imm"),
    _i("sltiu", 0x0B, "rt,rs,imm"),
    _i("andi", 0x0C, "rt,rs,imm"),
    _i("ori", 0x0D, "rt,rs,imm"),
    _i("xori", 0x0E, "rt,rs,imm"),
    _i("lui", 0x0F, "rt,imm"),
    # Loads / stores
    _i("lb", 0x20, "rt,off(rs)"),
    _i("lh", 0x21, "rt,off(rs)"),
    _i("lw", 0x23, "rt,off(rs)"),
    _i("lbu", 0x24, "rt,off(rs)"),
    _i("lhu", 0x25, "rt,off(rs)"),
    _i("sb", 0x28, "rt,off(rs)"),
    _i("sh", 0x29, "rt,off(rs)"),
    _i("sw", 0x2B, "rt,off(rs)"),
]

MNEMONICS: Dict[str, InstrSpec] = {spec.mnemonic: spec for spec in _SPECS}

BRANCH_MNEMONICS = frozenset(
    {"beq", "bne", "blez", "bgtz", "bltz", "bgez"})
JUMP_MNEMONICS = frozenset({"j", "jal", "jr", "jalr"})
LOAD_MNEMONICS = frozenset({"lb", "lh", "lw", "lbu", "lhu"})
STORE_MNEMONICS = frozenset({"sb", "sh", "sw"})

# Instructions whose result the paper's value predictor would predict:
# integer register producers, loads included, branches/jumps/stores and
# syscall excluded (jal/jalr write ra but are jump instructions, which
# the paper explicitly does not predict).
_VALUE_PRODUCERS = frozenset(
    {"sll", "srl", "sra", "sllv", "srlv", "srav",
     "mul", "mulh", "div", "rem",
     "add", "sub", "and", "or", "xor", "nor", "slt", "sltu",
     "addi", "slti", "sltiu", "andi", "ori", "xori", "lui"}
    | LOAD_MNEMONICS)


def spec_for(mnemonic: str) -> InstrSpec:
    """Spec lookup with a helpful error for unknown mnemonics."""
    try:
        return MNEMONICS[mnemonic.lower()]
    except KeyError:
        raise ValueError(f"unknown mnemonic {mnemonic!r}") from None
