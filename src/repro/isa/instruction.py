"""The decoded-instruction representation shared by assembler and VM."""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import InstrFormat, InstrSpec, spec_for
from repro.isa.registers import REGISTER_NAMES

__all__ = ["Instruction"]


@dataclass(frozen=True)
class Instruction:
    """One decoded R32 instruction.

    Field use by format:

    - R: ``rd``, ``rs``, ``rt``, ``shamt``
    - I: ``rs``, ``rt``, ``imm`` (16-bit two's complement, stored
      *sign-extended* as a Python int in [-32768, 32767]; branch
      displacements are in instructions relative to PC+4)
    - J: ``target`` (26-bit word address field)
    """

    mnemonic: str
    rd: int = 0
    rs: int = 0
    rt: int = 0
    shamt: int = 0
    imm: int = 0
    target: int = 0

    @property
    def spec(self) -> InstrSpec:
        return spec_for(self.mnemonic)

    def __post_init__(self):
        for field in ("rd", "rs", "rt"):
            value = getattr(self, field)
            if not 0 <= value < 32:
                raise ValueError(
                    f"{self.mnemonic}: register field {field}={value} "
                    f"outside [0, 31]")
        if not 0 <= self.shamt < 32:
            raise ValueError(f"{self.mnemonic}: shamt {self.shamt} outside [0, 31]")
        if not -0x8000 <= self.imm <= 0xFFFF:
            raise ValueError(
                f"{self.mnemonic}: immediate {self.imm} does not fit 16 bits")
        if not 0 <= self.target < (1 << 26):
            raise ValueError(
                f"{self.mnemonic}: jump target field {self.target} "
                f"outside 26 bits")

    def text(self) -> str:
        """Human-readable disassembly (canonical operand order)."""
        spec = self.spec
        r = REGISTER_NAMES
        shape = spec.operands
        if shape == "rd,rs,rt":
            return f"{self.mnemonic} {r[self.rd]}, {r[self.rs]}, {r[self.rt]}"
        if shape == "rd,rt,sh":
            return f"{self.mnemonic} {r[self.rd]}, {r[self.rt]}, {self.shamt}"
        if shape == "rt,rs,imm":
            return f"{self.mnemonic} {r[self.rt]}, {r[self.rs]}, {self.imm}"
        if shape == "rt,imm":
            return f"{self.mnemonic} {r[self.rt]}, {self.imm}"
        if shape == "rt,off(rs)":
            return f"{self.mnemonic} {r[self.rt]}, {self.imm}({r[self.rs]})"
        if shape == "rs,rt,label":
            return f"{self.mnemonic} {r[self.rs]}, {r[self.rt]}, {self.imm}"
        if shape == "rs,label":
            return f"{self.mnemonic} {r[self.rs]}, {self.imm}"
        if shape == "label":
            return f"{self.mnemonic} {self.target:#x}"
        if shape == "rs":
            return f"{self.mnemonic} {r[self.rs]}"
        if shape == "rd,rs":
            return f"{self.mnemonic} {r[self.rd]}, {r[self.rs]}"
        return self.mnemonic  # syscall

    @property
    def is_branch_or_jump(self) -> bool:
        return self.spec.format is InstrFormat.J or self.mnemonic in (
            "beq", "bne", "blez", "bgtz", "bltz", "bgez", "jr", "jalr")

    @property
    def dest_register(self) -> int | None:
        """The traced destination register, or None for non-producers.

        Writes to register 0 (hardwired zero) never produce a value.
        """
        spec = self.spec
        if not spec.writes_register:
            return None
        dest = self.rd if spec.format is InstrFormat.R else self.rt
        return dest or None
