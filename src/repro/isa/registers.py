"""R32 register file: 32 general-purpose registers with MIPS ABI names.

Register 0 is hardwired to zero: writes to it are discarded (and, in
the tracing VM, never traced).
"""

from __future__ import annotations

__all__ = ["REGISTER_NAMES", "REGISTER_NUMBERS", "register_number",
           "ZERO", "AT", "V0", "V1", "A0", "A1", "A2", "A3",
           "GP", "SP", "FP", "RA"]

# Canonical ABI name for each register number.
REGISTER_NAMES = (
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
)

# Name -> number, accepting ABI names, bare numbers ("r4"/"$4") and the
# "$name" spelling.
REGISTER_NUMBERS = {}
for _num, _name in enumerate(REGISTER_NAMES):
    REGISTER_NUMBERS[_name] = _num
    REGISTER_NUMBERS["$" + _name] = _num
    REGISTER_NUMBERS[f"r{_num}"] = _num
    REGISTER_NUMBERS[f"${_num}"] = _num
REGISTER_NUMBERS["s8"] = 30  # fp alias
REGISTER_NUMBERS["$s8"] = 30

ZERO, AT, V0, V1 = 0, 1, 2, 3
A0, A1, A2, A3 = 4, 5, 6, 7
GP, SP, FP, RA = 28, 29, 30, 31


def register_number(name: str) -> int:
    """Resolve a register operand string to its number.

    Raises ``KeyError``-derived :class:`ValueError` with a clear message
    for unknown names.
    """
    try:
        return REGISTER_NUMBERS[name.lower()]
    except KeyError:
        raise ValueError(f"unknown register {name!r}") from None
