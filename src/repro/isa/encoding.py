"""Binary encode/decode for R32 instructions.

Classic MIPS bit layout:

- R: ``op(6) rs(5) rt(5) rd(5) shamt(5) funct(6)`` with op = 0
- I: ``op(6) rs(5) rt(5) imm(16)``
- J: ``op(6) target(26)``

``decode(encode(instr)) == instr`` for every valid instruction; the
property-based tests exercise this over the whole opcode table.
"""

from __future__ import annotations

from typing import Dict

from repro.isa.instruction import Instruction
from repro.isa.opcodes import MNEMONICS, InstrFormat, InstrSpec

__all__ = ["encode", "decode", "DecodeError"]


class DecodeError(ValueError):
    """Raised for words that are not valid R32 instructions."""


_R_BY_FUNCT: Dict[int, InstrSpec] = {
    spec.funct: spec for spec in MNEMONICS.values()
    if spec.format is InstrFormat.R
}
_BY_OPCODE: Dict[int, InstrSpec] = {
    spec.opcode: spec for spec in MNEMONICS.values()
    if spec.format is not InstrFormat.R
}


def encode(instr: Instruction) -> int:
    """Encode a decoded instruction into its 32-bit word."""
    spec = instr.spec
    if spec.format is InstrFormat.R:
        return ((instr.rs << 21) | (instr.rt << 16) | (instr.rd << 11)
                | (instr.shamt << 6) | spec.funct)
    if spec.format is InstrFormat.I:
        return ((spec.opcode << 26) | (instr.rs << 21) | (instr.rt << 16)
                | (instr.imm & 0xFFFF))
    return (spec.opcode << 26) | instr.target


def decode(word: int) -> Instruction:
    """Decode a 32-bit word; raises :class:`DecodeError` if invalid."""
    if not 0 <= word < (1 << 32):
        raise DecodeError(f"instruction word {word:#x} is not 32 bits")
    opcode = word >> 26
    if opcode == 0:
        funct = word & 0x3F
        spec = _R_BY_FUNCT.get(funct)
        if spec is None:
            raise DecodeError(f"unknown R-format funct {funct:#04x}")
        return Instruction(
            spec.mnemonic,
            rs=(word >> 21) & 0x1F,
            rt=(word >> 16) & 0x1F,
            rd=(word >> 11) & 0x1F,
            shamt=(word >> 6) & 0x1F,
        )
    spec = _BY_OPCODE.get(opcode)
    if spec is None:
        raise DecodeError(f"unknown opcode {opcode:#04x}")
    if spec.format is InstrFormat.J:
        return Instruction(spec.mnemonic, target=word & 0x3FFFFFF)
    imm = word & 0xFFFF
    if imm >= 0x8000:
        imm -= 0x10000
    return Instruction(
        spec.mnemonic,
        rs=(word >> 21) & 0x1F,
        rt=(word >> 16) & 0x1F,
        imm=imm,
    )
