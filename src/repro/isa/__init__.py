"""R32: a 32-bit MIPS-like instruction set.

The substrate ISA for the reproduction: the workloads are compiled to
R32, executed by :mod:`repro.vm`, and the resulting register value
traces feed the predictors.  R32 follows the classic MIPS R/I/J
encoding with a reduced, integer-only instruction list (the paper
predicts integer register values only).
"""

from repro.isa.registers import REGISTER_NAMES, REGISTER_NUMBERS, register_number
from repro.isa.instruction import Instruction
from repro.isa.opcodes import MNEMONICS, InstrFormat, spec_for
from repro.isa.encoding import decode, encode

__all__ = [
    "REGISTER_NAMES",
    "REGISTER_NUMBERS",
    "register_number",
    "Instruction",
    "MNEMONICS",
    "InstrFormat",
    "spec_for",
    "decode",
    "encode",
]
