"""Command-line interface: ``python -m repro <command>``.

Commands
--------
- ``workloads`` — list the benchmark suite (Table 1 style).
- ``trace NAME`` — capture a value trace, print stats, optionally save.
- ``run EXPERIMENT`` — run a registered paper experiment and print it.
- ``predict NAME`` — measure one predictor configuration on a benchmark.
- ``compare NAME`` — measure every predictor class on a benchmark.
- ``bench`` — engine throughput benchmark (writes BENCH_predictors.json).
- ``tables`` — table-usage efficiency report: families at matched
  storage budgets, occupancy/aliasing heatmaps, the paper's
  DFCM-beats-FCM efficiency check (``--json`` for CI).
- ``compile FILE`` — compile a MinC source file to R32 assembly.
- ``exec FILE`` — compile and execute a MinC source file on the VM.
- ``disasm NAME`` — disassemble a workload's compiled text segment.
- ``cache ls|verify|clear|warm`` — inspect and manage the trace cache.
- ``state ls|verify|compact`` — inspect and manage durable session
  arenas written by ``serve --state-dir`` (see docs/state.md).
- ``telemetry summary|export|tail`` — inspect recorded telemetry runs.
- ``serve`` — run the online prediction server (graceful SIGTERM drain;
  ``--obs-port`` adds the HTTP /metrics /healthz /slo /slow endpoint;
  ``--state-dir`` spills session table state to durable arenas,
  ``--max-resident`` adds LRU eviction on top).
- ``loadgen NAME`` — replay a trace against a server, report throughput
  and latency percentiles, verify accuracy against the offline engine.
- ``top URL|PORT`` — live dashboard over a server's obs endpoint
  (``--once`` prints a single plain snapshot).

``bench`` also maintains a history: ``bench --history`` appends the
run (git SHA + timestamp) to ``BENCH_history.jsonl``; ``bench diff``
compares the two most recent records and exits nonzero on a
throughput regression beyond ``--max-regression-pct``.

Every ``--json`` payload carries a ``"schema"`` integer so consumers
can detect shape changes; every failure path exits nonzero with an
``error: ...`` line on stderr.

``run``, ``predict`` and ``compare`` accept ``--telemetry DIR`` to
record the invocation as a telemetry run (manifest + JSONL spans/probes
+ metrics) under DIR; ``predict`` and ``compare`` accept ``--json`` for
machine-readable output carrying the telemetry run id.

``run``, ``predict`` and ``compare`` accept ``--engine`` to pin the
replay engine (``auto``/``scalar``/``batch``); ``run`` additionally
accepts ``--jobs N`` to fan the suite's measurement cells across N
worker processes (output is byte-identical to the serial run).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def default_telemetry_dir() -> str:
    """Where ``repro telemetry`` looks for runs
    (``REPRO_TELEMETRY_DIR``, default ``.telemetry``)."""
    return os.environ.get("REPRO_TELEMETRY_DIR", ".telemetry")


def default_state_dir() -> str:
    """Where ``repro state`` looks for session arenas
    (``REPRO_STATE_DIR``, default ``.state``)."""
    return os.environ.get("REPRO_STATE_DIR", ".state")


def _maybe_telemetry(args):
    """Context manager yielding the active TelemetryRun (or None) for
    commands carrying a ``--telemetry DIR`` flag."""
    directory = getattr(args, "telemetry", None)
    if not directory:
        return contextlib.nullcontext(None)
    from repro.telemetry import telemetry_run
    return telemetry_run(directory, command=args.command,
                         argv=getattr(args, "_argv", None))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DFCM value prediction reproduction (HPCA 2001)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list the benchmark suite")

    trace = sub.add_parser(
        "trace",
        help="capture a value trace, or (--from) look up a request "
             "trace on a serve/cluster obs endpoint")
    trace.add_argument("name",
                       help="workload name (see 'workloads'), or with "
                            "--from a 16-hex-digit request trace id")
    trace.add_argument("--limit", type=int, default=100_000,
                       help="predictions to capture (default 100000)")
    trace.add_argument("--out", help="write the trace to this .npz file")
    trace.add_argument("--head", type=int, default=0,
                       help="print the first N (pc, value) records")
    trace.add_argument("-O", "--optimize", type=int, default=0,
                       choices=[0, 1, 2], help="compiler optimisation level")
    trace.add_argument("--from", dest="from_target", metavar="OBS",
                       default=None,
                       help="distributed-trace mode: fetch /trace/<id> "
                            "from this obs endpoint (router or worker; "
                            "base URL or bare port on 127.0.0.1) and "
                            "render the cross-process timeline")
    trace.add_argument("--json", action="store_true",
                       help="print the raw trace JSON (--from mode)")
    trace.add_argument("--timeout", type=float, default=5.0,
                       help="HTTP timeout (default 5s; --from mode)")

    run = sub.add_parser("run", help="run a paper experiment")
    run.add_argument("experiment", help="experiment id, or 'list'")
    run.add_argument("--fast", action="store_true",
                     help="reduced sweep (for a quick look)")
    run.add_argument("--limit", type=int, default=None,
                     help="trace length per benchmark")
    run.add_argument("--telemetry", metavar="DIR", default=None,
                     help="record this invocation as a telemetry run "
                          "under DIR")
    run.add_argument("--engine", default=None,
                     choices=["auto", "scalar", "batch"],
                     help="replay engine (default auto)")
    run.add_argument("--jobs", type=int, default=None,
                     help="worker processes for suite measurement "
                          "(default 1 = serial)")

    predict = sub.add_parser("predict",
                             help="measure one predictor on one benchmark")
    predict.add_argument("name", help="workload name")
    predict.add_argument("--predictor", default="dfcm",
                         choices=["lvp", "lastn", "stride", "stride2d",
                                  "fcm", "dfcm"])
    predict.add_argument("--l1", type=int, default=16,
                         help="log2 level-1 entries (context predictors) "
                              "or log2 table entries (simple predictors)")
    predict.add_argument("--l2", type=int, default=12,
                         help="log2 level-2 entries (context predictors)")
    predict.add_argument("--limit", type=int, default=100_000)
    predict.add_argument("--json", action="store_true",
                         help="machine-readable JSON output")
    predict.add_argument("--telemetry", metavar="DIR", default=None,
                         help="record this invocation as a telemetry run "
                              "under DIR")
    predict.add_argument("--engine", default=None,
                         choices=["auto", "scalar", "batch"],
                         help="replay engine (default auto)")

    compare = sub.add_parser("compare",
                             help="measure every predictor on one benchmark")
    compare.add_argument("name", help="workload name")
    compare.add_argument("--limit", type=int, default=50_000)
    compare.add_argument("--json", action="store_true",
                         help="machine-readable JSON output")
    compare.add_argument("--telemetry", metavar="DIR", default=None,
                         help="record this invocation as a telemetry run "
                              "under DIR")
    compare.add_argument("--engine", default=None,
                         choices=["auto", "scalar", "batch"],
                         help="replay engine (default auto)")

    bench = sub.add_parser(
        "bench", help="engine throughput benchmark (scalar vs batch)")
    bench.add_argument("action", nargs="?", default="run",
                       choices=["run", "diff"],
                       help="run the benchmark (default) or diff the two "
                            "most recent history records")
    bench.add_argument("--fast", action="store_true",
                       help="small trace; record the guard, don't "
                            "enforce it")
    bench.add_argument("--out", default="BENCH_predictors.json",
                       help="report path (default BENCH_predictors.json; "
                            "'-' = skip the file)")
    bench.add_argument("--json", action="store_true",
                       help="print the report JSON instead of the table")
    bench.add_argument("--min-speedup", type=float, default=None,
                       help="speedup the guard requires (default "
                            "$REPRO_BENCH_MIN_SPEEDUP or 5.0)")
    bench.add_argument("--history", action="store_true",
                       help="append this run (git SHA + timestamp) to the "
                            "history file")
    bench.add_argument("--history-file", default="BENCH_history.jsonl",
                       help="history path (default BENCH_history.jsonl)")
    bench.add_argument("--max-regression-pct", type=float, default=None,
                       help="bench diff: fail when batch throughput drops "
                            "more than this percent (default "
                            "$REPRO_BENCH_MAX_REGRESSION_PCT or 10)")

    tables = sub.add_parser(
        "tables", help="table-usage efficiency report across families "
                       "at matched storage budgets")
    tables.add_argument("name", nargs="?", default="li",
                        help="workload name (default li)")
    tables.add_argument("--limit", type=int, default=50_000,
                        help="trace length to audit (default 50000)")
    tables.add_argument("--budgets", default=None,
                        help="comma-separated storage budgets in Kbit "
                             "(default 64,128,256,512,1024)")
    tables.add_argument("--families", default=None,
                        help="comma-separated families to sweep "
                             "(default lvp,stride,fcm,dfcm,hybrid)")
    tables.add_argument("--engine", default="batch",
                        choices=["batch", "scalar"],
                        help="auditor replay engine (default batch)")
    tables.add_argument("--json", action="store_true",
                        help="machine-readable JSON output")
    tables.add_argument("--out", default=None,
                        help="also write the report JSON to this file")

    compile_cmd = sub.add_parser("compile",
                                 help="compile MinC to R32 assembly")
    compile_cmd.add_argument("file", help="MinC source file ('-' = stdin)")
    compile_cmd.add_argument("-O", "--optimize", type=int, default=0,
                             choices=[0, 1, 2],
                             help="compiler optimisation level")

    exec_cmd = sub.add_parser("exec", help="compile and run MinC on the VM")
    exec_cmd.add_argument("file", help="MinC source file ('-' = stdin)")
    exec_cmd.add_argument("--max-instructions", type=int,
                          default=100_000_000)
    exec_cmd.add_argument("-O", "--optimize", type=int, default=0,
                          choices=[0, 1, 2],
                          help="compiler optimisation level")

    disasm = sub.add_parser("disasm",
                            help="disassemble a workload's text segment")
    disasm.add_argument("name", help="workload name")
    disasm.add_argument("--head", type=int, default=40,
                        help="lines to print (0 = all)")

    cache = sub.add_parser("cache", help="inspect/manage the trace cache")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_ls = cache_sub.add_parser("ls", help="list cache entries")
    cache_verify = cache_sub.add_parser(
        "verify", help="integrity-check every entry (exit 1 on defects)")
    cache_verify.add_argument(
        "--repair", action="store_true",
        help="quarantine defective entries and recapture them")
    cache_clear = cache_sub.add_parser(
        "clear", help="delete all entries (and tmp/quarantine files)")
    cache_warm = cache_sub.add_parser(
        "warm", help="pre-capture entries for a benchmark (or 'all')")
    cache_warm.add_argument("name", help="workload name, or 'all'")
    cache_warm.add_argument("limit", type=int,
                            help="predictions per benchmark")
    cache_warm.add_argument("-O", "--optimize", type=int, default=0,
                            choices=[0, 1, 2],
                            help="compiler optimisation level")
    for sub_parser in (cache_ls, cache_verify, cache_clear, cache_warm):
        sub_parser.add_argument("--dir", default=None,
                                help="cache directory (default "
                                     ".trace_cache / REPRO_TRACE_CACHE)")

    state = sub.add_parser(
        "state", help="inspect/manage durable session arenas "
                      "(written by serve --state-dir)")
    state_sub = state.add_subparsers(dest="state_command", required=True)
    state_ls = state_sub.add_parser("ls", help="list session arenas")
    state_verify = state_sub.add_parser(
        "verify", help="integrity-check arenas (exit 1 on defects); "
                       "pass a file path to check just that arena")
    state_verify.add_argument("path", nargs="?", default=None,
                              help="one arena file to check (default: "
                                   "sweep the whole directory)")
    state_compact = state_sub.add_parser(
        "compact", help="remove tmp/quarantine litter and arenas that "
                        "no longer verify")
    for sub_parser in (state_ls, state_verify, state_compact):
        sub_parser.add_argument("--dir", default=None,
                                help="state directory (default "
                                     ".state / REPRO_STATE_DIR)")
        sub_parser.add_argument("--json", action="store_true",
                                help="machine-readable JSON output")

    telemetry = sub.add_parser("telemetry",
                               help="inspect recorded telemetry runs")
    telemetry_sub = telemetry.add_subparsers(dest="telemetry_command",
                                             required=True)
    tel_summary = telemetry_sub.add_parser(
        "summary", help="human-readable digest of one run")
    tel_export = telemetry_sub.add_parser(
        "export", help="dump a run's data for other tools")
    tel_export.add_argument("--format", default="jsonl",
                            choices=["jsonl", "prom"],
                            help="jsonl = raw event log, "
                                 "prom = Prometheus text exposition")
    tel_tail = telemetry_sub.add_parser(
        "tail", help="print the last N events of a run")
    tel_tail.add_argument("-n", "--lines", type=int, default=20,
                          help="events to print (default 20)")
    for sub_parser in (tel_summary, tel_export, tel_tail):
        sub_parser.add_argument("--dir", default=None,
                                help="telemetry root (default .telemetry "
                                     "/ REPRO_TELEMETRY_DIR)")
        sub_parser.add_argument("--run", default=None,
                                help="run id (default: most recent run)")

    serve = sub.add_parser("serve", help="run the online prediction server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="listen port (default 0 = ephemeral)")
    serve.add_argument("--shards", type=int, default=2,
                       help="session shards / worker tasks (default 2)")
    serve.add_argument("--max-batch", type=int, default=64,
                       help="micro-batch size cap (default 64)")
    serve.add_argument("--max-delay-ms", type=float, default=2.0,
                       help="micro-batch accumulation window "
                            "(default 2ms)")
    serve.add_argument("--queue-depth", type=int, default=1024,
                       help="per-shard queue bound / backpressure point")
    serve.add_argument("--request-timeout-s", type=float, default=30.0,
                       help="per-request response deadline (default 30s)")
    serve.add_argument("--obs-port", type=int, default=None,
                       help="serve HTTP /metrics /healthz /slo /slow on "
                            "this port (0 = ephemeral; default off)")
    serve.add_argument("--slo-p99-ms", type=float, default=250.0,
                       help="latency SLO: p99 of data-path requests "
                            "must stay under this (default 250ms)")
    serve.add_argument("--slo-queue-depth", type=float, default=512.0,
                       help="queue SLO: shard queue depth ceiling "
                            "(default 512)")
    serve.add_argument("--slo-accuracy-floor", type=float, default=None,
                       help="accuracy SLO: per-session recent hit-rate "
                            "floor (default: not watched)")
    serve.add_argument("--slow-out", metavar="FILE", default=None,
                       help="write the slow-request sample JSON here on "
                            "drain")
    serve.add_argument("--telemetry", metavar="DIR", default=None,
                       help="record this invocation as a telemetry run "
                            "under DIR")
    serve.add_argument("--uvloop", action="store_true",
                       help="run the event loop on uvloop when installed "
                            "(automatically falls back to asyncio)")
    serve.add_argument("--state-dir", default=None,
                       help="durable session state: spill/restore "
                            "per-session table arenas under this "
                            "directory (default: in-memory only)")
    serve.add_argument("--max-resident", type=int, default=None,
                       help="LRU-evict spillable sessions to the state "
                            "directory beyond this many resident "
                            "sessions (needs --state-dir; default: "
                            "spill only on drain)")
    serve.add_argument("--json", action="store_true",
                       help="print listening/drained lines as JSON")

    loadgen = sub.add_parser(
        "loadgen", help="replay a trace against a prediction server")
    loadgen.add_argument("name", help="workload name")
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=None,
                         help="server port")
    loadgen.add_argument("--predictor", default="dfcm",
                         choices=["lvp", "lastn", "stride", "stride2d",
                                  "fcm", "dfcm"])
    loadgen.add_argument("--l1", type=int, default=16,
                         help="log2 level-1 entries")
    loadgen.add_argument("--l2", type=int, default=12,
                         help="log2 level-2 entries")
    loadgen.add_argument("--limit", type=int, default=1000,
                         help="records to replay (default 1000)")
    loadgen.add_argument("--window", type=int, default=0,
                         help="delayed-update window (default 0)")
    loadgen.add_argument("--mode", default="both",
                         choices=["naive", "batched", "both"])
    loadgen.add_argument("--block", type=int, default=256,
                         help="records per STEP_BLOCK frame (default 256)")
    loadgen.add_argument("--min-speedup", type=float, default=None,
                         help="fail unless batched beats naive by this "
                              "factor (needs --mode both)")
    loadgen.add_argument("--no-verify", action="store_true",
                         help="skip the offline-engine accuracy check")
    loadgen.add_argument("--json", action="store_true",
                         help="print the full report JSON")
    loadgen.add_argument("--out", default=None,
                         help="also write the report JSON to this file")
    loadgen.add_argument("--cluster-workers", default=None,
                         help="scaling mode: comma-separated fleet "
                              "sizes (e.g. 1,2,3) to self-host and "
                              "sweep instead of targeting --port")
    loadgen.add_argument("--sessions", type=int, default=4,
                         help="concurrent sessions per scaling point "
                              "(default 4; scaling mode only)")
    loadgen.add_argument("--min-scaling", type=float, default=None,
                         help="fail unless the largest fleet beats one "
                              "worker by this factor (scaling mode)")
    loadgen.add_argument("--state-dir", default=None,
                         help="shared state directory for the "
                              "self-hosted fleet (scaling mode)")
    loadgen.add_argument("--history", metavar="FILE", default=None,
                         help="append the scaling record to this bench "
                              "history JSONL ('repro bench diff' gates "
                              "it; scaling mode)")

    cluster = sub.add_parser(
        "cluster", help="multi-worker cluster serving (router + fleet)")
    cluster_sub = cluster.add_subparsers(dest="cluster_command",
                                         required=True)
    cserve = cluster_sub.add_parser(
        "serve", help="run a session-affine router over N workers")
    cserve.add_argument("--workers", type=int, default=2,
                        help="worker processes (default 2)")
    cserve.add_argument("--host", default="127.0.0.1")
    cserve.add_argument("--port", type=int, default=0,
                        help="router port (default: ephemeral)")
    cserve.add_argument("--obs-port", type=int, default=None,
                        help="aggregated observability HTTP port "
                             "(0 = ephemeral; omit to disable)")
    cserve.add_argument("--shards", type=int, default=2,
                        help="batcher shards per worker (default 2)")
    cserve.add_argument("--max-batch", type=int, default=64)
    cserve.add_argument("--max-delay-ms", type=float, default=2.0)
    cserve.add_argument("--queue-depth", type=int, default=1024)
    cserve.add_argument("--request-timeout-s", type=float, default=30.0)
    cserve.add_argument("--state-dir", default=None,
                        help="shared durable-state directory (enables "
                             "hot migration and failover re-homing)")
    cserve.add_argument("--max-resident", type=int, default=None,
                        help="per-worker resident-session LRU cap")
    cserve.add_argument("--no-auto-restart", action="store_true",
                        help="do not respawn crashed workers")
    cserve.add_argument("--telemetry", metavar="DIR", default=None,
                        help="record a telemetry run under DIR "
                             "(default $REPRO_TELEMETRY_DIR)")
    cserve.add_argument("--json", action="store_true",
                        help="line-JSON lifecycle events (for scripts)")
    cstatus = cluster_sub.add_parser(
        "status", help="show a running router's fleet report")
    cstatus.add_argument("target",
                         help="router obs endpoint: a base URL "
                              "(http://host:port) or a bare port on "
                              "127.0.0.1")
    cstatus.add_argument("--json", action="store_true",
                         help="print the raw /cluster JSON")
    cstatus.add_argument("--timeout", type=float, default=5.0,
                         help="HTTP timeout (default 5s)")

    soak = sub.add_parser(
        "soak", help="sustained cluster soak gated on multi-window "
                     "SLO burn (self-hosts a fleet)")
    soak.add_argument("name", help="workload name (see 'workloads')")
    soak.add_argument("--workers", type=int, default=2,
                      help="fleet size (default 2)")
    soak.add_argument("--sessions", type=int, default=4,
                      help="concurrent replay sessions (default 4)")
    soak.add_argument("--duration-s", type=float, default=60.0,
                      help="wall-clock soak duration (default 60)")
    soak.add_argument("--predictor", default="dfcm",
                      choices=["lvp", "lastn", "stride", "stride2d",
                               "fcm", "dfcm"])
    soak.add_argument("--l1", type=int, default=16,
                      help="log2 level-1 entries")
    soak.add_argument("--l2", type=int, default=12,
                      help="log2 level-2 entries")
    soak.add_argument("--limit", type=int, default=2000,
                      help="records per replay pass (default 2000)")
    soak.add_argument("--window", type=int, default=0,
                      help="delayed-update window (default 0)")
    soak.add_argument("--block", type=int, default=256,
                      help="records per STEP_BLOCK frame (default 256)")
    soak.add_argument("--state-dir", default=None,
                      help="shared state directory for the fleet")
    soak.add_argument("--max-burn", type=float, default=2.0,
                      help="fail when the sustained SLO burn rate "
                           "reaches this (default 2.0, the alerting "
                           "threshold)")
    soak.add_argument("--poll-interval-s", type=float, default=2.0,
                      help="telemetry sampling interval (default 2s)")
    soak.add_argument("--json", action="store_true",
                      help="print the full report JSON")
    soak.add_argument("--out", default=None,
                      help="also write the report JSON to this file")
    soak.add_argument("--trace-out", metavar="FILE", default=None,
                      help="write the router's trace-store dump (the "
                           "most recent cross-process spans) to FILE")
    soak.add_argument("--history", metavar="FILE", default=None,
                      help="append the soak record to this bench "
                           "history JSONL")
    soak.add_argument("--ci", action="store_true",
                      help="bounded CI profile: clamps --duration-s to "
                           "90 and --limit to 2000")

    top = sub.add_parser(
        "top", help="live dashboard over a serve --obs-port endpoint")
    top.add_argument("target",
                     help="obs endpoint: a base URL "
                          "(http://host:port) or a bare port on "
                          "127.0.0.1")
    top.add_argument("--interval", type=float, default=1.0,
                     help="poll interval in seconds (default 1)")
    top.add_argument("--once", action="store_true",
                     help="print one plain snapshot and exit "
                          "(no screen control; for scripts/CI)")
    top.add_argument("--iterations", type=int, default=None,
                     help="stop after N frames (default: until Ctrl-C)")
    top.add_argument("--timeout", type=float, default=5.0,
                     help="per-request HTTP timeout (default 5s)")
    return parser


def _cmd_workloads(args, out) -> int:
    from repro.harness.report import format_table
    from repro.workloads.registry import WORKLOADS, workload_names
    rows = []
    for name in workload_names():
        workload = WORKLOADS[name]
        rows.append([name, workload.paper_options, workload.description])
    out.write(format_table(["benchmark", "paper input", "mini-kernel"],
                           rows) + "\n")
    return 0


def _normalize_obs_target(target: str) -> str:
    """``8900`` -> ``http://127.0.0.1:8900``; ``host:port`` gains a
    scheme; full URLs pass through."""
    if target.isdigit():
        return f"http://127.0.0.1:{target}"
    if "://" not in target:
        return f"http://{target}"
    return target


def _trace_lookup(args, out) -> int:
    """``repro trace <id> --from <obs>``: render one request's
    cross-process timeline from a worker's or the router's trace
    store."""
    import urllib.request

    from repro.serve.tracing import (format_trace_id, parse_trace_id,
                                     render_trace_report)
    trace_id = parse_trace_id(args.name)
    target = _normalize_obs_target(args.from_target)
    url = f"{target}/trace/{format_trace_id(trace_id)}"
    with urllib.request.urlopen(url, timeout=args.timeout) as response:
        report = json.loads(response.read().decode("utf-8"))
    if args.json:
        out.write(json.dumps(report, indent=2, sort_keys=True) + "\n")
    else:
        out.write(render_trace_report(report))
    return 0 if report.get("found") else 1


def _cmd_trace(args, out) -> int:
    if args.from_target is not None:
        return _trace_lookup(args, out)
    from repro.trace.capture import capture_trace
    trace = capture_trace(args.name, limit=args.limit,
                          optimize=args.optimize)
    stats = trace.stats()
    out.write(f"{trace.name}: {stats.predictions} predictions, "
              f"{stats.static_instructions} static instructions, "
              f"{stats.distinct_values} distinct values\n")
    for pc, value in trace.records()[:args.head]:
        out.write(f"  {pc:#010x} {value}\n")
    if args.out:
        trace.save(args.out)
        out.write(f"saved to {args.out}\n")
    return 0


def _cmd_run(args, out) -> int:
    from repro.harness.experiments import experiment_ids, run_experiment
    if args.experiment == "list":
        for experiment_id in experiment_ids():
            out.write(experiment_id + "\n")
        return 0
    with _maybe_telemetry(args) as telemetry:
        result = run_experiment(args.experiment, fast=args.fast,
                                limit=args.limit, engine=args.engine,
                                jobs=args.jobs)
    out.write(result.render())
    if telemetry is not None:
        out.write(f"telemetry: {telemetry.dir}\n")
    return 0


def _cmd_predict(args, out) -> int:
    from repro.core.spec import spec_from_cli
    from repro.harness.simulate import measure_accuracy
    from repro.trace.cache import cached_trace

    predictor = spec_from_cli(args.predictor, 1 << args.l1, 1 << args.l2)
    with _maybe_telemetry(args) as telemetry:
        trace = cached_trace(args.name, args.limit)
        result = measure_accuracy(predictor, trace, engine=args.engine)
    if args.json:
        out.write(json.dumps({
            "schema": 1,
            "command": "predict",
            "predictor": predictor.name,
            "benchmark": trace.name,
            "accuracy": round(result.accuracy, 6),
            "correct": result.correct,
            "total": result.total,
            "storage_kbit": round(predictor.storage_kbit(), 3),
            "params": {"predictor": args.predictor, "l1": args.l1,
                       "l2": args.l2, "limit": args.limit},
            "telemetry_run_id": telemetry.run_id if telemetry else None,
        }, sort_keys=True) + "\n")
        return 0
    out.write(f"{predictor.name} on {trace.name}: "
              f"accuracy {result.accuracy:.4f} "
              f"({result.correct}/{result.total}), "
              f"{predictor.storage_kbit():.0f} Kbit\n")
    if telemetry is not None:
        out.write(f"telemetry: {telemetry.dir}\n")
    return 0


def _cmd_compare(args, out) -> int:
    from repro.core.spec import (DFCMSpec, FCMSpec, LastNSpec, LastValueSpec,
                                 StrideSpec, TwoDeltaStrideSpec)
    from repro.harness.report import format_table
    from repro.harness.simulate import measure_accuracy
    from repro.trace.cache import cached_trace

    with _maybe_telemetry(args) as telemetry:
        trace = cached_trace(args.name, args.limit)
        results = []
        for predictor in [LastValueSpec(1 << 12),
                          LastNSpec(1 << 12),
                          StrideSpec(1 << 12),
                          TwoDeltaStrideSpec(1 << 12),
                          FCMSpec(1 << 16, 1 << 12),
                          DFCMSpec(1 << 16, 1 << 12)]:
            result = measure_accuracy(predictor, trace, engine=args.engine)
            results.append((predictor, result))
    if args.json:
        out.write(json.dumps({
            "schema": 1,
            "command": "compare",
            "benchmark": trace.name,
            "limit": args.limit,
            "predictions": len(trace),
            "results": [{
                "predictor": predictor.name,
                "storage_kbit": round(predictor.storage_kbit(), 3),
                "accuracy": round(result.accuracy, 6),
                "correct": result.correct,
                "total": result.total,
            } for predictor, result in results],
            "telemetry_run_id": telemetry.run_id if telemetry else None,
        }, sort_keys=True) + "\n")
        return 0
    rows = [[predictor.name, f"{predictor.storage_kbit():.0f}",
             f"{result.accuracy:.4f}"] for predictor, result in results]
    out.write(format_table(["predictor", "Kbit", "accuracy"], rows,
                           title=f"{trace.name} ({len(trace)} predictions)")
              + "\n")
    if telemetry is not None:
        out.write(f"telemetry: {telemetry.dir}\n")
    return 0


def _cmd_bench(args, out) -> int:
    from repro.harness.bench import (append_history, diff_history,
                                     render_bench, render_history_diff,
                                     run_bench, write_report)
    if args.action == "diff":
        diff = diff_history(args.history_file,
                            max_regression_pct=args.max_regression_pct)
        if args.json:
            out.write(json.dumps(diff, indent=2, sort_keys=True) + "\n")
        else:
            out.write(render_history_diff(diff))
        return 0 if diff["passed"] else 1
    report = run_bench(fast=args.fast, min_speedup=args.min_speedup)
    if args.out and args.out != "-":
        write_report(report, args.out)
    if args.history:
        entry = append_history(report, args.history_file)
        if not args.json:
            out.write(f"history: appended {entry['git_sha'] or '?'} "
                      f"to {args.history_file}\n")
    if args.json:
        out.write(json.dumps(report, indent=2, sort_keys=True) + "\n")
    else:
        out.write(render_bench(report))
        if args.out and args.out != "-":
            out.write(f"report: {args.out}\n")
    return 0 if report["guard"]["passed"] else 1


def _cmd_tables(args, out) -> int:
    from repro.harness.tables_report import (render_tables_report,
                                             run_tables_report)
    from repro.trace.cache import cached_trace

    budgets = ([float(b) for b in args.budgets.split(",") if b]
               if args.budgets else None)
    families = ([f.strip() for f in args.families.split(",") if f.strip()]
                if args.families else None)
    trace = cached_trace(args.name, args.limit)
    report = run_tables_report(trace, budgets_kbit=budgets,
                               families=families, engine=args.engine)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.json:
        out.write(json.dumps(report, indent=2, sort_keys=True) + "\n")
    else:
        out.write(render_tables_report(report))
        if args.out:
            out.write(f"report: {args.out}\n")
    return 0


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path) as handle:
        return handle.read()


def _cmd_compile(args, out) -> int:
    from repro.lang import compile_source
    out.write(compile_source(_read_source(args.file),
                             optimize=args.optimize))
    return 0


def _cmd_exec(args, out) -> int:
    from repro.lang import compile_to_program
    from repro.vm import Machine
    machine = Machine(compile_to_program(_read_source(args.file),
                                          optimize=args.optimize))
    exit_code = machine.run(args.max_instructions)
    out.write(machine.stdout)
    out.write(f"[exit {exit_code}, {machine.instructions_executed} "
              "instructions]\n")
    return exit_code


def _cmd_disasm(args, out) -> int:
    from repro.lang import compile_to_program
    from repro.workloads.registry import get_workload
    program = compile_to_program(get_workload(args.name).source)
    listing = program.disassemble().splitlines()
    shown = listing if args.head == 0 else listing[:args.head]
    out.write("\n".join(shown) + "\n")
    if args.head and len(listing) > args.head:
        out.write(f"... ({len(listing)} instructions total)\n")
    return 0


def _cmd_cache(args, out) -> int:
    from pathlib import Path

    from repro.harness.report import format_table
    from repro.trace.cache import (CacheStats, cache_entries, clear_cache,
                                   default_cache_dir, verify_cache,
                                   warm_cache)
    from repro.workloads.registry import SPEC_NAMES

    directory = Path(args.dir) if args.dir else default_cache_dir()

    if args.cache_command == "ls":
        entries = cache_entries(directory)
        rows = [[e.benchmark,
                 "full" if e.limit is None else str(e.limit),
                 f"O{e.optimize}",
                 str(e.size), e.path.name] for e in entries]
        out.write(format_table(["benchmark", "limit", "opt", "bytes",
                                "file"], rows,
                               title=f"{directory} ({len(entries)} entries)")
                  + "\n")
        return 0

    if args.cache_command == "verify":
        stats = CacheStats()
        result = verify_cache(directory, repair=args.repair, stats=stats)
        for path, reason in result.defects:
            out.write(f"BAD  {path.name}: {reason}\n")
        out.write(f"checked {result.checked} entries, "
                  f"{len(result.defects)} defective")
        if args.repair:
            out.write(f", {len(result.repaired)} recaptured, "
                      f"{len(result.defects) - len(result.repaired)} "
                      "quarantined only")
        out.write("\n")
        if result.defects:
            out.write(f"cache stats: {stats.render()}\n")
        return 0 if (result.ok or args.repair) else 1

    if args.cache_command == "clear":
        removed = clear_cache(directory)
        out.write(f"removed {removed} entries from {directory}\n")
        return 0

    # warm
    if args.limit <= 0:
        out.write(f"limit must be positive, got {args.limit}\n")
        return 2
    names = SPEC_NAMES if args.name == "all" else [args.name]
    stats = CacheStats()
    warm_cache(names, args.limit, cache_dir=directory,
               optimize=args.optimize, stats=stats)
    out.write(f"warmed {len(names)} benchmark(s) at {args.limit} "
              f"predictions\ncache stats: {stats.render()}\n")
    return 0


def _cmd_state(args, out) -> int:
    from pathlib import Path

    from repro.core.state import (STATE_VERSION, ArenaStore, arena_info,
                                  verify_arena)
    from repro.harness.report import format_table

    if getattr(args, "path", None):
        # Single-file verify: no store needed, no directory side effects.
        path = Path(args.path)
        if not path.exists():
            raise ValueError(f"{path}: no such arena file")
        if path.stat().st_size == 0:
            raise ValueError(f"{path}: empty arena file")
        reason = verify_arena(path)
        if reason is not None:
            if args.json:
                out.write(json.dumps({"schema": 1, "path": str(path),
                                      "ok": False, "reason": reason},
                                     sort_keys=True) + "\n")
            else:
                out.write(f"BAD  {path}: {reason}\n")
            return 1
        info = arena_info(path)
        stale = info.state_version != STATE_VERSION
        if args.json:
            out.write(json.dumps({
                "schema": 1, "path": str(path), "ok": True,
                "stale": stale, "state_version": info.state_version,
                "spec": info.spec_name, "arrays": info.arrays,
                "bytes": info.nbytes}, sort_keys=True) + "\n")
        else:
            note = (f" (STALE: state v{info.state_version}, this build "
                    f"speaks v{STATE_VERSION})" if stale else "")
            out.write(f"OK   {path}: {info.spec_name or '?'}, "
                      f"{info.arrays} arrays, {info.nbytes} bytes{note}\n")
        return 0

    directory = Path(args.dir) if args.dir else Path(default_state_dir())
    if not directory.is_dir():
        raise ValueError(
            f"{directory}: no state directory (start a server with "
            f"'repro serve --state-dir {directory}' to create one)")
    store = ArenaStore(directory)

    if args.state_command == "ls":
        infos = store.infos()
        if args.json:
            out.write(json.dumps({
                "schema": 1,
                "directory": str(directory),
                "state_version": STATE_VERSION,
                "arenas": [{
                    "session": store.session_id_of(info.path),
                    "spec": info.spec_name,
                    "state_version": info.state_version,
                    "arrays": info.arrays,
                    "bytes": info.nbytes,
                    "predictions": info.meta.get("predictions"),
                    "hits": info.meta.get("hits"),
                    "file": info.path.name,
                } for info in infos],
            }, sort_keys=True) + "\n")
            return 0
        rows = [[str(store.session_id_of(info.path)),
                 info.spec_name or "?",
                 f"v{info.state_version}",
                 str(info.arrays),
                 str(info.nbytes),
                 str(info.meta.get("predictions", "?")),
                 info.path.name] for info in infos]
        out.write(format_table(
            ["session", "spec", "state", "arrays", "bytes",
             "steps", "file"], rows,
            title=f"{directory} ({len(infos)} arenas)") + "\n")
        return 0

    if args.state_command == "verify":
        result = store.verify()
        if args.json:
            out.write(json.dumps({
                "schema": 1,
                "directory": str(directory),
                "checked": result["checked"],
                "defects": [{"file": path.name, "reason": reason}
                            for path, reason in result["defects"]],
                "stale": [{"file": path.name, "state_version": version}
                          for path, version in result["stale"]],
            }, sort_keys=True) + "\n")
            return 1 if result["defects"] else 0
        for path, reason in result["defects"]:
            out.write(f"BAD    {path.name}: {reason}\n")
        for path, version in result["stale"]:
            out.write(f"STALE  {path.name}: state v{version} "
                      f"(this build speaks v{STATE_VERSION})\n")
        out.write(f"checked {result['checked']} arenas, "
                  f"{len(result['defects'])} defective, "
                  f"{len(result['stale'])} stale\n")
        return 1 if result["defects"] else 0

    # compact
    result = store.compact()
    if args.json:
        out.write(json.dumps(dict(result, schema=1,
                                  directory=str(directory)),
                             sort_keys=True) + "\n")
        return 0
    removed = result["removed"]
    out.write(f"removed {removed['tmp']} tmp, {removed['corrupt']} "
              f"quarantined, {removed['defective']} defective "
              f"({result['reclaimed_bytes']} bytes reclaimed); "
              f"kept {result['kept']} arenas "
              f"({result['kept_bytes']} bytes)\n")
    return 0


def _cmd_telemetry(args, out) -> int:
    from repro.telemetry.export import (find_run, prometheus_text,
                                        read_events, summary_text,
                                        tail_text)
    root = args.dir or default_telemetry_dir()
    try:
        run = find_run(root, args.run)
    except FileNotFoundError as exc:
        out.write(f"{exc}\n")
        return 1

    if args.telemetry_command == "summary":
        out.write(summary_text(run))
        return 0
    if args.telemetry_command == "export":
        if args.format == "prom":
            out.write(prometheus_text(run))
            return 0
        for event in read_events(run):
            out.write(json.dumps(event, sort_keys=True) + "\n")
        return 0
    # tail
    out.write(tail_text(run, args.lines))
    return 0


def _cmd_serve(args, out) -> int:
    import asyncio
    import signal

    from repro.serve.server import PredictionServer, resolve_loop_factory

    loop_factory, loop_flavor = resolve_loop_factory(args.uvloop)

    def emit(event: dict, human: str) -> None:
        if args.json:
            out.write(json.dumps(dict(event, schema=1), sort_keys=True)
                      + "\n")
        else:
            out.write(human + "\n")
        out.flush()

    async def _serve():
        from repro.telemetry.slo import default_serve_slos
        slos = default_serve_slos(
            p99_latency_s=args.slo_p99_ms / 1e3,
            queue_depth_ceiling=args.slo_queue_depth,
            accuracy_floor=args.slo_accuracy_floor)
        server = PredictionServer(
            host=args.host, port=args.port, shards=args.shards,
            max_batch=args.max_batch, max_delay=args.max_delay_ms / 1e3,
            queue_depth=args.queue_depth,
            request_timeout=args.request_timeout_s,
            obs_port=args.obs_port, slos=slos,
            state_dir=args.state_dir, max_resident=args.max_resident)
        await server.start()
        obs_note = (f", obs http://{args.host}:{server.obs_port}"
                    if server.obs_port is not None else "")
        if args.state_dir:
            obs_note += (f", state {args.state_dir} "
                         f"({server.server_stats()['sessions_spilled']} "
                         f"spilled session(s) adopted)")
        emit({"event": "listening", "host": args.host, "port": server.port,
              "obs_port": server.obs_port, "shards": args.shards,
              "state_dir": args.state_dir,
              "sessions_spilled": (server.server_stats()["sessions_spilled"]
                                   if args.state_dir else 0),
              "loop": loop_flavor},
             f"listening on {args.host}:{server.port} "
             f"({args.shards} shards, batch<={args.max_batch}, "
             f"delay<={args.max_delay_ms:g}ms, loop {loop_flavor}"
             f"{obs_note}) -- SIGTERM/SIGINT drains and exits")
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                signal.signal(signum, lambda *_: stop.set())
        await stop.wait()
        return await server.stop()

    with _maybe_telemetry(args) as telemetry:
        if loop_factory is None:
            stats = asyncio.run(_serve())
        else:
            with asyncio.Runner(loop_factory=loop_factory) as runner:
                stats = runner.run(_serve())
    if args.slow_out:
        with open(args.slow_out, "w") as handle:
            json.dump(stats.get("slow_requests", {}), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
    emit({"event": "drained", "stats": stats,
          "telemetry_run_id": telemetry.run_id if telemetry else None},
         f"drained: {stats['batches']} batches, "
         f"{stats['requests_batched']} requests, "
         f"{stats['sessions_open']} session(s) still open")
    if args.slow_out and not args.json:
        out.write(f"slow-request sample: {args.slow_out}\n")
    if telemetry is not None and not args.json:
        out.write(f"telemetry: {telemetry.dir}\n")
    return 0


def _cmd_loadgen(args, out) -> int:
    from repro.core.spec import spec_from_cli
    from repro.serve.loadgen import run_loadgen
    from repro.trace.cache import cached_trace

    spec = spec_from_cli(args.predictor, 1 << args.l1, 1 << args.l2)
    trace = cached_trace(args.name, args.limit)
    if args.cluster_workers is not None:
        return _loadgen_scaling(args, out, spec, trace)
    if args.port is None:
        raise ValueError(
            "--port is required (or use --cluster-workers to self-host "
            "a fleet)")
    report = run_loadgen(spec, trace, args.host, args.port,
                         window=args.window, mode=args.mode,
                         block=args.block, verify=not args.no_verify,
                         min_speedup=args.min_speedup)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.json:
        out.write(json.dumps(report, indent=2, sort_keys=True) + "\n")
    else:
        out.write(f"{report['spec']} on {report['trace']} "
                  f"({report['records']} records, window "
                  f"{report['window']})\n")
        for name, stats in report["modes"].items():
            latency = stats["latency"]
            out.write(
                f"  {name:8s} {stats['records_per_s']:>12,.0f} rec/s  "
                f"p50 {latency['p50_ms']:.3f}ms  "
                f"p99 {latency['p99_ms']:.3f}ms  "
                f"accuracy {stats['accuracy']:.4f}\n")
        if "speedup" in report:
            out.write(f"  speedup: batched {report['speedup']:.1f}x naive\n")
        if "verify" in report:
            state = "match" if report["verify"]["matched"] else "MISMATCH"
            out.write(f"  offline parity: {state} "
                      f"({report['verify']['offline_hits']} hits)\n")
    failed = (report.get("speedup_ok") is False
              or (report.get("verify") is not None
                  and not report["verify"]["matched"]))
    return 1 if failed else 0


def _loadgen_scaling(args, out, spec, trace) -> int:
    from repro.serve.cluster.loadgen import (render_scaling,
                                             run_scaling_loadgen)
    try:
        workers = [int(n) for n in args.cluster_workers.split(",") if n]
    except ValueError:
        raise ValueError(
            f"--cluster-workers must be comma-separated integers, got "
            f"{args.cluster_workers!r}") from None
    report = run_scaling_loadgen(
        spec, trace, workers=workers, sessions=args.sessions,
        window=args.window, block=args.block, state_dir=args.state_dir,
        min_scaling=args.min_scaling)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.history:
        from repro.harness.bench import append_cluster_history
        append_cluster_history(report, args.history)
    if args.json:
        out.write(json.dumps(report, indent=2, sort_keys=True) + "\n")
    else:
        out.write(render_scaling(report))
        if args.history:
            out.write(f"history: appended to {args.history}\n")
    failed = (not report["parity_ok"]
              or report.get("scaling_ok") is False)
    return 1 if failed else 0


def _cmd_cluster(args, out) -> int:
    if args.cluster_command == "status":
        return _cluster_status(args, out)
    return _cluster_serve(args, out)


def _cluster_status(args, out) -> int:
    import urllib.request

    from repro.harness.report import format_table
    target = args.target
    if target.isdigit():
        target = f"http://127.0.0.1:{target}"
    elif "://" not in target:
        target = f"http://{target}"
    with urllib.request.urlopen(f"{target}/cluster",
                                timeout=args.timeout) as response:
        report = json.loads(response.read().decode("utf-8"))
    if args.json:
        out.write(json.dumps(report, indent=2, sort_keys=True) + "\n")
        return 0
    rows = [[f"{w['worker']}", f"{w['pid']}", f"{w['port']}",
             ("up" if w.get("connected") else "down"),
             f"{w.get('sessions', 0)}", f"{w.get('pending', 0)}",
             f"{w.get('restarts', 0)}",
             f"{w.get('uptime_s', 0):.0f}s"]
            for w in report["workers"]]
    out.write(format_table(
        ["worker", "pid", "port", "state", "sessions", "in-flight",
         "restarts", "uptime"], rows,
        title=(f"cluster @ {target}: "
               f"{report['workers_alive']}/{len(report['workers'])} "
               f"workers, {report['sessions_open']} session(s)")) + "\n")
    out.write(f"frames {report['frames_proxied']:,}  "
              f"records {report['records_proxied']:,}  "
              f"migrations {report['migrations_total']}  "
              f"lost {report['sessions_lost_total']}  "
              f"parked {report['sessions_parked']}\n")
    if report.get("state_dir"):
        out.write(f"state: {report['state_dir']}\n")
    return 0


def _cluster_serve(args, out) -> int:
    import asyncio
    import signal

    from repro.serve.cluster.router import Router
    from repro.serve.cluster.supervisor import ClusterSupervisor

    def emit(event: dict, human: str) -> None:
        if args.json:
            out.write(json.dumps(dict(event, schema=1), sort_keys=True)
                      + "\n")
        else:
            out.write(human + "\n")
        out.flush()

    supervisor = ClusterSupervisor(
        args.workers, host="127.0.0.1", shards=args.shards,
        max_batch=args.max_batch, max_delay=args.max_delay_ms / 1e3,
        queue_depth=args.queue_depth,
        request_timeout=args.request_timeout_s,
        state_dir=args.state_dir,
        max_resident=args.max_resident).start()

    async def _serve():
        router = Router(supervisor, host=args.host, port=args.port,
                        obs_port=args.obs_port, obs_host=args.host,
                        auto_restart=not args.no_auto_restart)
        await router.start()
        obs_note = (f", obs http://{args.host}:{router.obs_port}"
                    if router.obs_port is not None else "")
        if args.state_dir:
            obs_note += (f", state {args.state_dir} "
                         f"({router.adopted_at_start} spilled "
                         f"session(s) adopted)")
        emit({"event": "listening", "host": args.host,
              "port": router.port, "obs_port": router.obs_port,
              "workers": supervisor.describe(),
              "state_dir": args.state_dir,
              "sessions_adopted": router.adopted_at_start},
             f"router listening on {args.host}:{router.port} "
             f"({args.workers} workers{obs_note}) -- SIGTERM/SIGINT "
             f"drains the fleet and exits")
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                signal.signal(signum, lambda *_: stop.set())
        await stop.wait()
        return await router.stop()

    with _maybe_telemetry(args) as telemetry:
        try:
            stats = asyncio.run(_serve())
        finally:
            supervisor.stop()
    emit({"event": "drained", "stats": stats,
          "telemetry_run_id": telemetry.run_id if telemetry else None},
         f"drained: {stats['frames_proxied']} frames proxied, "
         f"{stats['migrations_total']} migration(s), "
         f"{stats['sessions_open']} session(s) still open")
    if telemetry is not None and not args.json:
        out.write(f"telemetry: {telemetry.dir}\n")
    return 0


def _cmd_soak(args, out) -> int:
    from repro.core.spec import spec_from_cli
    from repro.serve.cluster.soak import render_soak, run_soak
    from repro.trace.cache import cached_trace

    duration = args.duration_s
    limit = args.limit
    if args.ci:
        duration = min(duration, 90.0)
        limit = min(limit, 2000)
    spec = spec_from_cli(args.predictor, 1 << args.l1, 1 << args.l2)
    trace = cached_trace(args.name, limit)
    report = run_soak(
        spec, trace, workers=args.workers, sessions=args.sessions,
        duration_s=duration, window=args.window, block=args.block,
        state_dir=args.state_dir, max_burn=args.max_burn,
        poll_interval_s=args.poll_interval_s)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.trace_out:
        with open(args.trace_out, "w") as handle:
            json.dump(report["trace_dump"], handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
    if args.history:
        from repro.harness.bench import append_soak_history
        append_soak_history(report, args.history)
    if args.json:
        out.write(json.dumps(report, indent=2, sort_keys=True) + "\n")
    else:
        out.write(render_soak(report))
        if args.history:
            out.write(f"history: appended to {args.history}\n")
        if args.trace_out:
            out.write(f"trace dump: {args.trace_out}\n")
    return 0 if report["soak_ok"] else 1


def _cmd_top(args, out) -> int:
    from repro.serve.top import run_top
    target = args.target
    if target.isdigit():
        target = f"http://127.0.0.1:{target}"
    elif "://" not in target:
        target = f"http://{target}"
    return run_top(target, interval=args.interval,
                   iterations=args.iterations, once=args.once,
                   out=out, timeout=args.timeout)


_COMMANDS = {
    "workloads": _cmd_workloads,
    "trace": _cmd_trace,
    "run": _cmd_run,
    "predict": _cmd_predict,
    "compare": _cmd_compare,
    "bench": _cmd_bench,
    "tables": _cmd_tables,
    "compile": _cmd_compile,
    "exec": _cmd_exec,
    "disasm": _cmd_disasm,
    "cache": _cmd_cache,
    "state": _cmd_state,
    "telemetry": _cmd_telemetry,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
    "cluster": _cmd_cluster,
    "soak": _cmd_soak,
    "top": _cmd_top,
}


def _expected_error_types() -> tuple:
    """Exception types that are user/environment errors, not bugs.

    These exit 1 with an ``error:`` line; anything else propagates as
    a traceback (a bug should never be silently downgraded).  Name
    lookups therefore surface as dedicated KeyError subclasses rather
    than bare KeyError, and only the OSError flavours a user can cause
    (missing/unreadable paths, refused or dropped connections, socket
    timeouts) are listed -- a stray KeyError or OSError from a genuine
    bug still produces a traceback.
    """
    from repro.core.state import ArenaError
    from repro.harness.experiments import UnknownExperimentError
    from repro.serve.client import ServeError
    from repro.serve.protocol import ProtocolError
    from repro.trace.trace import TraceCacheError
    from repro.workloads.registry import UnknownWorkloadError
    return (ValueError, FileNotFoundError, IsADirectoryError,
            PermissionError, ConnectionError, TimeoutError,
            TraceCacheError, ProtocolError, ServeError, ArenaError,
            UnknownWorkloadError, UnknownExperimentError)


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code.

    Expected failures (bad arguments, missing files, protocol/server
    errors) print ``error: ...`` on stderr and return 1; programming
    errors still raise.
    """
    args = build_parser().parse_args(argv)
    # Recorded verbatim in the telemetry run manifest.
    args._argv = list(argv) if argv is not None else sys.argv[1:]
    try:
        return _COMMANDS[args.command](args, out or sys.stdout)
    except Exception as exc:  # noqa: BLE001 - filtered just below
        if not isinstance(exc, _expected_error_types()):
            raise
        message = exc.args[0] if (isinstance(exc, KeyError)
                                  and exc.args) else exc
        sys.stderr.write(f"error: {message}\n")
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
