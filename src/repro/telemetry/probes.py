"""Domain probes: predictor and VM instrumentation behind the registry.

Probes translate the repo's existing measurement machinery -- the
table-usage accounting of :mod:`repro.telemetry.tables`
(:func:`~repro.telemetry.tables.stride_occupancy`, the
:class:`~repro.telemetry.tables.AliasingAnalyzer`, the
:class:`~repro.telemetry.tables.TableUsageAuditor`), the confidence
estimators of :mod:`repro.core.estimator`, the VM's sampling profile --
into registry metrics plus one ``probe`` event per sample in the run's
JSONL log.

Every probe is a no-op unless a telemetry run is active, and the
heavyweight ones (occupancy, aliasing, table usage, confidence replay
a *fresh* predictor over the trace) are bounded to a prefix of
:func:`probe_sample_limit` records so enabling telemetry scales the
run's cost by a constant factor, not by the sweep size squared.

The ``table_usage`` event is emitted once per (spec, trace) pair by
whichever path measures first: :meth:`BatchEngine.run` publishes it
from the vectorised kernels, :func:`probe_table_usage` from a scalar
replay; they share the run's once() key and -- by the parity suite --
the exact payload, so scalar and batch runs log identical samples.
"""

from __future__ import annotations

import os
from typing import Callable, Optional

from repro.telemetry import run as _run
from repro.telemetry.registry import registry

__all__ = [
    "probe_sample_limit", "record_accuracy", "probe_context_tables",
    "probe_table_usage", "probe_confidence", "record_vm_profile",
]

_DEFAULT_SAMPLE_LIMIT = 8192


def probe_sample_limit() -> int:
    """Records replayed by table/alias/confidence probes
    (``REPRO_TELEMETRY_SAMPLE``, default 8192; 0 disables the
    heavyweight probes entirely)."""
    env = os.environ.get("REPRO_TELEMETRY_SAMPLE")
    if env:
        limit = int(env)
        if limit < 0:
            raise ValueError(
                f"REPRO_TELEMETRY_SAMPLE must be >= 0, got {limit}")
        return limit
    return _DEFAULT_SAMPLE_LIMIT


# ------------------------------------------------------------- accuracy

def record_accuracy(predictor, trace_name: str, correct: int, total: int,
                    seconds: float) -> None:
    """Counters for one ``measure_accuracy`` call (telemetry enabled)."""
    reg = registry()
    labels = dict(predictor=predictor.name, trace=trace_name)
    reg.counter("repro_predictions_total",
                "Predictions issued by the measurement harness",
                labels=("predictor", "trace")).inc(total, **labels)
    reg.counter("repro_prediction_hits_total",
                "Correct predictions", labels=("predictor", "trace")
                ).inc(correct, **labels)
    reg.gauge("repro_predictor_storage_kbit",
              "Modelled predictor state (paper's Kbit axis)",
              labels=("predictor",)).set(predictor.storage_kbit(),
                                         predictor=predictor.name)
    reg.histogram("repro_measure_seconds",
                  "Wall time of one measure_accuracy call",
                  buckets=(.01, .05, .25, 1, 5, 30),
                  labels=("predictor",)).observe(seconds,
                                                 predictor=predictor.name)


# -------------------------------------------------- context-table probes

def probe_context_tables(predictor_factory: Callable, trace) -> None:
    """Occupancy + aliasing sample for a context predictor on *trace*.

    Replays a bounded prefix through fresh instances using the
    table-usage machinery of :mod:`~repro.telemetry.tables`; records
    registry gauges and one ``probe`` event each.  Non-context
    predictors (no level-2 table) are skipped silently.
    """
    run = _run.active_run()
    if run is None:
        return
    limit = probe_sample_limit()
    if limit == 0:
        return
    from repro.core.spec import PredictorSpec
    if (isinstance(predictor_factory, PredictorSpec)
            and predictor_factory.family not in ("fcm", "dfcm")):
        return  # spec says non-context: skip without building an instance
    from repro.core.dfcm import DFCMPredictor
    from repro.core.fcm import FCMPredictor
    from repro.telemetry.tables import (ALIAS_CATEGORIES, AliasingAnalyzer,
                                        stride_occupancy)
    probe = predictor_factory()
    if not isinstance(probe, (FCMPredictor, DFCMPredictor)):
        return
    if not run.once(("context_tables", probe.name, trace.name)):
        return
    records = trace.records()[:limit]
    if not records:
        return
    reg = registry()
    labels = dict(predictor=probe.name, trace=trace.name)

    occ = stride_occupancy(predictor_factory(), records)
    entries_used = occ.entries_with_at_least(1)
    occupancy_ratio = entries_used / occ.l2_entries
    top16 = occ.top_share(16)
    reg.gauge("repro_l2_stride_entries_used",
              "Level-2 entries taking at least one stride access "
              "(sampled prefix)", labels=("predictor", "trace")
              ).set(entries_used, **labels)
    reg.gauge("repro_l2_stride_occupancy_ratio",
              "Fraction of the level-2 table touched by stride accesses "
              "(sampled prefix)", labels=("predictor", "trace")
              ).set(occupancy_ratio, **labels)
    reg.gauge("repro_l2_stride_top16_share",
              "Share of stride accesses on the 16 hottest level-2 "
              "entries (sampled prefix)", labels=("predictor", "trace")
              ).set(top16, **labels)
    run.emit({
        "type": "probe", "probe": "l2_occupancy",
        "predictor": probe.name, "trace": trace.name,
        "sampled_records": len(records),
        "l2_entries": occ.l2_entries,
        "stride_accesses": occ.stride_accesses,
        "entries_used": entries_used,
        "occupancy_ratio": round(occupancy_ratio, 6),
        "top16_share": round(top16, 6),
    })

    report = AliasingAnalyzer(predictor_factory()).run(records)
    alias_gauge = reg.gauge(
        "repro_alias_fraction",
        "Share of sampled predictions per alias category",
        labels=("predictor", "trace", "category"))
    fractions = {}
    for category in ALIAS_CATEGORIES:
        fraction = report.fraction_of_predictions(category)
        fractions[category] = round(fraction, 6)
        alias_gauge.set(fraction, category=category, **labels)
    run.emit({
        "type": "probe", "probe": "aliasing",
        "predictor": probe.name, "trace": trace.name,
        "sampled_records": len(records),
        "fractions": fractions,
        "accuracy": round(report.overall_accuracy(), 6),
    })


def probe_table_usage(predictor_factory: Callable, trace) -> None:
    """Table-usage sample via a *scalar* auditor replay.

    The scalar-path counterpart of the batch engine's kernel-side
    probe: when the batch engine already published this (spec, trace)
    sample the shared once() key makes this a no-op; otherwise a
    bounded prefix replays through a fresh predictor instance and the
    identical ``table_usage`` event is emitted.
    """
    run = _run.active_run()
    if run is None:
        return
    limit = probe_sample_limit()
    if limit == 0:
        return
    from repro.core.spec import PredictorSpec, spec_of
    from repro.telemetry.tables import (AUDITED_FAMILIES, TableUsageAuditor,
                                        emit_table_usage)
    if isinstance(predictor_factory, PredictorSpec):
        spec = predictor_factory
    else:
        spec = spec_of(predictor_factory())
    if spec is None or spec.family not in AUDITED_FAMILIES:
        return
    if not run.once(("table_usage", spec.name, trace.name)):
        return
    pcs = trace.pcs[:limit]
    values = trace.values[:limit]
    if not len(pcs):
        return
    auditor = TableUsageAuditor(spec, engine="scalar")
    auditor.update(pcs, values)
    emit_table_usage(run, auditor.report(), trace.name)


def probe_confidence(predictor_factory: Callable, trace) -> None:
    """Confidence-outcome sample: wrap a fresh predictor in the paper's
    saturating-counter estimator and replay a bounded prefix."""
    run = _run.active_run()
    if run is None:
        return
    limit = probe_sample_limit()
    if limit == 0:
        return
    from repro.core.estimator import (ConfidentPredictor,
                                      CounterConfidencePredictor,
                                      measure_confidence)
    probe = predictor_factory()
    if not isinstance(probe, ConfidentPredictor):
        probe = CounterConfidencePredictor(probe, 1 << 12)
    if not run.once(("confidence", probe.name, trace.name)):
        return
    sample = trace if len(trace) <= limit else trace.head(limit)
    if not len(sample):
        return
    outcome = measure_confidence(probe, sample)
    coverage = outcome.confident / outcome.total if outcome.total else 0.0
    confident_accuracy = (outcome.confident_correct / outcome.confident
                          if outcome.confident else 0.0)
    reg = registry()
    labels = dict(predictor=probe.name, trace=trace.name)
    reg.gauge("repro_confidence_coverage",
              "Fraction of sampled predictions deemed confident",
              labels=("predictor", "trace")).set(coverage, **labels)
    reg.gauge("repro_confidence_accuracy",
              "Accuracy within the confident subset (sampled prefix)",
              labels=("predictor", "trace")).set(confident_accuracy,
                                                 **labels)
    run.emit({
        "type": "probe", "probe": "confidence",
        "predictor": probe.name, "trace": trace.name,
        "sampled_records": outcome.total,
        "coverage": round(coverage, 6),
        "accuracy_when_confident": round(confident_accuracy, 6),
    })


# ------------------------------------------------------------ VM profile

def record_vm_profile(profile, benchmark: str) -> None:
    """Registry metrics + one ``probe`` event for a finished VM profile
    (see :class:`repro.vm.profile.VMProfile`)."""
    run = _run.active_run()
    if run is None:
        return
    reg = registry()
    reg.counter("repro_vm_instructions_total",
                "Instructions retired by the VM during capture",
                labels=("benchmark",)).inc(profile.retired,
                                           benchmark=benchmark)
    syscall_counter = reg.counter("repro_vm_syscalls_total",
                                  "Syscalls executed during capture",
                                  labels=("benchmark", "code"))
    for code, count in sorted(profile.syscall_counts.items()):
        syscall_counter.inc(count, benchmark=benchmark, code=code)
    op_counter = reg.counter("repro_vm_opcode_samples_total",
                             "Sampled opcode mix during capture",
                             labels=("benchmark", "mnemonic"))
    for mnemonic, count in sorted(profile.op_counts.items()):
        op_counter.inc(count, benchmark=benchmark, mnemonic=mnemonic)
    run.emit({
        "type": "probe", "probe": "vm_profile",
        "benchmark": benchmark,
        "retired_instructions": profile.retired,
        "sample_interval": profile.sample_interval,
        "samples": profile.samples,
        "opcode_mix": dict(sorted(profile.op_counts.items())),
        "syscall_counts": {str(k): v for k, v
                           in sorted(profile.syscall_counts.items())},
        "hot_pcs": [[f"{pc:#010x}", count]
                    for pc, count in profile.top_pcs(10)],
    })
