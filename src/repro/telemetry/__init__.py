"""Unified observability: metrics registry, tracing spans, run sinks.

The repo's single observability surface.  Three layers:

1. **Registry** (:mod:`repro.telemetry.registry`) -- process-wide
   counters, gauges and fixed-bucket histograms with labels.  Always
   live; recording is plain dict arithmetic.
2. **Runs and spans** (:mod:`repro.telemetry.run`,
   :mod:`repro.telemetry.spans`) -- a run scopes a unit of work to a
   directory (manifest + JSONL event sink + metrics dump); spans are
   nested wall-time scopes emitted into that sink.  With no active run
   every span is the shared no-op singleton and every probe returns
   immediately: the measurement hot loops are byte-for-byte the
   uninstrumented code.
3. **Probes and export** (:mod:`repro.telemetry.probes`,
   :mod:`repro.telemetry.export`) -- domain instrumentation (predictor
   table occupancy, aliasing, confidence, VM profiles) and the read
   side (``repro telemetry summary|export|tail``, Prometheus text
   format).
4. **Live serving surfaces** (:mod:`repro.telemetry.live`,
   :mod:`repro.telemetry.slo`) -- scraping the in-process registry
   while it is still being written (the serve ``/metrics`` endpoint)
   and multi-window burn-rate evaluation of service-level objectives
   (the serve ``/healthz``/``/slo`` endpoints and ``repro top``).

Typical producer::

    from repro import telemetry

    with telemetry.telemetry_run("telemetry/", command="sweep"):
        with telemetry.span("experiment", experiment="fig10"):
            ...  # instrumented code records metrics and child spans

Typical consumer::

    repro telemetry summary --dir telemetry/
    repro telemetry export --format prom --dir telemetry/
"""

from repro.telemetry.live import live_prometheus_text, live_snapshot
from repro.telemetry.registry import (Counter, Gauge, Histogram,
                                      MetricError, MetricsRegistry,
                                      registry)
from repro.telemetry.run import (CollectorRun, TelemetryRun, active_run,
                                 collecting_run, detach_run, enabled,
                                 finish_run, start_run, telemetry_run)
from repro.telemetry.slo import SLO, SLOMonitor, default_serve_slos
from repro.telemetry.spans import NOOP_SPAN, NoopSpan, Span, current_span, span

__all__ = [
    "registry", "MetricsRegistry", "MetricError",
    "Counter", "Gauge", "Histogram",
    "TelemetryRun", "CollectorRun", "start_run", "finish_run",
    "active_run", "enabled", "telemetry_run", "detach_run",
    "collecting_run",
    "span", "current_span", "Span", "NoopSpan", "NOOP_SPAN",
    "live_snapshot", "live_prometheus_text",
    "SLO", "SLOMonitor", "default_serve_slos",
]
