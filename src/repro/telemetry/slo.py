"""Service-level objectives with multi-window burn-rate alerting.

An :class:`SLO` names a stream of good/bad observations and the
fraction that must be good (the *objective*); the remainder is the
error budget.  Everything the serving layer watches reduces to such a
stream:

- **latency**: a request is good when it finished within ``threshold``
  seconds -- an objective of 0.99 is exactly "p99 <= threshold";
- **accuracy**: a session sample is good when its recent hit rate is
  at or above the ``threshold`` floor;
- **queue_depth**: a shard sample is good when its queue is at or
  below the ``threshold`` ceiling.

The :class:`SLOMonitor` keeps a time-bucketed tally per SLO and
evaluates the classic two-window burn-rate rule: the *burn rate* over
a window is ``error_rate / (1 - objective)`` (1.0 = consuming budget
exactly as fast as allowed), and an alert fires only when **both** the
fast and the slow window burn at ``burn_rate`` or more -- the fast
window makes alerts quick to clear, the slow window keeps one
stray slow request from paging anyone.

The monitor is deliberately free of I/O and clocks it doesn't own
(inject ``clock`` for tests); the serving layer wires it to telemetry
events, gauges and ``/healthz`` (see :mod:`repro.serve.server`).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

__all__ = ["SLO", "SLOMonitor", "default_serve_slos"]


@dataclass(frozen=True)
class SLO:
    """One objective over a stream of good/bad observations."""

    name: str
    kind: str                  # "latency" | "accuracy" | "queue_depth"
    threshold: float           # seconds bound / hit-rate floor / depth cap
    objective: float = 0.99    # required good fraction
    fast_window_s: float = 60.0
    slow_window_s: float = 300.0
    burn_rate: float = 2.0     # alert at >= this burn in BOTH windows

    def __post_init__(self):
        if not 0.0 < self.objective < 1.0:
            raise ValueError(f"{self.name}: objective must be in (0, 1), "
                             f"got {self.objective}")
        if self.fast_window_s <= 0 or self.slow_window_s < self.fast_window_s:
            raise ValueError(
                f"{self.name}: need 0 < fast_window_s <= slow_window_s, "
                f"got {self.fast_window_s}/{self.slow_window_s}")
        if self.burn_rate <= 0:
            raise ValueError(f"{self.name}: burn_rate must be positive, "
                             f"got {self.burn_rate}")

    @property
    def budget(self) -> float:
        return 1.0 - self.objective

    def describe(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "threshold": self.threshold,
            "objective": self.objective,
            "fast_window_s": self.fast_window_s,
            "slow_window_s": self.slow_window_s,
            "burn_rate": self.burn_rate,
        }


class _Stream:
    """Time-ordered (ts, good, bad) tallies for one SLO."""

    def __init__(self, slo: SLO):
        self.slo = slo
        self.entries: deque = deque()
        self.total_good = 0
        self.total_bad = 0

    def record(self, good: int, bad: int, now: float) -> None:
        self.entries.append((now, good, bad))
        self.total_good += good
        self.total_bad += bad

    def prune(self, now: float) -> None:
        horizon = now - self.slo.slow_window_s
        entries = self.entries
        while entries and entries[0][0] < horizon:
            entries.popleft()

    def window(self, seconds: float, now: float) -> tuple:
        horizon = now - seconds
        good = bad = 0
        for ts, g, b in reversed(self.entries):
            if ts < horizon:
                break
            good += g
            bad += b
        return good, bad


def _burn(good: int, bad: int, budget: float) -> float:
    total = good + bad
    if not total:
        return 0.0
    return (bad / total) / budget


class SLOMonitor:
    """Multi-window burn-rate evaluation over a set of :class:`SLO`."""

    def __init__(self, slos: Iterable[SLO],
                 clock: Callable[[], float] = time.monotonic):
        self._streams: Dict[str, _Stream] = {}
        for slo in slos:
            if slo.name in self._streams:
                raise ValueError(f"duplicate SLO name {slo.name!r}")
            self._streams[slo.name] = _Stream(slo)
        self._clock = clock
        self._alerting: List[str] = []

    @property
    def slos(self) -> List[SLO]:
        return [stream.slo for stream in self._streams.values()]

    def record(self, name: str, good: int = 0, bad: int = 0,
               now: Optional[float] = None) -> None:
        """Add *good*/*bad* observations to the named stream."""
        stream = self._streams.get(name)
        if stream is None:
            raise KeyError(f"unknown SLO {name!r}")
        if good or bad:
            stream.record(good, bad, self._clock() if now is None else now)

    def evaluate(self, now: Optional[float] = None) -> List[dict]:
        """Burn rates and alert state per SLO (also caches
        :meth:`alerting` for cheap health checks between evaluations)."""
        now = self._clock() if now is None else now
        statuses = []
        alerting = []
        for stream in self._streams.values():
            slo = stream.slo
            stream.prune(now)
            fast_good, fast_bad = stream.window(slo.fast_window_s, now)
            slow_good, slow_bad = stream.window(slo.slow_window_s, now)
            fast_burn = _burn(fast_good, fast_bad, slo.budget)
            slow_burn = _burn(slow_good, slow_bad, slo.budget)
            alert = fast_burn >= slo.burn_rate and slow_burn >= slo.burn_rate
            if alert:
                alerting.append(slo.name)
            statuses.append(dict(slo.describe(), **{
                "fast_burn": round(fast_burn, 4),
                "slow_burn": round(slow_burn, 4),
                "fast_good": fast_good, "fast_bad": fast_bad,
                "slow_good": slow_good, "slow_bad": slow_bad,
                "total_good": stream.total_good,
                "total_bad": stream.total_bad,
                "alerting": alert,
            }))
        self._alerting = alerting
        return statuses

    def alerting(self) -> List[str]:
        """Names alerting as of the last :meth:`evaluate`."""
        return list(self._alerting)

    @property
    def healthy(self) -> bool:
        return not self._alerting


def default_serve_slos(p99_latency_s: float = 0.25,
                       queue_depth_ceiling: float = 512.0,
                       accuracy_floor: Optional[float] = None,
                       fast_window_s: float = 60.0,
                       slow_window_s: float = 300.0,
                       burn_rate: float = 2.0) -> List[SLO]:
    """The serving layer's stock objectives.

    Latency and queue depth are always watched; the per-session
    accuracy floor is opt-in (a sensible floor depends on the
    workload being served).
    """
    windows = {"fast_window_s": fast_window_s,
               "slow_window_s": slow_window_s, "burn_rate": burn_rate}
    slos = [
        SLO(name="step_latency_p99", kind="latency",
            threshold=p99_latency_s, objective=0.99, **windows),
        SLO(name="queue_depth", kind="queue_depth",
            threshold=queue_depth_ceiling, objective=0.9, **windows),
    ]
    if accuracy_floor is not None:
        slos.append(SLO(name="session_accuracy", kind="accuracy",
                        threshold=accuracy_floor, objective=0.9, **windows))
    return slos
