"""Tracing spans: nested wall-time scopes emitted to the run's sink.

A span is a context manager marking one unit of work -- ``capture``,
``experiment``, a per-trace measurement, one sweep point.  Spans nest
through a process-level stack: each span records its parent's id and
its depth, so the JSONL event log reconstructs the tree without any
global clock coordination.

The zero-overhead contract: :func:`span` returns the shared
:data:`NOOP_SPAN` singleton whenever no telemetry run is active --
no allocation, no timestamp, no stack traffic.  Instrumentation sites
may therefore call it unconditionally.

Span events are emitted on *exit* (one line per span, with duration),
so a crash mid-span loses only the open spans, and readers never see
half-open records.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.telemetry import run as _run

__all__ = ["Span", "NoopSpan", "NOOP_SPAN", "span", "current_span"]

#: Open spans, innermost last (one process == one measurement thread).
_STACK: List["Span"] = []


class NoopSpan:
    """Shared do-nothing span for disabled telemetry; see :func:`span`."""

    __slots__ = ()

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key: str, value) -> None:
        """Discard the attribute (telemetry is off)."""


#: The singleton every disabled :func:`span` call returns.
NOOP_SPAN = NoopSpan()


class Span:
    """One live tracing span; use via ``with span(...) as sp:``."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "depth",
                 "_start", "duration_s", "status")

    def __init__(self, name: str, attrs: dict):
        self.name = name
        self.attrs = attrs
        self.span_id: Optional[str] = None
        self.parent_id: Optional[str] = None
        self.depth = 0
        self._start = 0.0
        self.duration_s: Optional[float] = None
        self.status = "ok"

    def __enter__(self) -> "Span":
        run = _run.active_run()
        if run is not None:
            self.span_id = run.next_span_id()
        if _STACK:
            parent = _STACK[-1]
            self.parent_id = parent.span_id
            self.depth = parent.depth + 1
        _STACK.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_s = time.perf_counter() - self._start
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("error", exc_type.__name__)
        if _STACK and _STACK[-1] is self:
            _STACK.pop()
        else:  # pragma: no cover - defensive against misuse
            try:
                _STACK.remove(self)
            except ValueError:
                pass
        run = _run.active_run()
        if run is not None:
            run.emit({
                "type": "span",
                "name": self.name,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "depth": self.depth,
                "duration_s": round(self.duration_s, 6),
                "status": self.status,
                "attrs": self.attrs,
            })
        return False

    def set(self, key: str, value) -> None:
        """Attach or overwrite one attribute on the span."""
        self.attrs[key] = value


def span(name: str, **attrs):
    """A new span when a telemetry run is active, else the no-op
    singleton.  Always usable as ``with span("name", k=v) as sp:``."""
    if _run.active_run() is None:
        return NOOP_SPAN
    return Span(name, attrs)


def current_span():
    """The innermost open span, or None (noop spans never appear)."""
    return _STACK[-1] if _STACK else None
