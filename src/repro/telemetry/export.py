"""Telemetry export surfaces: run discovery, Prometheus text, summaries.

These functions read the on-disk artifacts written by
:class:`repro.telemetry.run.TelemetryRun` -- they never touch the live
registry, so they work on any run directory, including ones produced by
another process (the ``repro telemetry`` CLI is a thin wrapper).

The Prometheus output follows the text exposition format version
0.0.4: ``# HELP``/``# TYPE`` headers, escaped label values, histograms
as cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional

__all__ = ["RunInfo", "list_runs", "find_run", "read_events",
           "prometheus_text", "snapshot_prometheus_text",
           "summary_text", "tail_text"]


@dataclass(frozen=True)
class RunInfo:
    """One discovered run directory and its parsed manifest."""

    dir: Path
    manifest: dict

    @property
    def run_id(self) -> str:
        return self.manifest.get("run_id", self.dir.name)


def list_runs(root) -> List[RunInfo]:
    """Runs under *root*, oldest first (manifest-bearing subdirs)."""
    root = Path(root)
    if not root.is_dir():
        return []
    runs = []
    for child in sorted(root.iterdir()):
        manifest_path = child / "manifest.json"
        if not manifest_path.is_file():
            continue
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        runs.append(RunInfo(dir=child, manifest=manifest))
    runs.sort(key=lambda r: (r.manifest.get("started_unix", 0),
                             r.manifest.get("started_at", ""), r.dir.name))
    return runs


def find_run(root, run_id: Optional[str] = None) -> RunInfo:
    """The named run under *root*, or the latest one.

    Raises :class:`FileNotFoundError` when nothing matches, so the CLI
    can exit with a clean message instead of a traceback.
    """
    runs = list_runs(root)
    if not runs:
        raise FileNotFoundError(f"no telemetry runs under {root}")
    if run_id is None:
        return runs[-1]
    for run in runs:
        if run.run_id == run_id or run.dir.name == run_id:
            return run
    known = ", ".join(r.run_id for r in runs)
    raise FileNotFoundError(f"no run {run_id!r} under {root}; known: {known}")


def read_events(run: RunInfo) -> Iterator[dict]:
    """Parsed events.jsonl lines (skips nothing; raises on bad JSON)."""
    path = run.dir / "events.jsonl"
    if not path.is_file():
        return
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


def _read_metrics(run: RunInfo) -> dict:
    path = run.dir / "metrics.json"
    if not path.is_file():
        return {}
    return json.loads(path.read_text())


# ----------------------------------------------------------- prometheus

_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_]")


def _sanitize_name(name: str) -> str:
    """Coerce *name* into a legal Prometheus metric name.

    The live registry already rejects bad names, but snapshots can
    come from other processes or hand-written files -- the exposition
    must stay parseable regardless."""
    name = _NAME_BAD_CHARS.sub("_", name) or "_"
    if name[0].isdigit():
        name = "_" + name
    return name


def _sanitize_label_name(name: str) -> str:
    name = _LABEL_BAD_CHARS.sub("_", name) or "_"
    if name[0].isdigit():
        name = "_" + name
    return name


def _escape_label(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _escape_help(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n")


def _label_text(labels: dict, extra: Optional[dict] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{_sanitize_label_name(str(k))}="{_escape_label(str(v))}"'
        for k, v in merged.items())
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if isinstance(value, float) and value != int(value):
        return repr(value)
    return str(int(value))


def _exemplar_suffix(exemplars, bound) -> str:
    """OpenMetrics-style exemplar annotation for one bucket line."""
    for exemplar_bound, exemplar in exemplars or []:
        if exemplar_bound == bound and exemplar:
            return (f' # {{trace_id="{_escape_label(str(exemplar["trace_id"]))}"}}'
                    f' {_format_value(exemplar["value"])}')
    return ""


def _histogram_lines(name: str, labels: dict, value: dict,
                     exemplars: bool) -> List[str]:
    lines = []
    count = int(value.get("count", 0))
    exemplar_list = value.get("exemplars") if exemplars else None
    saw_inf = False
    for bound, bucket_count in value["buckets"]:
        inf = bound == "+Inf"
        saw_inf = saw_inf or inf
        le = "+Inf" if inf else _format_value(bound)
        lines.append(
            f"{name}_bucket{_label_text(labels, {'le': le})} "
            f"{int(bucket_count)}"
            + _exemplar_suffix(exemplar_list, bound))
    if not saw_inf:
        # A snapshot may carry finite buckets only; the exposition
        # format still requires the +Inf bucket (== _count).
        lines.append(f"{name}_bucket{_label_text(labels, {'le': '+Inf'})} "
                     f"{count}")
    lines.append(f"{name}_sum{_label_text(labels)} "
                 f"{_format_value(value.get('sum', 0))}")
    lines.append(f"{name}_count{_label_text(labels)} {count}")
    return lines


def snapshot_prometheus_text(snapshot: dict, exemplars: bool = False) -> str:
    """Render a registry :meth:`~MetricsRegistry.snapshot` dict as
    Prometheus text exposition format 0.0.4.

    Metric and label names are sanitised, label values escaped, and
    histograms always emit the ``+Inf`` bucket plus ``_sum`` and
    ``_count`` -- even for snapshots that predate those guarantees.
    With ``exemplars=True``, bucket lines carry their last trace-id
    exemplar as an OpenMetrics-style ``# {trace_id="..."}`` suffix
    (strict 0.0.4 consumers should keep the default).
    """
    lines = []
    for raw_name in sorted(snapshot):
        data = snapshot[raw_name]
        name = _sanitize_name(raw_name)
        kind = data.get("kind", "untyped")
        help_text = data.get("help", "")
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in data.get("samples", []):
            labels = sample.get("labels", {})
            value = sample.get("value")
            if kind == "histogram":
                lines.extend(_histogram_lines(name, labels, value,
                                              exemplars))
            else:
                lines.append(f"{name}{_label_text(labels)} "
                             f"{_format_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def prometheus_text(run: RunInfo) -> str:
    """The run's closing metrics snapshot in Prometheus text format."""
    return snapshot_prometheus_text(_read_metrics(run).get("metrics", {}))


# -------------------------------------------------------------- summary

def summary_text(run: RunInfo, max_spans: int = 12) -> str:
    """Human-readable digest: manifest header, span tree, key metrics."""
    manifest = run.manifest
    lines = [f"run {run.run_id}"]
    for key in ("command", "started_at", "finished_at", "duration_s",
                "status", "git_sha", "python"):
        value = manifest.get(key)
        if value is not None:
            lines.append(f"  {key}: {value}")
    config = manifest.get("config") or {}
    if config.get("trace_length") is not None:
        lines.append(f"  trace_length: {config['trace_length']}")

    spans = [e for e in read_events(run) if e.get("type") == "span"]
    if spans:
        lines.append("")
        lines.append(f"spans ({len(spans)} closed; slowest per name):")
        slowest = {}
        for event in spans:
            name = event.get("name", "?")
            best = slowest.get(name)
            if best is None or event.get("duration_s", 0) > best.get(
                    "duration_s", 0):
                slowest[name] = event
        ranked = sorted(slowest.values(),
                        key=lambda e: e.get("duration_s", 0), reverse=True)
        counts = {}
        for event in spans:
            counts[event.get("name", "?")] = counts.get(
                event.get("name", "?"), 0) + 1
        for event in ranked[:max_spans]:
            name = event.get("name", "?")
            lines.append(f"  {name:<14} x{counts[name]:<5} "
                         f"max {event.get('duration_s', 0):.4f}s "
                         f"depth {event.get('depth', 0)}")

    probes = [e for e in read_events(run) if e.get("type") == "probe"]
    if probes:
        kinds = {}
        for event in probes:
            kinds[event.get("probe", "?")] = kinds.get(
                event.get("probe", "?"), 0) + 1
        lines.append("")
        lines.append("probes: " + ", ".join(
            f"{kind} x{count}" for kind, count in sorted(kinds.items())))

    delta = _read_metrics(run).get("delta", {})
    counters = []
    for name in sorted(delta):
        data = delta[name]
        if data.get("kind") != "counter":
            continue
        total = sum(s["value"] for s in data.get("samples", []))
        counters.append((name, total))
    if counters:
        lines.append("")
        lines.append("counters (this run):")
        for name, total in counters:
            lines.append(f"  {name:<36} {_format_value(total)}")
    return "\n".join(lines) + "\n"


def tail_text(run: RunInfo, n: int = 20) -> str:
    """The last *n* event lines of the run, verbatim JSONL."""
    path = run.dir / "events.jsonl"
    if not path.is_file():
        return ""
    lines = path.read_text(encoding="utf-8").splitlines()
    return "\n".join(lines[-n:]) + ("\n" if lines else "")
