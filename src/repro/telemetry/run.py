"""Run-scoped telemetry: the event sink, the manifest, run lifecycle.

A *run* is one observed unit of work -- a ``repro run``/``predict``/
``compare`` invocation, or any block a caller wraps in
:func:`telemetry_run`.  Starting a run creates a fresh directory
``<root>/<run_id>/`` holding:

``manifest.json``
    Reproducibility header: run id, start/finish timestamps, git SHA,
    python/platform, the command and argv, and the harness config
    (``REPRO_TRACE_LEN``, ``REPRO_TRACE_CACHE``, workload limits).
``events.jsonl``
    One JSON object per line: ``run_start``, closed ``span`` records
    (with nesting ids), domain ``probe`` samples, ``run_end``.
``metrics.json``
    The registry snapshot at close, plus the delta against the
    snapshot taken at start (the run's own contribution).

Exactly one run can be active per process; while none is,
:func:`enabled` is False and every instrumentation site takes its
zero-cost path (no-op spans, probes skipped, nothing written).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Optional

from repro.telemetry.registry import registry

__all__ = ["TelemetryRun", "CollectorRun", "start_run", "finish_run",
           "active_run", "enabled", "telemetry_run", "detach_run",
           "collecting_run"]

_ACTIVE_RUN: Optional["TelemetryRun"] = None
_RUN_SEQ = 0


def _git_sha() -> Optional[str]:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=5)
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def _harness_config() -> dict:
    from repro.harness.config import default_trace_length
    try:
        trace_len = default_trace_length()
    except ValueError:
        trace_len = None
    return {
        "trace_length": trace_len,
        "REPRO_TRACE_LEN": os.environ.get("REPRO_TRACE_LEN"),
        "REPRO_TRACE_CACHE": os.environ.get("REPRO_TRACE_CACHE"),
        "REPRO_TELEMETRY_SAMPLE": os.environ.get("REPRO_TELEMETRY_SAMPLE"),
    }


class TelemetryRun:
    """One run directory: manifest + JSONL event sink + metrics dump."""

    def __init__(self, root, command: Optional[str] = None,
                 argv: Optional[list] = None,
                 extra: Optional[dict] = None):
        global _RUN_SEQ
        _RUN_SEQ += 1
        self.root = Path(root)
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
        self.run_id = f"run-{stamp}-p{os.getpid()}-{_RUN_SEQ}"
        self.dir = self.root / self.run_id
        self.dir.mkdir(parents=True, exist_ok=True)
        self.started_at = time.time()
        self._start_perf = time.perf_counter()
        self._span_seq = 0
        self._event_count = 0
        self._once = set()
        self._start_snapshot = registry().snapshot()
        self.manifest = {
            "schema": 1,
            "run_id": self.run_id,
            "started_at": _iso(self.started_at),
            "started_unix": round(self.started_at, 6),
            "command": command,
            "argv": list(argv) if argv is not None else None,
            "git_sha": _git_sha(),
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "config": _harness_config(),
        }
        if extra:
            self.manifest.update(extra)
        self._write_manifest()
        self._events = open(self.dir / "events.jsonl", "w", encoding="utf-8")
        self.emit({"type": "run_start", "run_id": self.run_id})

    # ------------------------------------------------------------- sink

    def emit(self, event: dict) -> None:
        """Append one event line; a ``ts`` (seconds since run start) is
        stamped on, the caller supplies everything else."""
        if self._events.closed:
            return
        event = dict(event)
        event.setdefault("ts", round(time.perf_counter() - self._start_perf,
                                     6))
        self._events.write(json.dumps(event, sort_keys=True,
                                      default=str) + "\n")
        self._event_count += 1

    def next_span_id(self) -> str:
        self._span_seq += 1
        return f"s{self._span_seq}"

    def once(self, key) -> bool:
        """True the first time *key* is seen this run (dedup helper for
        probes that would otherwise recompute identical samples)."""
        if key in self._once:
            return False
        self._once.add(key)
        return True

    # -------------------------------------------------------- lifecycle

    def close(self, status: str = "ok") -> None:
        if self._events.closed:
            return
        self.emit({"type": "run_end", "run_id": self.run_id,
                   "status": status})
        self._events.close()
        snapshot = registry().snapshot()
        metrics = {
            "run_id": self.run_id,
            "metrics": snapshot,
            "delta": _snapshot_delta(self._start_snapshot, snapshot),
        }
        (self.dir / "metrics.json").write_text(
            json.dumps(metrics, indent=2, sort_keys=True) + "\n")
        finished = time.time()
        self.manifest.update({
            "finished_at": _iso(finished),
            "duration_s": round(time.perf_counter() - self._start_perf, 6),
            "status": status,
            "events": self._event_count,
            "spans": self._span_seq,
        })
        self._write_manifest()

    def _write_manifest(self) -> None:
        (self.dir / "manifest.json").write_text(
            json.dumps(self.manifest, indent=2, sort_keys=True) + "\n")


def _iso(timestamp: float) -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(timestamp))


def _snapshot_delta(before: dict, after: dict) -> dict:
    """Per-sample difference of two registry snapshots (counters and
    gauges subtract; histograms and brand-new metrics pass through)."""
    delta = {}
    for name, data in after.items():
        prior = before.get(name)
        if prior is None or data["kind"] == "histogram":
            delta[name] = data
            continue
        prior_values = {json.dumps(s["labels"], sort_keys=True): s["value"]
                        for s in prior["samples"]}
        samples = []
        for sample in data["samples"]:
            key = json.dumps(sample["labels"], sort_keys=True)
            value = sample["value"] - prior_values.get(key, 0)
            if value:
                samples.append({"labels": sample["labels"], "value": value})
        if samples:
            delta[name] = dict(data, samples=samples)
    return delta


class CollectorRun:
    """In-memory event sink for worker processes.

    Quacks like :class:`TelemetryRun` for the instrumentation sites
    (``emit`` / ``next_span_id`` / ``once``) but buffers events in a
    list instead of writing a run directory, and stamps no ``ts`` --
    the parent process merges the buffer into its own file-backed run
    (see :mod:`repro.harness.executor`), where arrival is timestamped
    on the parent's clock.
    """

    def __init__(self, run_id: Optional[str] = None):
        self.run_id = run_id or f"collector-p{os.getpid()}"
        self.events: list = []
        self._span_seq = 0
        self._once = set()

    def emit(self, event: dict) -> None:
        self.events.append(dict(event))

    def next_span_id(self) -> str:
        self._span_seq += 1
        return f"s{self._span_seq}"

    def once(self, key) -> bool:
        if key in self._once:
            return False
        self._once.add(key)
        return True


# ---------------------------------------------------------------- globals

def active_run() -> Optional[TelemetryRun]:
    """The run currently receiving events, or None."""
    return _ACTIVE_RUN


def enabled() -> bool:
    """True when a telemetry run is active (instrumentation is live)."""
    return _ACTIVE_RUN is not None


def start_run(root, command: Optional[str] = None,
              argv: Optional[list] = None,
              extra: Optional[dict] = None) -> TelemetryRun:
    """Open a run under *root* and make it the process's active run."""
    global _ACTIVE_RUN
    if _ACTIVE_RUN is not None:
        raise RuntimeError(
            f"telemetry run {_ACTIVE_RUN.run_id} is already active")
    _ACTIVE_RUN = TelemetryRun(root, command=command, argv=argv, extra=extra)
    return _ACTIVE_RUN


def finish_run(status: str = "ok") -> Optional[TelemetryRun]:
    """Close the active run (no-op when none is); returns it."""
    global _ACTIVE_RUN
    run = _ACTIVE_RUN
    _ACTIVE_RUN = None
    if run is not None:
        run.close(status=status)
    return run


def detach_run() -> None:
    """Forget the active run *without* closing it.

    For forked worker processes: the child inherits the parent's
    active run, including the open (buffered) event file -- closing or
    flushing it in the child would write the parent's buffered lines a
    second time.  Workers call this first, then install their own
    :class:`CollectorRun`.  Also clears any fork-inherited open-span
    stack so worker spans start as roots.
    """
    global _ACTIVE_RUN
    _ACTIVE_RUN = None
    from repro.telemetry import spans
    spans._STACK.clear()


@contextmanager
def collecting_run(run_id: Optional[str] = None):
    """Install a :class:`CollectorRun` as the active run; yield it."""
    global _ACTIVE_RUN
    if _ACTIVE_RUN is not None:
        raise RuntimeError(
            f"telemetry run {_ACTIVE_RUN.run_id} is already active")
    collector = CollectorRun(run_id)
    _ACTIVE_RUN = collector
    try:
        yield collector
    finally:
        _ACTIVE_RUN = None


@contextmanager
def telemetry_run(root, command: Optional[str] = None,
                  argv: Optional[list] = None,
                  extra: Optional[dict] = None):
    """Context manager: start a run, yield it, close it (status
    ``error`` if the block raises)."""
    run = start_run(root, command=command, argv=argv, extra=extra)
    try:
        yield run
    except BaseException:
        finish_run(status="error")
        raise
    finish_run()
