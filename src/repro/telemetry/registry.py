"""The metrics registry: counters, gauges and fixed-bucket histograms.

One process-wide :class:`MetricsRegistry` (reached through
:func:`registry`) holds every metric the repo records -- cache traffic,
prediction outcomes, predictor table probes, VM profiles.  Metrics are
get-or-create: asking for the same name again returns the existing
instrument, so call sites never need to coordinate registration, and a
name clash across kinds (or a label-set mismatch) raises
:class:`MetricError` instead of silently splitting the series.

Instruments are plain dict arithmetic -- an ``inc`` is one dict lookup
and one add -- so they are always live; the expensive parts of
telemetry (spans, probes, the JSONL sink) are gated on an active run
instead (see :mod:`repro.telemetry.run`).

Label values are stringified, mirroring the Prometheus data model, and
each (name, label values) pair is an independent sample.  Histograms
take fixed upper bounds at creation; a ``+Inf`` bucket is implicit.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["MetricError", "Counter", "Gauge", "Histogram",
           "MetricsRegistry", "registry"]


class MetricError(Exception):
    """Metric misuse: kind clash, label mismatch, or bad argument."""


LabelKey = Tuple[str, ...]


class _Metric:
    """Common naming/label plumbing of the three instrument kinds."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labels: Sequence[str]):
        if not name or not name.replace("_", "").replace(":", "").isalnum():
            raise MetricError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(labels)

    def _key(self, labels: Dict[str, object]) -> LabelKey:
        if set(labels) != set(self.label_names):
            raise MetricError(
                f"{self.name} takes labels {list(self.label_names)}, "
                f"got {sorted(labels)}")
        return tuple(str(labels[name]) for name in self.label_names)

    def _labels_dict(self, key: LabelKey) -> Dict[str, str]:
        return dict(zip(self.label_names, key))


class Counter(_Metric):
    """A monotonically increasing count (per label set)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 labels: Sequence[str] = ()):
        super().__init__(name, help, labels)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels) -> None:
        if amount < 0:
            raise MetricError(f"{self.name}: counters only go up, "
                              f"got {amount}")
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels) -> float:
        return self._values.get(self._key(labels), 0)

    def samples(self) -> List[Tuple[Dict[str, str], float]]:
        return [(self._labels_dict(k), v)
                for k, v in sorted(self._values.items())]

    def _reset(self) -> None:
        self._values.clear()


class Gauge(_Metric):
    """A value that can go up and down (per label set)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 labels: Sequence[str] = ()):
        super().__init__(name, help, labels)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels) -> None:
        self._values[self._key(labels)] = value

    def inc(self, amount: float = 1, **labels) -> None:
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        return self._values.get(self._key(labels), 0)

    def samples(self) -> List[Tuple[Dict[str, str], float]]:
        return [(self._labels_dict(k), v)
                for k, v in sorted(self._values.items())]

    def _reset(self) -> None:
        self._values.clear()


class Histogram(_Metric):
    """Fixed-bucket distribution: bucket counts plus sum and count.

    ``buckets`` are the finite upper bounds, strictly increasing; every
    observation additionally lands in the implicit ``+Inf`` bucket.
    Bucket counts are stored cumulatively (Prometheus ``le`` semantics).
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = (.005, .05, .5, 5, 50),
                 labels: Sequence[str] = ()):
        super().__init__(name, help, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise MetricError(
                f"{name}: buckets must be strictly increasing, got "
                f"{list(buckets)}")
        self.buckets = bounds
        # Per label set: [count per finite bucket] + [+Inf], sum.
        self._counts: Dict[LabelKey, List[int]] = {}
        self._sums: Dict[LabelKey, float] = {}
        # Per label set: last exemplar per (non-cumulative) bucket.
        self._exemplars: Dict[LabelKey, List[Optional[dict]]] = {}

    def observe(self, value: float, exemplar: Optional[str] = None,
                **labels) -> None:
        """Record *value*; an optional *exemplar* (e.g. a trace id)
        tags the bucket the observation lands in, so a latency series
        stays traceable back to one concrete slow request."""
        key = self._key(labels)
        counts = self._counts.get(key)
        if counts is None:
            counts = self._counts[key] = [0] * (len(self.buckets) + 1)
            self._sums[key] = 0.0
        slot = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                counts[i] += 1
                slot = min(slot, i)
        counts[-1] += 1
        self._sums[key] += value
        if exemplar is not None:
            exemplars = self._exemplars.get(key)
            if exemplars is None:
                exemplars = self._exemplars[key] = \
                    [None] * (len(self.buckets) + 1)
            exemplars[slot] = {"trace_id": str(exemplar),
                               "value": float(value)}

    def count(self, **labels) -> int:
        counts = self._counts.get(self._key(labels))
        return counts[-1] if counts else 0

    def sum(self, **labels) -> float:
        return self._sums.get(self._key(labels), 0.0)

    def samples(self) -> List[Tuple[Dict[str, str], dict]]:
        out = []
        for key in sorted(self._counts):
            counts = self._counts[key]
            buckets = [[bound, counts[i]]
                       for i, bound in enumerate(self.buckets)]
            buckets.append(["+Inf", counts[-1]])
            value = {"buckets": buckets, "sum": self._sums[key],
                     "count": counts[-1]}
            exemplars = self._exemplars.get(key)
            if exemplars is not None and any(e is not None
                                            for e in exemplars):
                bounds = list(self.buckets) + ["+Inf"]
                value["exemplars"] = [[bounds[i], exemplars[i]]
                                      for i in range(len(bounds))
                                      if exemplars[i] is not None]
            out.append((self._labels_dict(key), value))
        return out

    def _reset(self) -> None:
        self._counts.clear()
        self._sums.clear()
        self._exemplars.clear()


class MetricsRegistry:
    """Get-or-create home of every instrument in the process."""

    def __init__(self):
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str,
                       labels: Sequence[str], **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise MetricError(
                    f"{name} already registered as a {existing.kind}, "
                    f"requested {cls.kind}")
            if existing.label_names != tuple(labels):
                raise MetricError(
                    f"{name} registered with labels "
                    f"{list(existing.label_names)}, requested {list(labels)}")
            return existing
        metric = cls(name, help, labels=labels, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = (.005, .05, .5, 5, 50),
                  labels: Sequence[str] = ()) -> Histogram:
        metric = self._get_or_create(Histogram, name, help, labels,
                                     buckets=buckets)
        if metric.buckets != tuple(float(b) for b in buckets):
            raise MetricError(
                f"{name} registered with buckets {list(metric.buckets)}, "
                f"requested {list(buckets)}")
        return metric

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __iter__(self) -> Iterable[_Metric]:
        return iter(self._metrics.values())

    def snapshot(self) -> dict:
        """JSON-able view of every metric and its current samples."""
        out = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            out[name] = {
                "kind": metric.kind,
                "help": metric.help,
                "label_names": list(metric.label_names),
                "samples": [{"labels": labels, "value": value}
                            for labels, value in metric.samples()],
            }
        return out

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` from another process into this one.

        Counters and histogram buckets add, gauges take the incoming
        value, unknown metrics are created with the snapshot's shape.
        The parallel executor uses this to carry worker-process
        metrics back into the parent registry (the snapshot must be a
        worker's *own* contribution -- workers reset their fork-copied
        registry first -- or parent counts would double).
        """
        for name in sorted(snapshot):
            data = snapshot[name]
            kind = data["kind"]
            labels = tuple(data["label_names"])
            help_text = data.get("help", "")
            samples = data["samples"]
            if kind == "counter":
                metric = self.counter(name, help_text, labels)
                for sample in samples:
                    if sample["value"]:
                        metric.inc(sample["value"], **sample["labels"])
            elif kind == "gauge":
                metric = self.gauge(name, help_text, labels)
                for sample in samples:
                    metric.set(sample["value"], **sample["labels"])
            elif kind == "histogram":
                if not samples:
                    continue
                bounds = [bound for bound, _
                          in samples[0]["value"]["buckets"][:-1]]
                metric = self.histogram(name, help_text, buckets=bounds,
                                        labels=labels)
                for sample in samples:
                    key = metric._key(sample["labels"])
                    counts = metric._counts.get(key)
                    if counts is None:
                        counts = metric._counts[key] = \
                            [0] * (len(metric.buckets) + 1)
                        metric._sums[key] = 0.0
                    for i, (_, count) in enumerate(
                            sample["value"]["buckets"]):
                        counts[i] += count
                    metric._sums[key] += sample["value"]["sum"]
            else:
                raise MetricError(
                    f"{name}: cannot merge metric kind {kind!r}")

    def reset(self, name: Optional[str] = None) -> None:
        """Zero one metric's samples, or every metric's (instruments
        stay registered so handles held by call sites remain valid)."""
        if name is not None:
            metric = self._metrics.get(name)
            if metric is not None:
                metric._reset()
            return
        for metric in self._metrics.values():
            metric._reset()


#: The process-wide registry every subsystem records into.
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry`."""
    return _REGISTRY
