"""Table-usage auditing: occupancy, aliasing, and efficiency metrics.

The paper's core claim is that DFCM wins by *using its tables more
efficiently*: stride patterns collapse onto single level-2 entries,
freeing capacity and cutting hash aliasing (sections 2.4 and 4.2).
This module is the one place that quantifies table usage:

- The paper's original per-figure analyses, moved here from their old
  ``repro.core`` homes (which re-export them unchanged):
  :func:`stride_occupancy` (Figures 6/9) and the
  :class:`AliasingAnalyzer` five-way taxonomy (Figures 12-14).
- :class:`TableUsageAuditor` -- the general instrument: given a spec
  and a sampled ``(pc, value)`` stream it measures live occupancy,
  cold/dead-entry fractions, constructive-vs-destructive aliasing
  rates, per-level (L1/L2) accuracy attribution, reuse-distance
  histograms, and the headline *efficiency* metric -- correct
  predictions per live table bit -- comparable across families at
  equal storage.

The auditor has two executions of the same bookkeeping:

``engine="batch"``
    the sampled stream runs through the vectorised kernels of
    :mod:`repro.core.engines.batch` with a slot-collecting probe on the
    :class:`~repro.core.engines.batch._KernelContext`, so the level-2
    index stream comes straight out of the kernel's own arrays;
``engine="scalar"``
    a stateful predictor replays the stream record by record, reading
    ``l1_index``/``l2_index`` off the instance.

Both feed identical index/correctness arrays into one shared
vectorised accumulator (:class:`_LevelAudit`), so the resulting
reports -- and the ``table_usage`` probe events built from them -- are
*equal by construction*; ``tests/telemetry/test_table_parity.py``
enforces it across families, cold and warm-started (chunked).
Sampling is bounded by ``REPRO_TELEMETRY_SAMPLE`` exactly like the
PR 2 probes (see :func:`repro.telemetry.probes.probe_sample_limit`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.core.dfcm import DFCMPredictor
from repro.core.fcm import FCMPredictor
from repro.core.stride import StridePredictor
from repro.core.types import MASK32

__all__ = [
    "ALIAS_CATEGORIES", "AliasReport", "AliasingAnalyzer",
    "OccupancyResult", "stride_occupancy",
    "AUDITED_FAMILIES", "TableUsageAuditor",
    "state_table_specs", "table_stats_from_state", "level1_entries",
    "emit_table_usage",
]

#: Families the auditor can replay (the batch-kernel families).
AUDITED_FAMILIES = ("last_value", "stride", "stride2d", "fcm", "dfcm",
                    "oracle_hybrid")

#: Reuse-distance histogram buckets: bucket k counts re-accesses at
#: distance in [2^k, 2^(k+1)) records; the last bucket absorbs the tail.
REUSE_BUCKETS = 24


# =====================================================================
# Figures 6/9: level-2 occupancy by stride patterns (moved verbatim
# from repro.core.occupancy, which now re-exports it).
# =====================================================================

@dataclass
class OccupancyResult:
    """Sorted per-entry stride-access counts for one predictor."""

    predictor_name: str
    l2_entries: int
    sorted_counts: List[int]  # descending; length == l2_entries
    stride_accesses: int      # total accesses that were part of a stride
    total_accesses: int

    def entries_with_at_least(self, threshold: int) -> int:
        """How many level-2 entries took >= *threshold* stride accesses.

        The paper's headline numbers are of this form ("more than 100
        entries are accessed more than 100 times", "582 entries more
        than 1000 times").
        """
        count = 0
        for accesses in self.sorted_counts:
            if accesses < threshold:
                break
            count += 1
        return count

    def top_share(self, k: int) -> float:
        """Fraction of all stride accesses landing on the top-*k* entries."""
        if self.stride_accesses == 0:
            return 0.0
        return sum(self.sorted_counts[:k]) / self.stride_accesses


def stride_occupancy(
    predictor: Union[FCMPredictor, DFCMPredictor],
    records: Iterable[Tuple[int, int]],
    reference: StridePredictor | None = None,
) -> OccupancyResult:
    """Run *records* through *predictor*, counting stride accesses per
    level-2 entry.

    Parameters
    ----------
    predictor:
        Fresh FCM or DFCM to instrument (it is trained as a side
        effect).
    records:
        The (pc, value) stream.
    reference:
        The stride predictor defining "part of a stride pattern";
        defaults to the paper's 64 K-entry table.
    """
    if not isinstance(predictor, (FCMPredictor, DFCMPredictor)):
        raise TypeError(
            "stride_occupancy instruments FCMPredictor or DFCMPredictor, "
            f"got {type(predictor).__name__}")
    if reference is None:
        reference = StridePredictor(1 << 16)
    counters = [0] * predictor.l2_entries
    stride_accesses = 0
    total = 0
    for pc, value in records:
        value &= MASK32
        total += 1
        if reference.predict(pc) == value:
            counters[predictor.l2_index(pc)] += 1
            stride_accesses += 1
        reference.update(pc, value)
        predictor.update(pc, value)
    counters.sort(reverse=True)
    return OccupancyResult(
        predictor_name=predictor.name,
        l2_entries=predictor.l2_entries,
        sorted_counts=counters,
        stride_accesses=stride_accesses,
        total_accesses=total,
    )


# =====================================================================
# Section 4.2: the five-way aliasing taxonomy (moved verbatim from
# repro.core.aliasing, which now re-exports it).
# =====================================================================

ALIAS_CATEGORIES = ("l1", "hash", "l2_priv", "l2_pc", "none")


@dataclass
class AliasReport:
    """Per-category prediction counts for one predictor on one trace."""

    total: Dict[str, int] = field(
        default_factory=lambda: {c: 0 for c in ALIAS_CATEGORIES})
    correct: Dict[str, int] = field(
        default_factory=lambda: {c: 0 for c in ALIAS_CATEGORIES})

    def record(self, category: str, was_correct: bool) -> None:
        self.total[category] += 1
        if was_correct:
            self.correct[category] += 1

    @property
    def predictions(self) -> int:
        """Total number of classified predictions."""
        return sum(self.total.values())

    def wrong(self, category: str) -> int:
        return self.total[category] - self.correct[category]

    def fraction_of_predictions(self, category: str) -> float:
        """Share of all predictions in *category* (Figure 13)."""
        n = self.predictions
        return self.total[category] / n if n else 0.0

    def accuracy(self, category: str) -> float:
        """Prediction accuracy within *category* (Figure 12)."""
        n = self.total[category]
        return self.correct[category] / n if n else 0.0

    def misprediction_fraction(self, category: str) -> float:
        """Mispredictions in *category* as a share of all predictions
        (Figure 14; the per-benchmark bars stack to the global
        misprediction rate)."""
        n = self.predictions
        return self.wrong(category) / n if n else 0.0

    def overall_accuracy(self) -> float:
        n = self.predictions
        return sum(self.correct.values()) / n if n else 0.0

    def merged_with(self, other: "AliasReport") -> "AliasReport":
        """Pooled report (used for the paper's 'avg' bars)."""
        merged = AliasReport()
        for category in ALIAS_CATEGORIES:
            merged.total[category] = self.total[category] + other.total[category]
            merged.correct[category] = (
                self.correct[category] + other.correct[category])
        return merged


class AliasingAnalyzer:
    """Classify every prediction of an (D)FCM into the alias taxonomy.

    Categories (first matching rule wins): ``l1`` -- a history element
    was produced by a different static instruction; ``hash`` -- two
    different histories collided on the level-2 index; ``l2_priv`` --
    a private per-level-1-entry level-2 table would have predicted
    differently; ``l2_pc`` -- the entry was last updated by a
    different instruction with the same history; ``none``.

    Parameters
    ----------
    predictor:
        A fresh :class:`FCMPredictor` or :class:`DFCMPredictor`.  The
        analyzer drives it; do not update it externally.
    """

    def __init__(self, predictor: Union[FCMPredictor, DFCMPredictor]):
        if not isinstance(predictor, (FCMPredictor, DFCMPredictor)):
            raise TypeError(
                "AliasingAnalyzer instruments FCMPredictor or DFCMPredictor, "
                f"got {type(predictor).__name__}")
        self.predictor = predictor
        self.differential = isinstance(predictor, DFCMPredictor)
        order = predictor.order
        # Shadow level-1: per entry, the last `order` (producer_pc,
        # history element) pairs actually recorded.
        self._shadow_l1 = [deque(maxlen=order) for _ in range(predictor.l1_entries)]
        # Shadow level-2: per entry, the unhashed history stored at the
        # last update (None = never updated) and the updater's PC.
        self._l2_history = [None] * predictor.l2_entries
        self._l2_pc = [None] * predictor.l2_entries
        # Private level-2 tables, one dict per level-1 entry.
        self._private: list = [dict() for _ in range(predictor.l1_entries)]

    def _payload(self, l2_index: int) -> int:
        """Current level-2 payload (value for FCM, stride for DFCM)."""
        return self.predictor._l2[l2_index]

    def classify(self, pc: int) -> str:
        """Alias category the *next* prediction for *pc* falls into."""
        p = self.predictor
        l1_index = p.l1_index(pc)
        l2_index = p.l2_index(pc)
        recorded = self._shadow_l1[l1_index]
        if any(producer != pc for producer, _ in recorded):
            return "l1"
        current_history = tuple(element for _, element in recorded)
        if self._l2_history[l2_index] != current_history:
            return "hash"
        private_payload = self._private[l1_index].get(l2_index, 0)
        if private_payload != self._payload(l2_index):
            return "l2_priv"
        if self._l2_pc[l2_index] != pc:
            return "l2_pc"
        return "none"

    def step(self, pc: int, value: int) -> Tuple[bool, str]:
        """Predict+classify+update for one trace record."""
        value &= MASK32
        p = self.predictor
        category = self.classify(pc)
        correct = p.predict(pc) == value

        # Shadow bookkeeping mirrors the real update: the level-2 entry
        # indexed by the OLD history receives the new payload; the
        # history then grows by one element.
        l1_index = p.l1_index(pc)
        l2_index = p.l2_index(pc)
        old_history = tuple(e for _, e in self._shadow_l1[l1_index])
        if self.differential:
            stride = (value - p.last_value(pc)) & MASK32
            element = stride
            payload = p._store_stride(stride)
        else:
            element = value
            payload = value
        self._l2_history[l2_index] = old_history
        self._l2_pc[l2_index] = pc
        self._private[l1_index][l2_index] = payload
        self._shadow_l1[l1_index].append((pc, element))

        p.update(pc, value)
        return correct, category

    def run(self, records: Iterable[Tuple[int, int]]) -> AliasReport:
        """Classify a whole (pc, value) stream; returns the report."""
        report = AliasReport()
        for pc, value in records:
            correct, category = self.step(pc, value)
            report.record(category, correct)
        return report


# =====================================================================
# Static state audits: live bits from the actual table arrays.
# =====================================================================

def state_table_specs(spec) -> List[Tuple[str, "object"]]:
    """``(state_key, TableSpec)`` pairs aligning a spec's declared
    tables with its :meth:`~repro.core.spec.PredictorSpec.extract_state`
    keys (component tables get their ``c<i>.``/``inner.`` prefixes)."""
    from repro.core.spec import TableSpec
    family = spec.family
    if family in ("oracle_hybrid", "meta_hybrid"):
        out: List[Tuple[str, TableSpec]] = []
        for i, component in enumerate(spec.components):
            out.extend((f"c{i}.{key}", table)
                       for key, table in state_table_specs(component))
        if family == "meta_hybrid":
            out.extend(
                (f"meta{i}", TableSpec(f"meta{i}", spec.meta_entries,
                                       spec.counter_bits))
                for i in range(len(spec.components)))
        return out
    if family == "delayed":
        return [(f"inner.{key}", table)
                for key, table in state_table_specs(spec.inner)]
    return [(table.name, table) for table in spec.tables()]


def table_stats_from_state(spec, state: Dict[str, np.ndarray]) -> dict:
    """Live-entry statistics of an actual table-state snapshot.

    An entry is *live* when it holds a nonzero payload -- the closest
    observable proxy for "would a valid bit be set" on tables that
    reset to zero.  Returns per-table stats plus the pooled
    ``live_bits`` that the efficiency metric divides by.
    """
    tables = {}
    live_bits = 0
    for key, table in state_table_specs(spec):
        arr = state.get(key)
        live = int(np.count_nonzero(arr)) if arr is not None else 0
        bits = live * table.entry_bits
        live_bits += bits
        tables[key] = {
            "entries": table.entries,
            "entry_bits": table.entry_bits,
            "live": live,
            "live_fraction": round(live / table.entries, 6)
            if table.entries else 0.0,
        }
    storage_bits = spec.storage_bits()
    return {
        "tables": tables,
        "live_bits": live_bits,
        "storage_bits": storage_bits,
        "live_fraction": round(live_bits / storage_bits, 6)
        if storage_bits else 0.0,
    }


def level1_entries(spec) -> Optional[int]:
    """Size of the pc-indexed level-1 key space, or ``None``.

    Hybrids report their largest component table (the coarsest
    pc-conflict granularity that covers every component)."""
    family = spec.family
    if family in ("fcm", "dfcm"):
        return spec.l1_entries
    if family in ("last_value", "stride", "stride2d", "last_n"):
        return spec.entries
    if family == "delayed":
        return level1_entries(spec.inner)
    if family in ("oracle_hybrid", "meta_hybrid"):
        sizes = [level1_entries(c) for c in spec.components]
        sizes = [s for s in sizes if s]
        return max(sizes) if sizes else None
    return None


# =====================================================================
# The auditor.
# =====================================================================

class _SlotCollector:
    """Kernel probe that captures the per-record level-2 index stream
    (original record order) keyed by the emitting spec's name."""

    enabled = True

    __slots__ = ("slots",)

    def __init__(self):
        self.slots: Dict[str, np.ndarray] = {}

    def observe_l2(self, spec, slots: np.ndarray) -> None:
        self.slots[spec.name] = slots


class _LevelAudit:
    """Accumulates one table level's access statistics across chunks.

    Fed identical ``(pcs, keys, correct)`` arrays by both auditor
    engines; all arithmetic is vectorised NumPy, and the carried
    arrays (per-entry last writer / last access / access counts) make
    chunk boundaries invisible -- a chunked audit equals a one-shot
    audit bit for bit.
    """

    __slots__ = ("entries", "accesses", "conflicts", "conflict_correct",
                 "clean_correct", "counts", "_last_writer", "_last_access",
                 "reuse", "_seen")

    def __init__(self, entries: int):
        self.entries = entries
        self.accesses = 0
        self.conflicts = 0
        self.conflict_correct = 0
        self.clean_correct = 0
        self.counts = np.zeros(entries, dtype=np.int64)
        self._last_writer = np.full(entries, -1, dtype=np.int64)
        self._last_access = np.full(entries, -1, dtype=np.int64)
        self.reuse = np.zeros(REUSE_BUCKETS, dtype=np.int64)
        self._seen = 0  # records consumed so far (global access index)

    def observe(self, pcs: np.ndarray, keys: np.ndarray,
                correct: np.ndarray) -> None:
        n = len(keys)
        if n == 0:
            return
        index = np.arange(self._seen, self._seen + n, dtype=np.int64)
        order = np.argsort(keys, kind="stable")
        ks = keys[order]
        ps = pcs[order]
        cs = correct[order]
        idx = index[order]
        is_start = np.empty(n, dtype=bool)
        is_start[0] = True
        np.not_equal(ks[1:], ks[:-1], out=is_start[1:])
        is_last = np.empty(n, dtype=bool)
        is_last[-1] = True
        is_last[:-1] = is_start[1:]
        # Previous writer pc / previous access index per record: the
        # prior same-key record in this chunk, else the carried table.
        prev_pc = np.empty(n, dtype=np.int64)
        prev_pc[1:] = ps[:-1]
        prev_pc[is_start] = self._last_writer[ks[is_start]]
        prev_idx = np.empty(n, dtype=np.int64)
        prev_idx[1:] = idx[:-1]
        prev_idx[is_start] = self._last_access[ks[is_start]]
        conflict = (prev_pc >= 0) & (prev_pc != ps)
        self.accesses += n
        self.conflicts += int(conflict.sum())
        self.conflict_correct += int((conflict & cs).sum())
        self.clean_correct += int((~conflict & cs).sum())
        reused = prev_idx >= 0
        if reused.any():
            dist = idx[reused] - prev_idx[reused]
            buckets = np.floor(np.log2(dist)).astype(np.int64)
            np.clip(buckets, 0, REUSE_BUCKETS - 1, out=buckets)
            self.reuse += np.bincount(buckets, minlength=REUSE_BUCKETS)
        np.add.at(self.counts, ks, 1)
        self._last_writer[ks[is_last]] = ps[is_last]
        self._last_access[ks[is_last]] = idx[is_last]
        self._seen += n

    def report(self) -> dict:
        n = self.accesses
        used = int(np.count_nonzero(self.counts))
        dead = int((self.counts == 1).sum())
        top16 = int(np.sort(self.counts)[-16:].sum()) if used else 0
        clean = n - self.conflicts
        return {
            "entries": self.entries,
            "accesses": n,
            "entries_used": used,
            "occupancy_ratio": round(used / self.entries, 6)
            if self.entries else 0.0,
            "cold_fraction": round(1.0 - used / self.entries, 6)
            if self.entries else 0.0,
            "dead_entries": dead,
            "top16_share": round(top16 / n, 6) if n else 0.0,
            "conflicts": self.conflicts,
            "alias_rate": round(self.conflicts / n, 6) if n else 0.0,
            "alias_constructive_rate": round(self.conflict_correct / n, 6)
            if n else 0.0,
            "alias_destructive_rate": round(
                (self.conflicts - self.conflict_correct) / n, 6)
            if n else 0.0,
            "accuracy_clean": round(self.clean_correct / clean, 6)
            if clean else 0.0,
            "accuracy_conflict": round(
                self.conflict_correct / self.conflicts, 6)
            if self.conflicts else 0.0,
            "reuse_histogram": self.reuse.tolist(),
        }


class TableUsageAuditor:
    """Audit one predictor configuration's table usage over a stream.

    Feed ``(pcs, values)`` chunks through :meth:`update` (chunking is
    invisible: carried per-entry state makes a warm-started chunked
    audit identical to a one-shot audit), then :meth:`report`.

    Parameters
    ----------
    spec:
        A :class:`~repro.core.spec.PredictorSpec` whose family is in
        :data:`AUDITED_FAMILIES`.
    engine:
        ``"batch"`` replays through the vectorised kernels with a
        slot-collecting probe; ``"scalar"`` replays a stateful
        predictor instance.  Both produce identical reports (the
        parity suite pins this).
    """

    def __init__(self, spec, engine: str = "batch"):
        if spec.family not in AUDITED_FAMILIES:
            raise ValueError(
                f"{spec.name}: family {spec.family!r} is not auditable; "
                f"expected one of {AUDITED_FAMILIES}")
        if engine not in ("batch", "scalar"):
            raise ValueError(f"unknown auditor engine {engine!r}")
        if engine == "batch":
            from repro.core.engines.batch import BatchEngine
            if not BatchEngine.supports(spec):
                engine = "scalar"  # e.g. a non-FS hash: audit scalar-side
        self.spec = spec
        self.engine = engine
        self.records = 0
        self.correct = 0
        self._levels: Dict[str, _LevelAudit] = {}
        family = spec.family
        if family in ("fcm", "dfcm"):
            self._levels["l1"] = _LevelAudit(spec.l1_entries)
            self._levels["l2"] = _LevelAudit(spec.l2_entries)
        elif family in ("last_value", "stride", "stride2d"):
            self._levels["l1"] = _LevelAudit(spec.entries)
        # oracle_hybrid: headline + per-table stats only; its components
        # overlay distinct index spaces that have no single level.
        if engine == "batch":
            self._state = spec.extract_state(spec.build())
            self._predictor = None
        else:
            self._state = None
            self._predictor = spec.build()

    # ---------------------------------------------------------- update

    def update(self, pcs, values) -> None:
        """Audit one chunk of the sampled stream."""
        pcs = np.asarray(pcs, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64) & MASK32
        if len(pcs) != len(values):
            raise ValueError(f"pcs and values lengths differ: "
                             f"{len(pcs)} vs {len(values)}")
        if not len(pcs):
            return
        if self.engine == "batch":
            correct, l2_keys = self._run_batch(pcs, values)
        else:
            correct, l2_keys = self._run_scalar(pcs, values)
        l1 = self._levels.get("l1")
        if l1 is not None:
            l1.observe(pcs, (pcs >> 2) & (l1.entries - 1), correct)
        l2 = self._levels.get("l2")
        if l2 is not None and l2_keys is not None:
            l2.observe(pcs, l2_keys, correct)
        self.records += len(pcs)
        self.correct += int(correct.sum())

    def _run_batch(self, pcs, values):
        from repro.core.engines.batch import _KERNELS, _KernelContext
        ctx = _KernelContext(pcs, values)
        collector = _SlotCollector()
        ctx.probe = collector
        _, correct, self._state = _KERNELS[self.spec.family](
            self.spec, ctx, self._state, want_predicted=False)
        return correct, collector.slots.get(self.spec.name)

    def _run_scalar(self, pcs, values):
        p = self._predictor
        family = self.spec.family
        n = len(pcs)
        correct = np.empty(n, dtype=bool)
        if family in ("fcm", "dfcm"):
            l2_keys = np.empty(n, dtype=np.int64)
            for i in range(n):
                pc, value = int(pcs[i]), int(values[i])
                l2_keys[i] = p.l2_index(pc)
                correct[i] = p.predict(pc) == value
                p.update(pc, value)
            return correct, l2_keys
        if family == "oracle_hybrid":
            for i in range(n):
                correct[i] = p.step(int(pcs[i]), int(values[i]))
            return correct, None
        for i in range(n):
            pc, value = int(pcs[i]), int(values[i])
            correct[i] = p.predict(pc) == value
            p.update(pc, value)
        return correct, None

    # ---------------------------------------------------------- report

    def state(self) -> Dict[str, np.ndarray]:
        """The audited tables' current state snapshot."""
        if self.engine == "batch":
            return self._state
        return self.spec.extract_state(self._predictor)

    def access_counts(self, level: str) -> np.ndarray:
        """Raw per-entry access counts for *level* (``'l1'``/``'l2'``)."""
        return self._levels[level].counts

    def report(self) -> dict:
        """The ``table_usage`` report: headline efficiency + per-table
        liveness + per-level access statistics."""
        stats = table_stats_from_state(self.spec, self.state())
        live_bits = stats["live_bits"]
        out = {
            "predictor": self.spec.name,
            "family": self.spec.family,
            "sampled_records": self.records,
            "correct": self.correct,
            "accuracy": round(self.correct / self.records, 6)
            if self.records else 0.0,
            "storage_bits": stats["storage_bits"],
            "live_bits": live_bits,
            "live_fraction": stats["live_fraction"],
            "efficiency": round(self.correct / live_bits, 9)
            if live_bits else 0.0,
            "tables": stats["tables"],
            "levels": {name: audit.report()
                       for name, audit in self._levels.items()},
        }
        return out


# =====================================================================
# Event + gauge emission (shared by the scalar probe and the batch
# engine hook, so both paths publish identical samples).
# =====================================================================

def emit_table_usage(run, report: dict, trace_name: str) -> None:
    """Registry gauges + one ``table_usage`` probe event for *report*."""
    from repro.telemetry.registry import registry
    reg = registry()
    labels = dict(predictor=report["predictor"], trace=trace_name)
    reg.gauge("repro_table_efficiency",
              "Correct predictions per live table bit (sampled prefix)",
              labels=("predictor", "trace")).set(report["efficiency"],
                                                 **labels)
    reg.gauge("repro_table_live_fraction",
              "Live (nonzero) fraction of modelled predictor storage "
              "(sampled prefix)", labels=("predictor", "trace")
              ).set(report["live_fraction"], **labels)
    l2 = report["levels"].get("l2")
    if l2 is not None:
        reg.gauge("repro_table_alias_destructive_rate",
                  "Level-2 accesses whose entry was last written by a "
                  "different pc and whose prediction missed (sampled "
                  "prefix)", labels=("predictor", "trace")
                  ).set(l2["alias_destructive_rate"], **labels)
    event = {"type": "probe", "probe": "table_usage", "trace": trace_name}
    event.update(report)
    run.emit(event)
