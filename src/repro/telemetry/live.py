"""Live read path over the process metrics registry.

:mod:`repro.telemetry.export` reads the artifacts a *closed* run wrote
to disk; this module is the complement for a process that is still
running -- the serving observability endpoint scrapes the registry
in place, so ``/metrics`` always shows the current counters rather
than the snapshot of a finished run.

Everything here is a read: rendering a scrape never mutates a metric,
and the snapshot is taken synchronously on the caller's thread (the
registry is plain dict arithmetic, so a scrape races at worst into a
value one increment old).
"""

from __future__ import annotations

from typing import Optional

from repro.telemetry.export import snapshot_prometheus_text
from repro.telemetry.registry import registry

__all__ = ["live_snapshot", "live_prometheus_text"]


def live_snapshot(prefix: Optional[str] = None) -> dict:
    """The registry's current :meth:`~MetricsRegistry.snapshot`,
    optionally restricted to metric names starting with *prefix*."""
    snapshot = registry().snapshot()
    if prefix is None:
        return snapshot
    return {name: data for name, data in snapshot.items()
            if name.startswith(prefix)}


def live_prometheus_text(prefix: Optional[str] = None,
                         exemplars: bool = False) -> str:
    """The live registry in Prometheus text exposition format 0.0.4.

    ``exemplars=True`` annotates histogram buckets with their last
    trace-id exemplar (OpenMetrics-style suffix; not strict 0.0.4).
    """
    return snapshot_prometheus_text(live_snapshot(prefix),
                                    exemplars=exemplars)
