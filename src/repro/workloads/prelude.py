"""Shared MinC helper routines prepended to every workload.

The PRNG is a classic 32-bit LCG (the constants of glibc's rand); the
low-entropy low bits never leave the generator because only bits 16..30
are returned.  Everything is deterministic: the same workload source
always produces the same trace.
"""

PRELUDE = r"""
int __rand_state = 123456789;

int rand() {
    __rand_state = __rand_state * 1103515245 + 12345;
    return (__rand_state >> 16) & 32767;
}

int iabs(int x) {
    if (x < 0) return -x;
    return x;
}

int imin(int a, int b) {
    if (a < b) return a;
    return b;
}

int imax(int a, int b) {
    if (a > b) return a;
    return b;
}
"""
