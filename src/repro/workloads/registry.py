"""Workload registry: the Table 1 of this reproduction.

``SPEC_NAMES`` lists the eight benchmarks of the paper's Table 1 in the
paper's order; ``WORKLOADS`` additionally carries ``norm`` (the
Figure 5 microbenchmark).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.workloads.spec_mini import (cc1, compress, go, ijpeg, li,
                                       m88ksim, norm, perl, vortex)

__all__ = ["Workload", "WORKLOADS", "SPEC_NAMES", "get_workload",
           "workload_names"]


@dataclass(frozen=True)
class Workload:
    """One benchmark program."""

    name: str
    description: str
    paper_options: str
    source: str


def _from_module(module) -> Workload:
    return Workload(
        name=module.NAME,
        description=module.DESCRIPTION,
        paper_options=module.PAPER_OPTIONS,
        source=module.SOURCE,
    )


_MODULES = (compress, cc1, go, ijpeg, li, m88ksim, perl, vortex, norm)

WORKLOADS: Dict[str, Workload] = {
    module.NAME: _from_module(module) for module in _MODULES
}

# Paper Table 1 order.
SPEC_NAMES: List[str] = [
    "compress", "cc1", "go", "ijpeg", "li", "m88ksim", "perl", "vortex",
]


class UnknownWorkloadError(KeyError):
    """Lookup of a workload name that isn't registered."""


def get_workload(name: str) -> Workload:
    """Lookup with a helpful error listing the known workloads."""
    try:
        return WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise UnknownWorkloadError(
            f"unknown workload {name!r}; known: {known}") from None


def workload_names() -> List[str]:
    """All workload names: the SPEC suite plus 'norm'."""
    return SPEC_NAMES + ["norm"]
