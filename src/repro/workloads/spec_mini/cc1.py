"""cc1_mini: expression tokenizer and recursive-descent evaluator
(for 126.gcc / cc1).

cc1 spends its time walking token streams and trees; this kernel
synthesises arithmetic expressions as token arrays, then tokenizes and
evaluates them with a recursive-descent parser over and over.  Pattern
mix: recursion (deep call/return), token-stream scans, dispatch
comparisons.
"""

from repro.workloads.prelude import PRELUDE

NAME = "cc1"
DESCRIPTION = "tokenize + recursively evaluate generated arithmetic expressions"
PAPER_OPTIONS = "cccp.i"

# Token encoding inside `toks`: 0..9999 literal value, 10000 '+',
# 10001 '-', 10002 '*', 10003 '(', 10004 ')', 10005 end.
SOURCE = PRELUDE + r"""
int toks[2048];
int ntoks = 0;
int cursor = 0;

int emit(int t) {
    toks[ntoks] = t;
    ntoks = ntoks + 1;
    return t;
}

int gen_atom(int depth) {
    if (depth > 0 && rand() % 3 == 0) {
        emit(10003);
        gen_expr(depth - 1);
        emit(10004);
        return 0;
    }
    emit(rand() % 100);
    return 0;
}

int gen_expr(int depth) {
    int terms = 1 + rand() % 4;
    int t;
    gen_atom(depth);
    for (t = 1; t < terms; t = t + 1) {
        int op = rand() % 3;
        if (op == 0) emit(10000);
        if (op == 1) emit(10001);
        if (op == 2) emit(10002);
        gen_atom(depth);
    }
    return 0;
}

int parse_atom() {
    int t = toks[cursor];
    if (t == 10003) {
        int v;
        cursor = cursor + 1;
        v = parse_expr();
        cursor = cursor + 1;
        return v;
    }
    cursor = cursor + 1;
    return t;
}

int parse_term() {
    int v = parse_atom();
    while (toks[cursor] == 10002) {
        cursor = cursor + 1;
        v = v * parse_atom();
    }
    return v;
}

int parse_expr() {
    int v = parse_term();
    while (toks[cursor] == 10000 || toks[cursor] == 10001) {
        int op = toks[cursor];
        cursor = cursor + 1;
        if (op == 10000) v = v + parse_term();
        else v = v - parse_term();
    }
    return v;
}

int main() {
    int round;
    int checksum = 0;
    for (round = 0; round < 3000; round = round + 1) {
        int pass;
        ntoks = 0;
        gen_expr(3);
        emit(10005);
        for (pass = 0; pass < 4; pass = pass + 1) {
            cursor = 0;
            checksum = checksum + parse_expr();
        }
    }
    print_str("cc1: checksum=");
    print_int(checksum);
    print_char('\n');
    return 0;
}
"""
