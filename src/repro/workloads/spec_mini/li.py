"""li_mini: N-queens backtracking (for 130.li).

The paper's li input is ``7queens.lsp`` -- xlisp solving 7-queens.  We
keep the actual computation (the lisp interpreter's job reduces to the
solver's recursion) as a MinC backtracking search, run for several
board sizes repeatedly.  Pattern mix: recursion, column/diagonal array
probes, induction variables over shrinking ranges.
"""

from repro.workloads.prelude import PRELUDE

NAME = "li"
DESCRIPTION = "N-queens backtracking search (the paper's 7queens.lsp input)"
PAPER_OPTIONS = "7queens.lsp"

SOURCE = PRELUDE + r"""
int cols[16];
int diag1[32];
int diag2[32];
int solutions = 0;
int nodes = 0;

int place(int row, int n) {
    int col;
    nodes = nodes + 1;
    if (row == n) {
        solutions = solutions + 1;
        return 1;
    }
    for (col = 0; col < n; col = col + 1) {
        if (cols[col] == 0
                && diag1[row + col] == 0
                && diag2[row - col + n] == 0) {
            cols[col] = 1;
            diag1[row + col] = 1;
            diag2[row - col + n] = 1;
            place(row + 1, n);
            cols[col] = 0;
            diag1[row + col] = 0;
            diag2[row - col + n] = 0;
        }
    }
    return 0;
}

int main() {
    int round;
    for (round = 0; round < 40; round = round + 1) {
        int n;
        for (n = 5; n <= 8; n = n + 1) {
            int i;
            for (i = 0; i < 16; i = i + 1) cols[i] = 0;
            for (i = 0; i < 32; i = i + 1) { diag1[i] = 0; diag2[i] = 0; }
            place(0, n);
        }
    }
    print_str("li: solutions=");
    print_int(solutions);
    print_str(" nodes=");
    print_int(nodes);
    print_char('\n');
    return 0;
}
"""
