"""vortex_mini: an in-memory object store (for 147.vortex).

vortex is an OO database doing inserts, lookups and deletes over
linked record structures.  This kernel implements a record heap with a
free list and a chained hash index (links as array indices), and runs
a deterministic transaction mix.  Pattern mix: pointer(index)-chasing
loads, allocation counters, key comparisons.
"""

from repro.workloads.prelude import PRELUDE

NAME = "vortex"
DESCRIPTION = "insert/lookup/delete transactions on a chained-hash object store"
PAPER_OPTIONS = "vortex.ref.lit"

SOURCE = PRELUDE + r"""
int rec_key[2048];
int rec_val[2048];
int rec_next[2048];
int buckets[256];
int free_head = 0;
int live = 0;

int init_store() {
    int i;
    for (i = 0; i < 2048; i = i + 1) rec_next[i] = i + 1;
    rec_next[2047] = -1;
    for (i = 0; i < 256; i = i + 1) buckets[i] = -1;
    free_head = 0;
    live = 0;
    return 0;
}

int insert(int key, int value) {
    int slot = key & 255;
    int node = free_head;
    if (node == -1) return -1;
    free_head = rec_next[node];
    rec_key[node] = key;
    rec_val[node] = value;
    rec_next[node] = buckets[slot];
    buckets[slot] = node;
    live = live + 1;
    return node;
}

int lookup(int key) {
    int node = buckets[key & 255];
    while (node != -1) {
        if (rec_key[node] == key) return rec_val[node];
        node = rec_next[node];
    }
    return -1;
}

int remove(int key) {
    int slot = key & 255;
    int node = buckets[slot];
    int prev = -1;
    while (node != -1) {
        if (rec_key[node] == key) {
            if (prev == -1) buckets[slot] = rec_next[node];
            else rec_next[prev] = rec_next[node];
            rec_next[node] = free_head;
            free_head = node;
            live = live - 1;
            return 1;
        }
        prev = node;
        node = rec_next[node];
    }
    return 0;
}

int main() {
    int txn;
    int hits = 0;
    int misses = 0;
    int removed = 0;
    init_store();
    for (txn = 0; txn < 120000; txn = txn + 1) {
        int action = rand() % 10;
        int key = rand() % 4096;
        if (action < 4) {
            if (lookup(key) == -1 && live < 2000) {
                insert(key, txn);
            }
        } else if (action < 8) {
            if (lookup(key) != -1) hits = hits + 1;
            else misses = misses + 1;
        } else {
            removed = removed + remove(key);
        }
    }
    print_str("vortex: live=");
    print_int(live);
    print_str(" hits=");
    print_int(hits);
    print_str(" removed=");
    print_int(removed);
    print_char('\n');
    return 0;
}
"""
