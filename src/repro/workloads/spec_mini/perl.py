"""perl_mini: word scoring and hashing (for 134.perl).

The paper's perl input is a scrabble solver script; its time goes into
string traversal, hashing and associative lookups.  This kernel builds
pseudo-random lowercase words, scores them with scrabble letter values,
and counts occurrences in an open-addressing hash table.  Pattern mix:
character loads (small values), per-word loop trip counts, hash-probe
sequences.
"""

from repro.workloads.prelude import PRELUDE

NAME = "perl"
DESCRIPTION = "scrabble-scoring + hash counting of generated words"
PAPER_OPTIONS = "scrabbl.pl < scrabbl7.in"

SOURCE = PRELUDE + r"""
int word[16];
int letter_score[26] = {1, 3, 3, 2, 1, 4, 2, 4, 1, 8, 5, 1, 3,
                        1, 1, 3, 10, 1, 1, 1, 1, 4, 4, 8, 4, 10};
int table_key[1024];
int table_count[1024];

int make_word() {
    int length = 3 + rand() % 7;
    int i;
    for (i = 0; i < length; i = i + 1) {
        /* skew toward common letters, like English text */
        int r = rand() % 100;
        if (r < 40) word[i] = rand() % 6;            /* a..f-ish bucket */
        else word[i] = rand() % 26;
    }
    return length;
}

int score_word(int length) {
    int score = 0;
    int i;
    for (i = 0; i < length; i = i + 1) {
        score = score + letter_score[word[i]];
    }
    if (length >= 7) score = score + 50;   /* bingo bonus */
    return score;
}

int hash_word(int length) {
    int h = 5381;
    int i;
    for (i = 0; i < length; i = i + 1) {
        h = h * 33 + word[i];
    }
    return h & 1023;
}

int tally(int length) {
    int key = 0;
    int slot;
    int probes = 0;
    int i;
    for (i = 0; i < length; i = i + 1) key = key * 26 + word[i];
    key = key | 1;             /* 0 marks an empty slot */
    slot = hash_word(length);
    while (probes < 1024) {
        if (table_key[slot] == key) {
            table_count[slot] = table_count[slot] + 1;
            return probes;
        }
        if (table_key[slot] == 0) {
            table_key[slot] = key;
            table_count[slot] = 1;
            return probes;
        }
        slot = (slot + 1) & 1023;
        probes = probes + 1;
    }
    return probes;
}

int main() {
    int words;
    int best = 0;
    int total_probes = 0;
    for (words = 0; words < 60000; words = words + 1) {
        int length = make_word();
        int score = score_word(length);
        if (score > best) best = score;
        total_probes = total_probes + tally(length);
    }
    print_str("perl: best=");
    print_int(best);
    print_str(" probes=");
    print_int(total_probes);
    print_char('\n');
    return 0;
}
"""
