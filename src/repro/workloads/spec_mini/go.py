"""go_mini: board evaluation on a 19x19 Go board (for 099.go).

SPEC's go interleaves move selection with whole-board influence and
liberty analysis.  This kernel plays deterministic pseudo-random stones
for both colours and, after every move, recomputes per-point influence
(distance-weighted neighbour sums) and group liberties with
flood-fill-free local scans.  Pattern mix: 2-D neighbour offsets
(constant strides), bounded counters, many compare-branch results.
"""

from repro.workloads.prelude import PRELUDE

NAME = "go"
DESCRIPTION = "Go board influence + liberty scans while stones are played"
PAPER_OPTIONS = "30 8"

SOURCE = PRELUDE + r"""
int board[361];
int influence[361];
int liberties[361];

int at(int row, int col) {
    if (row < 0 || row > 18 || col < 0 || col > 18) return -1;
    return board[row * 19 + col];
}

int count_liberties(int row, int col) {
    int libs = 0;
    if (at(row - 1, col) == 0) libs = libs + 1;
    if (at(row + 1, col) == 0) libs = libs + 1;
    if (at(row, col - 1) == 0) libs = libs + 1;
    if (at(row, col + 1) == 0) libs = libs + 1;
    return libs;
}

int influence_of(int row, int col) {
    int total = 0;
    int dr;
    for (dr = -2; dr <= 2; dr = dr + 1) {
        int dc;
        for (dc = -2; dc <= 2; dc = dc + 1) {
            int stone = at(row + dr, col + dc);
            if (stone > 0) {
                int weight = 4 - iabs(dr) - iabs(dc);
                if (weight > 0) {
                    if (stone == 1) total = total + weight;
                    else total = total - weight;
                }
            }
        }
    }
    return total;
}

int sweep() {
    int row;
    int score = 0;
    for (row = 0; row < 19; row = row + 1) {
        int col;
        for (col = 0; col < 19; col = col + 1) {
            int point = row * 19 + col;
            influence[point] = influence_of(row, col);
            if (board[point] > 0) {
                liberties[point] = count_liberties(row, col);
                if (liberties[point] == 0) board[point] = 0;  /* capture */
            }
            score = score + influence[point];
        }
    }
    return score;
}

int main() {
    int move;
    int colour = 1;
    int score = 0;
    int games;
    for (games = 0; games < 6; games = games + 1) {
        int p;
        for (p = 0; p < 361; p = p + 1) board[p] = 0;
        for (move = 0; move < 180; move = move + 1) {
            int tries = 0;
            while (tries < 16) {
                int point = rand() % 361;
                if (board[point] == 0) {
                    board[point] = colour;
                    tries = 99;
                } else {
                    tries = tries + 1;
                }
            }
            colour = 3 - colour;
            score = score + sweep();
        }
    }
    print_str("go: score=");
    print_int(score);
    print_char('\n');
    return 0;
}
"""
