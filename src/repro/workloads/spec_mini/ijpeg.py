"""ijpeg_mini: 8x8 integer DCT + quantisation (for 132.ijpeg).

ijpeg's hot loops are blockwise forward DCTs and quantisation over
image rasters.  This kernel fills a 64x64 image with a smooth synthetic
gradient plus noise and repeatedly runs a separable integer DCT
(AAN-style shifts/adds scaled by small constants), quantises, and
accumulates the coded size.  Pattern mix: dense regular strides (row
and column walks, block offsets), multiply-accumulate chains.
"""

from repro.workloads.prelude import PRELUDE

NAME = "ijpeg"
DESCRIPTION = "blockwise integer DCT + quantisation over a synthetic image"
PAPER_OPTIONS = "-image_file vigo.ppm -GO"

SOURCE = PRELUDE + r"""
int image[4096];
int block[64];
int coeffs[64];
int quant[64];

int load_block(int bx, int by) {
    int row;
    for (row = 0; row < 8; row = row + 1) {
        int col;
        for (col = 0; col < 8; col = col + 1) {
            block[row * 8 + col] = image[(by * 8 + row) * 64 + bx * 8 + col];
        }
    }
    return 0;
}

int dct_rows() {
    int row;
    for (row = 0; row < 8; row = row + 1) {
        int base = row * 8;
        int k;
        for (k = 0; k < 8; k = k + 1) {
            int sum = 0;
            int x;
            for (x = 0; x < 8; x = x + 1) {
                /* integer cosine table folded to shifts/adds */
                int c = 64 - ((k * (2 * x + 1) * 7) % 128);
                sum = sum + block[base + x] * c;
            }
            coeffs[base + k] = sum >> 6;
        }
    }
    return 0;
}

int dct_cols() {
    int col;
    for (col = 0; col < 8; col = col + 1) {
        int k;
        for (k = 0; k < 8; k = k + 1) {
            int sum = 0;
            int y;
            for (y = 0; y < 8; y = y + 1) {
                int c = 64 - ((k * (2 * y + 1) * 7) % 128);
                sum = sum + coeffs[y * 8 + col] * c;
            }
            block[k * 8 + col] = sum >> 6;
        }
    }
    return 0;
}

int quantise() {
    int bits = 0;
    int i;
    for (i = 0; i < 64; i = i + 1) {
        int q = block[i] / quant[i];
        block[i] = q;
        if (q != 0) bits = bits + 8;
        else bits = bits + 1;
    }
    return bits;
}

int main() {
    int x;
    int y;
    int frame;
    int coded = 0;
    for (y = 0; y < 8; y = y + 1) {
        for (x = 0; x < 8; x = x + 1) {
            quant[y * 8 + x] = 1 + x + y * 2;
        }
    }
    for (frame = 0; frame < 60; frame = frame + 1) {
        int bx;
        int by;
        for (y = 0; y < 64; y = y + 1) {
            for (x = 0; x < 64; x = x + 1) {
                image[y * 64 + x] = ((x * 3 + y * 5 + frame * 11) % 256)
                                  + rand() % 16;
            }
        }
        for (by = 0; by < 8; by = by + 1) {
            for (bx = 0; bx < 8; bx = bx + 1) {
                load_block(bx, by);
                dct_rows();
                dct_cols();
                coded = coded + quantise();
            }
        }
    }
    print_str("ijpeg: coded_bits=");
    print_int(coded);
    print_char('\n');
    return 0;
}
"""
