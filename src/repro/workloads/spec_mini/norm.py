"""norm: the paper's Figure 5 function, in fixed point.

The paper uses this small routine -- scaling every matrix row by its
maximum absolute value -- to demonstrate how stride patterns crowd the
FCM level-2 table (Figure 6).  The original uses ``double``; MinC is
integer-only, so values are fixed-point with a scale of 1000.  All the
value patterns the paper highlights survive the substitution: the
iteration variables i and j, the compiler-generated ``j*4`` and
``&matrix[i][j]`` strides, and the almost-constant ``slt`` results from
the comparisons.
"""

from repro.workloads.prelude import PRELUDE

NAME = "norm"
DESCRIPTION = "Figure 5: scale each matrix row by its max (fixed point)"
PAPER_OPTIONS = "(paper section 2.4 microbenchmark)"

SOURCE = PRELUDE + r"""
int matrix[20000];   /* 200 x 100, row-major */

int refill() {
    int i;
    for (i = 0; i < 200; i = i + 1) {
        int j;
        for (j = 0; j < 100; j = j + 1) {
            matrix[i * 100 + j] = (rand() % 2001) - 1000;
        }
    }
    return 0;
}

int norm() {
    int i;
    for (i = 0; i < 200; i = i + 1) {
        int max = iabs(matrix[i * 100 + 99]);
        int j;
        for (j = 0; j < 99; j = j + 1) {
            if (iabs(matrix[i * 100 + j]) > max) {
                max = iabs(matrix[i * 100 + j]);
            }
        }
        if (max == 0) max = 1;
        for (j = 0; j < 100; j = j + 1) {
            matrix[i * 100 + j] = matrix[i * 100 + j] * 1000 / max;
        }
    }
    return 0;
}

int main() {
    int round;
    for (round = 0; round < 30; round = round + 1) {
        refill();
        norm();
    }
    print_str("norm: done\n");
    return 0;
}
"""
