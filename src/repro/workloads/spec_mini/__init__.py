"""MinC mini-versions of the paper's eight SPECint95 benchmarks,
plus the ``norm()`` kernel of Figure 5."""
