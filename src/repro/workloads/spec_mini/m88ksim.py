"""m88ksim_mini: an instruction-set simulator simulating itself one
level down (for 124.m88ksim).

m88ksim is a Motorola 88100 simulator: a fetch-decode-dispatch loop
over guest instructions.  This kernel interprets a tiny 8-register
guest machine whose program -- a nested counting loop with memory
traffic -- is itself data.  Pattern mix: the dispatch loop's opcode
loads (small repeating values -> context patterns), the guest PC
(stride 1 with resets), guest register values.
"""

from repro.workloads.prelude import PRELUDE

NAME = "m88ksim"
DESCRIPTION = "fetch/decode/execute loop of a tiny guest CPU"
PAPER_OPTIONS = "-c < ctl.raw.lit"

# Guest instruction encoding: op*1000000 + a*10000 + b*100 + c
# ops: 0 halt, 1 li(a, bc), 2 add(a,b,c), 3 sub, 4 load(a, b+c),
#      5 store(a, b+c), 6 jnz(a, target bc), 7 addi(a, b, signed c-50)
SOURCE = PRELUDE + r"""
int prog[64];
int gregs[8];
int gmem[256];
int nprog = 0;

int emit(int op, int a, int b, int c) {
    prog[nprog] = op * 1000000 + a * 10000 + b * 100 + c;
    nprog = nprog + 1;
    return nprog;
}

int build_guest() {
    /* r0=0 const; r1 outer counter; r2 inner counter; r3 sum;
       r4 scratch; r5 memory cursor */
    emit(1, 1, 0, 40);      /* 0: li r1, 40       */
    emit(1, 3, 0, 0);       /* 1: li r3, 0        */
    emit(1, 2, 0, 25);      /* 2: li r2, 25       outer: */
    emit(1, 5, 0, 0);       /* 3: li r5, 0        */
    emit(2, 3, 3, 2);       /* 4: add r3, r3, r2  inner: */
    emit(5, 3, 5, 0);       /* 5: store r3 -> [r5]  */
    emit(4, 4, 5, 0);       /* 6: load r4 <- [r5] */
    emit(7, 5, 5, 51);      /* 7: addi r5, r5, 1  */
    emit(7, 2, 2, 49);      /* 8: addi r2, r2, -1 */
    emit(6, 2, 0, 4);       /* 9: jnz r2, inner   */
    emit(7, 1, 1, 49);      /* 10: addi r1, r1, -1 */
    emit(6, 1, 0, 2);       /* 11: jnz r1, outer  */
    emit(0, 0, 0, 0);       /* 12: halt           */
    return nprog;
}

int run_guest(int fuel) {
    int pc = 0;
    int executed = 0;
    while (executed < fuel) {
        int word = prog[pc];
        int op = word / 1000000;
        int a = (word / 10000) % 100;
        int b = (word / 100) % 100;
        int c = word % 100;
        executed = executed + 1;
        if (op == 0) {
            return executed;
        } else if (op == 1) {
            gregs[a] = b * 100 + c;
            pc = pc + 1;
        } else if (op == 2) {
            gregs[a] = gregs[b] + gregs[c];
            pc = pc + 1;
        } else if (op == 3) {
            gregs[a] = gregs[b] - gregs[c];
            pc = pc + 1;
        } else if (op == 4) {
            gmem_guard(b, c);
            gregs[a] = gmem[(gregs[b] + c) % 256];
            pc = pc + 1;
        } else if (op == 5) {
            gmem[(gregs[b] + c) % 256] = gregs[a];
            pc = pc + 1;
        } else if (op == 6) {
            if (gregs[a] != 0) pc = b * 100 + c;
            else pc = pc + 1;
        } else {
            gregs[a] = gregs[b] + c - 50;
            pc = pc + 1;
        }
    }
    return executed;
}

int gmem_guard(int b, int c) {
    /* bookkeeping the real simulator does per memory access */
    return (b + c) & 255;
}

int main() {
    int total = 0;
    int session;
    build_guest();
    for (session = 0; session < 500; session = session + 1) {
        int r;
        for (r = 0; r < 8; r = r + 1) gregs[r] = 0;
        total = total + run_guest(100000);
    }
    print_str("m88ksim: guest_instructions=");
    print_int(total);
    print_str(" checksum=");
    print_int(gregs[3]);
    print_char('\n');
    return 0;
}
"""
