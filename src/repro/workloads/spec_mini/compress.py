"""compress_mini: run-length + dictionary compression (for 129.compress).

SPEC's compress is LZW over a synthetic buffer; this kernel generates a
run-structured byte buffer and compresses it with RLE plus a small
hash-probed dictionary of recent byte pairs, then "decompresses" to
verify.  Pattern mix: buffer-scan strides, run counters (small almost
constant values), hash-table probes.
"""

from repro.workloads.prelude import PRELUDE

NAME = "compress"
DESCRIPTION = "RLE + pair-dictionary compression of a run-structured buffer"
PAPER_OPTIONS = "80000 e 2131"

SOURCE = PRELUDE + r"""
int data[4096];
int packed[8192];
int dict_key[512];
int dict_hits[512];

int generate(int n) {
    int i = 0;
    while (i < n) {
        int value = rand() % 256;
        int run = 1 + rand() % 9;
        int j;
        for (j = 0; j < run && i < n; j = j + 1) {
            data[i] = value;
            i = i + 1;
        }
    }
    return n;
}

int compress_buf(int n) {
    int out = 0;
    int i = 0;
    while (i < n) {
        int value = data[i];
        int run = 1;
        while (i + run < n && data[i + run] == value && run < 255) {
            run = run + 1;
        }
        packed[out] = value;
        packed[out + 1] = run;
        out = out + 2;
        if (i + 1 < n) {
            int pair = data[i] * 256 + data[i + 1];
            int slot = pair % 512;
            if (dict_key[slot] == pair) {
                dict_hits[slot] = dict_hits[slot] + 1;
            } else {
                dict_key[slot] = pair;
                dict_hits[slot] = 1;
            }
        }
        i = i + run;
    }
    return out;
}

int expand_check(int out, int n) {
    int i = 0;
    int pos = 0;
    int bad = 0;
    while (i < out) {
        int value = packed[i];
        int run = packed[i + 1];
        int j;
        for (j = 0; j < run; j = j + 1) {
            if (data[pos + j] != value) bad = bad + 1;
        }
        pos = pos + run;
        i = i + 2;
    }
    if (pos != n) bad = bad + 1;
    return bad;
}

int main() {
    int round;
    int errors = 0;
    int total_out = 0;
    for (round = 0; round < 400; round = round + 1) {
        int n = generate(4096);
        int out = compress_buf(n);
        errors = errors + expand_check(out, n);
        total_out = total_out + out;
    }
    print_str("compress: packed_words=");
    print_int(total_out);
    print_str(" errors=");
    print_int(errors);
    print_char('\n');
    return errors;
}
"""
