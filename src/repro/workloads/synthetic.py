"""Synthetic value-trace generators with controlled pattern mixes.

Real benchmark traces fix the proportion of constant, stride,
context-repeating and random value patterns; these generators let
experiments (and tests) dial the proportions explicitly.  Each
generator produces the value stream of one synthetic static
instruction; :func:`mixed_trace` interleaves a population of
instructions drawn from a :class:`PatternMix`.

All generators are deterministic given their seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List

from repro.core.types import MASK32
from repro.trace.trace import ValueTrace

__all__ = ["PatternMix", "constant_stream", "stride_stream",
           "context_stream", "random_stream", "mixed_trace"]


def constant_stream(value: int) -> Iterator[int]:
    """The same value forever (a flag, a base pointer, an slt result)."""
    value &= MASK32
    while True:
        yield value


def stride_stream(start: int, stride: int,
                  reset_period: int = 0) -> Iterator[int]:
    """An arithmetic ramp; with ``reset_period`` n it restarts every n
    values (a loop induction variable with a bounded trip count)."""
    current = start & MASK32
    emitted = 0
    while True:
        yield current
        emitted += 1
        if reset_period and emitted % reset_period == 0:
            current = start & MASK32
        else:
            current = (current + stride) & MASK32


def context_stream(pattern: List[int]) -> Iterator[int]:
    """A repeating non-arithmetic pattern (FCM's home turf)."""
    if not pattern:
        raise ValueError("context pattern must be non-empty")
    index = 0
    while True:
        yield pattern[index % len(pattern)] & MASK32
        index += 1


def random_stream(seed: int) -> Iterator[int]:
    """Unpredictable 32-bit values (hash results, fresh pointers)."""
    rng = random.Random(seed)
    while True:
        yield rng.getrandbits(32)


@dataclass(frozen=True)
class PatternMix:
    """Proportions of synthetic instructions per pattern class.

    The weights need not sum to one; they are normalised.  ``seed``
    makes the whole population (and every stream in it) deterministic.
    """

    constant: float = 0.25
    stride: float = 0.25
    context: float = 0.25
    random: float = 0.25
    seed: int = 1

    def __post_init__(self):
        weights = (self.constant, self.stride, self.context, self.random)
        if any(w < 0 for w in weights):
            raise ValueError("mix weights must be non-negative")
        if sum(weights) <= 0:
            raise ValueError("at least one mix weight must be positive")

    def _population(self, instructions: int):
        """One (kind, stream) per synthetic static instruction."""
        rng = random.Random(self.seed)
        weights = [self.constant, self.stride, self.context, self.random]
        kinds = rng.choices(["constant", "stride", "context", "random"],
                            weights=weights, k=instructions)
        streams = []
        for index, kind in enumerate(kinds):
            if kind == "constant":
                streams.append(constant_stream(rng.getrandbits(32)))
            elif kind == "stride":
                streams.append(stride_stream(
                    start=rng.getrandbits(32),
                    stride=rng.choice([1, 2, 4, 8, -1, -4,
                                       rng.randrange(1, 4096)]),
                    reset_period=rng.choice([0, 0, 10, 100])))
            elif kind == "context":
                length = rng.randrange(3, 9)
                pattern = [rng.getrandbits(16) for _ in range(length)]
                streams.append(context_stream(pattern))
            else:
                streams.append(random_stream(rng.getrandbits(31) + index))
        return kinds, streams


def mixed_trace(mix: PatternMix, instructions: int = 64,
                length: int = 10_000, name: str = "synthetic") -> ValueTrace:
    """A trace interleaving *instructions* synthetic static PCs.

    Instructions fire round-robin with per-instruction frequencies
    drawn from a Zipf-ish distribution, mimicking the skewed execution
    counts of real static instructions.
    """
    if instructions < 1:
        raise ValueError("need at least one synthetic instruction")
    if length < 1:
        raise ValueError("trace length must be positive")
    kinds, streams = mix._population(instructions)
    rng = random.Random(mix.seed ^ 0x5DEECE66D)
    # Zipf-ish instruction frequencies: weight 1/rank.
    weights = [1.0 / (rank + 1) for rank in range(instructions)]
    choices = rng.choices(range(instructions), weights=weights, k=length)
    base_pc = 0x0040_0000
    pcs = [base_pc + 4 * index for index in choices]
    values = [next(streams[index]) for index in choices]
    return ValueTrace(name, pcs, values)
