"""Benchmark workloads: MinC mini-SPECint95 programs and synthetic traces.

The paper evaluates on eight SPECint95 benchmarks (Table 1).  Each
``spec_mini`` module is a MinC program mimicking the corresponding
benchmark's kernel; :mod:`repro.workloads.registry` maps names to
programs and :func:`repro.trace.capture.capture_trace` runs them on the
VM to produce value traces.
"""

from repro.workloads.registry import (WORKLOADS, Workload, get_workload,
                                      workload_names)

__all__ = ["WORKLOADS", "Workload", "get_workload", "workload_names"]
