"""Two-pass assembler for R32 assembly (the gas stand-in).

Turns ``.text``/``.data`` source with labels, directives and
pseudo-instructions into a loadable :class:`~repro.asm.assembler.Program`.
"""

from repro.asm.assembler import AssemblyError, Program, assemble

__all__ = ["AssemblyError", "Program", "assemble"]
