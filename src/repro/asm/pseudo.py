"""Pseudo-instruction expansion.

Pseudos expand to one or two real instructions.  The expansion happens
in pass 1 (sizes must be known to lay out addresses), so symbolic
operands are carried through as strings and resolved in pass 2; the
``%hi()``/``%lo()`` relocation syntax bridges ``la``/wide-``li`` across
the passes.

========================  =========================================
pseudo                    expansion
========================  =========================================
``nop``                   ``sll zero, zero, 0``
``move rd, rs``           ``add rd, rs, zero``
``not rd, rs``            ``nor rd, rs, zero``
``neg rd, rs``            ``sub rd, zero, rs``
``li rt, imm``            ``addi``/``ori`` (16-bit) or ``lui``+``ori``
``la rt, label``          ``lui rt, %hi(label)`` + ``ori rt, rt, %lo(label)``
``b label``               ``beq zero, zero, label``
``beqz rs, label``        ``beq rs, zero, label``
``bnez rs, label``        ``bne rs, zero, label``
``blt rs, rt, label``     ``slt at, rs, rt`` + ``bne at, zero, label``
``bgt rs, rt, label``     ``slt at, rt, rs`` + ``bne at, zero, label``
``ble rs, rt, label``     ``slt at, rt, rs`` + ``beq at, zero, label``
``bge rs, rt, label``     ``slt at, rs, rt`` + ``beq at, zero, label``
``subi rt, rs, imm``      ``addi rt, rs, -imm``
========================  =========================================
"""

from __future__ import annotations

from typing import List, Tuple

from repro.asm.operands import OperandError, parse_immediate

__all__ = ["PSEUDO_MNEMONICS", "expand_pseudo"]

# One expanded item: (mnemonic, operand strings).
Proto = Tuple[str, List[str]]

PSEUDO_MNEMONICS = frozenset(
    {"nop", "move", "not", "neg", "li", "la", "b",
     "beqz", "bnez", "blt", "bgt", "ble", "bge", "subi"})


def _require(operands: List[str], count: int, mnemonic: str) -> None:
    if len(operands) != count:
        raise OperandError(
            f"{mnemonic} expects {count} operand(s), got {len(operands)}")


def expand_pseudo(mnemonic: str, operands: List[str]) -> List[Proto]:
    """Expand one pseudo instruction; raises for unknown mnemonics."""
    if mnemonic == "nop":
        _require(operands, 0, mnemonic)
        return [("sll", ["zero", "zero", "0"])]
    if mnemonic == "move":
        _require(operands, 2, mnemonic)
        rd, rs = operands
        return [("add", [rd, rs, "zero"])]
    if mnemonic == "not":
        _require(operands, 2, mnemonic)
        rd, rs = operands
        return [("nor", [rd, rs, "zero"])]
    if mnemonic == "neg":
        _require(operands, 2, mnemonic)
        rd, rs = operands
        return [("sub", [rd, "zero", rs])]
    if mnemonic == "li":
        _require(operands, 2, mnemonic)
        rt, imm_text = operands
        imm = parse_immediate(imm_text)
        if imm is None:
            raise OperandError(f"li needs a literal immediate, got {imm_text!r}")
        imm &= 0xFFFFFFFF
        signed = imm - 0x100000000 if imm >= 0x80000000 else imm
        if -0x8000 <= signed < 0x8000:
            return [("addi", [rt, "zero", str(signed)])]
        if 0 <= imm <= 0xFFFF:
            return [("ori", [rt, "zero", str(imm)])]
        high = (imm >> 16) & 0xFFFF
        low = imm & 0xFFFF
        expansion = [("lui", [rt, str(high)])]
        if low:
            expansion.append(("ori", [rt, rt, str(low)]))
        return expansion
    if mnemonic == "la":
        _require(operands, 2, mnemonic)
        rt, label = operands
        return [("lui", [rt, f"%hi({label})"]),
                ("ori", [rt, rt, f"%lo({label})"])]
    if mnemonic == "b":
        _require(operands, 1, mnemonic)
        return [("beq", ["zero", "zero", operands[0]])]
    if mnemonic == "beqz":
        _require(operands, 2, mnemonic)
        rs, label = operands
        return [("beq", [rs, "zero", label])]
    if mnemonic == "bnez":
        _require(operands, 2, mnemonic)
        rs, label = operands
        return [("bne", [rs, "zero", label])]
    if mnemonic in ("blt", "bgt", "ble", "bge"):
        _require(operands, 3, mnemonic)
        rs, rt, label = operands
        prefix: List[Proto] = []
        if parse_immediate(rt) is not None:
            # Comparison against a literal: materialise it in $at first
            # ($at is reserved for exactly this kind of expansion).
            prefix = expand_pseudo("li", ["at", rt])
            rt = "at"
        swapped = mnemonic in ("bgt", "ble")
        compare = ("slt", ["at"] + ([rt, rs] if swapped else [rs, rt]))
        branch_op = "bne" if mnemonic in ("blt", "bgt") else "beq"
        return prefix + [compare, (branch_op, ["at", "zero", label])]
    if mnemonic == "subi":
        _require(operands, 3, mnemonic)
        rt, rs, imm_text = operands
        imm = parse_immediate(imm_text)
        if imm is None:
            raise OperandError(f"subi needs a literal immediate, got {imm_text!r}")
        return [("addi", [rt, rs, str(-imm)])]
    raise OperandError(f"unknown pseudo instruction {mnemonic!r}")


def expansion_length(mnemonic: str, operands: List[str]) -> int:
    """Number of real instructions the pseudo becomes (for layout)."""
    return len(expand_pseudo(mnemonic, operands))
