"""Line-level lexical analysis for R32 assembly.

The assembly grammar is line oriented::

    [label:]... [mnemonic-or-directive [operand, operand, ...]] [# comment]

The lexer splits one physical line into leading labels, an optional
opcode token, and a list of comma-separated operand strings.  String
literals (for ``.asciiz``) may contain commas, ``#`` and colons; the
splitter respects double quotes and character literals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["LexedLine", "LexError", "lex_line"]

_LABEL_CHARS = set("abcdefghijklmnopqrstuvwxyz"
                   "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.$")


class LexError(ValueError):
    """Malformed assembly line."""

    def __init__(self, message: str, line_number: int):
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


@dataclass
class LexedLine:
    """One tokenised source line."""

    number: int
    labels: List[str] = field(default_factory=list)
    opcode: Optional[str] = None
    operands: List[str] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return self.opcode is None and not self.labels


def _strip_comment(text: str) -> str:
    """Remove a trailing comment, respecting quoted strings."""
    in_string = False
    quote = ""
    for i, ch in enumerate(text):
        if in_string:
            if ch == "\\":
                continue
            if ch == quote and (i == 0 or text[i - 1] != "\\"):
                in_string = False
        elif ch in "\"'":
            in_string = True
            quote = ch
        elif ch == "#" or (ch == "/" and text[i:i + 2] == "//"):
            return text[:i]
    return text


def _split_operands(text: str, line_number: int) -> List[str]:
    """Split an operand field on top-level commas."""
    operands: List[str] = []
    current: List[str] = []
    in_string = False
    quote = ""
    i = 0
    while i < len(text):
        ch = text[i]
        if in_string:
            current.append(ch)
            if ch == "\\" and i + 1 < len(text):
                current.append(text[i + 1])
                i += 2
                continue
            if ch == quote:
                in_string = False
        elif ch in "\"'":
            in_string = True
            quote = ch
            current.append(ch)
        elif ch == ",":
            operands.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
        i += 1
    if in_string:
        raise LexError("unterminated string literal", line_number)
    tail = "".join(current).strip()
    if tail or operands:
        operands.append(tail)
    if any(not op for op in operands):
        raise LexError("empty operand", line_number)
    return operands


def lex_line(raw: str, line_number: int) -> LexedLine:
    """Tokenise one physical source line."""
    line = LexedLine(number=line_number)
    text = _strip_comment(raw).strip()

    # Peel off leading labels.  A colon inside a string cannot occur
    # here because labels precede the opcode.
    while text:
        colon = text.find(":")
        if colon < 0:
            break
        candidate = text[:colon].strip()
        if not candidate or not set(candidate) <= _LABEL_CHARS:
            break
        if candidate[0].isdigit():
            raise LexError(f"label {candidate!r} starts with a digit",
                           line_number)
        line.labels.append(candidate)
        text = text[colon + 1:].strip()

    if not text:
        return line

    parts = text.split(None, 1)
    line.opcode = parts[0].lower()
    if len(parts) > 1:
        line.operands = _split_operands(parts[1], line_number)
    return line
