"""Assembler directives: segment control and data emission.

Supported: ``.text``, ``.data``, ``.globl``/``.global``, ``.word``,
``.half``, ``.byte``, ``.asciiz``, ``.ascii``, ``.space``, ``.align``.

``.word`` operands may be labels (resolved in pass 2); the other data
directives take literals only.
"""

from __future__ import annotations

from typing import List

from repro.asm.operands import OperandError, parse_immediate

__all__ = ["DIRECTIVES", "data_directive_size", "decode_string_literal"]

DIRECTIVES = frozenset(
    {".text", ".data", ".globl", ".global", ".word", ".half", ".byte",
     ".asciiz", ".ascii", ".space", ".align"})

_STRING_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0",
                   "\\": "\\", '"': '"', "'": "'"}


def decode_string_literal(token: str) -> str:
    """Decode a double-quoted string literal with C-style escapes."""
    token = token.strip()
    if len(token) < 2 or token[0] != '"' or token[-1] != '"':
        raise OperandError(f"expected a string literal, got {token!r}")
    body = token[1:-1]
    out: List[str] = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\":
            if i + 1 >= len(body):
                raise OperandError(f"dangling escape in {token!r}")
            escape = body[i + 1]
            try:
                out.append(_STRING_ESCAPES[escape])
            except KeyError:
                raise OperandError(f"unknown escape \\{escape}") from None
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def data_directive_size(name: str, operands: List[str],
                        current_offset: int) -> int:
    """Bytes the directive will emit at *current_offset* (pass 1).

    ``.align n`` pads to a ``2**n`` boundary, so its size depends on the
    current offset.
    """
    if name == ".word":
        return 4 * len(operands)
    if name == ".half":
        return 2 * len(operands)
    if name == ".byte":
        return len(operands)
    if name in (".asciiz", ".ascii"):
        total = 0
        for op in operands:
            total += len(decode_string_literal(op).encode("latin-1"))
            if name == ".asciiz":
                total += 1
        return total
    if name == ".space":
        if len(operands) != 1:
            raise OperandError(".space expects one operand")
        size = parse_immediate(operands[0])
        if size is None or size < 0:
            raise OperandError(f"bad .space size {operands[0]!r}")
        return size
    if name == ".align":
        if len(operands) != 1:
            raise OperandError(".align expects one operand")
        power = parse_immediate(operands[0])
        if power is None or not 0 <= power <= 16:
            raise OperandError(f"bad .align power {operands[0]!r}")
        alignment = 1 << power
        return (-current_offset) % alignment
    raise OperandError(f"{name} emits no data")
