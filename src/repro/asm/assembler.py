"""The two-pass assembler driver.

Pass 1 lexes every line, expands pseudo-instructions (their sizes are
operand-dependent but symbol-independent), lays out the text and data
segments and collects the symbol table.  Pass 2 resolves symbolic
operands and builds :class:`~repro.isa.instruction.Instruction` objects
and the data image.

Memory layout (SimpleScalar-like):

- text at ``0x0040_0000``
- data at ``0x1000_0000`` (heap grows above it via ``sbrk``)
- stack near ``0x7FFF_FF00`` growing down (set up by the VM)

The entry point is the ``__start`` symbol if defined, else ``main``,
else the first text address.  The VM pre-loads ``$ra`` with the halt
address, so ``main`` may simply ``jr ra`` to exit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.asm.directives import (DIRECTIVES, data_directive_size,
                                  decode_string_literal)
from repro.asm.lexer import LexError, lex_line
from repro.asm.operands import (OperandError, parse_immediate,
                                parse_memory_operand, parse_register,
                                resolve_value)
from repro.asm.pseudo import PSEUDO_MNEMONICS, expand_pseudo
from repro.isa.instruction import Instruction
from repro.isa.opcodes import MNEMONICS

__all__ = ["AssemblyError", "Program", "assemble",
           "TEXT_BASE", "DATA_BASE"]

TEXT_BASE = 0x0040_0000
DATA_BASE = 0x1000_0000


class AssemblyError(ValueError):
    """Any error detected while assembling, with line context."""

    def __init__(self, message: str, line_number: int):
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


@dataclass
class Program:
    """A loadable program image."""

    text_base: int
    instructions: List[Instruction]
    data_base: int
    data: bytearray
    symbols: Dict[str, int]
    entry: int
    globals: List[str] = field(default_factory=list)

    @property
    def text_size(self) -> int:
        return 4 * len(self.instructions)

    def encoded_text(self) -> List[int]:
        """The text segment as binary instruction words."""
        from repro.isa.encoding import encode
        return [encode(instr) for instr in self.instructions]

    def reencoded(self) -> "Program":
        """Round-trip the text segment through the binary encoding.

        Decoding the encoded words must yield a program with identical
        behaviour; the VM tests execute both images and compare traces.
        """
        from repro.isa.encoding import decode
        return Program(
            text_base=self.text_base,
            instructions=[decode(word) for word in self.encoded_text()],
            data_base=self.data_base,
            data=bytearray(self.data),
            symbols=dict(self.symbols),
            entry=self.entry,
            globals=list(self.globals),
        )

    def disassemble(self) -> str:
        """Address-annotated listing of the text segment."""
        lines = []
        for i, instr in enumerate(self.instructions):
            lines.append(f"{self.text_base + 4 * i:#010x}: {instr.text()}")
        return "\n".join(lines)


@dataclass
class _ProtoInstr:
    address: int
    mnemonic: str
    operands: List[str]
    line_number: int


@dataclass
class _ProtoData:
    offset: int
    directive: str
    operands: List[str]
    line_number: int


def assemble(source: str, text_base: int = TEXT_BASE,
             data_base: int = DATA_BASE) -> Program:
    """Assemble R32 source into a :class:`Program`."""
    symbols: Dict[str, int] = {}
    globals_: List[str] = []
    proto_text: List[_ProtoInstr] = []
    proto_data: List[_ProtoData] = []
    text_offset = 0
    data_offset = 0
    segment = "text"

    # ---- pass 1: layout and symbol collection ----
    for number, raw in enumerate(source.splitlines(), start=1):
        try:
            line = lex_line(raw, number)
        except LexError as exc:
            raise AssemblyError(str(exc), number) from None
        try:
            # SPIM-style auto-alignment: .word/.half are naturally
            # aligned, and the padding must precede any label on the
            # same line so the label names the aligned datum.
            if segment == "data" and line.opcode in (".word", ".half"):
                natural = 4 if line.opcode == ".word" else 2
                data_offset += (-data_offset) % natural
            for label in line.labels:
                if label in symbols:
                    raise OperandError(f"duplicate label {label!r}")
                if segment == "text":
                    symbols[label] = text_base + text_offset
                else:
                    symbols[label] = data_base + data_offset
            if line.opcode is None:
                continue
            opcode = line.opcode
            if opcode.startswith("."):
                if opcode not in DIRECTIVES:
                    raise OperandError(f"unknown directive {opcode!r}")
                if opcode == ".text":
                    segment = "text"
                elif opcode == ".data":
                    segment = "data"
                elif opcode in (".globl", ".global"):
                    globals_.extend(line.operands)
                else:
                    if segment != "data":
                        raise OperandError(
                            f"{opcode} outside the .data segment")
                    size = data_directive_size(opcode, line.operands,
                                               data_offset)
                    proto_data.append(_ProtoData(
                        data_offset, opcode, line.operands, number))
                    data_offset += size
                continue
            if segment != "text":
                raise OperandError("instruction outside the .text segment")
            if opcode in PSEUDO_MNEMONICS:
                expansion = expand_pseudo(opcode, line.operands)
            elif opcode in MNEMONICS:
                expansion = [(opcode, line.operands)]
            else:
                raise OperandError(f"unknown instruction {opcode!r}")
            for mnemonic, operands in expansion:
                proto_text.append(_ProtoInstr(
                    text_base + text_offset, mnemonic, list(operands), number))
                text_offset += 4
        except OperandError as exc:
            raise AssemblyError(str(exc), number) from None

    # ---- pass 2: operand resolution ----
    instructions = [_bind(proto, symbols) for proto in proto_text]
    data = bytearray(data_offset)
    for proto in proto_data:
        _emit_data(proto, symbols, data)

    entry = symbols.get("__start", symbols.get("main", text_base))
    return Program(
        text_base=text_base,
        instructions=instructions,
        data_base=data_base,
        data=data,
        symbols=symbols,
        entry=entry,
        globals=globals_,
    )


def _bind(proto: _ProtoInstr, symbols: Dict[str, int]) -> Instruction:
    """Resolve one proto-instruction against the symbol table."""
    spec = MNEMONICS[proto.mnemonic]
    shape = spec.operands
    ops = proto.operands
    try:
        if len(ops) != (shape.count(",") + 1 if shape else 0):
            raise OperandError(
                f"{proto.mnemonic} expects operands '{shape}', got {ops}")
        if shape == "rd,rs,rt":
            return Instruction(proto.mnemonic, rd=parse_register(ops[0]),
                               rs=parse_register(ops[1]),
                               rt=parse_register(ops[2]))
        if shape == "rd,rt,sh":
            shamt = resolve_value(ops[2], symbols)
            return Instruction(proto.mnemonic, rd=parse_register(ops[0]),
                               rt=parse_register(ops[1]), shamt=shamt)
        if shape == "rt,rs,imm":
            imm = _check_imm(resolve_value(ops[2], symbols), proto)
            return Instruction(proto.mnemonic, rt=parse_register(ops[0]),
                               rs=parse_register(ops[1]), imm=imm)
        if shape == "rt,imm":
            imm = _check_imm(resolve_value(ops[1], symbols), proto)
            return Instruction(proto.mnemonic, rt=parse_register(ops[0]),
                               imm=imm)
        if shape == "rt,off(rs)":
            offset, base = parse_memory_operand(ops[1], symbols)
            imm = _check_imm(offset, proto)
            return Instruction(proto.mnemonic, rt=parse_register(ops[0]),
                               rs=base, imm=imm)
        if shape == "rs,rt,label":
            displacement = _branch_disp(ops[2], proto, symbols)
            return Instruction(proto.mnemonic, rs=parse_register(ops[0]),
                               rt=parse_register(ops[1]), imm=displacement)
        if shape == "rs,label":
            displacement = _branch_disp(ops[1], proto, symbols)
            return Instruction(proto.mnemonic, rs=parse_register(ops[0]),
                               imm=displacement)
        if shape == "label":
            address = resolve_value(ops[0], symbols)
            if address & 3:
                raise OperandError(f"jump target {address:#x} is unaligned")
            if (address >> 28) != (proto.address >> 28):
                raise OperandError(
                    f"jump target {address:#x} outside the 256MB region")
            return Instruction(proto.mnemonic,
                               target=(address >> 2) & 0x3FFFFFF)
        if shape == "rs":
            return Instruction(proto.mnemonic, rs=parse_register(ops[0]))
        if shape == "rd,rs":
            return Instruction(proto.mnemonic, rd=parse_register(ops[0]),
                               rs=parse_register(ops[1]))
        if shape == "":
            return Instruction(proto.mnemonic)
        raise OperandError(f"unhandled operand shape {shape!r}")
    except (OperandError, ValueError) as exc:
        raise AssemblyError(str(exc), proto.line_number) from None


_UNSIGNED_IMM = frozenset({"andi", "ori", "xori", "lui"})


def _check_imm(value: int, proto: _ProtoInstr) -> int:
    """Validate a 16-bit immediate against the mnemonic's range.

    Logical immediates and ``lui`` are zero-extended (``[0, 0xFFFF]``);
    arithmetic immediates and load/store offsets are sign-extended
    (``[-0x8000, 0x7FFF]``).
    """
    if proto.mnemonic in _UNSIGNED_IMM:
        low, high = 0, 0xFFFF
    else:
        low, high = -0x8000, 0x7FFF
    if not low <= value <= high:
        raise OperandError(
            f"{proto.mnemonic}: immediate {value} does not fit 16 bits "
            f"(range [{low}, {high}])")
    return value


def _branch_disp(token: str, proto: _ProtoInstr,
                 symbols: Dict[str, int]) -> int:
    """Branch displacement in instructions, relative to PC+4."""
    target = resolve_value(token, symbols)
    delta = target - (proto.address + 4)
    if delta & 3:
        raise OperandError(f"branch target {target:#x} is unaligned")
    displacement = delta >> 2
    if not -0x8000 <= displacement < 0x8000:
        raise OperandError(
            f"branch to {token!r} out of the 16-bit range "
            f"({displacement} instructions)")
    return displacement


def _emit_data(proto: _ProtoData, symbols: Dict[str, int],
               data: bytearray) -> None:
    """Fill the data image for one directive (pass 2)."""
    offset = proto.offset
    name = proto.directive
    try:
        if name == ".word":
            for op in proto.operands:
                value = resolve_value(op, symbols) & 0xFFFFFFFF
                data[offset:offset + 4] = value.to_bytes(4, "little")
                offset += 4
        elif name == ".half":
            for op in proto.operands:
                value = resolve_value(op, symbols) & 0xFFFF
                data[offset:offset + 2] = value.to_bytes(2, "little")
                offset += 2
        elif name == ".byte":
            for op in proto.operands:
                data[offset] = resolve_value(op, symbols) & 0xFF
                offset += 1
        elif name in (".asciiz", ".ascii"):
            for op in proto.operands:
                blob = decode_string_literal(op).encode("latin-1")
                data[offset:offset + len(blob)] = blob
                offset += len(blob)
                if name == ".asciiz":
                    data[offset] = 0
                    offset += 1
        # .space and .align leave zero bytes; nothing to emit.
    except OperandError as exc:
        raise AssemblyError(str(exc), proto.line_number) from None
