"""Operand parsing: immediates, registers, memory references, labels.

Immediate syntax: decimal (optionally negative), hex (``0x``), binary
(``0b``), character literals (``'a'``, ``'\\n'``), and -- internally,
emitted by pseudo-instruction expansion -- ``%hi(label)`` / ``%lo(label)``
relocations resolved against the symbol table in pass 2.
"""

from __future__ import annotations

import re
from typing import Dict, Optional, Tuple

from repro.isa.registers import register_number

__all__ = ["OperandError", "parse_immediate", "parse_register",
           "parse_memory_operand", "resolve_value"]

_ESCAPES = {"n": 10, "t": 9, "0": 0, "r": 13, "\\": 92, "'": 39, '"': 34}

_MEM_RE = re.compile(r"^(?P<offset>[^()]*)\(\s*(?P<base>[^()]+)\s*\)$")
_RELOC_RE = re.compile(r"^%(?P<kind>hi|lo)\(\s*(?P<sym>[^()]+)\s*\)$")


class OperandError(ValueError):
    """Malformed or unresolvable operand."""


def parse_register(token: str) -> int:
    try:
        return register_number(token.strip())
    except ValueError as exc:
        raise OperandError(str(exc)) from None


def _char_literal(token: str) -> Optional[int]:
    if len(token) >= 3 and token[0] == "'" and token[-1] == "'":
        body = token[1:-1]
        if len(body) == 1:
            return ord(body)
        if len(body) == 2 and body[0] == "\\":
            try:
                return _ESCAPES[body[1]]
            except KeyError:
                raise OperandError(f"unknown escape {body!r}") from None
        raise OperandError(f"bad character literal {token!r}")
    return None


def parse_immediate(token: str) -> Optional[int]:
    """Parse a numeric literal; None when the token is symbolic."""
    token = token.strip()
    char = _char_literal(token)
    if char is not None:
        return char
    try:
        return int(token, 0)
    except ValueError:
        return None


def resolve_value(token: str, symbols: Dict[str, int]) -> int:
    """Resolve a literal, a label, or a %hi/%lo relocation to an int."""
    token = token.strip()
    literal = parse_immediate(token)
    if literal is not None:
        return literal
    reloc = _RELOC_RE.match(token)
    if reloc:
        address = resolve_value(reloc.group("sym"), symbols)
        if reloc.group("kind") == "hi":
            # Plain (non-adjusted) %hi: pairs with ori, not addi.
            return (address >> 16) & 0xFFFF
        return address & 0xFFFF
    if token in symbols:
        return symbols[token]
    # label+offset / label-offset arithmetic
    for op in ("+", "-"):
        head, sep, tail = token.rpartition(op)
        if sep and head.strip() in symbols:
            offset = parse_immediate(tail)
            if offset is None:
                break
            base = symbols[head.strip()]
            return base + offset if op == "+" else base - offset
    raise OperandError(f"cannot resolve operand {token!r}")


def parse_memory_operand(token: str,
                         symbols: Dict[str, int]) -> Tuple[int, int]:
    """Parse ``offset(base)`` into (offset, base register number)."""
    match = _MEM_RE.match(token.strip())
    if not match:
        raise OperandError(f"expected offset(base), got {token!r}")
    base = parse_register(match.group("base"))
    offset_text = match.group("offset").strip()
    offset = resolve_value(offset_text, symbols) if offset_text else 0
    return offset, base
