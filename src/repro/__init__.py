"""Reproduction of the HPCA 2001 paper "Differential FCM: Increasing Value
Prediction Accuracy by Improving Table Usage Efficiency" (Goeman,
Vandierendonck and De Bosschere).

The package is organised as:

- :mod:`repro.core` -- the value predictors studied in the paper (last
  value, stride, FCM, DFCM, hybrids) together with the measurement
  instrumentation (aliasing taxonomy, level-2 occupancy, storage model).
- :mod:`repro.isa`, :mod:`repro.asm`, :mod:`repro.vm` -- a MIPS-like
  32-bit instruction set, assembler and functional simulator standing in
  for SimpleScalar's ``sim-safe``.
- :mod:`repro.lang` -- MinC, a small C-subset compiler standing in for
  gcc; the SPECint95-like workloads are written in MinC.
- :mod:`repro.workloads` -- the benchmark programs and synthetic trace
  generators.
- :mod:`repro.trace` -- value-trace capture and caching.
- :mod:`repro.harness` -- experiment registry reproducing every figure
  and table of the paper's evaluation.
"""

from repro.core.base import ValuePredictor
from repro.core.last_value import LastValuePredictor
from repro.core.stride import StridePredictor, TwoDeltaStridePredictor
from repro.core.fcm import FCMPredictor
from repro.core.dfcm import DFCMPredictor
from repro.core.hybrid import OracleHybridPredictor, MetaHybridPredictor
from repro.core.delayed import DelayedUpdatePredictor
from repro.trace.trace import ValueTrace
from repro.harness.simulate import measure_accuracy, measure_suite

__all__ = [
    "ValuePredictor",
    "LastValuePredictor",
    "StridePredictor",
    "TwoDeltaStridePredictor",
    "FCMPredictor",
    "DFCMPredictor",
    "OracleHybridPredictor",
    "MetaHybridPredictor",
    "DelayedUpdatePredictor",
    "ValueTrace",
    "measure_accuracy",
    "measure_suite",
]

__version__ = "1.0.0"
