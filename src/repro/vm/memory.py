"""Sparse paged byte-addressable memory, little-endian.

Pages are allocated on first touch, so a 4 GiB address space costs only
what the program actually uses.  Word and halfword accesses must be
naturally aligned (the compiler only emits aligned accesses; a fault
here indicates a codegen or workload bug, which is exactly when we want
a loud failure).
"""

from __future__ import annotations

from repro.vm.errors import MemoryFault

__all__ = ["Memory", "PAGE_SIZE"]

PAGE_SIZE = 1 << 12
_PAGE_MASK = PAGE_SIZE - 1
_ADDR_MASK = 0xFFFFFFFF


class Memory:
    """Sparse 32-bit address space."""

    def __init__(self):
        self._pages: dict = {}

    def _page(self, addr: int) -> bytearray:
        page_id = addr >> 12
        page = self._pages.get(page_id)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[page_id] = page
        return page

    # -- byte accessors --

    def read_u8(self, addr: int) -> int:
        addr &= _ADDR_MASK
        page = self._pages.get(addr >> 12)
        if page is None:
            return 0
        return page[addr & _PAGE_MASK]

    def write_u8(self, addr: int, value: int) -> None:
        addr &= _ADDR_MASK
        self._page(addr)[addr & _PAGE_MASK] = value & 0xFF

    # -- halfword accessors --

    def read_u16(self, addr: int) -> int:
        addr &= _ADDR_MASK
        if addr & 1:
            raise MemoryFault(f"unaligned halfword read at {addr:#010x}")
        page = self._pages.get(addr >> 12)
        if page is None:
            return 0
        offset = addr & _PAGE_MASK
        return page[offset] | (page[offset + 1] << 8)

    def write_u16(self, addr: int, value: int) -> None:
        addr &= _ADDR_MASK
        if addr & 1:
            raise MemoryFault(f"unaligned halfword write at {addr:#010x}")
        page = self._page(addr)
        offset = addr & _PAGE_MASK
        page[offset] = value & 0xFF
        page[offset + 1] = (value >> 8) & 0xFF

    # -- word accessors --

    def read_u32(self, addr: int) -> int:
        addr &= _ADDR_MASK
        if addr & 3:
            raise MemoryFault(f"unaligned word read at {addr:#010x}")
        page = self._pages.get(addr >> 12)
        if page is None:
            return 0
        offset = addr & _PAGE_MASK
        return (page[offset] | (page[offset + 1] << 8)
                | (page[offset + 2] << 16) | (page[offset + 3] << 24))

    def write_u32(self, addr: int, value: int) -> None:
        addr &= _ADDR_MASK
        if addr & 3:
            raise MemoryFault(f"unaligned word write at {addr:#010x}")
        page = self._page(addr)
        offset = addr & _PAGE_MASK
        page[offset] = value & 0xFF
        page[offset + 1] = (value >> 8) & 0xFF
        page[offset + 2] = (value >> 16) & 0xFF
        page[offset + 3] = (value >> 24) & 0xFF

    # -- bulk helpers --

    def write_bytes(self, addr: int, data: bytes) -> None:
        """Copy a blob into memory (used by the loader)."""
        for i, byte in enumerate(data):
            self.write_u8(addr + i, byte)

    def read_bytes(self, addr: int, length: int) -> bytes:
        return bytes(self.read_u8(addr + i) for i in range(length))

    def read_cstring(self, addr: int, limit: int = 1 << 16) -> str:
        """Read a NUL-terminated string (for the print_string syscall)."""
        chars = []
        for i in range(limit):
            byte = self.read_u8(addr + i)
            if byte == 0:
                return bytes(chars).decode("latin-1")
            chars.append(byte)
        raise MemoryFault(
            f"unterminated string at {addr:#010x} (> {limit} bytes)")

    @property
    def resident_bytes(self) -> int:
        """Touched memory in bytes (one page granularity)."""
        return len(self._pages) * PAGE_SIZE
