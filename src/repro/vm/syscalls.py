"""R32 syscall interface (a small subset of the SPIM conventions).

The syscall number is taken from ``$v0``; arguments from ``$a0``.

====  =============  ======================================
code  name           behaviour
====  =============  ======================================
1     print_int      append str($a0 as signed) to output
4     print_string   append NUL-terminated string at $a0
9     sbrk           grow the heap by $a0 bytes, old break -> $v0
10    exit           stop execution, exit code in $a0
11    print_char     append chr($a0 & 0xFF)
====  =============  ======================================

Syscall results (sbrk's ``$v0``) are *not* part of the value trace: the
paper predicts ordinary integer instructions, not OS effects.
"""

from __future__ import annotations

from repro.core.types import to_s32
from repro.vm.errors import BadSyscall

__all__ = ["SYS_PRINT_INT", "SYS_PRINT_STRING", "SYS_SBRK", "SYS_EXIT",
           "SYS_PRINT_CHAR", "do_syscall"]

SYS_PRINT_INT = 1
SYS_PRINT_STRING = 4
SYS_SBRK = 9
SYS_EXIT = 10
SYS_PRINT_CHAR = 11


def do_syscall(machine) -> bool:
    """Execute one syscall on *machine*; True when the program exited."""
    code = machine.regs[2]  # $v0
    arg = machine.regs[4]   # $a0
    if machine.profile is not None:
        # Exact syscall accounting lives here, off the hot loop:
        # syscalls are orders of magnitude rarer than ALU ops.
        machine.profile.record_syscall(code)
    if code == SYS_PRINT_INT:
        machine.output.append(str(to_s32(arg)))
    elif code == SYS_PRINT_STRING:
        machine.output.append(machine.memory.read_cstring(arg))
    elif code == SYS_SBRK:
        machine.regs[2] = machine.brk
        machine.brk = (machine.brk + arg) & 0xFFFFFFFF
    elif code == SYS_EXIT:
        machine.exit_code = to_s32(arg)
        return True
    elif code == SYS_PRINT_CHAR:
        machine.output.append(chr(arg & 0xFF))
    else:
        raise BadSyscall(f"unknown syscall {code} at pc={machine.pc:#010x}")
    return False
