"""VM execution profiling: retired counts, opcode mix, hot PCs, syscalls.

Design constraint: the interpreter loop in
:class:`repro.vm.machine.Machine` is the repo's hottest code, and
profiling must cost *nothing* when disabled.  So instead of threading
per-instruction hooks through the loop, profiling is a **sampling**
wrapper: the machine runs the unmodified loop in bounded chunks
(``sample_interval`` instructions per chunk, reusing the loop's own
budget bookkeeping), and at each chunk boundary the profile records the
current PC and its mnemonic.  With profiling off the loop is
byte-for-byte the uninstrumented code; with it on, the overhead is one
exception unwind per ``sample_interval`` instructions.

What is exact and what is sampled:

- retired instruction count -- exact (the loop already tracks it);
- syscall counts -- exact (syscalls are rare, so the hook lives in the
  out-of-line syscall path, not the hot loop);
- hot-PC top-N and opcode mix -- statistical, one sample per
  ``sample_interval`` retired instructions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["VMProfile"]


class VMProfile:
    """Accumulated profile of one (or more) :meth:`Machine.run` calls.

    Parameters
    ----------
    sample_interval:
        Instructions retired between PC samples; smaller = sharper
        profile, more unwind overhead.  Must be >= 1.
    """

    __slots__ = ("sample_interval", "samples", "retired",
                 "pc_counts", "op_counts", "syscall_counts")

    def __init__(self, sample_interval: int = 4096):
        if sample_interval < 1:
            raise ValueError(
                f"sample_interval must be >= 1, got {sample_interval}")
        self.sample_interval = sample_interval
        self.samples = 0
        self.retired = 0
        self.pc_counts: Dict[int, int] = {}
        self.op_counts: Dict[str, int] = {}
        self.syscall_counts: Dict[int, int] = {}

    def record_sample(self, pc: int, mnemonic: Optional[str]) -> None:
        """One PC sample at a chunk boundary (called by the machine)."""
        self.samples += 1
        self.pc_counts[pc] = self.pc_counts.get(pc, 0) + 1
        if mnemonic is not None:
            self.op_counts[mnemonic] = self.op_counts.get(mnemonic, 0) + 1

    def record_syscall(self, code: int) -> None:
        """One executed syscall (exact; called from the syscall path)."""
        self.syscall_counts[code] = self.syscall_counts.get(code, 0) + 1

    def top_pcs(self, n: int = 10) -> List[Tuple[int, int]]:
        """The *n* most-sampled PCs as (pc, sample count), hottest first."""
        ranked = sorted(self.pc_counts.items(),
                        key=lambda item: (-item[1], item[0]))
        return ranked[:n]

    def opcode_mix(self) -> Dict[str, float]:
        """Sampled opcode shares (fractions summing to ~1.0)."""
        total = sum(self.op_counts.values())
        if not total:
            return {}
        return {mnemonic: count / total
                for mnemonic, count in sorted(self.op_counts.items())}

    def as_dict(self) -> dict:
        """JSON-able summary (the shape emitted to telemetry sinks)."""
        return {
            "sample_interval": self.sample_interval,
            "samples": self.samples,
            "retired_instructions": self.retired,
            "opcode_counts": dict(sorted(self.op_counts.items())),
            "syscall_counts": {str(code): count for code, count
                               in sorted(self.syscall_counts.items())},
            "hot_pcs": [[f"{pc:#010x}", count]
                        for pc, count in self.top_pcs(10)],
        }
