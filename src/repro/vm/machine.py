"""The R32 functional simulator core.

Semantics notes:

- 32-bit two's-complement wrap-around arithmetic everywhere (registers
  hold unsigned images in ``[0, 2**32)``).
- No branch delay slots (a deliberate simplification relative to real
  MIPS; SimpleScalar's PISA made the same choice for sim-safe-level
  semantics, and value traces are unaffected).
- Division truncates toward zero, as in C; division by zero faults.
- Register 0 is hardwired to zero.
- A ``jr``/function return to :data:`HALT_ADDRESS` stops the machine,
  which is how the startup convention terminates ``main``.

Value tracing (the whole point of the substrate): when ``collect_trace``
is set, every retired instruction that architecturally writes an
integer register -- ALU ops and loads, but not branches, jumps, stores
or syscalls, matching the paper's prediction set -- appends
``(pc, value)`` to :attr:`Machine.trace`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.isa.instruction import Instruction
from repro.vm.errors import (ArithmeticFault, ExecutionLimitExceeded,
                             MemoryFault, VMError)
from repro.vm.memory import Memory
from repro.vm.syscalls import do_syscall

__all__ = ["Machine", "HALT_ADDRESS"]

MASK32 = 0xFFFFFFFF
HALT_ADDRESS = 0xFFFF_FFF0

_SP_INIT = 0x7FFF_FF00


def _s32(value: int) -> int:
    """Unsigned 32-bit image -> signed Python int."""
    return value - 0x100000000 if value >= 0x80000000 else value


class Machine:
    """One R32 hart plus memory, loader and tracing hooks.

    Parameters
    ----------
    program:
        A loadable image as produced by
        :func:`repro.asm.assembler.assemble`: needs ``text_base``,
        ``instructions``, ``data_base``, ``data``, ``symbols`` and
        ``entry`` attributes.
    collect_trace:
        When True, (pc, value) pairs of value-producing instructions
        are appended to :attr:`trace`.
    trace_limit:
        Stop execution (cleanly) once this many trace records have been
        collected; None means unlimited.  This is the knob that stands
        in for the paper's "simulate only the first 200 million
        instructions".
    profile:
        A :class:`repro.vm.profile.VMProfile` to fill, or None.  With
        a profile attached, :meth:`run` executes in
        ``profile.sample_interval``-sized chunks, sampling the PC (and
        mnemonic) at each boundary; the interpreter loop itself is
        untouched, so a ``profile=None`` machine pays nothing.
    """

    def __init__(self, program, collect_trace: bool = False,
                 trace_limit: Optional[int] = None,
                 profile=None):
        self.program = program
        self.memory = Memory()
        self.regs: List[int] = [0] * 32
        self.pc = program.entry
        self.exit_code: Optional[int] = None
        self.output: List[str] = []
        self.instructions_executed = 0
        self.collect_trace = collect_trace
        self.trace: List[Tuple[int, int]] = []
        self.trace_limit = trace_limit
        self.truncated = False
        self.profile = profile

        # Load the data segment and set up the runtime environment.
        if program.data:
            self.memory.write_bytes(program.data_base, bytes(program.data))
        self.brk = (program.data_base + len(program.data) + 0xFFF) & ~0xFFF
        self.regs[29] = _SP_INIT       # $sp
        self.regs[31] = HALT_ADDRESS   # $ra: returning from main halts

        # Pre-extract instruction fields into flat tuples; the
        # interpreter loop indexes this list instead of re-reading
        # dataclass attributes every cycle.
        self._decoded = [
            (instr.mnemonic, instr.rd, instr.rs, instr.rt,
             instr.shamt, instr.imm, instr.target, instr.dest_register)
            for instr in program.instructions
        ]
        self._text_base = program.text_base
        self._text_end = program.text_base + 4 * len(self._decoded)

    # ------------------------------------------------------------------

    def register(self, name_or_number) -> int:
        """Read a register by ABI name or number (for tests/debugging)."""
        if isinstance(name_or_number, str):
            from repro.isa.registers import register_number
            return self.regs[register_number(name_or_number)]
        return self.regs[name_or_number]

    @property
    def stdout(self) -> str:
        """Everything the program printed, concatenated."""
        return "".join(self.output)

    # ------------------------------------------------------------------

    def run(self, max_instructions: int = 50_000_000) -> int:
        """Execute until exit/halt; returns the exit code.

        Raises :class:`ExecutionLimitExceeded` when *max_instructions*
        retire without the program terminating -- unless a
        ``trace_limit`` was hit first, in which case the run stops
        cleanly with :attr:`truncated` set.

        With a :attr:`profile` attached, execution is chunked at the
        profile's sample interval (see :meth:`_run_profiled`); the
        interpreter loop itself is identical either way.
        """
        if self.profile is not None:
            return self._run_profiled(max_instructions)
        return self._run(max_instructions)

    def _run_profiled(self, max_instructions: int) -> int:
        """Run in sample-interval chunks, recording a PC sample at each
        chunk boundary; exact retired/syscall counts come for free."""
        profile = self.profile
        interval = profile.sample_interval
        while True:
            target = min(self.instructions_executed + interval,
                         max_instructions)
            try:
                code = self._run(target)
            except ExecutionLimitExceeded:
                if target >= max_instructions:
                    profile.retired = self.instructions_executed
                    raise
                profile.record_sample(self.pc, self._mnemonic_at(self.pc))
                continue
            profile.retired = self.instructions_executed
            return code

    def _mnemonic_at(self, pc: int) -> Optional[str]:
        """Mnemonic of the instruction at *pc*, or None off-text."""
        index = (pc - self._text_base) >> 2
        if 0 <= index < len(self._decoded):
            return self._decoded[index][0]
        return None

    def _run(self, max_instructions: int) -> int:
        regs = self.regs
        memory = self.memory
        decoded = self._decoded
        text_base = self._text_base
        trace = self.trace
        collect = self.collect_trace
        limit = self.trace_limit
        pc = self.pc
        executed = self.instructions_executed
        budget = max_instructions

        while True:
            if pc == HALT_ADDRESS:
                # Returned from main: exit code is $v0.
                self.exit_code = _s32(regs[2])
                break
            index = (pc - text_base) >> 2
            if not 0 <= index < len(decoded):
                self.pc = pc
                raise MemoryFault(
                    f"pc {pc:#010x} outside the text segment")
            if executed >= budget:
                self.pc = pc
                self.instructions_executed = executed
                raise ExecutionLimitExceeded(
                    f"no exit after {budget} instructions")
            executed += 1

            mnem, rd, rs, rt, shamt, imm, target, dest = decoded[index]
            next_pc = pc + 4

            if mnem == "addi":
                value = (regs[rs] + imm) & MASK32
                regs[rt] = value
            elif mnem == "lw":
                value = memory.read_u32((regs[rs] + imm) & MASK32)
                regs[rt] = value
            elif mnem == "sw":
                memory.write_u32((regs[rs] + imm) & MASK32, regs[rt])
                value = None
            elif mnem == "add":
                value = (regs[rs] + regs[rt]) & MASK32
                regs[rd] = value
            elif mnem == "sub":
                value = (regs[rs] - regs[rt]) & MASK32
                regs[rd] = value
            elif mnem == "beq":
                if regs[rs] == regs[rt]:
                    next_pc = pc + 4 + (imm << 2)
                value = None
            elif mnem == "bne":
                if regs[rs] != regs[rt]:
                    next_pc = pc + 4 + (imm << 2)
                value = None
            elif mnem == "slt":
                value = 1 if _s32(regs[rs]) < _s32(regs[rt]) else 0
                regs[rd] = value
            elif mnem == "sltu":
                value = 1 if regs[rs] < regs[rt] else 0
                regs[rd] = value
            elif mnem == "slti":
                value = 1 if _s32(regs[rs]) < imm else 0
                regs[rt] = value
            elif mnem == "sltiu":
                value = 1 if regs[rs] < (imm & MASK32) else 0
                regs[rt] = value
            elif mnem == "mul":
                value = (_s32(regs[rs]) * _s32(regs[rt])) & MASK32
                regs[rd] = value
            elif mnem == "mulh":
                value = ((_s32(regs[rs]) * _s32(regs[rt])) >> 32) & MASK32
                regs[rd] = value
            elif mnem == "div":
                divisor = _s32(regs[rt])
                if divisor == 0:
                    self.pc = pc
                    raise ArithmeticFault(f"division by zero at {pc:#010x}")
                dividend = _s32(regs[rs])
                quotient = abs(dividend) // abs(divisor)
                if (dividend < 0) != (divisor < 0):
                    quotient = -quotient
                value = quotient & MASK32
                regs[rd] = value
            elif mnem == "rem":
                divisor = _s32(regs[rt])
                if divisor == 0:
                    self.pc = pc
                    raise ArithmeticFault(f"remainder by zero at {pc:#010x}")
                dividend = _s32(regs[rs])
                remainder = abs(dividend) % abs(divisor)
                if dividend < 0:
                    remainder = -remainder
                value = remainder & MASK32
                regs[rd] = value
            elif mnem == "and":
                value = regs[rs] & regs[rt]
                regs[rd] = value
            elif mnem == "or":
                value = regs[rs] | regs[rt]
                regs[rd] = value
            elif mnem == "xor":
                value = regs[rs] ^ regs[rt]
                regs[rd] = value
            elif mnem == "nor":
                value = ~(regs[rs] | regs[rt]) & MASK32
                regs[rd] = value
            elif mnem == "andi":
                value = regs[rs] & (imm & 0xFFFF)
                regs[rt] = value
            elif mnem == "ori":
                value = regs[rs] | (imm & 0xFFFF)
                regs[rt] = value
            elif mnem == "xori":
                value = regs[rs] ^ (imm & 0xFFFF)
                regs[rt] = value
            elif mnem == "lui":
                value = (imm & 0xFFFF) << 16
                regs[rt] = value
            elif mnem == "sll":
                value = (regs[rt] << shamt) & MASK32
                regs[rd] = value
            elif mnem == "srl":
                value = regs[rt] >> shamt
                regs[rd] = value
            elif mnem == "sra":
                value = (_s32(regs[rt]) >> shamt) & MASK32
                regs[rd] = value
            # Variable shifts: R32 takes the value in rs and the shift
            # amount in rt, matching the assembly order
            # "sllv rd, value, amount" (a deliberate simplification of
            # MIPS' swapped rt/rs fields).
            elif mnem == "sllv":
                value = (regs[rs] << (regs[rt] & 31)) & MASK32
                regs[rd] = value
            elif mnem == "srlv":
                value = regs[rs] >> (regs[rt] & 31)
                regs[rd] = value
            elif mnem == "srav":
                value = (_s32(regs[rs]) >> (regs[rt] & 31)) & MASK32
                regs[rd] = value
            elif mnem == "lb":
                byte = memory.read_u8((regs[rs] + imm) & MASK32)
                value = (byte - 0x100 if byte >= 0x80 else byte) & MASK32
                regs[rt] = value
            elif mnem == "lbu":
                value = memory.read_u8((regs[rs] + imm) & MASK32)
                regs[rt] = value
            elif mnem == "lh":
                half = memory.read_u16((regs[rs] + imm) & MASK32)
                value = (half - 0x10000 if half >= 0x8000 else half) & MASK32
                regs[rt] = value
            elif mnem == "lhu":
                value = memory.read_u16((regs[rs] + imm) & MASK32)
                regs[rt] = value
            elif mnem == "sb":
                memory.write_u8((regs[rs] + imm) & MASK32, regs[rt])
                value = None
            elif mnem == "sh":
                memory.write_u16((regs[rs] + imm) & MASK32, regs[rt])
                value = None
            elif mnem == "blez":
                if _s32(regs[rs]) <= 0:
                    next_pc = pc + 4 + (imm << 2)
                value = None
            elif mnem == "bgtz":
                if _s32(regs[rs]) > 0:
                    next_pc = pc + 4 + (imm << 2)
                value = None
            elif mnem == "bltz":
                if _s32(regs[rs]) < 0:
                    next_pc = pc + 4 + (imm << 2)
                value = None
            elif mnem == "bgez":
                if _s32(regs[rs]) >= 0:
                    next_pc = pc + 4 + (imm << 2)
                value = None
            elif mnem == "j":
                next_pc = (pc & 0xF0000000) | (target << 2)
                value = None
            elif mnem == "jal":
                regs[31] = pc + 4
                next_pc = (pc & 0xF0000000) | (target << 2)
                value = None
            elif mnem == "jr":
                next_pc = regs[rs]
                value = None
            elif mnem == "jalr":
                regs[rd or 31] = pc + 4
                next_pc = regs[rs]
                value = None
            elif mnem == "syscall":
                self.pc = pc
                if do_syscall(self):
                    self.instructions_executed = executed
                    break
                value = None
            else:  # pragma: no cover - the opcode table is closed
                self.pc = pc
                raise VMError(f"unimplemented mnemonic {mnem!r}")

            # Register 0 stays zero no matter what was written.
            regs[0] = 0

            if collect and dest is not None and value is not None:
                trace.append((pc, value))
                if limit is not None and len(trace) >= limit:
                    self.truncated = True
                    pc = next_pc
                    break

            pc = next_pc

        self.pc = pc
        self.instructions_executed = executed
        return self.exit_code if self.exit_code is not None else 0
