"""The R32 functional simulator (the SimpleScalar ``sim-safe`` stand-in).

Executes assembled programs instruction by instruction, with no timing
model, and can capture the value trace (PC, produced register value)
that feeds the predictors.
"""

from repro.vm.errors import VMError, MemoryFault, ExecutionLimitExceeded
from repro.vm.memory import Memory
from repro.vm.machine import Machine, HALT_ADDRESS
from repro.vm.profile import VMProfile

__all__ = [
    "VMError",
    "MemoryFault",
    "ExecutionLimitExceeded",
    "Memory",
    "Machine",
    "HALT_ADDRESS",
    "VMProfile",
]
