"""Fault types raised by the R32 simulator."""

from __future__ import annotations

__all__ = ["VMError", "MemoryFault", "ExecutionLimitExceeded",
           "ArithmeticFault", "BadSyscall"]


class VMError(Exception):
    """Base class for simulator faults."""


class MemoryFault(VMError):
    """Unaligned or out-of-segment memory access."""


class ArithmeticFault(VMError):
    """Integer division or remainder by zero."""


class BadSyscall(VMError):
    """Unknown or malformed syscall."""


class ExecutionLimitExceeded(VMError):
    """The instruction budget ran out before the program exited.

    Deliberately *not* always an error condition for tracing: the trace
    capture layer catches it to truncate long-running workloads, the
    same way the paper simulates "only the first 200 million
    instructions".
    """
