"""Measurement harness: accuracy simulation, sweeps, experiment registry."""

from repro.harness.simulate import measure_accuracy, measure_suite
from repro.harness.experiments import experiment_ids, run_experiment
from repro.harness.sweep import pareto_front, sweep

__all__ = ["measure_accuracy", "measure_suite", "run_experiment",
           "experiment_ids", "sweep", "pareto_front"]
