"""Parallel execution of (predictor spec, trace) measurement cells.

``repro run --jobs N`` and ``sweep(..., executor="process")`` fan the
independent cells of a suite or sweep -- one (configuration, trace)
pair each -- across a :class:`~concurrent.futures.ProcessPoolExecutor`.
Cells must be described by a picklable
:class:`~repro.core.spec.PredictorSpec`; traces travel as their raw
``(name, pcs, values)`` arrays so a worker never unpickles the parent's
cached record list.

Determinism: results come back in submission order (``pool.map``), so
a parallel suite/sweep produces byte-identical figure output to the
serial one.

Telemetry: each worker first detaches the fork-inherited parent run
(:func:`repro.telemetry.run.detach_run` -- closing it would double-
flush the parent's buffered event file), zeroes its fork-copied
metrics registry, and installs an in-memory
:class:`~repro.telemetry.run.CollectorRun`.  The events and the
registry snapshot it collects travel back with the cell result; the
parent stitches them into its own file-backed run -- span ids are
namespaced ``w<cell>:``, root spans re-parent under the parent's
innermost open span, every event is tagged with its cell index, and
worker metrics fold into the parent registry via
:meth:`~repro.telemetry.registry.MetricsRegistry.merge_snapshot`.

Resolution order for both knobs mirrors the engine layer: explicit
argument > :func:`executor_default` (installed by the CLI) >
``$REPRO_EXECUTOR`` / ``$REPRO_JOBS`` > serial.  Naming a job count
above one implies the process executor; the serial executor always
reports one job.  A malformed or non-positive ``$REPRO_JOBS`` raises a
``ValueError`` naming the variable when it is resolved, and a job
count above ``os.cpu_count()`` is clamped to the core count (recorded
via the ``repro_jobs_clamped_total`` counter and, under an active
telemetry run, a ``jobs_clamped`` warning event).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from typing import List, Optional, Sequence, Tuple

__all__ = ["EXECUTOR_NAMES", "executor_default", "resolve_executor",
           "run_cells"]

EXECUTOR_NAMES = ("serial", "process")

_DEFAULT = {"executor": None, "jobs": None}


@contextmanager
def executor_default(executor: Optional[str] = None,
                     jobs: Optional[int] = None):
    """Install process-wide executor/jobs defaults (the CLI's
    ``--jobs`` flag); restores the previous defaults on exit."""
    if executor is not None and executor not in EXECUTOR_NAMES:
        raise ValueError(
            f"unknown executor {executor!r}; expected one of "
            f"{EXECUTOR_NAMES}")
    if jobs is not None and jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    previous = dict(_DEFAULT)
    _DEFAULT.update({"executor": executor, "jobs": jobs})
    try:
        yield
    finally:
        _DEFAULT.update(previous)


def _env_jobs() -> Optional[int]:
    """``$REPRO_JOBS``, validated at resolve time.

    Unset or empty means "not configured"; anything else must be a
    positive integer -- a typo'd value failing silently would quietly
    serialise (or mis-parallelise) every suite run.
    """
    env = os.environ.get("REPRO_JOBS")
    if env is None or env == "":
        return None
    try:
        n = int(env)
    except ValueError:
        raise ValueError(
            f"REPRO_JOBS must be a positive integer, got {env!r}") from None
    if n < 1:
        raise ValueError(
            f"REPRO_JOBS must be a positive integer, got {env!r}")
    return n


def _clamp_jobs(n: int) -> int:
    """Cap a requested worker count at the machine's cores.

    More workers than cores only adds fork and scheduling overhead; the
    clamp is recorded (counter always, event when a telemetry run is
    active) so a CI log shows why fewer workers ran than were asked
    for.
    """
    cores = os.cpu_count() or 1
    if n <= cores:
        return n
    from repro.telemetry.registry import registry
    registry().counter(
        "repro_jobs_clamped_total",
        "Requested job counts clamped to the machine's cpu count.").inc()
    from repro.telemetry import run as _telemetry_run
    run = _telemetry_run.active_run()
    if run is not None:
        run.emit({"type": "warning", "what": "jobs_clamped",
                  "requested": n, "cpu_count": cores})
    return cores


def resolve_executor(executor: Optional[str] = None,
                     jobs: Optional[int] = None) -> Tuple[str, int]:
    """Resolve the two knobs to a concrete ``(name, jobs)`` pair."""
    name = (executor or _DEFAULT["executor"]
            or os.environ.get("REPRO_EXECUTOR"))
    if jobs is not None:
        n: Optional[int] = jobs
    elif _DEFAULT["jobs"] is not None:
        n = _DEFAULT["jobs"]
    else:
        n = _env_jobs()
    if n is not None and n < 1:
        raise ValueError(f"jobs must be >= 1, got {n}")
    if name is None:
        name = "process" if (n or 1) > 1 else "serial"
    if name not in EXECUTOR_NAMES:
        raise ValueError(
            f"unknown executor {name!r}; expected one of {EXECUTOR_NAMES}")
    if name == "serial":
        return "serial", 1
    return "process", _clamp_jobs(n) if n is not None else (os.cpu_count() or 2)


def _run_cell(payload):
    """Worker body: measure one cell under a collector run.

    Module-level so it pickles; receives everything it needs and
    returns ``(index, outcome, events, metrics_snapshot)``.
    """
    index, spec, trace_name, pcs, values, engine, collect = payload
    from repro.harness.simulate import measure_cell
    from repro.telemetry.registry import registry
    from repro.telemetry.run import collecting_run, detach_run
    from repro.trace.trace import ValueTrace
    detach_run()
    trace = ValueTrace(trace_name, pcs, values)
    if not collect:
        return index, measure_cell(spec, trace, engine), [], None
    registry().reset()
    with collecting_run(f"cell-{index}") as collector:
        outcome = measure_cell(spec, trace, engine)
    return index, outcome, collector.events, registry().snapshot()


def _forward_events(cell_index: int, events: List[dict]) -> None:
    """Merge one worker's event buffer into the parent's active run."""
    from repro.telemetry import run as _run
    from repro.telemetry.spans import current_span
    run = _run.active_run()
    if run is None or not events:
        return
    prefix = f"w{cell_index}:"
    parent = current_span()
    parent_id = parent.span_id if parent is not None else None
    base_depth = parent.depth + 1 if parent is not None else 0
    for event in events:
        event = dict(event)
        event.pop("ts", None)  # re-stamped on the parent's clock
        if event.get("type") == "span":
            if event.get("span_id"):
                event["span_id"] = prefix + event["span_id"]
            if event.get("parent_id"):
                event["parent_id"] = prefix + event["parent_id"]
            else:
                event["parent_id"] = parent_id
            event["depth"] = event.get("depth", 0) + base_depth
            attrs = dict(event.get("attrs") or {})
            attrs["cell"] = cell_index
            event["attrs"] = attrs
        else:
            event.setdefault("cell", cell_index)
        run.emit(event)


def forward_worker_events(worker_index: int,
                          events: List[dict]) -> None:
    """Merge a worker process's collected telemetry events into the
    parent's active run (span ids re-namespaced, depths re-based).

    The public face of the sweep executor's stitching machinery:
    :mod:`repro.serve.cluster` feeds each serve worker's event buffer
    through it at drain time, so one telemetry run sees spans from the
    whole fleet exactly as it sees spans from sweep cells.
    """
    _forward_events(worker_index, events)


def run_cells(cells: Sequence[tuple], engine: Optional[str] = None,
              jobs: Optional[int] = None) -> List:
    """Measure ``(spec, trace)`` cells on a process pool.

    Returns one :class:`~repro.harness.simulate.AccuracyResult` per
    cell, in submission order.  When the parent has an active
    telemetry run, worker events and metrics are merged into it as
    each cell's result arrives (also in submission order).
    """
    from repro.telemetry import run as _run
    from repro.telemetry.registry import registry
    cells = list(cells)
    if not cells:
        return []
    collect = _run.enabled()
    payloads = [
        (index, spec, trace.name, trace.pcs, trace.values, engine, collect)
        for index, (spec, trace) in enumerate(cells)
    ]
    n_jobs = max(1, min(jobs or (os.cpu_count() or 2), len(payloads)))
    results: List = [None] * len(payloads)
    with ProcessPoolExecutor(max_workers=n_jobs) as pool:
        for index, outcome, events, metrics in pool.map(_run_cell, payloads):
            results[index] = outcome
            if collect:
                _forward_events(index, events)
                if metrics:
                    registry().merge_snapshot(metrics)
    return results
