"""The per-figure experiment registry.

Every table and figure of the paper's evaluation section has a
registered experiment that regenerates it:

===========  =========================================================
id           paper artifact
===========  =========================================================
table1       Table 1 (benchmark descriptions and prediction counts)
fig3         Figure 3 (LVP / stride / FCM accuracy vs size)
fig6_9       Figures 6 & 9 (stride occupancy of the level-2 table)
fig10        Figure 10 (FCM vs DFCM accuracy; per-benchmark split)
fig11        Figure 11 (DFCM size curves; FCM vs DFCM Pareto fronts)
fig12_14     Figures 12-14 (aliasing taxonomy)
fig16        Figure 16 (perfect hybrids)
sec4_4       Section 4.4 (partial-stride level-2 widths)
fig17        Figure 17 (delayed update)
ablation_*   design-choice ablations called out in DESIGN.md
ext_*        extensions beyond the paper: the §4.2 confidence
             estimator, value-pattern taxonomy, optimisation-level and
             input-seed robustness, controlled pattern-mix sweep
===========  =========================================================

Each experiment takes the benchmark traces plus a ``fast`` flag: fast
mode shrinks sweeps to a representative subset (used by the pytest
benchmarks); full mode reproduces the paper's whole grid (used by
``examples/paper_figures.py``).
"""

from __future__ import annotations

import contextlib
import math
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.dfcm import DFCMPredictor
from repro.core.fcm import FCMPredictor
from repro.core.spec import (DFCMSpec, DelayedSpec, FCMSpec, HashSpec,
                             LastValueSpec, MetaHybridSpec, OracleHybridSpec,
                             StrideSpec)
from repro.core.stride import StridePredictor
from repro.harness.config import single_trace, suite_traces
from repro.harness.report import ExperimentResult, Table
from repro.harness.simulate import measure_accuracy, measure_suite
from repro.harness.sweep import SweepPoint, pareto_front, sweep
from repro.telemetry.spans import span
from repro.telemetry.tables import (ALIAS_CATEGORIES, AliasingAnalyzer,
                                    AliasReport, stride_occupancy)
from repro.trace.trace import ValueTrace

__all__ = ["EXPERIMENTS", "run_experiment", "experiment_ids",
           "UnknownExperimentError"]

EXPERIMENTS: Dict[str, Callable] = {}


class UnknownExperimentError(KeyError):
    """Lookup of an experiment id that isn't registered."""


def _experiment(experiment_id: str):
    def register(fn):
        EXPERIMENTS[experiment_id] = fn
        return fn
    return register


def experiment_ids() -> List[str]:
    return sorted(EXPERIMENTS)


def run_experiment(experiment_id: str,
                   traces: Optional[Sequence[ValueTrace]] = None,
                   fast: bool = False,
                   limit: Optional[int] = None,
                   engine: Optional[str] = None,
                   jobs: Optional[int] = None) -> ExperimentResult:
    """Run one registered experiment; traces default to the full suite.

    *engine* and *jobs* install process defaults for the duration (the
    CLI's ``--engine`` / ``--jobs`` flags); ``None`` leaves whatever
    defaults are already in force untouched.
    """
    try:
        fn = EXPERIMENTS[experiment_id]
    except KeyError:
        raise UnknownExperimentError(
            f"unknown experiment {experiment_id!r}; known: "
            f"{', '.join(experiment_ids())}") from None
    with contextlib.ExitStack() as stack:
        if engine is not None:
            from repro.core.engines import engine_default
            stack.enter_context(engine_default(engine))
        if jobs is not None:
            from repro.harness.executor import executor_default
            stack.enter_context(executor_default(jobs=jobs))
        with span("experiment", experiment=experiment_id, fast=fast,
                  limit=limit):
            if traces is None:
                with span("load_traces", limit=limit):
                    traces = suite_traces(limit)
            return fn(traces, fast=fast)


# ---------------------------------------------------------------- table 1

@_experiment("table1")
def table1(traces, fast: bool = False) -> ExperimentResult:
    """Table 1: benchmark descriptions and prediction counts."""
    from repro.workloads.registry import get_workload
    result = ExperimentResult("table1", "Benchmark description")
    table = Table("Benchmarks (paper Table 1 analogue)",
                  ["benchmark", "paper options", "mini-kernel",
                   "predictions", "static instrs", "distinct values"])
    for trace in traces:
        workload = get_workload(trace.name)
        stats = trace.stats()
        table.add(trace.name, workload.paper_options, workload.description,
                  stats.predictions, stats.static_instructions,
                  stats.distinct_values)
    result.tables.append(table)
    result.notes.append(
        "paper traces are 122-157M predictions from SimpleScalar; these "
        "are MinC mini-kernels at the configured REPRO_TRACE_LEN")
    return result


# ---------------------------------------------------------------- figure 3

def _log_range(fast_values, full_values, fast):
    return fast_values if fast else full_values


@_experiment("fig3")
def fig3(traces, fast: bool = False) -> ExperimentResult:
    """Figure 3: LVP, stride and FCM accuracy vs storage size."""
    result = ExperimentResult(
        "fig3", "LV, Stride and FCM predictors: accuracy vs. size")

    simple_bits = _log_range([8, 12, 16], [6, 8, 10, 12, 14, 16], fast)
    table = Table("LVP and stride predictors",
                  ["predictor", "entries", "size_kbit", "accuracy"])
    for bits in simple_bits:
        for kind, spec in (("lvp", LastValueSpec(1 << bits)),
                           ("stride", StrideSpec(1 << bits))):
            point = sweep([spec], traces)[0]
            table.add(kind, 1 << bits, point.size_kbit, point.accuracy)
    result.tables.append(table)

    l1_bits = _log_range([4, 10, 16], [0, 4, 6, 8, 10, 12, 14, 16], fast)
    l2_bits = _log_range([8, 12, 16], [8, 10, 12, 14, 16, 18, 20], fast)
    fcm_table = Table("FCM grid (one curve per level-1 size)",
                      ["l1_entries", "l2_entries", "order", "size_kbit",
                       "accuracy"])
    for l1 in l1_bits:
        for l2 in l2_bits:
            spec = FCMSpec(1 << l1, 1 << l2)
            point = sweep([spec], traces)[0]
            fcm_table.add(1 << l1, 1 << l2, spec.hash.order,
                          point.size_kbit, point.accuracy)
    result.tables.append(fcm_table)
    result.notes.append(
        "paper: FCM is the most accurate but needs huge level-2 tables; "
        "check accuracy(FCM, large L2) > accuracy(stride) > accuracy(lvp)")
    return result


# ------------------------------------------------------------ figures 6 & 9

@_experiment("fig6_9")
def fig6_9(traces, fast: bool = False) -> ExperimentResult:
    """Figures 6 & 9: stride-pattern occupancy of the level-2 table."""
    result = ExperimentResult(
        "fig6_9", "Stride accesses per (sorted) level-2 entry: FCM vs DFCM")
    l1, l2 = (1 << 16, 1 << 12)
    for bench in ("norm", "li"):
        trace = single_trace(bench, 30_000 if fast else None)
        records = trace.records()
        fcm = stride_occupancy(FCMPredictor(l1, l2), records,
                               StridePredictor(1 << 16))
        dfcm = stride_occupancy(DFCMPredictor(l1, l2), records,
                                StridePredictor(1 << 16))
        table = Table(f"occupancy summary for {bench}",
                      ["predictor", "stride_accesses", "entries_used",
                       "entries_ge_100", "entries_ge_1000", "top16_share"])
        for occ in (fcm, dfcm):
            table.add(occ.predictor_name, occ.stride_accesses,
                      occ.entries_with_at_least(1),
                      occ.entries_with_at_least(100),
                      occ.entries_with_at_least(1000),
                      occ.top_share(16))
        result.tables.append(table)

        curve = Table(f"sorted occupancy curve for {bench} "
                      "(every 64th entry)",
                      ["rank", "fcm_accesses", "dfcm_accesses"])
        for rank in range(0, l2, 64):
            curve.add(rank, fcm.sorted_counts[rank], dfcm.sorted_counts[rank])
        result.tables.append(curve)
    result.notes.append(
        "paper: DFCM concentrates stride accesses on a handful of hot "
        "entries while FCM spreads them over most of the table")
    return result


# ---------------------------------------------------------------- figure 10

@_experiment("fig10")
def fig10(traces, fast: bool = False) -> ExperimentResult:
    """Figure 10: FCM vs DFCM, L1 = 2^16, level-2 swept; per-benchmark."""
    result = ExperimentResult("fig10", "Prediction accuracy of FCM vs DFCM")
    l1 = 1 << 16
    l2_bits = _log_range([8, 12, 16], [8, 10, 12, 14, 16, 18, 20], fast)

    table = Table("accuracy vs level-2 size (L1 = 2^16)",
                  ["log2_l2", "fcm", "dfcm", "relative_gain"])
    for bits in l2_bits:
        fcm = measure_suite(FCMSpec(l1, 1 << bits), traces)
        dfcm = measure_suite(DFCMSpec(l1, 1 << bits), traces)
        gain = (dfcm.accuracy - fcm.accuracy) / fcm.accuracy if fcm.accuracy else 0.0
        table.add(bits, fcm.accuracy, dfcm.accuracy, gain)
    result.tables.append(table)

    per_bench = Table("per-benchmark accuracy (L1 = 2^16, L2 = 2^12)",
                      ["benchmark", "fcm", "dfcm"])
    fcm = measure_suite(FCMSpec(l1, 1 << 12), traces)
    dfcm = measure_suite(DFCMSpec(l1, 1 << 12), traces)
    for trace in traces:
        per_bench.add(trace.name, fcm.accuracy_of(trace.name),
                      dfcm.accuracy_of(trace.name))
    per_bench.add("weighted_avg", fcm.accuracy, dfcm.accuracy)
    result.tables.append(per_bench)
    result.notes.append(
        "paper: +8% relative for very large tables, up to +33% for small "
        "ones; +19% at L2=2^12, every benchmark improves")
    return result


# ---------------------------------------------------------------- figure 11

@_experiment("fig11")
def fig11(traces, fast: bool = False) -> ExperimentResult:
    """Figure 11: DFCM accuracy vs total size; FCM/DFCM Pareto fronts."""
    result = ExperimentResult(
        "fig11", "Prediction accuracy vs size; Pareto graphs")
    l1_bits = _log_range([10, 16], [10, 12, 14, 16], fast)
    l2_bits = _log_range([8, 12, 16], [8, 10, 12, 14, 16, 18, 20], fast)

    dfcm_points: List[SweepPoint] = []
    fcm_points: List[SweepPoint] = []
    curve = Table("DFCM accuracy vs size (one curve per L1)",
                  ["l1_entries", "l2_entries", "size_kbit", "accuracy"])
    for l1 in l1_bits:
        for l2 in l2_bits:
            dfcm_point = sweep([DFCMSpec(1 << l1, 1 << l2)], traces)[0]
            fcm_point = sweep([FCMSpec(1 << l1, 1 << l2)], traces)[0]
            dfcm_points.append(dfcm_point)
            fcm_points.append(fcm_point)
            curve.add(1 << l1, 1 << l2, dfcm_point.size_kbit,
                      dfcm_point.accuracy)
    result.tables.append(curve)

    front = Table("Pareto fronts (accuracy vs Kbit)",
                  ["predictor", "size_kbit", "accuracy", "label"])
    for point in pareto_front(fcm_points):
        front.add("fcm", point.size_kbit, point.accuracy, point.label)
    for point in pareto_front(dfcm_points):
        front.add("dfcm", point.size_kbit, point.accuracy, point.label)
    result.tables.append(front)
    result.notes.append(
        "paper: DFCM's Pareto front sits .06-.09 above FCM's except at "
        "the smallest sizes (~.09 at ~200 Kbit, a 15% relative gain)")
    return result


# ------------------------------------------------------------ figures 12-14

def _alias_report_rows(table: Table, name: str, report: AliasReport,
                       fractions_of) -> None:
    row = [name]
    for category in ALIAS_CATEGORIES:
        row.append(fractions_of(report, category))
    table.add(*row)


@_experiment("fig12_14")
def fig12_14(traces, fast: bool = False) -> ExperimentResult:
    """Figures 12-14: the aliasing taxonomy, FCM vs DFCM."""
    result = ExperimentResult(
        "fig12_14", "Alias analysis (l1 / hash / l2_priv / l2_pc / none)")
    l1, l2 = 1 << 12, 1 << 12
    reports = {}
    for kind, cls in (("fcm", FCMPredictor), ("dfcm", DFCMPredictor)):
        per_bench = {}
        pooled = AliasReport()
        for trace in traces:
            analyzer = AliasingAnalyzer(cls(l1, l2))
            report = analyzer.run(trace.records())
            per_bench[trace.name] = report
            pooled = pooled.merged_with(report)
        reports[kind] = (per_bench, pooled)

    fig12 = Table("Figure 12: accuracy within each aliasing type (FCM, avg)",
                  ["category", "fraction_of_predictions", "accuracy"])
    pooled_fcm = reports["fcm"][1]
    for category in ALIAS_CATEGORIES:
        fig12.add(category, pooled_fcm.fraction_of_predictions(category),
                  pooled_fcm.accuracy(category))
    result.tables.append(fig12)

    for kind in ("fcm", "dfcm"):
        per_bench, pooled = reports[kind]
        fig13 = Table(f"Figure 13 ({kind}): alias mix, all predictions",
                      ["benchmark"] + list(ALIAS_CATEGORIES))
        for name, report in per_bench.items():
            _alias_report_rows(fig13, name, report,
                               AliasReport.fraction_of_predictions)
        _alias_report_rows(fig13, "avg", pooled,
                           AliasReport.fraction_of_predictions)
        result.tables.append(fig13)

        fig14 = Table(f"Figure 14 ({kind}): alias mix of mispredictions "
                      "(fraction of all predictions)",
                      ["benchmark"] + list(ALIAS_CATEGORIES))
        for name, report in per_bench.items():
            _alias_report_rows(fig14, name, report,
                               AliasReport.misprediction_fraction)
        _alias_report_rows(fig14, "avg", pooled,
                           AliasReport.misprediction_fraction)
        result.tables.append(fig14)

    result.notes.append(
        "paper: DFCM trades quasi-random hash aliasing for predictable "
        "l2_pc sharing; hash remains the dominant misprediction source")
    return result


# ---------------------------------------------------------------- figure 16

@_experiment("fig16")
def fig16(traces, fast: bool = False) -> ExperimentResult:
    """Figure 16: DFCM vs perfect hybrid predictors."""
    result = ExperimentResult("fig16", "Hybrid predictors (perfect meta)")
    l1 = 1 << 16
    stride_entries = 1 << 16
    l2_bits = _log_range([8, 12, 16], [8, 10, 12, 14, 16, 18, 20], fast)
    table = Table("accuracy vs level-2 size",
                  ["log2_l2", "fcm", "dfcm", "stride+fcm", "stride+dfcm"])
    for bits in l2_bits:
        fcm = measure_suite(FCMSpec(l1, 1 << bits), traces)
        dfcm = measure_suite(DFCMSpec(l1, 1 << bits), traces)
        hybrid_fcm = measure_suite(
            OracleHybridSpec((StrideSpec(stride_entries),
                              FCMSpec(l1, 1 << bits)), label="stride+fcm"),
            traces)
        hybrid_dfcm = measure_suite(
            OracleHybridSpec((StrideSpec(stride_entries),
                              DFCMSpec(l1, 1 << bits)), label="stride+dfcm"),
            traces)
        table.add(bits, fcm.accuracy, dfcm.accuracy, hybrid_fcm.accuracy,
                  hybrid_dfcm.accuracy)
    result.tables.append(table)
    result.notes.append(
        "paper: DFCM >= perfect STRIDE+FCM everywhere; perfect "
        "STRIDE+DFCM adds only .02-.04 over plain DFCM")
    return result


# -------------------------------------------------------------- section 4.4

@_experiment("sec4_4")
def sec4_4(traces, fast: bool = False) -> ExperimentResult:
    """Section 4.4: partial strides in the level-2 table."""
    result = ExperimentResult(
        "sec4_4", "Size of difference values stored in level 2")
    l1 = 1 << 16
    l2_bits = _log_range([12], [10, 12, 14, 16], fast)
    table = Table("accuracy and size by stride width",
                  ["log2_l2", "stride_bits", "size_kbit", "accuracy",
                   "accuracy_drop_vs_32"])
    for bits in l2_bits:
        baseline = None
        for width in (32, 16, 8):
            point = sweep([DFCMSpec(l1, 1 << bits, stride_bits=width)],
                          traces)[0]
            if width == 32:
                baseline = point.accuracy
            table.add(bits, width, point.size_kbit, point.accuracy,
                      baseline - point.accuracy)
    result.tables.append(table)
    result.notes.append(
        "paper: 16-bit strides cost .01-.03 accuracy, 8-bit .05-.08; "
        "shrinking the entry count is the better trade")
    return result


# ---------------------------------------------------------------- figure 17

@_experiment("fig17")
def fig17(traces, fast: bool = False) -> ExperimentResult:
    """Figure 17: prediction accuracy under delayed update."""
    result = ExperimentResult("fig17", "Delayed update")
    l1, l2 = 1 << 16, 1 << 12
    delays = [0, 16, 64] if fast else [0, 16, 32, 64, 128, 256, 512]
    table = Table("accuracy vs update delay (L1=2^16, L2=2^12)",
                  ["delay", "fcm", "dfcm"])
    for delay in delays:
        fcm = measure_suite(DelayedSpec(FCMSpec(l1, l2), delay), traces)
        dfcm = measure_suite(DelayedSpec(DFCMSpec(l1, l2), delay), traces)
        table.add(delay, fcm.accuracy, dfcm.accuracy)
    result.tables.append(table)
    result.notes.append(
        "paper: both predictors degrade significantly with delay, DFCM "
        "slightly more, with the same overall behaviour")
    return result


# ---------------------------------------------------------------- ablations

@_experiment("ablation_hash")
def ablation_hash(traces, fast: bool = False) -> ExperimentResult:
    """Hash-function ablation: FS(R-5) vs FS(R-3) vs plain XOR fold."""
    result = ExperimentResult(
        "ablation_hash", "History hash ablation (paper fixes FS R-5)")
    l1, l2 = 1 << 16, 1 << 12
    index_bits = 12
    variants = [
        ("fs_r5", HashSpec(index_bits, "fs", shift=5)),
        ("fs_r3", HashSpec(index_bits, "fs", shift=3)),
        ("fs_r1", HashSpec(index_bits, "fs", shift=1)),
        ("xor_o3", HashSpec(index_bits, "xor", order=3)),
    ]
    table = Table("accuracy by hash function (L1=2^16, L2=2^12)",
                  ["hash", "order", "fcm", "dfcm"])
    for name, hash_spec in variants:
        fcm = measure_suite(FCMSpec(l1, l2, hash=hash_spec), traces)
        dfcm = measure_suite(DFCMSpec(l1, l2, hash=hash_spec), traces)
        table.add(name, hash_spec.order, fcm.accuracy, dfcm.accuracy)
    result.tables.append(table)
    return result


@_experiment("ablation_order")
def ablation_order(traces, fast: bool = False) -> ExperimentResult:
    """Order ablation: decouple history length from the table size."""
    result = ExperimentResult(
        "ablation_order", "Predictor order ablation (paper couples "
        "order = ceil(n/5))")
    l1, l2 = 1 << 16, 1 << 12
    index_bits = 12
    table = Table("accuracy by order (L1=2^16, L2=2^12)",
                  ["order", "shift", "fcm", "dfcm"])
    for order in (1, 2, 3, 4):
        # Keep the hash incremental: shift = ceil(index_bits / order).
        shift = math.ceil(index_bits / order)
        hash_spec = HashSpec(index_bits, "fs", order=order, shift=shift)
        fcm = measure_suite(FCMSpec(l1, l2, hash=hash_spec), traces)
        dfcm = measure_suite(DFCMSpec(l1, l2, hash=hash_spec), traces)
        table.add(order, shift, fcm.accuracy, dfcm.accuracy)
    result.tables.append(table)
    return result


@_experiment("ext_confidence")
def ext_confidence(traces, fast: bool = False) -> ExperimentResult:
    """Extension: the confidence estimator the paper suggests but does
    not evaluate (section 4.2: tag level 2 with an orthogonal hash)."""
    from repro.core.estimator import (CounterConfidencePredictor,
                                      TaggedDFCMPredictor,
                                      measure_confidence)
    result = ExperimentResult(
        "ext_confidence",
        "Confidence estimation: saturating counters vs orthogonal-hash "
        "level-2 tags (paper section 4.2 suggestion)")
    l1, l2 = 1 << 16, 1 << 12
    schemes = [
        ("counter(3b,thr=7)", lambda: CounterConfidencePredictor(
            DFCMPredictor(l1, l2), 1 << 12)),
        ("tag(4b)", lambda: TaggedDFCMPredictor(l1, l2, tag_bits=4)),
        ("tag(8b)", lambda: TaggedDFCMPredictor(l1, l2, tag_bits=8)),
        ("counter+tag(4b)", lambda: CounterConfidencePredictor(
            TaggedDFCMPredictor(l1, l2, tag_bits=4), 1 << 12)),
    ]
    table = Table("coverage / accuracy-when-confident (DFCM base)",
                  ["scheme", "overall", "coverage",
                   "accuracy_when_confident"])
    for label, make in schemes:
        total = confident = confident_correct = overall_correct = 0
        for trace in traces:
            outcome = measure_confidence(make(), trace)
            total += outcome.total
            confident += outcome.confident
            confident_correct += outcome.confident_correct
            overall_correct += outcome.overall_correct
        table.add(label,
                  overall_correct / total if total else 0.0,
                  confident / total if total else 0.0,
                  confident_correct / confident if confident else 0.0)
    result.tables.append(table)
    result.notes.append(
        "paper suggestion verified: tags from a second, orthogonal hash "
        "detect hash aliasing and lift accuracy inside the confident set "
        "at much higher coverage than counters alone")
    return result


@_experiment("ext_l1_pressure")
def ext_l1_pressure(traces, fast: bool = False) -> ExperimentResult:
    """Extension: restore the paper's level-1 sensitivity at scale.

    The MinC mini-kernels have a few hundred static instructions, so
    the Figure-3 level-1 family collapses at 2^10 entries (the paper's
    SPEC binaries, with tens of thousands of statics, separate up to
    2^14).  A synthetic trace with ~16k static instructions restores
    the paper's shape: accuracy climbs with the level-1 size until the
    static working set fits, for both FCM and DFCM.
    """
    from repro.workloads.synthetic import PatternMix, mixed_trace
    result = ExperimentResult(
        "ext_l1_pressure",
        "Level-1 size sensitivity under a large static working set")
    statics = 4_096 if fast else 16_384
    length = 60_000 if fast else 200_000
    mix = PatternMix(constant=0.25, stride=0.3, context=0.35, random=0.1,
                     seed=11)
    synthetic = [mixed_trace(mix, instructions=statics, length=length,
                             name="l1_pressure")]
    l1_bits = [8, 12, 16] if fast else [8, 10, 12, 14, 16]
    table = Table(f"accuracy vs level-1 size ({statics} static "
                  "instructions, L2=2^12)",
                  ["log2_l1", "fcm", "dfcm"])
    for bits in l1_bits:
        fcm = measure_suite(FCMSpec(1 << bits, 1 << 12), synthetic)
        dfcm = measure_suite(DFCMSpec(1 << bits, 1 << 12), synthetic)
        table.add(bits, fcm.accuracy, dfcm.accuracy)
    result.tables.append(table)
    result.notes.append(
        "repairs the scale gap of the MinC traces: with a SPEC-sized "
        "static working set the level-1 family separates as in the "
        "paper's Figure 3")
    return result


@_experiment("ext_mix")
def ext_mix(traces, fast: bool = False) -> ExperimentResult:
    """Extension: the DFCM gap as a function of the stride share.

    Synthetic traces with a controlled pattern mix isolate the paper's
    mechanism: holding constants and noise fixed, the stride share of
    the workload is traded against the context share.  The DFCM's
    advantage over the FCM must grow with the stride share (strides
    are what crowd the FCM's level-2 table), and vanish when the
    workload is pure context.
    """
    from repro.workloads.synthetic import PatternMix, mixed_trace
    result = ExperimentResult(
        "ext_mix", "FCM vs DFCM vs stride share of the workload")
    length = 20_000 if fast else 60_000
    stride_shares = [0.0, 0.4, 0.8] if fast else [0.0, 0.2, 0.4, 0.6, 0.8]
    table = Table("accuracy vs stride share (constant=.1, random=.1, "
                  "L1=2^12, L2=2^10)",
                  ["stride_share", "context_share", "stride_pred", "fcm",
                   "dfcm", "dfcm_minus_fcm"])
    for share in stride_shares:
        context_share = 0.8 - share
        mix = PatternMix(constant=0.1, stride=share,
                         context=context_share, random=0.1, seed=7)
        synthetic = [mixed_trace(mix, instructions=96, length=length,
                                 name=f"mix_{share:.1f}")]
        stride = measure_suite(StrideSpec(1 << 12), synthetic)
        fcm = measure_suite(FCMSpec(1 << 12, 1 << 10), synthetic)
        dfcm = measure_suite(DFCMSpec(1 << 12, 1 << 10), synthetic)
        table.add(share, round(context_share, 1), stride.accuracy,
                  fcm.accuracy, dfcm.accuracy,
                  dfcm.accuracy - fcm.accuracy)
    result.tables.append(table)
    result.notes.append(
        "isolates the paper's mechanism: more stride patterns -> more "
        "FCM level-2 crowding -> larger DFCM advantage")
    return result


@_experiment("ext_seeds")
def ext_seeds(traces, fast: bool = False) -> ExperimentResult:
    """Extension: robustness of the DFCM win across workload inputs.

    The paper evaluates one input per benchmark.  Here every workload
    is re-run with different PRNG seeds (i.e. different concrete
    inputs of the same character) and the FCM-vs-DFCM comparison is
    repeated -- the headline ordering should not be an artifact of one
    particular input.
    """
    from repro.trace.capture import capture_source
    from repro.workloads.registry import get_workload
    result = ExperimentResult(
        "ext_seeds", "FCM vs DFCM across workload input seeds")
    seeds = [123456789, 42, 2_000_000_011] if not fast else [123456789, 42]
    limit = min(len(traces[0]) if traces else 30_000, 30_000)
    names = [trace.name for trace in traces]
    table = Table("suite accuracy per seed (L1=2^16, L2=2^12)",
                  ["seed", "fcm", "dfcm", "dfcm_wins"])
    for seed in seeds:
        seeded = []
        for name in names:
            source = get_workload(name).source.replace(
                "int __rand_state = 123456789;",
                f"int __rand_state = {seed};")
            seeded.append(capture_source(name, source, limit))
        fcm = measure_suite(FCMSpec(1 << 16, 1 << 12), seeded)
        dfcm = measure_suite(DFCMSpec(1 << 16, 1 << 12), seeded)
        table.add(seed, fcm.accuracy, dfcm.accuracy,
                  "yes" if dfcm.accuracy > fcm.accuracy else "no")
    result.tables.append(table)
    result.notes.append(
        "traces are re-captured per seed (not cached); the DFCM must "
        "win on every input for the reproduction to be robust")
    return result


@_experiment("ext_optlevel")
def ext_optlevel(traces, fast: bool = False) -> ExperimentResult:
    """Extension: value predictability vs compiler optimisation level.

    The paper's traces come from gcc -O2; ours from a stack-discipline
    compiler (-O0-like).  This experiment quantifies the effect: the
    same workloads compiled with the peephole optimizer enabled
    (store-load forwarding, frame-slot caching, immediate fusion --
    which removes trivially predictable loads and ``li`` constants)
    are predicted with slightly lower accuracy across all predictors,
    confirming that better code shifts the mix away from easy patterns.
    """
    from repro.trace.cache import cached_trace
    result = ExperimentResult(
        "ext_optlevel",
        "Value predictability vs compiler optimisation level")
    limit = len(traces[0]) if traces else None
    names = [trace.name for trace in traces]
    suites = {
        "O0": list(traces),
        "O1": [cached_trace(name, limit, optimize=1) for name in names],
        "O2": [cached_trace(name, limit, optimize=2) for name in names],
    }
    table = Table("suite accuracy by optimisation level (L1=2^16, L2=2^12)",
                  ["predictor", "O0", "O1", "O2", "delta_O2_vs_O0"])
    contenders = [
        ("lvp", LastValueSpec(1 << 12)),
        ("stride", StrideSpec(1 << 12)),
        ("fcm", FCMSpec(1 << 16, 1 << 12)),
        ("dfcm", DFCMSpec(1 << 16, 1 << 12)),
    ]
    for label, spec in contenders:
        accuracy = {level: measure_suite(spec, suite).accuracy
                    for level, suite in suites.items()}
        table.add(label, accuracy["O0"], accuracy["O1"], accuracy["O2"],
                  accuracy["O2"] - accuracy["O0"])
    result.tables.append(table)
    result.notes.append(
        "the paper's absolute accuracies (gcc -O2 traces) sit below "
        "ours; this experiment shows the direction of that gap on our "
        "own compiler's optimisation axis")
    return result


@_experiment("ext_taxonomy")
def ext_taxonomy(traces, fast: bool = False) -> ExperimentResult:
    """Extension: value-pattern taxonomy of the benchmark traces.

    The Sazeides-style predictability characterisation underlying the
    paper's motivation: per benchmark, the fraction of predictions an
    *idealised* (unbounded, per-PC) predictor of each class would get
    right, and the disjoint attribution constant > stride > context.
    The gap between the 'context' upper bound and the measured FCM of
    Figure 10 is exactly the table-pressure loss the DFCM attacks.
    """
    from repro.trace.analysis import analyze_trace
    result = ExperimentResult(
        "ext_taxonomy", "Idealised value-pattern taxonomy per benchmark")
    table = Table("upper bounds and disjoint mix (idealised predictors)",
                  ["benchmark", "constant_ub", "stride_ub", "context_ub",
                   "dj_constant", "dj_stride", "dj_context", "residual"])
    pooled = [0] * 7
    for trace in traces:
        _, summary = analyze_trace(trace)
        table.add(trace.name, summary.constant_rate, summary.stride_rate,
                  summary.context_rate,
                  summary.rate(summary.disjoint_constant),
                  summary.rate(summary.disjoint_stride),
                  summary.rate(summary.disjoint_context),
                  summary.residual_rate)
        for i, field in enumerate((summary.total, summary.constant_hits,
                                   summary.stride_hits,
                                   summary.context_hits,
                                   summary.disjoint_constant,
                                   summary.disjoint_stride,
                                   summary.disjoint_context)):
            pooled[i] += field
    total = pooled[0] or 1
    table.add("weighted_avg", pooled[1] / total, pooled[2] / total,
              pooled[3] / total, pooled[4] / total, pooled[5] / total,
              pooled[6] / total,
              (pooled[0] - pooled[4] - pooled[5] - pooled[6]) / total)
    result.tables.append(table)
    result.notes.append(
        "bounds are per-instruction (private unbounded tables); a real "
        "shared-table (D)FCM can exceed them through constructive "
        "cross-instruction sharing (the benign l2_pc category of "
        "Figure 13) and, for the DFCM, by predicting never-seen values "
        "on fresh stride patterns")
    return result


@_experiment("ablation_meta")
def ablation_meta(traces, fast: bool = False) -> ExperimentResult:
    """Extension of Figure 16: oracle vs realisable meta-predictor."""
    result = ExperimentResult(
        "ablation_meta",
        "Hybrid selection: perfect meta vs saturating-counter meta")
    l1 = 1 << 16
    stride_entries = 1 << 16
    l2_bits = [12] if fast else [10, 12, 14]
    table = Table("accuracy by selection mechanism",
                  ["log2_l2", "fcm", "dfcm", "meta(stride+fcm)",
                   "oracle(stride+fcm)"])
    for bits in l2_bits:
        fcm = measure_suite(FCMSpec(l1, 1 << bits), traces)
        dfcm = measure_suite(DFCMSpec(l1, 1 << bits), traces)
        meta = measure_suite(
            MetaHybridSpec((StrideSpec(stride_entries),
                            FCMSpec(l1, 1 << bits)), 1 << 14),
            traces)
        oracle = measure_suite(
            OracleHybridSpec((StrideSpec(stride_entries),
                              FCMSpec(l1, 1 << bits))),
            traces)
        table.add(bits, fcm.accuracy, dfcm.accuracy, meta.accuracy,
                  oracle.accuracy)
    result.tables.append(table)
    result.notes.append(
        "paper argument quantified: a realisable meta-predictor gives "
        "away part of the oracle hybrid's edge, while the DFCM needs no "
        "selector at all")
    return result


@_experiment("ablation_confidence")
def ablation_confidence(traces, fast: bool = False) -> ExperimentResult:
    """Stride confidence-counter ablation (paper: 3 bits, +1/-2)."""
    result = ExperimentResult(
        "ablation_confidence", "Stride predictor confidence counter")
    entries = 1 << 12
    table = Table("stride predictor accuracy by counter shape",
                  ["bits", "inc", "dec", "accuracy"])
    shapes = [(3, 1, 2), (3, 1, 1), (2, 1, 2), (1, 1, 1), (4, 1, 2)]
    for bits, inc, dec in shapes:
        suite = measure_suite(
            StrideSpec(entries, counter_bits=bits, counter_inc=inc,
                       counter_dec=dec),
            traces)
        table.add(bits, inc, dec, suite.accuracy)
    result.tables.append(table)
    return result
