"""Configuration sweeps and Pareto fronts (Figures 3 and 11)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Sequence

from repro.core.base import ValuePredictor
from repro.harness.simulate import measure_suite
from repro.telemetry.spans import span
from repro.trace.trace import ValueTrace

__all__ = ["SweepPoint", "sweep", "pareto_front"]


@dataclass(frozen=True)
class SweepPoint:
    """One measured predictor configuration."""

    label: str
    size_kbit: float
    accuracy: float
    params: tuple = field(default_factory=tuple)  # sorted (key, value) pairs

    def param(self, key: str):
        return dict(self.params)[key]


def sweep(factories: Iterable[Callable[[], ValuePredictor]],
          traces: Sequence[ValueTrace],
          params: Sequence[dict] = ()) -> List[SweepPoint]:
    """Measure every factory over the suite; returns one point each.

    ``params`` optionally supplies a metadata dict per factory (same
    order) recorded on the points for later grouping.
    """
    factories = list(factories)
    metadata: Sequence[dict] = list(params) or [{} for _ in factories]
    if len(metadata) != len(factories):
        raise ValueError("params must match factories in length")
    points = []
    for index, (factory, meta) in enumerate(zip(factories, metadata)):
        # Label and size come from the measured instances' own metadata
        # (recorded by measure_suite) -- no throwaway probe predictor.
        with span("sweep_point", index=index) as sp:
            result = measure_suite(factory, traces)
            sp.set("predictor", result.predictor_name)
            sp.set("size_kbit", result.storage_kbit)
            sp.set("accuracy", round(result.accuracy, 6))
        points.append(SweepPoint(
            label=result.predictor_name,
            size_kbit=result.storage_kbit,
            accuracy=result.accuracy,
            params=tuple(sorted(meta.items())),
        ))
    return points


def pareto_front(points: Iterable[SweepPoint]) -> List[SweepPoint]:
    """Points with higher accuracy than every same-or-smaller point.

    This is the paper's Pareto-graph construction (Figure 11(b)): keep
    a configuration only if no configuration of the same or smaller
    size reaches at least its accuracy.
    """
    ordered = sorted(points, key=lambda p: (p.size_kbit, -p.accuracy))
    front: List[SweepPoint] = []
    best = float("-inf")
    for point in ordered:
        if point.accuracy > best:
            front.append(point)
            best = point.accuracy
    return front
