"""Configuration sweeps and Pareto fronts (Figures 3 and 11)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.core.engines import resolve_engine_name
from repro.harness.executor import resolve_executor, run_cells
from repro.harness.simulate import (PredictorLike, SuiteResult, factory_spec,
                                    measure_suite)
from repro.telemetry.spans import span
from repro.trace.trace import ValueTrace

__all__ = ["SweepPoint", "sweep", "pareto_front"]


@dataclass(frozen=True)
class SweepPoint:
    """One measured predictor configuration."""

    label: str
    size_kbit: float
    accuracy: float
    params: tuple = field(default_factory=tuple)  # sorted (key, value) pairs

    def param(self, key: str):
        return dict(self.params)[key]


def _point(result: SuiteResult, meta: dict) -> SweepPoint:
    return SweepPoint(
        label=result.predictor_name,
        size_kbit=result.storage_kbit,
        accuracy=result.accuracy,
        params=tuple(sorted(meta.items())),
    )


def sweep(factories: Iterable[PredictorLike],
          traces: Sequence[ValueTrace],
          params: Sequence[dict] = (),
          engine: Optional[str] = None,
          executor: Optional[str] = None,
          jobs: Optional[int] = None) -> List[SweepPoint]:
    """Measure every configuration over the suite; one point each.

    ``params`` optionally supplies a metadata dict per configuration
    (same order) recorded on the points for later grouping.  When the
    resolved executor is ``'process'`` and every configuration is
    spec-described, the full (configuration, trace) grid is flattened
    onto the worker pool; results merge in submission order, so the
    points are identical to a serial sweep.
    """
    factories = list(factories)
    metadata: Sequence[dict] = list(params) or [{} for _ in factories]
    if len(metadata) != len(factories):
        raise ValueError("params must match factories in length")
    traces = list(traces)
    executor_name, n_jobs = resolve_executor(executor, jobs)
    engine_name = resolve_engine_name(engine)
    specs = [factory_spec(factory) for factory in factories]
    parallel = (executor_name == "process"
                and all(spec is not None for spec in specs)
                and len(factories) * len(traces) > 1)
    points = []
    if parallel:
        cells = [(spec, trace) for spec in specs for trace in traces]
        outcomes = run_cells(cells, engine=engine, jobs=n_jobs)
        for index, (spec, meta) in enumerate(zip(specs, metadata)):
            with span("sweep_point", index=index, engine=engine_name,
                      jobs=n_jobs) as sp:
                result = SuiteResult(predictor_name=spec.name,
                                     storage_kbit=spec.storage_kbit())
                for offset in range(len(traces)):
                    outcome = outcomes[index * len(traces) + offset]
                    result.per_trace[outcome.trace_name] = outcome
                sp.set("predictor", result.predictor_name)
                sp.set("size_kbit", result.storage_kbit)
                sp.set("accuracy", round(result.accuracy, 6))
            points.append(_point(result, meta))
        return points
    for index, (factory, meta) in enumerate(zip(factories, metadata)):
        # Label and size come from the measured configuration's own
        # metadata (recorded by measure_suite) -- no throwaway probe
        # predictor.
        with span("sweep_point", index=index, engine=engine_name,
                  jobs=n_jobs) as sp:
            result = measure_suite(factory, traces, engine=engine,
                                   executor=executor_name, jobs=n_jobs)
            sp.set("predictor", result.predictor_name)
            sp.set("size_kbit", result.storage_kbit)
            sp.set("accuracy", round(result.accuracy, 6))
        points.append(_point(result, meta))
    return points


def pareto_front(points: Iterable[SweepPoint]) -> List[SweepPoint]:
    """Points with higher accuracy than every same-or-smaller point.

    This is the paper's Pareto-graph construction (Figure 11(b)): keep
    a configuration only if no configuration of the same or smaller
    size reaches at least its accuracy.
    """
    ordered = sorted(points, key=lambda p: (p.size_kbit, -p.accuracy))
    front: List[SweepPoint] = []
    best = float("-inf")
    for point in ordered:
        if point.accuracy > best:
            front.append(point)
            best = point.accuracy
    return front
