"""Terminal scatter/line rendering for experiment series.

Enough to eyeball the shape of a paper figure from the harness output;
the CSV emitters exist for anything more serious.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

__all__ = ["render_series", "render_heatmap"]

_MARKERS = "ox+*#@%&"
_SHADES = " .:-=+*#%@"


def render_series(series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
                  width: int = 72, height: int = 20,
                  logx: bool = False, title: str = "") -> str:
    """Plot named (xs, ys) series on a character grid.

    Each series gets a marker from a fixed cycle; the legend maps
    markers back to names.  ``logx`` plots x on a log10 axis (the
    paper's size axes are logarithmic).
    """
    points: List[Tuple[float, float, str]] = []
    legend = []
    for index, (name, (xs, ys)) in enumerate(series.items()):
        if len(xs) != len(ys):
            raise ValueError(f"series {name!r}: xs and ys lengths differ")
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"{marker} = {name}")
        for x, y in zip(xs, ys):
            if logx:
                if x <= 0:
                    raise ValueError(f"series {name!r}: log axis needs x > 0")
                x = math.log10(x)
            points.append((float(x), float(y), marker))
    if not points:
        return "(no data)"

    x_low = min(p[0] for p in points)
    x_high = max(p[0] for p in points)
    y_low = min(p[1] for p in points)
    y_high = max(p[1] for p in points)
    x_span = x_high - x_low or 1.0
    y_span = y_high - y_low or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y, marker in points:
        col = round((x - x_low) / x_span * (width - 1))
        row = height - 1 - round((y - y_low) / y_span * (height - 1))
        grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        label = ""
        if row_index == 0:
            label = f"{y_high:.3f}"
        elif row_index == height - 1:
            label = f"{y_low:.3f}"
        lines.append(f"{label:>8s} |" + "".join(row))
    x_left = f"{10 ** x_low:.3g}" if logx else f"{x_low:.3g}"
    x_right = f"{10 ** x_high:.3g}" if logx else f"{x_high:.3g}"
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(" " * 10 + x_left + " " * max(1, width - len(x_left)
                                               - len(x_right)) + x_right)
    lines.append("  " + "   ".join(legend))
    return "\n".join(lines)


def render_heatmap(rows: Dict[str, Sequence[float]],
                   col_labels: Sequence[str], title: str = "",
                   cell_width: int = 7) -> str:
    """Named rows of values as a shaded intensity grid.

    Every row must be as long as *col_labels*; intensity is normalised
    over the whole grid (light = minimum, dark = maximum) so rows are
    directly comparable -- the shape the paper's table-efficiency
    argument needs.
    """
    for name, values in rows.items():
        if len(values) != len(col_labels):
            raise ValueError(f"row {name!r}: expected {len(col_labels)} "
                             f"values, got {len(values)}")
    flat = [float(v) for values in rows.values() for v in values]
    if not flat:
        return "(no data)"
    low, high = min(flat), max(flat)
    span = high - low or 1.0
    label_width = max(len(name) for name in rows)
    lines = []
    if title:
        lines.append(title)
    lines.append(" " * (label_width + 1)
                 + "".join(f"{label:>{cell_width}}" for label in col_labels))
    for name, values in rows.items():
        cells = []
        for value in values:
            shade = _SHADES[min(len(_SHADES) - 1,
                                int((float(value) - low) / span
                                    * (len(_SHADES) - 1) + 0.5))]
            cells.append(" " + shade * (cell_width - 1))
        lines.append(f"{name:>{label_width}} " + "".join(cells))
    lines.append(f"  scale: ' '={low:.4g} .. '@'={high:.4g}")
    return "\n".join(lines)
