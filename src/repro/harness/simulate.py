"""Accuracy measurement, reproducing the paper's metric.

The paper reports, per configuration, "the arithmetic mean over all
SPECint benchmarks, weighted by the number of predicted instructions" --
equivalently, pooled correct predictions over pooled predictions.  Each
benchmark gets a *fresh* predictor (the paper simulates each benchmark
separately).

The hot loop drives predictors through ``step`` so oracle hybrids can
keep their perfect-meta semantics; for plain predictors the loop is
specialised to inline predict/update and avoid a method call per
record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Sequence

from repro.core.base import ValuePredictor
from repro.trace.trace import ValueTrace

__all__ = ["AccuracyResult", "SuiteResult", "measure_accuracy", "measure_suite"]


@dataclass(frozen=True)
class AccuracyResult:
    """Outcome of one predictor on one trace."""

    predictor_name: str
    trace_name: str
    correct: int
    total: int

    @property
    def accuracy(self) -> float:
        """Fraction of correct predictions (0.0 on an empty trace)."""
        return self.correct / self.total if self.total else 0.0


@dataclass
class SuiteResult:
    """Outcomes of one predictor configuration across a benchmark suite."""

    predictor_name: str
    per_trace: Dict[str, AccuracyResult] = field(default_factory=dict)

    @property
    def correct(self) -> int:
        return sum(r.correct for r in self.per_trace.values())

    @property
    def total(self) -> int:
        return sum(r.total for r in self.per_trace.values())

    @property
    def accuracy(self) -> float:
        """The paper's metric: mean weighted by predicted instructions."""
        total = self.total
        return self.correct / total if total else 0.0

    def accuracy_of(self, trace_name: str) -> float:
        return self.per_trace[trace_name].accuracy


def measure_accuracy(predictor: ValuePredictor, trace: ValueTrace) -> AccuracyResult:
    """Run *trace* through *predictor*; returns correct/total counts.

    The predictor is trained as a side effect; pass a fresh instance
    for an independent measurement.
    """
    correct = 0
    records = trace.records()
    step = type(predictor).step
    if step is ValuePredictor.step:
        # Plain predictor: inline predict-then-update.
        predict = predictor.predict
        update = predictor.update
        for pc, value in records:
            if predict(pc) == value:
                correct += 1
            update(pc, value)
    else:
        bound_step = predictor.step
        for pc, value in records:
            if bound_step(pc, value):
                correct += 1
    return AccuracyResult(
        predictor_name=predictor.name,
        trace_name=trace.name,
        correct=correct,
        total=len(records),
    )


def measure_suite(
    predictor_factory: Callable[[], ValuePredictor],
    traces: Sequence[ValueTrace],
) -> SuiteResult:
    """Measure one configuration over a suite, fresh predictor per trace."""
    if not traces:
        raise ValueError("measure_suite needs at least one trace")
    result: SuiteResult | None = None
    for trace in traces:
        predictor = predictor_factory()
        outcome = measure_accuracy(predictor, trace)
        if result is None:
            result = SuiteResult(predictor_name=predictor.name)
        result.per_trace[trace.name] = outcome
    assert result is not None
    return result
