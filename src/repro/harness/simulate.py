"""Accuracy measurement, reproducing the paper's metric.

The paper reports, per configuration, "the arithmetic mean over all
SPECint benchmarks, weighted by the number of predicted instructions" --
equivalently, pooled correct predictions over pooled predictions.  Each
benchmark gets a *fresh* predictor (the paper simulates each benchmark
separately).

Measurement goes through the engine layer
(:mod:`repro.core.engines`): configurations described by a
:class:`~repro.core.spec.PredictorSpec` -- passed directly, or
discovered on a factory-built predictor's ``.spec`` attribute -- are
replayed by the resolved engine (the vectorised batch kernels by
default, bit-identical to the scalar loop); everything else runs the
classic per-record scalar loop on the instance itself.

Telemetry: when a run is active (:func:`repro.telemetry.enabled`),
:func:`measure_accuracy` wraps the replay in a ``predictor`` span
(labelled with the engine that actually ran) and records prediction
counters; :func:`measure_cell` adds a per-``trace`` span plus the
heavyweight table probes (level-2 occupancy, aliasing, confidence)
through :mod:`repro.telemetry.probes` -- gated on
:func:`~repro.telemetry.probes.probe_sample_limit` *before* any probe
replay happens.  When no run is active the guard is a single boolean
check per *call* -- the record loop itself is identical to the
uninstrumented code, which is the overhead guarantee
``tests/telemetry/test_overhead.py`` enforces.

:func:`measure_suite` fans its per-trace cells over the process pool
when the resolved executor (see :mod:`repro.harness.executor`) is
``'process'`` and the configuration is spec-described (specs are
picklable; closures are not); results merge in trace order, so serial
and parallel runs are identical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Union

from repro.core.base import ValuePredictor
from repro.core.engines import count_correct, run_spec
from repro.core.spec import PredictorSpec, spec_of
from repro.telemetry import run as _telemetry_run
from repro.telemetry.spans import span
from repro.trace.trace import ValueTrace

__all__ = ["AccuracyResult", "SuiteResult", "measure_accuracy",
           "measure_cell", "measure_suite", "factory_spec"]

#: A measurement configuration: a declarative spec, or the historical
#: zero-argument predictor factory (specs are callable, so they pass).
PredictorLike = Union[PredictorSpec, Callable[[], ValuePredictor]]


@dataclass(frozen=True)
class AccuracyResult:
    """Outcome of one predictor on one trace."""

    predictor_name: str
    trace_name: str
    correct: int
    total: int

    @property
    def accuracy(self) -> float:
        """Fraction of correct predictions (0.0 on an empty trace)."""
        return self.correct / self.total if self.total else 0.0


@dataclass
class SuiteResult:
    """Outcomes of one predictor configuration across a benchmark suite.

    ``storage_kbit`` records the modelled size of the measured
    instances (every trace gets a fresh but identically-configured
    predictor), so sweep code can label points without instantiating a
    throwaway probe predictor.
    """

    predictor_name: str
    per_trace: Dict[str, AccuracyResult] = field(default_factory=dict)
    storage_kbit: float = 0.0

    @property
    def correct(self) -> int:
        return sum(r.correct for r in self.per_trace.values())

    @property
    def total(self) -> int:
        return sum(r.total for r in self.per_trace.values())

    @property
    def accuracy(self) -> float:
        """The paper's metric: mean weighted by predicted instructions."""
        total = self.total
        return self.correct / total if total else 0.0

    def accuracy_of(self, trace_name: str) -> float:
        return self.per_trace[trace_name].accuracy


def factory_spec(predictor_factory: PredictorLike) -> Optional[PredictorSpec]:
    """The spec behind a factory, or ``None`` for opaque closures.

    A :class:`PredictorSpec` is its own answer; otherwise one probe
    instance is built and its declarative twin (``predictor.spec``,
    via the exact-type-checked :func:`~repro.core.spec.spec_of`) is
    trusted.  Factories are assumed pure -- the measurement loop and
    the probes already call them repeatedly.
    """
    if isinstance(predictor_factory, PredictorSpec):
        return predictor_factory
    return spec_of(predictor_factory())


def _measure_spec(spec: PredictorSpec, trace: ValueTrace,
                  engine: Optional[str] = None) -> AccuracyResult:
    """Replay *spec* over *trace* with the resolved engine."""
    if not _telemetry_run.enabled():
        outcome = run_spec(spec, trace, engine)
    else:
        with span("predictor", predictor=spec.name, trace=trace.name) as sp:
            started = time.perf_counter()
            outcome = run_spec(spec, trace, engine)
            elapsed = time.perf_counter() - started
            sp.set("engine", outcome.engine)
            sp.set("predictions", outcome.total)
            sp.set("correct", outcome.correct)
            sp.set("accuracy", round(outcome.accuracy, 6))
        from repro.telemetry.probes import record_accuracy
        record_accuracy(spec, trace.name, outcome.correct, outcome.total,
                        elapsed)
    return AccuracyResult(
        predictor_name=spec.name,
        trace_name=trace.name,
        correct=outcome.correct,
        total=outcome.total,
    )


def measure_accuracy(predictor, trace: ValueTrace,
                     engine: Optional[str] = None) -> AccuracyResult:
    """Run *trace* through *predictor*; returns correct/total counts.

    *predictor* is either a stateful :class:`ValuePredictor` instance
    -- measured by the scalar loop and trained as a side effect (pass
    a fresh instance for an independent measurement) -- or a
    :class:`~repro.core.spec.PredictorSpec`, replayed by the resolved
    *engine* without any instance escaping.
    """
    if isinstance(predictor, PredictorSpec):
        return _measure_spec(predictor, trace, engine)
    records = trace.records()
    if not _telemetry_run.enabled():
        correct = count_correct(predictor, records)
    else:
        with span("predictor", predictor=predictor.name,
                  trace=trace.name, engine="scalar") as sp:
            started = time.perf_counter()
            correct = count_correct(predictor, records)
            elapsed = time.perf_counter() - started
            sp.set("predictions", len(records))
            sp.set("correct", correct)
            sp.set("accuracy",
                   round(correct / len(records), 6) if records else 0.0)
        from repro.telemetry.probes import record_accuracy
        record_accuracy(predictor, trace.name, correct, len(records),
                        elapsed)
    return AccuracyResult(
        predictor_name=predictor.name,
        trace_name=trace.name,
        correct=correct,
        total=len(records),
    )


def measure_cell(predictor_factory: PredictorLike, trace: ValueTrace,
                 engine: Optional[str] = None) -> AccuracyResult:
    """One (configuration, trace) measurement cell.

    The shared body of serial and parallel suite measurement: an
    instrumented cell wraps the replay in a ``trace`` span and runs
    the heavyweight table/confidence probes when the sampling gate is
    open; an uninstrumented cell is just the measurement.
    """
    spec = (predictor_factory
            if isinstance(predictor_factory, PredictorSpec) else None)
    if not _telemetry_run.enabled():
        if spec is not None:
            return _measure_spec(spec, trace, engine)
        return measure_accuracy(predictor_factory(), trace)
    predictor = spec if spec is not None else predictor_factory()
    with span("trace", benchmark=trace.name, predictor=predictor.name):
        outcome = measure_accuracy(predictor, trace, engine)
        from repro.telemetry.probes import (probe_confidence,
                                            probe_context_tables,
                                            probe_sample_limit,
                                            probe_table_usage)
        if probe_sample_limit() > 0:
            probe_context_tables(predictor_factory, trace)
            probe_table_usage(predictor_factory, trace)
            probe_confidence(predictor_factory, trace)
    return outcome


def measure_suite(
    predictor_factory: PredictorLike,
    traces: Sequence[ValueTrace],
    engine: Optional[str] = None,
    executor: Optional[str] = None,
    jobs: Optional[int] = None,
) -> SuiteResult:
    """Measure one configuration over a suite, fresh state per trace.

    *predictor_factory* is a zero-argument callable returning a fresh
    predictor (the historical interface) or a
    :class:`~repro.core.spec.PredictorSpec`.  Spec-described
    configurations route through the engine layer (and, when the
    resolved executor is ``'process'``, across the worker pool);
    opaque factories run the scalar loop serially, exactly as before.
    """
    traces = list(traces)
    if not traces:
        raise ValueError("measure_suite needs at least one trace")
    spec = factory_spec(predictor_factory)
    if spec is not None:
        name, storage_kbit = spec.name, spec.storage_kbit()
        runner: PredictorLike = spec
    else:
        probe = predictor_factory()
        name, storage_kbit = probe.name, probe.storage_kbit()
        runner = predictor_factory
    from repro.harness.executor import resolve_executor, run_cells
    executor_name, n_jobs = resolve_executor(executor, jobs)
    if executor_name == "process" and spec is not None and len(traces) > 1:
        outcomes = run_cells([(spec, trace) for trace in traces],
                             engine=engine, jobs=n_jobs)
    else:
        outcomes = [measure_cell(runner, trace, engine) for trace in traces]
    result = SuiteResult(predictor_name=name, storage_kbit=storage_kbit)
    for outcome in outcomes:
        result.per_trace[outcome.trace_name] = outcome
    return result
