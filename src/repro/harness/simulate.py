"""Accuracy measurement, reproducing the paper's metric.

The paper reports, per configuration, "the arithmetic mean over all
SPECint benchmarks, weighted by the number of predicted instructions" --
equivalently, pooled correct predictions over pooled predictions.  Each
benchmark gets a *fresh* predictor (the paper simulates each benchmark
separately).

The hot loop drives predictors through ``step`` so oracle hybrids can
keep their perfect-meta semantics; for plain predictors the loop is
specialised to inline predict/update and avoid a method call per
record.

Telemetry: when a run is active (:func:`repro.telemetry.enabled`),
:func:`measure_accuracy` wraps the loop in a ``predictor`` span and
records prediction counters; :func:`measure_suite` adds a per-``trace``
span plus the heavyweight table probes (level-2 occupancy, aliasing,
confidence) through :mod:`repro.telemetry.probes`.  When no run is
active the guard is a single boolean check per *call* -- the record
loop itself is identical to the uninstrumented code, which is the
overhead guarantee ``tests/telemetry/test_overhead.py`` enforces.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from repro.core.base import ValuePredictor
from repro.telemetry import run as _telemetry_run
from repro.telemetry.spans import span
from repro.trace.trace import ValueTrace

__all__ = ["AccuracyResult", "SuiteResult", "measure_accuracy", "measure_suite"]


@dataclass(frozen=True)
class AccuracyResult:
    """Outcome of one predictor on one trace."""

    predictor_name: str
    trace_name: str
    correct: int
    total: int

    @property
    def accuracy(self) -> float:
        """Fraction of correct predictions (0.0 on an empty trace)."""
        return self.correct / self.total if self.total else 0.0


@dataclass
class SuiteResult:
    """Outcomes of one predictor configuration across a benchmark suite.

    ``storage_kbit`` records the modelled size of the measured
    instances (every trace gets a fresh but identically-configured
    predictor), so sweep code can label points without instantiating a
    throwaway probe predictor.
    """

    predictor_name: str
    per_trace: Dict[str, AccuracyResult] = field(default_factory=dict)
    storage_kbit: float = 0.0

    @property
    def correct(self) -> int:
        return sum(r.correct for r in self.per_trace.values())

    @property
    def total(self) -> int:
        return sum(r.total for r in self.per_trace.values())

    @property
    def accuracy(self) -> float:
        """The paper's metric: mean weighted by predicted instructions."""
        total = self.total
        return self.correct / total if total else 0.0

    def accuracy_of(self, trace_name: str) -> float:
        return self.per_trace[trace_name].accuracy


def _count_correct(predictor: ValuePredictor,
                   records: List[Tuple[int, int]]) -> int:
    """The measurement hot loop: correct predictions over *records*."""
    correct = 0
    step = type(predictor).step
    if step is ValuePredictor.step:
        # Plain predictor: inline predict-then-update.
        predict = predictor.predict
        update = predictor.update
        for pc, value in records:
            if predict(pc) == value:
                correct += 1
            update(pc, value)
    else:
        bound_step = predictor.step
        for pc, value in records:
            if bound_step(pc, value):
                correct += 1
    return correct


def measure_accuracy(predictor: ValuePredictor, trace: ValueTrace) -> AccuracyResult:
    """Run *trace* through *predictor*; returns correct/total counts.

    The predictor is trained as a side effect; pass a fresh instance
    for an independent measurement.
    """
    records = trace.records()
    if not _telemetry_run.enabled():
        correct = _count_correct(predictor, records)
    else:
        with span("predictor", predictor=predictor.name,
                  trace=trace.name) as sp:
            started = time.perf_counter()
            correct = _count_correct(predictor, records)
            elapsed = time.perf_counter() - started
            sp.set("predictions", len(records))
            sp.set("correct", correct)
            sp.set("accuracy",
                   round(correct / len(records), 6) if records else 0.0)
        from repro.telemetry.probes import record_accuracy
        record_accuracy(predictor, trace.name, correct, len(records),
                        elapsed)
    return AccuracyResult(
        predictor_name=predictor.name,
        trace_name=trace.name,
        correct=correct,
        total=len(records),
    )


def measure_suite(
    predictor_factory: Callable[[], ValuePredictor],
    traces: Sequence[ValueTrace],
) -> SuiteResult:
    """Measure one configuration over a suite, fresh predictor per trace."""
    if not traces:
        raise ValueError("measure_suite needs at least one trace")
    instrumented = _telemetry_run.enabled()
    result: SuiteResult | None = None
    for trace in traces:
        predictor = predictor_factory()
        if not instrumented:
            outcome = measure_accuracy(predictor, trace)
        else:
            with span("trace", benchmark=trace.name,
                      predictor=predictor.name):
                outcome = measure_accuracy(predictor, trace)
                from repro.telemetry.probes import (probe_confidence,
                                                    probe_context_tables)
                probe_context_tables(predictor_factory, trace)
                probe_confidence(predictor_factory, trace)
        if result is None:
            result = SuiteResult(predictor_name=predictor.name,
                                 storage_kbit=predictor.storage_kbit())
        result.per_trace[trace.name] = outcome
    assert result is not None
    return result
