"""Predictor-engine throughput benchmark (``repro bench``).

Replays a reference family grid over one cached trace with both
engines and reports records/second plus the batch/scalar speedup per
family, a suite-level wall-time comparison for the flagship DFCM
configuration, and a speedup *guard*: in full mode the flagship batch
replay must beat the scalar loop by at least :data:`MIN_SPEEDUP`, or
the bench fails.  Results are written to ``BENCH_predictors.json`` so
CI can archive the numbers next to the figures they protect.

The replay goes straight through :func:`repro.core.engines.run_spec`
with the engine pinned -- no telemetry, no executor -- so the numbers
measure the kernels, not the harness.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import List, Optional, Sequence, Tuple

from repro.core.engines import run_spec
from repro.core.spec import (DFCMSpec, FCMSpec, LastValueSpec,
                             OracleHybridSpec, PredictorSpec, StrideSpec,
                             TwoDeltaStrideSpec)
from repro.harness.simulate import measure_suite
from repro.trace.trace import ValueTrace

__all__ = ["MIN_SPEEDUP", "MAX_REGRESSION_PCT", "bench_specs",
           "resolve_min_speedup", "resolve_max_regression_pct", "run_bench",
           "render_bench", "write_report", "history_entry", "append_history",
           "cluster_history_entry", "append_cluster_history",
           "soak_history_entry", "append_soak_history",
           "read_history", "diff_history", "render_history_diff"]

#: Default full-mode guard: flagship DFCM batch replay vs the scalar
#: loop.  Override per run with ``--min-speedup`` or
#: ``$REPRO_BENCH_MIN_SPEEDUP``; the effective threshold is recorded in
#: the report's ``guard`` block.
MIN_SPEEDUP = 5.0


def resolve_min_speedup(min_speedup: Optional[float] = None) -> float:
    """Explicit argument > ``$REPRO_BENCH_MIN_SPEEDUP`` > default."""
    if min_speedup is None:
        env = os.environ.get("REPRO_BENCH_MIN_SPEEDUP")
        if env:
            try:
                min_speedup = float(env)
            except ValueError:
                raise ValueError(
                    "REPRO_BENCH_MIN_SPEEDUP must be a number, "
                    f"got {env!r}") from None
    if min_speedup is None:
        return MIN_SPEEDUP
    if min_speedup <= 0:
        raise ValueError(
            f"min speedup must be positive, got {min_speedup}")
    return float(min_speedup)

#: Trace lengths (records per benchmark).
FULL_LIMIT = 100_000
FAST_LIMIT = 20_000

#: The benchmark whose trace anchors the single-trace family grid.
ANCHOR_BENCHMARK = "li"

#: Records of the anchor trace each family's table-usage audit samples
#: (matches the default telemetry probe bound; keeps bench time flat).
EFFICIENCY_SAMPLE = 8192


def _table_efficiency(spec: PredictorSpec, trace: ValueTrace) -> float:
    """Headline table efficiency (correct per live bit) of *spec* on a
    sampled prefix of *trace* -- recorded next to rec/s so the history
    tracks usage quality alongside speed."""
    from repro.telemetry.tables import TableUsageAuditor
    auditor = TableUsageAuditor(spec)
    auditor.update(trace.pcs[:EFFICIENCY_SAMPLE],
                   trace.values[:EFFICIENCY_SAMPLE])
    return auditor.report()["efficiency"]


def bench_specs() -> List[Tuple[str, PredictorSpec]]:
    """The reference grid: one spec per engine-supported family."""
    flagship = DFCMSpec(1 << 16, 1 << 12)
    return [
        ("lvp", LastValueSpec(1 << 16)),
        ("stride", StrideSpec(1 << 16)),
        ("stride2d", TwoDeltaStrideSpec(1 << 16)),
        ("fcm", FCMSpec(1 << 16, 1 << 12)),
        ("dfcm", flagship),
        ("hybrid", OracleHybridSpec((StrideSpec(1 << 16), flagship))),
    ]


def _flagship() -> PredictorSpec:
    return dict(bench_specs())["dfcm"]


def _time_replay(spec: PredictorSpec, trace: ValueTrace, engine: str,
                 repeats: int) -> Tuple[float, int]:
    """Best-of-*repeats* wall time of one engine replay; returns
    ``(seconds, correct)`` and checks the engines agree on the count."""
    best = float("inf")
    correct = None
    for _ in range(repeats):
        started = time.perf_counter()
        outcome = run_spec(spec, trace, engine)
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
        if correct is None:
            correct = outcome.correct
        elif correct != outcome.correct:
            raise AssertionError(
                f"{spec.name}/{engine}: nondeterministic correct count")
    return best, correct


def run_bench(traces: Optional[Sequence[ValueTrace]] = None,
              fast: bool = False,
              repeats: Optional[int] = None,
              min_speedup: Optional[float] = None) -> dict:
    """Run the grid and return the report dict (see module docstring).

    *traces*: injectable for tests; defaults to the cached
    :data:`ANCHOR_BENCHMARK` trace at the mode's record limit.  The
    first trace anchors the per-family grid; the full list feeds the
    suite-level comparison.  The guard threshold comes from
    :func:`resolve_min_speedup`; it is **enforced** (``passed`` may
    be ``False`` and the caller should fail) only in full mode --
    fast-mode numbers on tiny traces are recorded, not judged.
    """
    threshold = resolve_min_speedup(min_speedup)
    limit = FAST_LIMIT if fast else FULL_LIMIT
    if traces is None:
        from repro.trace.cache import cached_trace
        traces = [cached_trace(ANCHOR_BENCHMARK, limit)]
    traces = list(traces)
    if not traces:
        raise ValueError("run_bench needs at least one trace")
    anchor = traces[0]
    if repeats is None:
        repeats = 1 if fast else 3

    families = []
    for family, spec in bench_specs():
        scalar_s, scalar_correct = _time_replay(spec, anchor, "scalar",
                                                repeats)
        batch_s, batch_correct = _time_replay(spec, anchor, "batch", repeats)
        if scalar_correct != batch_correct:
            raise AssertionError(
                f"{spec.name}: engines disagree "
                f"(scalar {scalar_correct}, batch {batch_correct})")
        families.append({
            "family": family,
            "predictor": spec.name,
            "records": len(anchor),
            "correct": scalar_correct,
            "scalar_seconds": round(scalar_s, 6),
            "batch_seconds": round(batch_s, 6),
            "scalar_records_per_sec": round(len(anchor) / scalar_s),
            "batch_records_per_sec": round(len(anchor) / batch_s),
            "speedup": round(scalar_s / batch_s, 3),
            "table_efficiency": _table_efficiency(spec, anchor),
        })

    flagship = _flagship()
    started = time.perf_counter()
    scalar_suite = measure_suite(flagship, traces, engine="scalar",
                                 executor="serial")
    suite_scalar_s = time.perf_counter() - started
    started = time.perf_counter()
    batch_suite = measure_suite(flagship, traces, engine="batch",
                                executor="serial")
    suite_batch_s = time.perf_counter() - started
    if scalar_suite.correct != batch_suite.correct:
        raise AssertionError(
            f"{flagship.name}: suite engines disagree "
            f"(scalar {scalar_suite.correct}, batch {batch_suite.correct})")
    suite_speedup = suite_scalar_s / suite_batch_s

    return {
        "schema": 1,
        "schema_version": 1,
        "mode": "fast" if fast else "full",
        "anchor": {"benchmark": anchor.name, "records": len(anchor)},
        "suite_traces": [trace.name for trace in traces],
        "repeats": repeats,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "families": families,
        "suite": {
            "predictor": flagship.name,
            "records": scalar_suite.total,
            "accuracy": round(scalar_suite.accuracy, 6),
            "scalar_seconds": round(suite_scalar_s, 6),
            "batch_seconds": round(suite_batch_s, 6),
            "speedup": round(suite_speedup, 3),
        },
        "guard": {
            "min_speedup": threshold,
            "measured": round(suite_speedup, 3),
            "enforced": not fast,
            "passed": fast or suite_speedup >= threshold,
        },
    }


def render_bench(report: dict) -> str:
    """Human-readable digest of a :func:`run_bench` report."""
    from repro.harness.report import format_table
    rows = [[f["family"], f["predictor"],
             f"{f['scalar_records_per_sec']:,}",
             f"{f['batch_records_per_sec']:,}",
             f"{f['speedup']:.2f}x",
             ("--" if f.get("table_efficiency") is None
              else f"{f['table_efficiency']:.3g}")]
            for f in report["families"]]
    anchor = report["anchor"]
    lines = [format_table(
        ["family", "predictor", "scalar rec/s", "batch rec/s", "speedup",
         "eff (hits/bit)"],
        rows,
        title=(f"engine throughput on {anchor['benchmark']} "
               f"({anchor['records']} records, {report['mode']} mode)"))]
    suite = report["suite"]
    lines.append(
        f"suite ({len(report['suite_traces'])} trace(s), "
        f"{suite['predictor']}): scalar {suite['scalar_seconds']:.2f}s, "
        f"batch {suite['batch_seconds']:.2f}s, "
        f"speedup {suite['speedup']:.2f}x")
    guard = report["guard"]
    verdict = "PASS" if guard["passed"] else "FAIL"
    enforcement = "enforced" if guard["enforced"] else "recorded only"
    lines.append(
        f"guard: batch >= {guard['min_speedup']:g}x scalar on the "
        f"flagship suite -- measured {guard['measured']:.2f}x "
        f"[{verdict}, {enforcement}]")
    return "\n".join(lines) + "\n"


def write_report(report: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


# -------------------------------------------------------------- history

#: Default regression gate for ``repro bench diff``: the newest
#: record's batch throughput may drop at most this many percent
#: against the previous one.  Override with ``--max-regression-pct``
#: or ``$REPRO_BENCH_MAX_REGRESSION_PCT``.
MAX_REGRESSION_PCT = 10.0

HISTORY_SCHEMA = 1


def resolve_max_regression_pct(
        max_regression_pct: Optional[float] = None) -> float:
    """Explicit argument > ``$REPRO_BENCH_MAX_REGRESSION_PCT`` >
    default."""
    if max_regression_pct is None:
        env = os.environ.get("REPRO_BENCH_MAX_REGRESSION_PCT")
        if env:
            try:
                max_regression_pct = float(env)
            except ValueError:
                raise ValueError(
                    "REPRO_BENCH_MAX_REGRESSION_PCT must be a number, "
                    f"got {env!r}") from None
    if max_regression_pct is None:
        return MAX_REGRESSION_PCT
    if max_regression_pct < 0:
        raise ValueError(f"max regression pct must be >= 0, "
                         f"got {max_regression_pct}")
    return float(max_regression_pct)


def _bench_git_sha() -> Optional[str]:
    import subprocess
    from pathlib import Path
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=5)
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def history_entry(report: dict) -> dict:
    """One history record: identity + the throughput numbers worth
    diffing (per-family batch/scalar rec/s and the suite speedup)."""
    return {
        "schema": HISTORY_SCHEMA,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "git_sha": _bench_git_sha(),
        "mode": report["mode"],
        "anchor": report["anchor"],
        "python": report["python"],
        "machine": report["machine"],
        "families": {
            f["family"]: {
                "batch_records_per_sec": f["batch_records_per_sec"],
                "scalar_records_per_sec": f["scalar_records_per_sec"],
                "speedup": f["speedup"],
                "table_efficiency": f.get("table_efficiency"),
            } for f in report["families"]},
        "suite_speedup": report["suite"]["speedup"],
    }


def append_history(report: dict, path: str = "BENCH_history.jsonl") -> dict:
    """Append the report's :func:`history_entry` to the JSONL history
    file; returns the entry written."""
    entry = history_entry(report)
    with open(path, "a") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def read_history(path: str = "BENCH_history.jsonl") -> List[dict]:
    """All history records, oldest first (blank lines skipped).

    A missing history file is a user/setup error, not a bug: it raises
    :class:`ValueError` naming the path (the CLI turns that into an
    ``error: <path>: ...`` line and exit 1)."""
    entries = []
    try:
        handle = open(path)
    except FileNotFoundError:
        raise ValueError(
            f"{path}: no bench history (run 'repro bench --history' "
            f"to create it)") from None
    with handle:
        for line in handle:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    return entries


def cluster_history_entry(report: dict) -> dict:
    """One ``kind: cluster_scaling`` history record from a
    :func:`repro.serve.cluster.loadgen.run_scaling_loadgen` report --
    aggregate throughput and tail latency per worker count, so ``repro
    bench diff`` can gate the cluster tier the same way it gates the
    kernels."""
    return {
        "schema": HISTORY_SCHEMA,
        "kind": "cluster_scaling",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "git_sha": _bench_git_sha(),
        "trace": report.get("trace"),
        "spec": report.get("spec"),
        "sessions": report.get("sessions"),
        "points": {
            str(p["workers"]): {
                "records_per_s": p["records_per_s"],
                "p99_ms": p["latency"]["p99_ms"],
            } for p in report.get("points", [])},
        "speedup": report.get("speedup"),
    }


def append_cluster_history(report: dict,
                           path: str = "BENCH_history.jsonl") -> dict:
    """Append a scaling-loadgen report's history record; returns the
    entry written."""
    entry = cluster_history_entry(report)
    with open(path, "a") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def soak_history_entry(report: dict) -> dict:
    """One ``kind: cluster_soak`` history record from a
    :func:`repro.serve.cluster.soak.run_soak` report -- the sustained
    throughput, tail latency and SLO-burn verdict of one soak run.
    ``repro bench diff`` ignores the kind today (soaks gate themselves
    pass/fail); the record is the longitudinal trail."""
    return {
        "schema": HISTORY_SCHEMA,
        "kind": "cluster_soak",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "git_sha": _bench_git_sha(),
        "trace": report.get("trace"),
        "spec": report.get("spec"),
        "workers": report.get("workers"),
        "sessions": report.get("sessions"),
        "seconds": report.get("seconds"),
        "passes": report.get("passes"),
        "records_per_s": report.get("records_per_s"),
        "p99_ms": report.get("latency", {}).get("p99_ms"),
        "peak_burn": report.get("peak_burn"),
        "parity_ok": report.get("parity_ok"),
        "slo_ok": report.get("slo_ok"),
        "soak_ok": report.get("soak_ok"),
    }


def append_soak_history(report: dict,
                        path: str = "BENCH_history.jsonl") -> dict:
    """Append a soak report's history record; returns the entry
    written."""
    entry = soak_history_entry(report)
    with open(path, "a") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def _entry_kind(entry: dict) -> str:
    """Records written before kinds existed are bench records."""
    return entry.get("kind") or ("bench" if "families" in entry
                                 else "unknown")


def _diff_cluster(base: dict, head: dict, threshold: float) -> dict:
    """Per-worker-count throughput comparison of two cluster records.

    Only worker counts present in both records gate (a widened or
    narrowed sweep re-baselines itself); a point regresses when its
    aggregate throughput drops more than *threshold* percent.
    """
    points = []
    regressed = []
    shared = sorted(set(base.get("points", {}))
                    & set(head.get("points", {})), key=int)
    for workers in shared:
        old = base["points"][workers]["records_per_s"]
        new = head["points"][workers]["records_per_s"]
        delta_pct = ((new - old) / old * 100.0) if old else 0.0
        is_regressed = delta_pct < -threshold
        if is_regressed:
            regressed.append(f"cluster:w{workers}")
        points.append({
            "workers": int(workers),
            "base_records_per_s": old,
            "head_records_per_s": new,
            "base_p99_ms": base["points"][workers].get("p99_ms"),
            "head_p99_ms": head["points"][workers].get("p99_ms"),
            "delta_pct": round(delta_pct, 2),
            "regressed": is_regressed,
        })
    return {
        "base": {"git_sha": base.get("git_sha"),
                 "timestamp": base.get("timestamp")},
        "head": {"git_sha": head.get("git_sha"),
                 "timestamp": head.get("timestamp")},
        "points": points,
        "regressed": regressed,
    }


def diff_history(path: str = "BENCH_history.jsonl",
                 max_regression_pct: Optional[float] = None) -> dict:
    """Compare the two most recent history records per family.

    A family regresses when its batch throughput in the newest record
    drops more than the threshold percent below the previous record;
    ``passed`` is False when any family regresses.  The two records
    must cover the same families: a family silently appearing in (or
    vanishing from) the grid would otherwise dodge the regression
    gate, so either direction of mismatch raises :class:`ValueError`
    with both sides named -- re-run ``bench --history`` after a grid
    change to re-baseline.

    The history file may interleave record kinds (plain bench records
    and ``cluster_scaling`` records from the scaling loadgen); each
    kind diffs against its own predecessor.  The cluster comparison
    rides along under ``"cluster"`` whenever two scaling records
    exist, gated by the same threshold.
    """
    threshold = resolve_max_regression_pct(max_regression_pct)
    entries = read_history(path)
    bench_entries = [e for e in entries if _entry_kind(e) == "bench"]
    cluster_entries = [e for e in entries
                       if _entry_kind(e) == "cluster_scaling"]
    if len(bench_entries) < 2:
        raise ValueError(
            f"{path}: need at least 2 bench history records to diff, "
            f"found {len(bench_entries)} (run 'repro bench --history' "
            f"twice)")
    base, head = bench_entries[-2], bench_entries[-1]
    only_base = sorted(set(base["families"]) - set(head["families"]))
    only_head = sorted(set(head["families"]) - set(base["families"]))
    if only_base or only_head:
        parts = []
        if only_base:
            parts.append("missing from the current run: "
                         + ", ".join(only_base))
        if only_head:
            parts.append("not in the previous record: "
                         + ", ".join(only_head))
        raise ValueError(
            f"bench history records in {path} cover different families "
            f"({'; '.join(parts)}); re-run 'repro bench --history' to "
            f"re-baseline after a grid change")
    families = []
    regressed = []
    for family in sorted(base["families"]):
        old = base["families"][family]["batch_records_per_sec"]
        new = head["families"][family]["batch_records_per_sec"]
        delta_pct = ((new - old) / old * 100.0) if old else 0.0
        is_regressed = delta_pct < -threshold
        if is_regressed:
            regressed.append(family)
        # Table efficiency is reported, never gated: it moves with
        # deliberate table-shape changes, and older records predate it
        # (.get -> None renders as "--").
        old_eff = base["families"][family].get("table_efficiency")
        new_eff = head["families"][family].get("table_efficiency")
        eff_delta = (round((new_eff - old_eff) / old_eff * 100.0, 2)
                     if old_eff and new_eff is not None else None)
        families.append({
            "family": family,
            "base_records_per_sec": old,
            "head_records_per_sec": new,
            "delta_pct": round(delta_pct, 2),
            "regressed": is_regressed,
            "base_table_efficiency": old_eff,
            "head_table_efficiency": new_eff,
            "efficiency_delta_pct": eff_delta,
        })
    diff = {
        "schema": HISTORY_SCHEMA,
        "path": path,
        "max_regression_pct": threshold,
        "base": {"git_sha": base.get("git_sha"),
                 "timestamp": base.get("timestamp"),
                 "mode": base.get("mode")},
        "head": {"git_sha": head.get("git_sha"),
                 "timestamp": head.get("timestamp"),
                 "mode": head.get("mode")},
        "families": families,
        "regressed": regressed,
        "passed": not regressed,
    }
    if len(cluster_entries) >= 2:
        cluster = _diff_cluster(cluster_entries[-2], cluster_entries[-1],
                                threshold)
        diff["cluster"] = cluster
        diff["regressed"] = regressed + cluster["regressed"]
        diff["passed"] = not diff["regressed"]
    return diff


def render_history_diff(diff: dict) -> str:
    """Human-readable digest of a :func:`diff_history` result."""
    from repro.harness.report import format_table

    def _ident(rec: dict) -> str:
        sha = (rec.get("git_sha") or "?")[:12]
        return f"{sha} ({rec.get('timestamp') or '?'}, " \
               f"{rec.get('mode') or '?'})"

    rows = [[f["family"], f"{f['base_records_per_sec']:,}",
             f"{f['head_records_per_sec']:,}",
             f"{f['delta_pct']:+.2f}%",
             ("--" if f.get("efficiency_delta_pct") is None
              else f"{f['efficiency_delta_pct']:+.2f}%"),
             "REGRESSED" if f["regressed"] else "ok"]
            for f in diff["families"]]
    lines = [format_table(
        ["family", "base rec/s", "head rec/s", "delta", "eff delta",
         "verdict"], rows,
        title=(f"bench history diff: {_ident(diff['base'])} -> "
               f"{_ident(diff['head'])}"))]
    cluster = diff.get("cluster")
    if cluster:
        cluster_rows = [
            [f"{p['workers']}",
             f"{p['base_records_per_s']:,}",
             f"{p['head_records_per_s']:,}",
             f"{p['delta_pct']:+.2f}%",
             "REGRESSED" if p["regressed"] else "ok"]
            for p in cluster["points"]]
        lines.append(format_table(
            ["workers", "base rec/s", "head rec/s", "delta", "verdict"],
            cluster_rows, title="cluster scaling diff"))
    verdict = "PASS" if diff["passed"] else "FAIL"
    lines.append(f"gate: batch throughput drop <= "
                 f"{diff['max_regression_pct']:g}% per family -- {verdict}")
    if diff["regressed"]:
        lines.append("regressed: " + ", ".join(diff["regressed"]))
    return "\n".join(lines) + "\n"
