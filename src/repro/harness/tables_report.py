"""The ``repro tables`` report: table-usage efficiency across families.

The paper's table-efficiency argument (sections 2.4 and 4.2) is that a
DFCM makes *better use of the same storage* than an FCM: stride
patterns collapse onto a handful of level-2 entries, freeing capacity
and cutting destructive aliasing.  This module reproduces that
argument as a sweep: for each storage budget, every family gets the
power-of-two configuration closest to the budget, a
:class:`~repro.telemetry.tables.TableUsageAuditor` replays the same
sampled trace through each, and the per-cell reports line up as

- a numeric table (accuracy, live fraction, alias rates, efficiency),
- occupancy and destructive-aliasing heatmaps
  (:func:`~repro.harness.ascii_plot.render_heatmap`), and
- a machine-readable JSON payload whose ``dfcm_beats_fcm`` verdict is
  the paper-shape check CI asserts.

Efficiency is the auditor's headline metric -- correct predictions per
live table bit -- which is comparable across families *because* the
configurations are storage-matched.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.spec import (DFCMSpec, FCMSpec, LastValueSpec, PredictorSpec,
                             StrideSpec)
from repro.telemetry.tables import TableUsageAuditor

__all__ = ["DEFAULT_BUDGETS_KBIT", "DEFAULT_FAMILIES", "matched_spec",
           "run_tables_report", "render_tables_report"]

#: Storage budgets (Kbit) the default sweep matches every family to.
DEFAULT_BUDGETS_KBIT = (64.0, 128.0, 256.0, 512.0, 1024.0)

#: Families in the default sweep, in render order.
DEFAULT_FAMILIES = ("lvp", "stride", "fcm", "dfcm", "hybrid")

_LOG2_RANGE = range(2, 22)


def _closest(candidates) -> PredictorSpec:
    return min(candidates, key=lambda pair: pair[0])[1]


def matched_spec(family: str, budget_kbit: float) -> PredictorSpec:
    """The *family* configuration whose modelled storage is closest to
    *budget_kbit*, searching power-of-two table sizes.

    Context predictors search along the paper's level-1:level-2 shape
    (ratio band 8x-32x, preferring 16:1); the hybrid splits the budget
    between a stride component (one quarter) and a DFCM (the rest),
    mirroring the paper's stride+DFCM pairing.
    """
    if budget_kbit <= 0:
        raise ValueError(f"budget must be positive, got {budget_kbit}")
    if family == "lvp":
        return _closest([(abs(LastValueSpec(1 << k).storage_kbit()
                              - budget_kbit), LastValueSpec(1 << k))
                         for k in _LOG2_RANGE])
    if family == "stride":
        return _closest([(abs(StrideSpec(1 << k).storage_kbit()
                              - budget_kbit), StrideSpec(1 << k))
                         for k in _LOG2_RANGE])
    if family in ("fcm", "dfcm"):
        make = FCMSpec if family == "fcm" else DFCMSpec
        # The search stays near the paper's 16:1 level-1:level-2 shape
        # (ratio band 8x-32x): an unconstrained grid would win the
        # budget lottery with degenerate configurations (a 4-entry
        # level yields almost no live bits and a meaningless
        # efficiency headline).
        candidates = []
        for b in _LOG2_RANGE:
            for ratio in (3, 4, 5):
                spec = make(1 << (b + ratio), 1 << b)
                diff = abs(spec.storage_kbit() - budget_kbit)
                candidates.append(((diff, abs(ratio - 4), b), spec))
        return min(candidates, key=lambda pair: pair[0])[1]
    if family == "hybrid":
        from repro.core.spec import OracleHybridSpec
        stride = matched_spec("stride", budget_kbit / 4)
        dfcm = matched_spec("dfcm", budget_kbit * 3 / 4)
        return OracleHybridSpec((stride, dfcm))
    raise ValueError(f"unknown family {family!r}; "
                     f"expected one of {DEFAULT_FAMILIES}")


def _cell(spec: PredictorSpec, pcs, values, engine: str) -> dict:
    auditor = TableUsageAuditor(spec, engine=engine)
    auditor.update(pcs, values)
    report = auditor.report()
    # The access-level view: l2 for context predictors, l1 otherwise;
    # hybrids have no single level (their per-table liveness stands in).
    level = report["levels"].get("l2") or report["levels"].get("l1")
    return {
        "spec": spec.name,
        "family": report["family"],
        "storage_kbit": round(spec.storage_kbit(), 3),
        "sampled_records": report["sampled_records"],
        "accuracy": report["accuracy"],
        "live_fraction": report["live_fraction"],
        "efficiency": report["efficiency"],
        "occupancy_ratio": (level["occupancy_ratio"]
                            if level is not None
                            else report["live_fraction"]),
        "alias_rate": level["alias_rate"] if level is not None else None,
        "alias_destructive_rate": (level["alias_destructive_rate"]
                                   if level is not None else None),
        "engine": auditor.engine,
    }


def run_tables_report(trace, budgets_kbit: Sequence[float] = None,
                      families: Sequence[str] = None,
                      engine: str = "batch",
                      sample: Optional[int] = None) -> dict:
    """Sweep *families* x *budgets* over *trace*; returns the report.

    Every cell audits the same sampled prefix, so efficiency numbers
    are directly comparable.  ``dfcm_beats_fcm`` is True when DFCM's
    efficiency exceeds FCM's at *every* matched budget -- the shape
    the paper predicts.
    """
    budgets = list(budgets_kbit or DEFAULT_BUDGETS_KBIT)
    families = list(families or DEFAULT_FAMILIES)
    pcs = trace.pcs[:sample] if sample else trace.pcs
    values = trace.values[:sample] if sample else trace.values
    if not len(pcs):
        raise ValueError(f"trace {trace.name!r} has no records to audit")
    cells: List[dict] = []
    for budget in budgets:
        for family in families:
            cell = _cell(matched_spec(family, budget), pcs, values, engine)
            cell["budget_kbit"] = budget
            cell["family"] = family  # the sweep key, not the spec family
            cells.append(cell)
    comparison = []
    if "fcm" in families and "dfcm" in families:
        by_key = {(c["family"], c["budget_kbit"]): c for c in cells}
        for budget in budgets:
            fcm = by_key[("fcm", budget)]
            dfcm = by_key[("dfcm", budget)]
            comparison.append({
                "budget_kbit": budget,
                "fcm_efficiency": fcm["efficiency"],
                "dfcm_efficiency": dfcm["efficiency"],
                "dfcm_beats_fcm": dfcm["efficiency"] > fcm["efficiency"],
            })
    return {
        "schema": 1,
        "command": "tables",
        "benchmark": trace.name,
        "sampled_records": int(len(pcs)),
        "budgets_kbit": budgets,
        "families": families,
        "cells": cells,
        "comparison": comparison,
        "dfcm_beats_fcm": (all(row["dfcm_beats_fcm"] for row in comparison)
                           if comparison else None),
    }


def render_tables_report(report: dict) -> str:
    """The human-readable report: numeric table, heatmaps, verdict."""
    from repro.harness.ascii_plot import render_heatmap
    from repro.harness.report import format_table
    rows = []
    for cell in report["cells"]:
        rows.append([
            f"{cell['budget_kbit']:g}",
            cell["family"],
            cell["spec"],
            f"{cell['storage_kbit']:g}",
            f"{cell['accuracy']:.4f}",
            f"{cell['live_fraction']:.3f}",
            ("--" if cell["alias_destructive_rate"] is None
             else f"{cell['alias_destructive_rate']:.4f}"),
            f"{cell['efficiency']:.3e}",
        ])
    out = [format_table(
        ["budget", "family", "spec", "Kbit", "accuracy", "live",
         "destr alias", "eff (hits/bit)"],
        rows,
        title=(f"table usage on {report['benchmark']} "
               f"({report['sampled_records']} records)"))]
    col_labels = [f"{b:g}K" for b in report["budgets_kbit"]]
    by_key = {(c["family"], c["budget_kbit"]): c for c in report["cells"]}

    def grid(metric, default=0.0):
        return {
            family: [by_key[(family, budget)].get(metric) or default
                     for budget in report["budgets_kbit"]]
            for family in report["families"]
        }

    out.append("")
    out.append(render_heatmap(grid("occupancy_ratio"), col_labels,
                              title="occupancy (entries used / entries)"))
    out.append("")
    out.append(render_heatmap(grid("alias_destructive_rate"), col_labels,
                              title="destructive aliasing rate"))
    out.append("")
    out.append(render_heatmap(grid("efficiency"), col_labels,
                              title="efficiency (correct per live bit)"))
    if report["dfcm_beats_fcm"] is not None:
        verdict = ("DFCM beats FCM on efficiency at every matched budget"
                   if report["dfcm_beats_fcm"] else
                   "DFCM does NOT beat FCM at every matched budget")
        out.append("")
        out.append(verdict)
    return "\n".join(out) + "\n"
