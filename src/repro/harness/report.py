"""Result containers and text rendering for experiments."""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

__all__ = ["Table", "ExperimentResult", "format_table"]


@dataclass
class Table:
    """One titled table of results."""

    title: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)

    def add(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has "
                f"{len(self.headers)} columns")
        self.rows.append(list(cells))

    def column(self, header: str) -> List[object]:
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def lookup(self, key_header: str, key, value_header: str):
        """Value of *value_header* on the row where *key_header* == key."""
        key_index = self.headers.index(key_header)
        value_index = self.headers.index(value_header)
        for row in self.rows:
            if row[key_index] == key:
                return row[value_index]
        raise KeyError(f"no row with {key_header}={key!r}")

    def render(self) -> str:
        return format_table(self.headers, self.rows, title=self.title)

    def to_csv(self) -> str:
        out = io.StringIO()
        out.write(",".join(str(h) for h in self.headers) + "\n")
        for row in self.rows:
            out.write(",".join(_csv_cell(c) for c in row) + "\n")
        return out.getvalue()


@dataclass
class ExperimentResult:
    """Everything one experiment produced."""

    experiment_id: str
    title: str
    tables: List[Table] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def table(self, title_fragment: str) -> Table:
        for table in self.tables:
            if title_fragment in table.title:
                return table
        raise KeyError(f"no table matching {title_fragment!r} in "
                       f"{self.experiment_id}")

    def render(self) -> str:
        parts = [f"=== {self.experiment_id}: {self.title} ==="]
        for table in self.tables:
            parts.append(table.render())
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n\n".join(parts) + "\n"


def _csv_cell(cell: object) -> str:
    text = f"{cell:.4f}" if isinstance(cell, float) else str(cell)
    return f'"{text}"' if "," in text else text


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned monospace table."""
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.4f}"
        return str(cell)

    texts = [[fmt(c) for c in row] for row in rows]
    widths = [len(str(h)) for h in headers]
    for row in texts:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in texts:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
