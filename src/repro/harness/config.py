"""Harness configuration: trace lengths and the benchmark suite.

The paper simulates 122-157M predictions per benchmark; pure-Python
simulation makes that impractical, so the default is 100k predictions
per benchmark, overridable through the ``REPRO_TRACE_LEN`` environment
variable (the shape-level results are stable from a few tens of
thousands of predictions up).
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.trace.cache import cached_trace
from repro.trace.stats import CacheStats
from repro.trace.trace import ValueTrace
from repro.workloads.registry import SPEC_NAMES

__all__ = ["default_trace_length", "suite_traces", "single_trace"]


def default_trace_length() -> int:
    """Predictions captured per benchmark (REPRO_TRACE_LEN, default 100k)."""
    env = os.environ.get("REPRO_TRACE_LEN")
    if env:
        length = int(env)
        if length <= 0:
            raise ValueError(f"REPRO_TRACE_LEN must be positive, got {length}")
        return length
    return 100_000


def suite_traces(limit: Optional[int] = None,
                 stats: Optional[CacheStats] = None) -> List[ValueTrace]:
    """The eight SPEC-mini traces, in Table 1 order (cached on disk).

    ``stats``, when given, accumulates the cache counters for the whole
    suite load (hits, misses, recaptures, quarantines, bytes, capture
    time); the process-global :func:`repro.trace.stats.cache_stats`
    aggregate is updated either way.
    """
    length = limit if limit is not None else default_trace_length()
    return [cached_trace(name, length, stats=stats) for name in SPEC_NAMES]


def single_trace(name: str, limit: Optional[int] = None,
                 stats: Optional[CacheStats] = None) -> ValueTrace:
    """One benchmark's trace at the configured length."""
    length = limit if limit is not None else default_trace_length()
    return cached_trace(name, length, stats=stats)
