"""Value-pattern taxonomy of a trace (Sazeides & Smith-style analysis).

The paper's argument rests on a taxonomy of per-instruction value
streams: *constant* patterns (last value predictable), *stride*
patterns (last + constant difference), and *context* patterns
(repeating subsequences an FCM can learn).  This module measures, for
every static instruction and for a whole trace, which fraction of its
dynamic values is predictable by an **idealised** (unbounded, per-PC,
interference-free) predictor of each class:

- ``constant``  — idealised last value predictor;
- ``stride``    — idealised stride predictor (last + previous diff);
- ``context``   — idealised order-k FCM: an unbounded per-PC table
  mapping the exact history of the last k values to the value that
  followed it most recently;
- ``residual``  — predicted by none of the above.

Because the predictors are unbounded and private per PC, these numbers
are upper bounds *for private-table predictors of each class*.  A real
predictor can fall short of them (finite tables, aliasing) but can also
exceed them: shared tables let one instruction profit from another's
training (the benign ``l2_pc`` sharing of the paper's Figure 13), and a
differential predictor extrapolates stride patterns to values no
per-class oracle has seen for that PC.  Comparing these bounds with the
measured Figure-10 accuracies quantifies both effects.

The classes overlap (a constant pattern is also a stride pattern with
stride 0 and a trivially learnable context pattern); the summary
reports both the raw per-class hit rates and a disjoint attribution in
priority order constant > stride > context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.core.types import MASK32
from repro.trace.trace import ValueTrace

__all__ = ["PatternBreakdown", "InstructionProfile", "analyze_trace"]


@dataclass(frozen=True)
class PatternBreakdown:
    """Hit counts of the idealised predictor classes over some stream."""

    total: int
    constant_hits: int
    stride_hits: int
    context_hits: int
    disjoint_constant: int
    disjoint_stride: int
    disjoint_context: int

    def rate(self, hits: int) -> float:
        return hits / self.total if self.total else 0.0

    @property
    def constant_rate(self) -> float:
        """Upper bound of any last value predictor on this stream."""
        return self.rate(self.constant_hits)

    @property
    def stride_rate(self) -> float:
        """Upper bound of any stride predictor."""
        return self.rate(self.stride_hits)

    @property
    def context_rate(self) -> float:
        """Upper bound of any order-k FCM (no aliasing, no capacity)."""
        return self.rate(self.context_hits)

    @property
    def residual_rate(self) -> float:
        """Values no idealised class predicts (true novelty)."""
        covered = (self.disjoint_constant + self.disjoint_stride
                   + self.disjoint_context)
        return self.rate(self.total - covered)


@dataclass(frozen=True)
class InstructionProfile:
    """Taxonomy of one static instruction's value stream."""

    pc: int
    breakdown: PatternBreakdown

    @property
    def dominant_class(self) -> str:
        """Disjoint class with the most hits ('residual' if none)."""
        candidates = [
            (self.breakdown.disjoint_constant, "constant"),
            (self.breakdown.disjoint_stride, "stride"),
            (self.breakdown.disjoint_context, "context"),
        ]
        hits, label = max(candidates)
        covered = sum(c for c, _ in candidates)
        if hits == 0 or covered * 2 < self.breakdown.total:
            return "residual"
        return label


class _PerPCState:
    __slots__ = ("last", "prev_diff", "history", "contexts", "count")

    def __init__(self, order: int):
        self.last = None
        self.prev_diff = None
        self.history: Tuple[int, ...] = ()
        self.contexts: Dict[Tuple[int, ...], int] = {}
        self.count = 0


def analyze_trace(trace: ValueTrace, order: int = 3,
                  min_occurrences: int = 1):
    """Per-instruction and whole-trace value-pattern taxonomy.

    Returns ``(profiles, summary)``: a list of
    :class:`InstructionProfile` (PCs with at least *min_occurrences*
    dynamic instances, sorted by dynamic count descending) and the
    pooled :class:`PatternBreakdown`.
    """
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    states: Dict[int, _PerPCState] = {}
    per_pc_counts: Dict[int, List[int]] = {}
    totals = [0, 0, 0, 0, 0, 0, 0]  # parallel to PatternBreakdown fields

    for pc, value in trace.records():
        value &= MASK32
        state = states.get(pc)
        if state is None:
            state = _PerPCState(order)
            states[pc] = state
            per_pc_counts[pc] = [0, 0, 0, 0, 0, 0, 0]
        counts = per_pc_counts[pc]
        state.count += 1
        counts[0] += 1
        totals[0] += 1

        constant_hit = state.last == value
        stride_hit = (
            state.last is not None and state.prev_diff is not None
            and (state.last + state.prev_diff) & MASK32 == value)
        context_hit = (
            len(state.history) == order
            and state.contexts.get(state.history) == value)

        for index, hit in ((1, constant_hit), (2, stride_hit),
                           (3, context_hit)):
            if hit:
                counts[index] += 1
                totals[index] += 1
        if constant_hit:
            disjoint = 4
        elif stride_hit:
            disjoint = 5
        elif context_hit:
            disjoint = 6
        else:
            disjoint = None
        if disjoint is not None:
            counts[disjoint] += 1
            totals[disjoint] += 1

        # Train the idealised predictors.
        if state.last is not None:
            state.prev_diff = (value - state.last) & MASK32
        if len(state.history) == order:
            state.contexts[state.history] = value
        state.history = (state.history + (value,))[-order:]
        state.last = value

    profiles = [
        InstructionProfile(pc, PatternBreakdown(*counts))
        for pc, counts in per_pc_counts.items()
        if counts[0] >= min_occurrences
    ]
    profiles.sort(key=lambda p: p.breakdown.total, reverse=True)
    return profiles, PatternBreakdown(*totals)
