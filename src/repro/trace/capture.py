"""Run workloads on the VM and capture their value traces."""

from __future__ import annotations

import time
from typing import Optional

from repro.lang import compile_to_program
from repro.telemetry import run as _telemetry_run
from repro.telemetry.spans import span
from repro.trace.stats import CacheStats
from repro.trace.trace import ValueTrace
from repro.vm import Machine
from repro.vm.errors import ExecutionLimitExceeded
from repro.workloads.registry import get_workload

__all__ = ["capture_trace", "capture_source"]


def capture_source(name: str, source: str, limit: Optional[int],
                   max_instructions: int = 500_000_000,
                   optimize: int = 0,
                   stats: Optional[CacheStats] = None) -> ValueTrace:
    """Compile MinC *source*, run it, return the value trace.

    ``limit`` bounds the number of captured predictions (the stand-in
    for the paper's 200M-instruction cut-off); None runs to completion.
    ``optimize`` selects the compiler's peephole level (0 or 1).
    ``stats``, when given, accumulates the capture wall-clock time.

    With a telemetry run active the capture is wrapped in a ``capture``
    span and the VM runs with a sampling profile (retired instructions,
    opcode mix, syscall counts, hot PCs) emitted as a ``vm_profile``
    probe; otherwise the VM runs the plain, unhooked loop.
    """
    started = time.perf_counter()
    with span("capture", benchmark=name, limit=limit,
              optimize=optimize) as sp:
        program = compile_to_program(source, optimize=optimize)
        profile = None
        if _telemetry_run.enabled():
            from repro.vm.profile import VMProfile
            profile = VMProfile()
        machine = Machine(program, collect_trace=True, trace_limit=limit,
                          profile=profile)
        try:
            machine.run(max_instructions)
        except ExecutionLimitExceeded:
            # An unfinished but non-empty trace is still a valid sample
            # of the workload, matching the paper's truncated
            # simulations.
            if not machine.trace:
                raise
        if profile is not None:
            from repro.telemetry.probes import record_vm_profile
            record_vm_profile(profile, name)
            sp.set("instructions", machine.instructions_executed)
            sp.set("records", len(machine.trace))
    pcs = [pc for pc, _ in machine.trace]
    values = [value for _, value in machine.trace]
    if stats is not None:
        stats.add("capture_seconds", time.perf_counter() - started)
    return ValueTrace(name, pcs, values)


def capture_trace(name: str, limit: Optional[int] = 100_000,
                  optimize: int = 0) -> ValueTrace:
    """Capture the trace of a registered workload (see the registry)."""
    workload = get_workload(name)
    return capture_source(workload.name, workload.source, limit,
                          optimize=optimize)
