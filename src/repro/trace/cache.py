"""Self-healing on-disk trace cache.

Capturing a 100k-prediction trace takes a couple of seconds of VM time;
the experiment harness re-reads traces dozens of times, so traces are
cached as ``.npz`` under a cache directory (default
``<repo>/.trace_cache``, overridable via ``REPRO_TRACE_CACHE``).  The
cache key hashes the workload source, so editing a workload invalidates
its entries automatically.

Robustness model
----------------
The cache must never be able to poison an experiment run:

- **Reads self-heal.**  A corrupt, truncated, or stale-format entry
  (anything that makes :meth:`ValueTrace.load` raise
  :class:`TraceCacheError`) is quarantined — renamed to ``*.corrupt``
  — and transparently recaptured from the workload source.  Callers of
  :func:`cached_trace` never see the defect.
- **Writes are atomic.**  :meth:`ValueTrace.save` writes to a ``*.tmp``
  sibling and ``os.replace``s it into place, so an interrupted capture
  leaves a stray temp file (ignored, swept by :func:`clear_cache`),
  never a truncated ``.npz``.
- **Entries are versioned and checksummed.**  Each entry stores a
  format-version field and a CRC-32 payload checksum; stale formats and
  bit-flips invalidate cleanly as cache misses.

Every interaction is counted in :class:`CacheStats` (see
:mod:`repro.trace.stats`): the process-global instance via
:func:`repro.trace.stats.cache_stats`, plus any per-call instance the
caller passes.  :func:`verify_cache` sweeps the directory checking
integrity without materialising numpy payloads; :func:`warm_cache`
pre-populates entries; :func:`cache_entries` lists them.
"""

from __future__ import annotations

import hashlib
import io
import os
import time
import zipfile
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.state import quarantine_file
from repro.trace.capture import capture_source
from repro.trace.stats import CacheStats, cache_stats
from repro.trace.trace import FORMAT_VERSION, TraceCacheError, ValueTrace
from repro.workloads.registry import get_workload

__all__ = [
    "cached_trace", "default_cache_dir", "clear_cache", "quarantine_entry",
    "verify_cache", "warm_cache", "cache_entries", "CacheEntry",
    "CacheStats", "cache_stats",
]

#: Required members of a valid cache entry (``np.savez`` adds ``.npy``).
_REQUIRED_MEMBERS = {"name.npy", "pcs.npy", "values.npy",
                     "version.npy", "checksum.npy"}


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_TRACE_CACHE")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / ".trace_cache"


def _cache_key(name: str, source: str, limit: Optional[int],
               optimize: int = 0) -> str:
    digest = hashlib.sha256(source.encode()).hexdigest()[:16]
    suffix = f"-O{optimize}" if optimize else ""
    # 0 is a distinct (degenerate) length, not an alias for "full".
    part = "full" if limit is None else limit
    return f"{name}-{part}-{digest}{suffix}"


def _record(stats: Optional[CacheStats], **deltas) -> None:
    """Bump counters on the global (registry-backed) stats and the
    caller's per-call instance, if any."""
    for target in (cache_stats(), stats):
        if target is None:
            continue
        for key, delta in deltas.items():
            target.add(key, delta)


def quarantine_entry(path: Path) -> Path:
    """Move an unreadable entry aside as ``<name>.corrupt``.

    Keeps the bytes for post-mortem instead of deleting; a later
    quarantine of the same key overwrites the previous one.  Returns
    the quarantine path.  (The same discipline protects predictor
    state arenas — this delegates to the shared helper in
    :mod:`repro.core.state`.)
    """
    return quarantine_file(path)


def cached_trace(name: str, limit: Optional[int] = 100_000,
                 cache_dir: Optional[Path] = None,
                 optimize: int = 0,
                 stats: Optional[CacheStats] = None) -> ValueTrace:
    """Trace of a registered workload, loaded from or saved to the cache.

    An unreadable cached entry is treated as a miss: it is quarantined
    to ``*.corrupt`` and the trace is recaptured from the workload
    source, so this function never raises :class:`TraceCacheError`.
    """
    workload = get_workload(name)
    directory = Path(cache_dir) if cache_dir else default_cache_dir()
    path = directory / (_cache_key(name, workload.source, limit,
                                   optimize) + ".npz")
    if path.exists():
        try:
            size = path.stat().st_size
            trace = ValueTrace.load(path)
            _record(stats, hits=1, bytes_read=size)
            return trace
        except TraceCacheError:
            quarantine_entry(path)
            _record(stats, corrupt_quarantined=1, recaptures=1)
    else:
        _record(stats, misses=1)
    started = time.perf_counter()
    trace = capture_source(workload.name, workload.source, limit,
                           optimize=optimize)
    _record(stats, capture_seconds=time.perf_counter() - started)
    directory.mkdir(parents=True, exist_ok=True)
    trace.save(path)
    _record(stats, bytes_written=path.stat().st_size)
    return trace


def clear_cache(cache_dir: Optional[Path] = None) -> int:
    """Delete every cached trace; returns the number of entries removed.

    Also sweeps quarantined ``*.corrupt`` copies and stray ``*.tmp``
    files from interrupted writes (not counted in the return value).
    """
    directory = Path(cache_dir) if cache_dir else default_cache_dir()
    if not directory.exists():
        return 0
    removed = 0
    for path in directory.glob("*.npz"):
        path.unlink()
        removed += 1
    for pattern in ("*.corrupt", "*.tmp"):
        for path in directory.glob(pattern):
            path.unlink()
    return removed


@dataclass
class CacheEntry:
    """One cache directory entry, as listed by :func:`cache_entries`."""

    path: Path
    benchmark: str
    limit: Optional[int]
    optimize: int
    size: int

    @classmethod
    def from_path(cls, path: Path) -> "CacheEntry":
        stem = path.name[:-len(".npz")]
        parts = stem.split("-")
        optimize = 0
        if parts[-1] in ("O1", "O2"):
            optimize = int(parts.pop()[1:])
        limit: Optional[int] = None
        if len(parts) >= 3 and parts[-2] != "full":
            limit = int(parts[-2])
        benchmark = "-".join(parts[:-2]) if len(parts) >= 3 else stem
        return cls(path=path, benchmark=benchmark, limit=limit,
                   optimize=optimize, size=path.stat().st_size)


def cache_entries(cache_dir: Optional[Path] = None) -> List[CacheEntry]:
    """All ``.npz`` entries in the cache, sorted by filename."""
    directory = Path(cache_dir) if cache_dir else default_cache_dir()
    if not directory.exists():
        return []
    return [CacheEntry.from_path(path)
            for path in sorted(directory.glob("*.npz"))]


def verify_entry(path: Path) -> Optional[str]:
    """Integrity-check one entry without materialising its payload.

    Checks the zip structure, member CRCs (streamed by ``testzip``, no
    numpy parsing), the member set, and the format version.  Returns
    ``None`` when the entry is sound, else a human-readable defect.
    """
    try:
        with zipfile.ZipFile(path) as archive:
            members = set(archive.namelist())
            missing = _REQUIRED_MEMBERS - members
            if missing:
                return f"missing members {sorted(missing)}"
            bad = archive.testzip()
            if bad is not None:
                return f"CRC mismatch in member {bad}"
            version = int(np.load(io.BytesIO(archive.read("version.npy")),
                                  allow_pickle=False))
            if version != FORMAT_VERSION:
                return f"format v{version}, expected v{FORMAT_VERSION}"
    except (zipfile.BadZipFile, OSError, ValueError, EOFError,
            zlib.error) as exc:
        return f"unreadable ({type(exc).__name__}: {exc})"
    return None


@dataclass
class VerifyResult:
    """Outcome of a :func:`verify_cache` sweep."""

    checked: int
    defects: List[Tuple[Path, str]]
    repaired: List[Path]

    @property
    def ok(self) -> bool:
        return not self.defects


def verify_cache(cache_dir: Optional[Path] = None,
                 repair: bool = False,
                 stats: Optional[CacheStats] = None) -> VerifyResult:
    """Re-validate every entry in the cache.

    With ``repair=True``, defective entries are quarantined and — when
    their key still matches a registered workload's current source —
    recaptured in place.  Quarantined-but-unmatchable entries (edited
    workloads, foreign files) are only moved aside; the cache then
    lazily refills on demand.
    """
    directory = Path(cache_dir) if cache_dir else default_cache_dir()
    defects: List[Tuple[Path, str]] = []
    repaired: List[Path] = []
    entries = cache_entries(directory)
    for entry in entries:
        reason = verify_entry(entry.path)
        if reason is None:
            continue
        defects.append((entry.path, reason))
        if not repair:
            continue
        quarantine_entry(entry.path)
        _record(stats, corrupt_quarantined=1)
        if _recapture_entry(entry, directory, stats):
            repaired.append(entry.path)
    return VerifyResult(checked=len(entries), defects=defects,
                        repaired=repaired)


def _recapture_entry(entry: CacheEntry, directory: Path,
                     stats: Optional[CacheStats]) -> bool:
    """Recapture a quarantined entry if its key matches a live workload."""
    try:
        workload = get_workload(entry.benchmark)
    except KeyError:
        return False
    expected = _cache_key(entry.benchmark, workload.source, entry.limit,
                          entry.optimize) + ".npz"
    if expected != entry.path.name:
        return False  # stale key: the workload source has changed
    _record(stats, recaptures=1)
    cached_trace(entry.benchmark, entry.limit, cache_dir=directory,
                 optimize=entry.optimize, stats=stats)
    return True


def warm_cache(names: Sequence[str], limit: Optional[int],
               cache_dir: Optional[Path] = None,
               optimize: int = 0,
               stats: Optional[CacheStats] = None) -> List[ValueTrace]:
    """Pre-populate cache entries for *names* at *limit* predictions."""
    return [cached_trace(name, limit, cache_dir=cache_dir,
                         optimize=optimize, stats=stats)
            for name in names]
