"""On-disk trace cache.

Capturing a 100k-prediction trace takes a couple of seconds of VM time;
the experiment harness re-reads traces dozens of times, so traces are
cached as ``.npz`` under a cache directory (default
``<repo>/.trace_cache``, overridable via ``REPRO_TRACE_CACHE``).  The
cache key hashes the workload source, so editing a workload invalidates
its entries automatically.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Optional

from repro.trace.capture import capture_source
from repro.trace.trace import ValueTrace
from repro.workloads.registry import get_workload

__all__ = ["cached_trace", "default_cache_dir", "clear_cache"]


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_TRACE_CACHE")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / ".trace_cache"


def _cache_key(name: str, source: str, limit: Optional[int],
               optimize: int = 0) -> str:
    digest = hashlib.sha256(source.encode()).hexdigest()[:16]
    suffix = f"-O{optimize}" if optimize else ""
    return f"{name}-{limit or 'full'}-{digest}{suffix}"


def cached_trace(name: str, limit: Optional[int] = 100_000,
                 cache_dir: Optional[Path] = None,
                 optimize: int = 0) -> ValueTrace:
    """Trace of a registered workload, loaded from or saved to the cache."""
    workload = get_workload(name)
    directory = Path(cache_dir) if cache_dir else default_cache_dir()
    path = directory / (_cache_key(name, workload.source, limit,
                                   optimize) + ".npz")
    if path.exists():
        return ValueTrace.load(path)
    trace = capture_source(workload.name, workload.source, limit,
                           optimize=optimize)
    directory.mkdir(parents=True, exist_ok=True)
    trace.save(path)
    return trace


def clear_cache(cache_dir: Optional[Path] = None) -> int:
    """Delete every cached trace; returns the number removed."""
    directory = Path(cache_dir) if cache_dir else default_cache_dir()
    if not directory.exists():
        return 0
    removed = 0
    for path in directory.glob("*.npz"):
        path.unlink()
        removed += 1
    return removed
