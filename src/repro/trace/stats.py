"""Cache observability: the counter set behind the trace cache.

Every cache interaction (``cached_trace``, ``suite_traces``, the
``repro cache`` CLI) is accounted twice: into the caller's optional
per-call :class:`CacheStats` instance, and into the process-wide
telemetry registry (:mod:`repro.telemetry.registry`) under the
``repro_cache_*`` metric family -- so cache traffic shows up in
``repro telemetry summary`` and the Prometheus export next to every
other metric, with no second code path.

:func:`cache_stats` keeps its historical shape: it returns a live
*view* (:class:`RegistryCacheStats`) whose attributes read the registry
counters, so ``cache_stats().hits`` and ``cache_stats().render()``
behave exactly as the old global dataclass did.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["CacheStats", "RegistryCacheStats", "cache_stats",
           "reset_cache_stats"]

#: CacheStats field -> registry metric backing the global aggregate.
_METRIC_NAMES = {
    "hits": "repro_cache_hits_total",
    "misses": "repro_cache_misses_total",
    "recaptures": "repro_cache_recaptures_total",
    "corrupt_quarantined": "repro_cache_corrupt_quarantined_total",
    "bytes_read": "repro_cache_read_bytes_total",
    "bytes_written": "repro_cache_written_bytes_total",
    "capture_seconds": "repro_cache_capture_seconds_total",
}

_METRIC_HELP = {
    "hits": "Cache entries served from a valid on-disk .npz",
    "misses": "Cache entries absent from the cache (captured fresh)",
    "recaptures": "Entries recaptured because the on-disk copy was "
                  "unreadable",
    "corrupt_quarantined": "Unreadable entries moved aside to *.corrupt",
    "bytes_read": "Payload bytes read from the trace cache",
    "bytes_written": "Payload bytes written to the trace cache",
    "capture_seconds": "Wall-clock seconds spent running workloads on "
                       "the VM",
}


@dataclass
class CacheStats:
    """Counters for one or more trace-cache interactions.

    Attributes
    ----------
    hits:
        Entries served from a valid on-disk ``.npz``.
    misses:
        Entries absent from the cache (captured fresh).
    recaptures:
        Entries recaptured because the on-disk copy was unreadable.
    corrupt_quarantined:
        Unreadable entries moved aside to ``*.corrupt``.
    bytes_read / bytes_written:
        Payload traffic between the cache and disk.
    capture_seconds:
        Wall-clock time spent running workloads on the VM.
    """

    hits: int = 0
    misses: int = 0
    recaptures: int = 0
    corrupt_quarantined: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    capture_seconds: float = 0.0

    def add(self, name: str, delta) -> None:
        """Bump one counter by *delta* (the cache layer's entry point)."""
        setattr(self, name, getattr(self, name) + delta)

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Add *other*'s counters into this instance (returns self)."""
        for f in fields(CacheStats):
            self.add(f.name, getattr(other, f.name))
        return self

    def reset(self) -> None:
        for f in fields(CacheStats):
            setattr(self, f.name, f.default)

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name)
                for f in fields(CacheStats)}

    def render(self) -> str:
        """One-line human-readable summary."""
        return (f"hits={self.hits} misses={self.misses} "
                f"recaptures={self.recaptures} "
                f"corrupt_quarantined={self.corrupt_quarantined} "
                f"bytes_read={self.bytes_read} "
                f"bytes_written={self.bytes_written} "
                f"capture_seconds={self.capture_seconds:.2f}")


def _registry_counter(field_name: str):
    from repro.telemetry.registry import registry
    return registry().counter(_METRIC_NAMES[field_name],
                              _METRIC_HELP[field_name])


class RegistryCacheStats(CacheStats):
    """The process-global aggregate as a live registry view.

    Subclasses :class:`CacheStats` for interface compatibility but
    stores nothing itself: attribute reads pull the current
    ``repro_cache_*`` counter values, :meth:`add` increments them, and
    :meth:`reset` zeroes them.  ``capture_seconds`` keeps its float
    precision; the other counters read back as ints, as before.
    """

    def __init__(self):  # no per-instance state; the registry holds it
        pass

    def __getattribute__(self, name):
        if name in _METRIC_NAMES:
            value = _registry_counter(name).value()
            return value if name == "capture_seconds" else int(value)
        return object.__getattribute__(self, name)

    def __setattr__(self, name, value):
        if name in _METRIC_NAMES:
            raise AttributeError(
                f"the global cache stats are registry-backed; use "
                f".add({name!r}, delta) or reset_cache_stats()")
        object.__setattr__(self, name, value)

    def add(self, name: str, delta) -> None:
        if name not in _METRIC_NAMES:
            raise AttributeError(f"unknown cache counter {name!r}")
        _registry_counter(name).inc(delta)

    def reset(self) -> None:
        from repro.telemetry.registry import registry
        for metric_name in _METRIC_NAMES.values():
            registry().reset(metric_name)


#: Process-wide aggregate: a view over the telemetry registry.
_GLOBAL_STATS = RegistryCacheStats()


def cache_stats() -> CacheStats:
    """The process-global cache counters (registry-backed view)."""
    return _GLOBAL_STATS


def reset_cache_stats() -> None:
    """Zero the process-global cache counters."""
    _GLOBAL_STATS.reset()
