"""Cache observability: the counter set behind the trace cache.

Every cache interaction (``cached_trace``, ``suite_traces``, the
``repro cache`` CLI) is accounted against a :class:`CacheStats`
instance, so an experiment run can report how much of its input came
from disk, how much was recaptured, and whether any entries had to be
quarantined.  A process-global instance aggregates across all call
sites; callers that want per-run numbers pass their own instance.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["CacheStats", "cache_stats", "reset_cache_stats"]


@dataclass
class CacheStats:
    """Counters for one or more trace-cache interactions.

    Attributes
    ----------
    hits:
        Entries served from a valid on-disk ``.npz``.
    misses:
        Entries absent from the cache (captured fresh).
    recaptures:
        Entries recaptured because the on-disk copy was unreadable.
    corrupt_quarantined:
        Unreadable entries moved aside to ``*.corrupt``.
    bytes_read / bytes_written:
        Payload traffic between the cache and disk.
    capture_seconds:
        Wall-clock time spent running workloads on the VM.
    """

    hits: int = 0
    misses: int = 0
    recaptures: int = 0
    corrupt_quarantined: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    capture_seconds: float = 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Add *other*'s counters into this instance (returns self)."""
        for f in fields(self):
            setattr(self, f.name,
                    getattr(self, f.name) + getattr(other, f.name))
        return self

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, f.default)

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def render(self) -> str:
        """One-line human-readable summary."""
        return (f"hits={self.hits} misses={self.misses} "
                f"recaptures={self.recaptures} "
                f"corrupt_quarantined={self.corrupt_quarantined} "
                f"bytes_read={self.bytes_read} "
                f"bytes_written={self.bytes_written} "
                f"capture_seconds={self.capture_seconds:.2f}")


#: Process-wide aggregate, updated by every cache interaction.
_GLOBAL_STATS = CacheStats()


def cache_stats() -> CacheStats:
    """The process-global cache counters."""
    return _GLOBAL_STATS


def reset_cache_stats() -> None:
    """Zero the process-global cache counters."""
    _GLOBAL_STATS.reset()
