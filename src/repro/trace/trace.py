"""The value trace container.

A trace is the dynamic stream of predicted instructions: per retired
integer-register-producing, non-branch instruction, its PC and the
32-bit value it wrote.  Stored as parallel numpy arrays for compactness
and fast disk round-trips; the measurement loops consume plain Python
lists (scalar indexing on lists is considerably faster than on numpy
arrays), produced once by :meth:`ValueTrace.records`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

__all__ = ["ValueTrace"]


@dataclass
class TraceStats:
    """Summary statistics of a trace (the Table 1 style numbers)."""

    predictions: int
    static_instructions: int
    distinct_values: int


class ValueTrace:
    """An immutable (pc, value) stream with a name.

    Parameters
    ----------
    name:
        Benchmark name ('li', 'compress', ...).
    pcs, values:
        Parallel sequences; PCs are 4-byte aligned instruction
        addresses, values the produced 32-bit words.  Both are stored
        as ``uint32``.
    """

    def __init__(self, name: str, pcs: Sequence[int], values: Sequence[int]):
        pcs_arr = np.asarray(pcs, dtype=np.int64).astype(np.uint32)
        values_arr = np.asarray(values, dtype=np.int64).astype(np.uint32)
        if pcs_arr.shape != values_arr.shape:
            raise ValueError(
                f"pcs and values lengths differ: {pcs_arr.shape} vs "
                f"{values_arr.shape}")
        if pcs_arr.ndim != 1:
            raise ValueError("a trace is one-dimensional")
        self.name = name
        self.pcs = pcs_arr
        self.values = values_arr
        self._records: List[Tuple[int, int]] | None = None

    def __len__(self) -> int:
        return int(self.pcs.shape[0])

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return iter(self.records())

    def records(self) -> List[Tuple[int, int]]:
        """The trace as a list of (pc, value) int pairs (cached)."""
        if self._records is None:
            self._records = list(zip(self.pcs.tolist(), self.values.tolist()))
        return self._records

    def head(self, n: int) -> "ValueTrace":
        """A trace of the first *n* records (shares the name)."""
        return ValueTrace(self.name, self.pcs[:n], self.values[:n])

    def stats(self) -> TraceStats:
        """Prediction count, static instruction count, distinct values."""
        return TraceStats(
            predictions=len(self),
            static_instructions=int(np.unique(self.pcs).shape[0]),
            distinct_values=int(np.unique(self.values).shape[0]),
        )

    @classmethod
    def from_records(cls, name: str,
                     records: Iterable[Tuple[int, int]]) -> "ValueTrace":
        """Build a trace from an iterable of (pc, value) pairs."""
        pcs: List[int] = []
        values: List[int] = []
        for pc, value in records:
            pcs.append(pc & 0xFFFFFFFF)
            values.append(value & 0xFFFFFFFF)
        return cls(name, pcs, values)

    def save(self, path) -> None:
        """Write the trace to an ``.npz`` file."""
        np.savez_compressed(path, name=np.array(self.name),
                            pcs=self.pcs, values=self.values)

    @classmethod
    def load(cls, path) -> "ValueTrace":
        """Read a trace written by :meth:`save`."""
        with np.load(path, allow_pickle=False) as data:
            return cls(str(data["name"]), data["pcs"], data["values"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ValueTrace({self.name!r}, {len(self)} predictions)"
