"""The value trace container.

A trace is the dynamic stream of predicted instructions: per retired
integer-register-producing, non-branch instruction, its PC and the
32-bit value it wrote.  Stored as parallel numpy arrays for compactness
and fast disk round-trips; the measurement loops consume plain Python
lists (scalar indexing on lists is considerably faster than on numpy
arrays), produced once by :meth:`ValueTrace.records`.
"""

from __future__ import annotations

import os
import zipfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

__all__ = ["ValueTrace", "TraceCacheError", "FORMAT_VERSION"]

#: On-disk ``.npz`` format version.  Bump when the member set or their
#: semantics change; loaders reject any other version so stale entries
#: invalidate cleanly instead of being silently misread.
FORMAT_VERSION = 2


class TraceCacheError(Exception):
    """A stored trace is unreadable: corrupt, truncated, or stale.

    Raised by :meth:`ValueTrace.load` instead of leaking ``zipfile``/
    ``KeyError``/numpy internals; the cache layer treats it as a miss
    and recaptures.
    """


def payload_checksum(pcs: np.ndarray, values: np.ndarray) -> int:
    """CRC-32 over both payload arrays (order: pcs, then values)."""
    return zlib.crc32(values.tobytes(), zlib.crc32(pcs.tobytes())) & 0xFFFFFFFF


@dataclass
class TraceStats:
    """Summary statistics of a trace (the Table 1 style numbers)."""

    predictions: int
    static_instructions: int
    distinct_values: int


class ValueTrace:
    """An immutable (pc, value) stream with a name.

    Parameters
    ----------
    name:
        Benchmark name ('li', 'compress', ...).
    pcs, values:
        Parallel sequences; PCs are 4-byte aligned instruction
        addresses, values the produced 32-bit words.  Both are stored
        as ``uint32``.
    """

    def __init__(self, name: str, pcs: Sequence[int], values: Sequence[int]):
        pcs_arr = np.asarray(pcs, dtype=np.int64).astype(np.uint32)
        values_arr = np.asarray(values, dtype=np.int64).astype(np.uint32)
        if pcs_arr.shape != values_arr.shape:
            raise ValueError(
                f"pcs and values lengths differ: {pcs_arr.shape} vs "
                f"{values_arr.shape}")
        if pcs_arr.ndim != 1:
            raise ValueError("a trace is one-dimensional")
        self.name = name
        self.pcs = pcs_arr
        self.values = values_arr
        self._records: List[Tuple[int, int]] | None = None

    def __len__(self) -> int:
        return int(self.pcs.shape[0])

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return iter(self.records())

    def records(self) -> List[Tuple[int, int]]:
        """The trace as a list of (pc, value) int pairs (cached)."""
        if self._records is None:
            self._records = list(zip(self.pcs.tolist(), self.values.tolist()))
        return self._records

    def head(self, n: int) -> "ValueTrace":
        """A trace of the first *n* records (shares the name)."""
        return ValueTrace(self.name, self.pcs[:n], self.values[:n])

    def stats(self) -> TraceStats:
        """Prediction count, static instruction count, distinct values."""
        return TraceStats(
            predictions=len(self),
            static_instructions=int(np.unique(self.pcs).shape[0]),
            distinct_values=int(np.unique(self.values).shape[0]),
        )

    @classmethod
    def from_records(cls, name: str,
                     records: Iterable[Tuple[int, int]]) -> "ValueTrace":
        """Build a trace from an iterable of (pc, value) pairs."""
        pcs: List[int] = []
        values: List[int] = []
        for pc, value in records:
            pcs.append(pc & 0xFFFFFFFF)
            values.append(value & 0xFFFFFFFF)
        return cls(name, pcs, values)

    def save(self, path) -> None:
        """Write the trace to an ``.npz`` file, atomically.

        The payload goes to a ``*.tmp`` sibling first and is
        ``os.replace``d into place, so an interrupted write leaves at
        worst a stray temp file, never a truncated ``.npz``.  Entries
        carry a format version and a CRC-32 payload checksum (see
        :meth:`load`).
        """
        path = Path(path)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            with open(tmp, "wb") as handle:
                np.savez_compressed(
                    handle,
                    name=np.array(self.name),
                    pcs=self.pcs,
                    values=self.values,
                    version=np.array(FORMAT_VERSION, dtype=np.uint32),
                    checksum=np.array(payload_checksum(self.pcs, self.values),
                                      dtype=np.uint32))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    @classmethod
    def load(cls, path) -> "ValueTrace":
        """Read a trace written by :meth:`save`, validating it.

        Raises :class:`TraceCacheError` on any defect — unreadable zip,
        missing members, wrong format version, bad array shape/dtype,
        or checksum mismatch — so callers never see ``zipfile``/numpy
        internals.
        """
        try:
            with np.load(path, allow_pickle=False) as data:
                members = set(data.files)
                missing = ({"name", "pcs", "values", "version", "checksum"}
                           - members)
                if missing:
                    if {"name", "pcs", "values"} <= members:
                        raise TraceCacheError(
                            f"{path}: unversioned (pre-v{FORMAT_VERSION}) "
                            "trace entry")
                    raise TraceCacheError(
                        f"{path}: missing members {sorted(missing)}")
                version = int(data["version"])
                if version != FORMAT_VERSION:
                    raise TraceCacheError(
                        f"{path}: format v{version}, "
                        f"expected v{FORMAT_VERSION}")
                name, pcs, values = data["name"], data["pcs"], data["values"]
                if pcs.ndim != 1 or values.ndim != 1:
                    raise TraceCacheError(
                        f"{path}: trace arrays must be one-dimensional")
                if pcs.shape != values.shape:
                    raise TraceCacheError(
                        f"{path}: pcs/values length mismatch "
                        f"({pcs.shape[0]} vs {values.shape[0]})")
                if pcs.dtype != np.uint32 or values.dtype != np.uint32:
                    raise TraceCacheError(
                        f"{path}: trace arrays must be uint32, got "
                        f"{pcs.dtype}/{values.dtype}")
                stored = int(data["checksum"])
                actual = payload_checksum(pcs, values)
                if stored != actual:
                    raise TraceCacheError(
                        f"{path}: payload checksum mismatch "
                        f"(stored {stored:#010x}, actual {actual:#010x})")
                return cls(str(name), pcs, values)
        except TraceCacheError:
            raise
        except (zipfile.BadZipFile, KeyError, ValueError, OSError,
                EOFError, zlib.error) as exc:
            raise TraceCacheError(f"{path}: unreadable trace "
                                  f"({type(exc).__name__}: {exc})") from exc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ValueTrace({self.name!r}, {len(self)} predictions)"
