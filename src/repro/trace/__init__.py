"""Value traces: the (PC, produced value) streams predictors consume."""

from repro.trace.trace import ValueTrace

__all__ = ["ValueTrace"]
