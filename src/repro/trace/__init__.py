"""Value traces: the (PC, produced value) streams predictors consume."""

from repro.trace.stats import CacheStats, cache_stats, reset_cache_stats
from repro.trace.trace import TraceCacheError, ValueTrace

__all__ = ["ValueTrace", "TraceCacheError", "CacheStats", "cache_stats",
           "reset_cache_stats"]
