"""Common constants and small helpers shared by all predictors.

All predicted values are 32-bit machine words, matching the paper's
SimpleScalar/MIPS setting ("Only integer instructions that produce an
integer register value are predicted").  Words are handled as unsigned
Python integers in ``[0, 2**32)``; differences (strides) are the same
words interpreted modulo 2**32, so ``(last + stride) & MASK32``
reproduces two's-complement wrap-around exactly.
"""

MASK32 = 0xFFFFFFFF
WORD_BITS = 32


def to_u32(value: int) -> int:
    """Reduce an arbitrary Python integer to its 32-bit unsigned image."""
    return value & MASK32


def to_s32(value: int) -> int:
    """Interpret a 32-bit unsigned word as a signed two's-complement int."""
    value &= MASK32
    return value - 0x100000000 if value >= 0x80000000 else value


def is_power_of_two(n: int) -> bool:
    """True for 1, 2, 4, 8, ...; False for zero, negatives and non-powers."""
    return n > 0 and (n & (n - 1)) == 0


def require_power_of_two(n: int, what: str) -> None:
    """Raise ``ValueError`` unless *n* is a power of two.

    Table sizes must be powers of two so that masking replaces the
    modulo in the hot prediction loop, exactly as in a hardware table.
    """
    if not is_power_of_two(n):
        raise ValueError(f"{what} must be a power of two, got {n}")
