"""Aliasing taxonomy for two-level context predictors (paper section 4.2).

The analyzer itself lives in :mod:`repro.telemetry.tables` with the
rest of the table-usage accounting (see :class:`TableUsageAuditor`);
this module re-exports the historical public API unchanged.
"""

from __future__ import annotations

from repro.telemetry.tables import (ALIAS_CATEGORIES, AliasReport,
                                    AliasingAnalyzer)

__all__ = ["ALIAS_CATEGORIES", "AliasReport", "AliasingAnalyzer"]
