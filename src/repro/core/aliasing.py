"""Aliasing taxonomy for two-level context predictors (paper section 4.2).

Every prediction made by an (D)FCM is classified into one of five
categories; *only the first rule that applies is counted*, in this
order:

``l1``
    Some value recorded in the history now used to access the level-2
    table was produced by a *different* static instruction (level-1
    table conflict).
``hash``
    The complete (unhashed) history recorded beside the level-2 entry
    at its last update differs from the instruction's actual current
    history: two different histories collided on the same level-2 index.
``l2_priv``
    A private (per-level-1-entry) level-2 table would have produced a
    different prediction than the shared global one.
``l2_pc``
    The level-2 entry was last updated by a different static
    instruction (the histories match, the sharing is between
    instructions).
``none``
    No aliasing detected.

The classification needs shadow state a real predictor would not keep
(complete histories, producer PCs, private tables); the analyzer
maintains it alongside an unmodified :class:`FCMPredictor` or
:class:`DFCMPredictor`, whose predictions it reports on.  A level-2
entry that was never updated matches nothing: its recorded history is
taken as absent, so a non-empty current history lands in ``hash`` (the
prediction is based on state the instruction never trained).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple, Union

from repro.core.dfcm import DFCMPredictor
from repro.core.fcm import FCMPredictor
from repro.core.types import MASK32

__all__ = ["ALIAS_CATEGORIES", "AliasReport", "AliasingAnalyzer"]

ALIAS_CATEGORIES = ("l1", "hash", "l2_priv", "l2_pc", "none")


@dataclass
class AliasReport:
    """Per-category prediction counts for one predictor on one trace."""

    total: Dict[str, int] = field(
        default_factory=lambda: {c: 0 for c in ALIAS_CATEGORIES})
    correct: Dict[str, int] = field(
        default_factory=lambda: {c: 0 for c in ALIAS_CATEGORIES})

    def record(self, category: str, was_correct: bool) -> None:
        self.total[category] += 1
        if was_correct:
            self.correct[category] += 1

    @property
    def predictions(self) -> int:
        """Total number of classified predictions."""
        return sum(self.total.values())

    def wrong(self, category: str) -> int:
        return self.total[category] - self.correct[category]

    def fraction_of_predictions(self, category: str) -> float:
        """Share of all predictions in *category* (Figure 13)."""
        n = self.predictions
        return self.total[category] / n if n else 0.0

    def accuracy(self, category: str) -> float:
        """Prediction accuracy within *category* (Figure 12)."""
        n = self.total[category]
        return self.correct[category] / n if n else 0.0

    def misprediction_fraction(self, category: str) -> float:
        """Mispredictions in *category* as a share of all predictions
        (Figure 14; the per-benchmark bars stack to the global
        misprediction rate)."""
        n = self.predictions
        return self.wrong(category) / n if n else 0.0

    def overall_accuracy(self) -> float:
        n = self.predictions
        return sum(self.correct.values()) / n if n else 0.0

    def merged_with(self, other: "AliasReport") -> "AliasReport":
        """Pooled report (used for the paper's 'avg' bars)."""
        merged = AliasReport()
        for category in ALIAS_CATEGORIES:
            merged.total[category] = self.total[category] + other.total[category]
            merged.correct[category] = (
                self.correct[category] + other.correct[category])
        return merged


class AliasingAnalyzer:
    """Classify every prediction of an (D)FCM into the alias taxonomy.

    Parameters
    ----------
    predictor:
        A fresh :class:`FCMPredictor` or :class:`DFCMPredictor`.  The
        analyzer drives it; do not update it externally.
    """

    def __init__(self, predictor: Union[FCMPredictor, DFCMPredictor]):
        if not isinstance(predictor, (FCMPredictor, DFCMPredictor)):
            raise TypeError(
                "AliasingAnalyzer instruments FCMPredictor or DFCMPredictor, "
                f"got {type(predictor).__name__}")
        self.predictor = predictor
        self.differential = isinstance(predictor, DFCMPredictor)
        order = predictor.order
        # Shadow level-1: per entry, the last `order` (producer_pc,
        # history element) pairs actually recorded.
        self._shadow_l1 = [deque(maxlen=order) for _ in range(predictor.l1_entries)]
        # Shadow level-2: per entry, the unhashed history stored at the
        # last update (None = never updated) and the updater's PC.
        self._l2_history = [None] * predictor.l2_entries
        self._l2_pc = [None] * predictor.l2_entries
        # Private level-2 tables, one dict per level-1 entry.
        self._private: list = [dict() for _ in range(predictor.l1_entries)]

    def _payload(self, l2_index: int) -> int:
        """Current level-2 payload (value for FCM, stride for DFCM)."""
        return self.predictor._l2[l2_index]

    def classify(self, pc: int) -> str:
        """Alias category the *next* prediction for *pc* falls into."""
        p = self.predictor
        l1_index = p.l1_index(pc)
        l2_index = p.l2_index(pc)
        recorded = self._shadow_l1[l1_index]
        if any(producer != pc for producer, _ in recorded):
            return "l1"
        current_history = tuple(element for _, element in recorded)
        if self._l2_history[l2_index] != current_history:
            return "hash"
        private_payload = self._private[l1_index].get(l2_index, 0)
        if private_payload != self._payload(l2_index):
            return "l2_priv"
        if self._l2_pc[l2_index] != pc:
            return "l2_pc"
        return "none"

    def step(self, pc: int, value: int) -> Tuple[bool, str]:
        """Predict+classify+update for one trace record."""
        value &= MASK32
        p = self.predictor
        category = self.classify(pc)
        correct = p.predict(pc) == value

        # Shadow bookkeeping mirrors the real update: the level-2 entry
        # indexed by the OLD history receives the new payload; the
        # history then grows by one element.
        l1_index = p.l1_index(pc)
        l2_index = p.l2_index(pc)
        old_history = tuple(e for _, e in self._shadow_l1[l1_index])
        if self.differential:
            stride = (value - p.last_value(pc)) & MASK32
            element = stride
            payload = p._store_stride(stride)
        else:
            element = value
            payload = value
        self._l2_history[l2_index] = old_history
        self._l2_pc[l2_index] = pc
        self._private[l1_index][l2_index] = payload
        self._shadow_l1[l1_index].append((pc, element))

        p.update(pc, value)
        return correct, category

    def run(self, records: Iterable[Tuple[int, int]]) -> AliasReport:
        """Classify a whole (pc, value) stream; returns the report."""
        report = AliasReport()
        for pc, value in records:
            correct, category = self.step(pc, value)
            report.record(category, correct)
        return report
