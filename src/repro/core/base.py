"""The common interface of all value predictors.

A value predictor sees the dynamic stream of (PC, produced value) pairs
of the predicted instructions, in program order.  For each instruction
it first issues a prediction from its current tables (:meth:`predict`),
then -- once the actual outcome is known -- trains on it
(:meth:`update`).  :meth:`step` fuses the two and reports whether the
prediction was correct; the measurement harness drives predictors
exclusively through ``step`` so that oracle predictors (the paper's
perfect-meta hybrids) can override it.

PC indexing: instructions are 4-byte aligned, so table indices are taken
from ``pc >> 2`` (dropping the always-zero low bits), masked to the
table size.  This mirrors how a hardware table would be wired and
matches SimpleScalar's word-aligned PCs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.types import MASK32

__all__ = ["ValuePredictor"]


class ValuePredictor(ABC):
    """Abstract base class for value predictors.

    Subclasses implement :meth:`predict`, :meth:`update` and
    :meth:`storage_bits`; they should also set :attr:`name` to a short
    identifier used in reports.
    """

    name: str = "predictor"
    #: Declarative twin (:class:`repro.core.spec.PredictorSpec`) set by
    #: representable configurations; ``None`` means scalar-only.
    spec = None

    @abstractmethod
    def predict(self, pc: int) -> int:
        """Predicted 32-bit value for the instruction at *pc*."""

    @abstractmethod
    def update(self, pc: int, value: int) -> None:
        """Train on the actual *value* produced by the instruction at *pc*."""

    @abstractmethod
    def storage_bits(self) -> int:
        """Total predictor state in bits (the Kbit axis of Figures 3/11)."""

    def step(self, pc: int, value: int) -> bool:
        """Predict, then update; True when the prediction was correct."""
        correct = self.predict(pc) == (value & MASK32)
        self.update(pc, value)
        return correct

    def storage_kbit(self) -> float:
        """Storage in Kbit (1 Kbit = 1024 bits), the unit of the paper."""
        return self.storage_bits() / 1024.0

    @staticmethod
    def _pc_index(pc: int, mask: int) -> int:
        """Direct-mapped table index for a 4-byte-aligned PC."""
        return (pc >> 2) & mask

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
