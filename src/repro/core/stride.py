"""Stride predictors, paper section 2.2.

Two variants are provided:

- :class:`StridePredictor` -- the paper's own variant: one stride per
  entry, guarded by a saturating confidence counter (3-bit, +1 on a
  correct prediction, -2 on a wrong one); the stride is replaced only
  while the counter is *below* its maximum.  "The saturating counter is
  usually already present to track the confidence, so no additional
  storage is needed" -- our storage model therefore counts last value +
  stride + counter bits and documents the choice.

- :class:`TwoDeltaStridePredictor` -- Eickemeyer & Vassiliadis'
  two-delta method: tracks strides s1 (used for prediction) and s2
  (candidate); s1 is overwritten only when the same new stride is seen
  twice in a row, so a loop-control reset costs a single misprediction.
"""

from __future__ import annotations

from repro.core.base import ValuePredictor
from repro.core.confidence import CounterBank
from repro.core.spec import StrideSpec, TwoDeltaStrideSpec
from repro.core.types import MASK32

__all__ = ["StridePredictor", "TwoDeltaStridePredictor"]


class StridePredictor(ValuePredictor):
    """Confidence-gated stride predictor (the paper's section 2.2 variant).

    Per entry: last value, stride, and a saturating counter.  The
    prediction is ``last + stride``.  On update the counter records
    whether that prediction was right; the stride is replaced by the
    newly observed difference whenever the counter is not saturated, so
    an established stride (counter pinned at max) survives one-off
    disturbances.

    Parameters
    ----------
    entries:
        Table size (power of two).
    counter_bits, counter_inc, counter_dec:
        Confidence counter shape; defaults reproduce the paper
        (3 bits, +1 correct, -2 wrong, replace while < 7).
    """

    def __init__(self, entries: int, counter_bits: int = 3,
                 counter_inc: int = 1, counter_dec: int = 2):
        self.spec = StrideSpec(entries, counter_bits, counter_inc,
                               counter_dec)  # validates entries
        self.entries = entries
        self._mask = entries - 1
        self._last = [0] * entries
        self._stride = [0] * entries
        self._conf = CounterBank(entries, counter_bits, counter_inc, counter_dec)
        self.name = self.spec.name

    def predict(self, pc: int) -> int:
        index = (pc >> 2) & self._mask
        return (self._last[index] + self._stride[index]) & MASK32

    def update(self, pc: int, value: int) -> None:
        index = (pc >> 2) & self._mask
        value &= MASK32
        last = self._last[index]
        correct = ((last + self._stride[index]) & MASK32) == value
        # The gate uses the counter value *before* this outcome: a
        # saturated counter shields the established stride from a
        # single disturbance (one loop reset costs one misprediction,
        # the property the paper borrows from the two-delta method).
        replace = self._conf[index] < self._conf.maximum
        self._conf.record(index, correct)
        if replace:
            self._stride[index] = (value - last) & MASK32
        self._last[index] = value

    def storage_bits(self) -> int:
        """last (32) + stride (32) + confidence counter bits per entry."""
        return self.spec.storage_bits()


class TwoDeltaStridePredictor(ValuePredictor):
    """The two-delta stride method (Eickemeyer & Vassiliadis).

    Per entry: last value and two strides.  ``s1`` drives the
    prediction; a freshly observed stride is always written to ``s2``,
    and promoted to ``s1`` only when it equals the previous ``s2`` --
    i.e. when the same stride occurred twice in a row.
    """

    def __init__(self, entries: int):
        self.spec = TwoDeltaStrideSpec(entries)  # validates entries
        self.entries = entries
        self._mask = entries - 1
        self._last = [0] * entries
        self._s1 = [0] * entries
        self._s2 = [0] * entries
        self.name = self.spec.name

    def predict(self, pc: int) -> int:
        index = (pc >> 2) & self._mask
        return (self._last[index] + self._s1[index]) & MASK32

    def update(self, pc: int, value: int) -> None:
        index = (pc >> 2) & self._mask
        value &= MASK32
        new_stride = (value - self._last[index]) & MASK32
        if new_stride == self._s2[index]:
            self._s1[index] = new_stride
        self._s2[index] = new_stride
        self._last[index] = value

    def storage_bits(self) -> int:
        """last (32) + s1 (32) + s2 (32) per entry."""
        return self.spec.storage_bits()
