"""Hybrid predictors, paper section 4.3.

Two meta-prediction strategies over a bank of component predictors:

- :class:`OracleHybridPredictor` -- the paper's *perfect
  meta-predictor*: it "always knows which predictor is right", so a
  hybrid step counts as correct whenever *any* component predicted the
  value.  This upper-bounds every realisable selection scheme and is
  what Figure 16's STRIDE+FCM / STRIDE+DFCM curves use.

- :class:`MetaHybridPredictor` -- a realisable hybrid: a PC-indexed
  bank of saturating counters per component; the component with the
  highest counter (ties to the earliest listed) provides the
  prediction, and every component's counter is trained on whether that
  component was right.

Component predictors keep their own tables and are updated with every
outcome, exactly as in Figure 15.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.base import ValuePredictor
from repro.core.confidence import CounterBank
from repro.core.spec import MetaHybridSpec, OracleHybridSpec, spec_of
from repro.core.types import MASK32, require_power_of_two


def _component_specs(components):
    """Specs of all components, or ``None`` if any lacks one."""
    specs = [spec_of(c) for c in components]
    return tuple(specs) if all(s is not None for s in specs) else None

__all__ = ["OracleHybridPredictor", "MetaHybridPredictor"]


class OracleHybridPredictor(ValuePredictor):
    """Hybrid with a perfect meta-predictor (paper Figure 16).

    ``step`` is the primary interface: the oracle needs the actual
    value to pick the right component.  ``predict`` (needed for the
    generic interface, e.g. under a delayed-update wrapper) returns the
    first component's prediction and is *not* what the accuracy
    numbers are based on.
    """

    def __init__(self, components: Sequence[ValuePredictor], name: str | None = None):
        if not components:
            raise ValueError("a hybrid needs at least one component")
        self.components = list(components)
        specs = _component_specs(self.components)
        self.spec = (OracleHybridSpec(specs, label=name)
                     if specs is not None else None)
        self.name = name or "+".join(c.name for c in self.components)

    def predict(self, pc: int) -> int:
        return self.components[0].predict(pc)

    def update(self, pc: int, value: int) -> None:
        for component in self.components:
            component.update(pc, value)

    def step(self, pc: int, value: int) -> bool:
        value &= MASK32
        correct = False
        for component in self.components:
            if component.predict(pc) == value:
                correct = True
                break
        self.update(pc, value)
        return correct

    def storage_bits(self) -> int:
        """Sum of the components (the oracle itself is free, by definition)."""
        return sum(c.storage_bits() for c in self.components)


class MetaHybridPredictor(ValuePredictor):
    """Hybrid with a realisable saturating-counter meta-predictor.

    Parameters
    ----------
    components:
        Component predictors; on a counter tie the earliest listed wins,
        so list the preferred fallback first.
    meta_entries:
        Size of the PC-indexed meta table (power of two).
    counter_bits, counter_inc, counter_dec:
        Shape of the per-component selection counters.
    """

    def __init__(self, components: Sequence[ValuePredictor], meta_entries: int,
                 counter_bits: int = 2, counter_inc: int = 1,
                 counter_dec: int = 1, name: str | None = None):
        if not components:
            raise ValueError("a hybrid needs at least one component")
        require_power_of_two(meta_entries, "meta-predictor table size")
        self.components = list(components)
        self.meta_entries = meta_entries
        self._meta_mask = meta_entries - 1
        self._meta = [
            CounterBank(meta_entries, counter_bits, counter_inc, counter_dec)
            for _ in self.components
        ]
        specs = _component_specs(self.components)
        self.spec = (MetaHybridSpec(specs, meta_entries, counter_bits,
                                    counter_inc, counter_dec, label=name)
                     if specs is not None else None)
        self.name = name or ("meta(" + "+".join(c.name for c in self.components) + ")")

    def _select(self, pc: int) -> int:
        index = (pc >> 2) & self._meta_mask
        best, best_conf = 0, self._meta[0][index]
        for i in range(1, len(self.components)):
            conf = self._meta[i][index]
            if conf > best_conf:
                best, best_conf = i, conf
        return best

    def predict(self, pc: int) -> int:
        return self.components[self._select(pc)].predict(pc)

    def update(self, pc: int, value: int) -> None:
        value &= MASK32
        index = (pc >> 2) & self._meta_mask
        for component, bank in zip(self.components, self._meta):
            bank.record(index, component.predict(pc) == value)
            component.update(pc, value)

    def storage_bits(self) -> int:
        """Components plus one counter per component per meta entry."""
        meta_bits = sum(bank.bits for bank in self._meta) * self.meta_entries
        return meta_bits + sum(c.storage_bits() for c in self.components)
