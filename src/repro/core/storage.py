"""Predictor storage-cost model (the Kbit axis of Figures 3 and 11).

Every predictor knows its own cost via ``storage_bits()``; this module
adds the closed-form formulas (useful to build sweep grids without
instantiating tables) and documents the accounting the paper implies:

- last value predictor: 32 bits (the value) per entry;
- stride predictor: last (32) + stride (32) + 3-bit confidence counter
  per entry -- the paper remarks the counter "is usually already
  present", so :func:`stride_bits` takes the counter width as a
  parameter (pass 0 to reproduce the most charitable accounting);
- FCM: level-1 stores only the hashed history (``log2(l2)`` bits per
  entry, thanks to the incremental hash), level-2 stores 32-bit values;
- DFCM: level-1 additionally stores a 32-bit last value per entry --
  this is the "additional storage" the paper's 15 % Pareto figure
  accounts for -- and level-2 stores ``stride_bits``-wide differences.

No tags are charged anywhere: all tables are direct-mapped and tagless,
as in the paper.
"""

from __future__ import annotations

from repro.core.types import WORD_BITS, require_power_of_two

__all__ = [
    "lvp_bits",
    "stride_bits",
    "fcm_bits",
    "dfcm_bits",
    "kbit",
]


def _index_bits(entries: int, what: str) -> int:
    require_power_of_two(entries, what)
    return entries.bit_length() - 1


def lvp_bits(entries: int) -> int:
    """Storage of a last value predictor with *entries* entries."""
    require_power_of_two(entries, "last value table size")
    return entries * WORD_BITS


def stride_bits(entries: int, counter_bits: int = 3) -> int:
    """Storage of the confidence-gated stride predictor."""
    require_power_of_two(entries, "stride table size")
    if counter_bits < 0:
        raise ValueError(f"counter_bits must be >= 0, got {counter_bits}")
    return entries * (2 * WORD_BITS + counter_bits)


def fcm_bits(l1_entries: int, l2_entries: int) -> int:
    """Storage of an FCM: hashed histories in L1, 32-bit values in L2."""
    n = _index_bits(l2_entries, "FCM level-2 size")
    require_power_of_two(l1_entries, "FCM level-1 size")
    return l1_entries * n + l2_entries * WORD_BITS


def dfcm_bits(l1_entries: int, l2_entries: int, stride_width: int = 32) -> int:
    """Storage of a DFCM: L1 holds hash + last value, L2 holds strides."""
    n = _index_bits(l2_entries, "DFCM level-2 size")
    require_power_of_two(l1_entries, "DFCM level-1 size")
    if not 1 <= stride_width <= 32:
        raise ValueError(f"stride_width must be in [1, 32], got {stride_width}")
    return l1_entries * (WORD_BITS + n) + l2_entries * stride_width


def kbit(bits: int) -> float:
    """Bits -> Kbit (1 Kbit = 1024 bits), the paper's size unit."""
    return bits / 1024.0
