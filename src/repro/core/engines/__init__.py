"""Execution engines: how a predictor spec is replayed over a trace.

The spec layer (:mod:`repro.core.spec`) says *what* a predictor is; an
engine says *how* its tables are simulated:

- :class:`~repro.core.engines.scalar.ScalarEngine` builds the classic
  predictor object and drives the per-record loop -- the reference
  semantics, bit-for-bit identical to calling ``step`` yourself.
- :class:`~repro.core.engines.batch.BatchEngine` holds the tables as
  NumPy arrays and replays the whole trace through vectorised kernels
  (grouping records per level-1 entry where the update rule allows it),
  delegating to the scalar engine for families it does not support.

Both return an :class:`EngineResult` with the same correct/total counts
and (on request) the same canonical table-state snapshot; the
equivalence suite in ``tests/engines/`` enforces that.

Engine selection: an explicit ``engine=`` argument wins, then the
process default installed by :func:`engine_default` (the CLI's
``--engine`` flag), then the ``REPRO_ENGINE`` environment variable,
then ``'auto'`` (batch for supported specs, scalar otherwise).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Optional

from repro.core.engines.batch import BatchEngine
from repro.core.engines.resume import (RESUMABLE_FAMILIES, initial_state,
                                       step_block, supports_resume)
from repro.core.engines.scalar import EngineResult, ScalarEngine, count_correct

__all__ = [
    "EngineResult",
    "ScalarEngine",
    "BatchEngine",
    "count_correct",
    "ENGINE_NAMES",
    "engine_default",
    "resolve_engine_name",
    "run_spec",
    "RESUMABLE_FAMILIES",
    "supports_resume",
    "initial_state",
    "step_block",
]

ENGINE_NAMES = ("auto", "scalar", "batch")

_DEFAULT = {"engine": None}


@contextmanager
def engine_default(name: Optional[str]):
    """Install a process-wide default engine (e.g. from ``--engine``)."""
    if name is not None and name not in ENGINE_NAMES:
        raise ValueError(
            f"unknown engine {name!r}; expected one of {ENGINE_NAMES}")
    previous = _DEFAULT["engine"]
    _DEFAULT["engine"] = name
    try:
        yield
    finally:
        _DEFAULT["engine"] = previous


def resolve_engine_name(engine: Optional[str] = None) -> str:
    """Explicit argument > installed default > $REPRO_ENGINE > 'auto'."""
    name = engine or _DEFAULT["engine"] or os.environ.get("REPRO_ENGINE") or "auto"
    if name not in ENGINE_NAMES:
        raise ValueError(
            f"unknown engine {name!r}; expected one of {ENGINE_NAMES}")
    return name


def run_spec(spec, trace, engine: Optional[str] = None,
             want_state: bool = False) -> EngineResult:
    """Replay *trace* under *spec* with the resolved engine."""
    name = resolve_engine_name(engine)
    if name == "scalar":
        return ScalarEngine().run(spec, trace, want_state)
    # 'batch' and 'auto' both go through BatchEngine, which falls back
    # to the scalar engine (and labels the result accordingly) for
    # families it has no kernel for.
    return BatchEngine().run(spec, trace, want_state)
